// report_runner: render a recorded sweep trace (.mmtrace or JSONL,
// auto-detected) as one self-contained HTML report — run facts from the
// manifest, OCR vs density, span outcome attribution stacked bars, span
// latency percentiles, and an optional profiler table from a
// sweep_runner --prof-json report.
//
// Usage:
//   report_runner --in sweep.mmtrace --out report.html
//   report_runner --in sweep.jsonl --prof-json prof.json --title "nightly"
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/report.hpp"

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmv2v;
  using namespace mmv2v::bench;

  const std::vector<FlagSpec> specs{
      {"in", "", "input trace: .mmtrace or JSONL (required)"},
      {"out", "report.html", "output HTML path"},
      {"title", "mmv2v run report", "report title"},
      {"prof_json", "", "profiler JSON report to embed (sweep_runner --prof-json)"},
  };
  const FlagParse parsed = parse_flags(argc, argv, specs);
  if (parsed.show_help) {
    print_flag_help(stdout, "report_runner",
                    "Render a recorded sweep trace as a self-contained HTML\n"
                    "report with inline SVG charts.",
                    specs);
    return 0;
  }
  if (!parsed.error.empty()) {
    std::fprintf(stderr, "report_runner: %s (try --help)\n", parsed.error.c_str());
    return 2;
  }
  const std::string in_path = parsed.values.get_or("in", std::string{});
  if (in_path.empty()) {
    std::fprintf(stderr, "report_runner: --in is required (try --help)\n");
    return 2;
  }

  std::string trace_bytes;
  if (!slurp(in_path, trace_bytes)) {
    std::fprintf(stderr, "report_runner: cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::string profiler_json;
  const std::string prof_path = parsed.values.get_or("prof_json", std::string{});
  if (!prof_path.empty() && !slurp(prof_path, profiler_json)) {
    std::fprintf(stderr, "report_runner: cannot open %s\n", prof_path.c_str());
    return 1;
  }

  const obs::ReportData data = obs::load_report_data(trace_bytes);
  if (data.binary && data.stats.skipped_chunks > 0) {
    std::fprintf(stderr, "report_runner: skipped %zu damaged chunk(s)\n",
                 data.stats.skipped_chunks);
  }
  const std::string out_path = parsed.values.get_or("out", std::string{"report.html"});
  const std::string title = parsed.values.get_or("title", std::string{"mmv2v run report"});
  try {
    obs::write_report_html(out_path, data, title, profiler_json);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "report_runner: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "report_runner: %s -> %s (%llu events, %llu spans)\n",
               in_path.c_str(), out_path.c_str(),
               static_cast<unsigned long long>(data.events),
               static_cast<unsigned long long>(data.spans.spans));
  return 0;
}
