// trace_export: replay a binary .mmtrace flight recording back to canonical
// JSONL. The decoder reuses the exact serializer the direct JSONL writer
// uses, so the output is byte-identical to what `trace.format=jsonl` would
// have recorded for the same run — including the FNV-1a event-stream digest
// (the golden-trace fingerprint). Damaged chunks are skipped with a warning;
// everything before and after a corrupt chunk still decodes.
//
// Usage:
//   trace_export --in sweep.mmtrace --out sweep.jsonl
//   trace_export --in sweep.mmtrace --digest        # print digest only
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "obs/mmtrace.hpp"

int main(int argc, char** argv) {
  using namespace mmv2v;
  using namespace mmv2v::bench;

  const std::vector<FlagSpec> specs{
      {"in", "", "input .mmtrace file (required)"},
      {"out", "", "output JSONL path (default: stdout)"},
      {"include_meta", "true",
       "emit digest-excluded meta lines (the run manifest) as leading lines"},
      {"digest", "false", "print only the FNV-1a digest of the event stream"},
  };
  const FlagParse parsed = parse_flags(argc, argv, specs);
  if (parsed.show_help) {
    print_flag_help(stdout, "trace_export",
                    "Replay a binary .mmtrace event trace as canonical JSONL,\n"
                    "byte-identical to what the JSONL trace writer records.",
                    specs);
    return 0;
  }
  if (!parsed.error.empty()) {
    std::fprintf(stderr, "trace_export: %s (try --help)\n", parsed.error.c_str());
    return 2;
  }
  const std::string in_path = parsed.values.get_or("in", std::string{});
  if (in_path.empty()) {
    std::fprintf(stderr, "trace_export: --in is required (try --help)\n");
    return 2;
  }

  std::ifstream in{in_path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "trace_export: cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (!obs::is_mmtrace(bytes)) {
    std::fprintf(stderr, "trace_export: %s is not an mmtrace file\n", in_path.c_str());
    return 1;
  }

  obs::MmtraceStats stats;
  const bool digest_only = parsed.values.get_or("digest", false);
  const bool include_meta = parsed.values.get_or("include_meta", true) && !digest_only;
  const std::string jsonl = obs::mmtrace_to_jsonl(bytes, include_meta, &stats);
  if (stats.skipped_chunks > 0) {
    std::fprintf(stderr, "trace_export: skipped %zu damaged chunk(s) of %zu\n",
                 stats.skipped_chunks, stats.chunks + stats.skipped_chunks);
  }
  if (!stats.index_ok) {
    std::fprintf(stderr, "trace_export: trailing index missing or damaged\n");
  }

  if (digest_only) {
    // The digest covers the digest-included stream only (events + cell
    // marker lines), matching SweepTrace::digest and the golden tests.
    std::printf("%016llx\n",
                static_cast<unsigned long long>(fnv1a64(std::string_view{jsonl})));
    return 0;
  }

  const std::string out_path = parsed.values.get_or("out", std::string{});
  if (out_path.empty()) {
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  } else {
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "trace_export: cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << jsonl;
    if (!out) {
      std::fprintf(stderr, "trace_export: failed writing %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace_export: %s -> %s (%zu chunks, %zu events)\n",
                 in_path.c_str(), out_path.c_str(), stats.chunks, stats.events);
  }
  return 0;
}
