// Sweep-farm service CLI (DESIGN.md Section 15): the operator entry point
// for the persistent job queue built in src/farm.
//
// Usage examples:
//   farm_runner queue=/var/mmv2v/farm mode=submit densities=10,20,30 reps=5
//   farm_runner queue=/var/mmv2v/farm mode=submit spec=night_sweep.spec
//   farm_runner queue=/var/mmv2v/farm mode=serve workers=4
//   farm_runner queue=/var/mmv2v/farm mode=work drain=true
//   farm_runner queue=/var/mmv2v/farm mode=cancel job=job-000003
//   farm_runner queue=/var/mmv2v/farm mode=status
//
// mode=work runs one worker loop in this process; mode=serve forks N worker
// processes and waits for them — kill any of them at any instant and a
// resumed farm re-runs only the cells that were in flight.
#include "bench_util.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "farm/farm_worker.hpp"
#include "farm/job_queue.hpp"
#include "farm/sweep_spec.hpp"

namespace {

using namespace mmv2v;

/// Sweep-knob overrides the user actually passed (defaults are not baked
/// into the farm_runner flag specs, so presence means "explicitly set").
ConfigMap cli_sweep_overrides(const ConfigMap& cli) {
  ConfigMap out;
  for (const auto& [key, value] : cli.entries()) {
    if (farm::is_sweep_knob(key)) out.set(key, value);
  }
  return out;
}

int run_submit(farm::JobQueue& queue, const ConfigMap& cli) {
  ConfigMap request;
  const std::string spec_path = cli.get_or("spec", std::string{});
  if (!spec_path.empty()) request = ConfigMap::load(spec_path);
  // Named: entries() returns a reference into the ConfigMap, and a range-for
  // over `temporary().entries()` would iterate a destroyed map.
  const ConfigMap overrides = cli_sweep_overrides(cli);
  for (const auto& [key, value] : overrides.entries()) {
    request.set(key, value);
  }
  const ConfigMap minimal = farm::minimal_sweep_config(request);
  // Validate the whole request now — a typo'd knob or unknown protocol must
  // fail at submit time, not inside a worker hours later.
  (void)farm::parse_sweep_spec(minimal);
  const std::string hint =
      cli.get_or("name", minimal.get_or("protocol", std::string{"mmv2v"}));
  const std::string id = queue.submit(farm::canonical_spec_text(minimal), hint);
  std::printf("queued %s in %s\n", id.c_str(), queue.root().string().c_str());
  return 0;
}

int run_work(const ConfigMap& cli, const std::string& queue_root) {
  farm::FarmOptions options;
  options.queue_root = queue_root;
  options.poll_ms = static_cast<int>(cli.get_or("poll_ms", std::int64_t{200}));
  options.drain = cli.get_or("drain", false);
  options.idle_exit_s = cli.get_or("idle_exit_s", 0.0);
  options.max_cells = static_cast<std::size_t>(cli.get_or("max_cells", std::int64_t{0}));
  const farm::FarmWorkerStats stats = farm::run_farm_worker(options);
  std::printf("worker %ld: %zu cell(s), %zu job(s) activated, %zu finalized, %zu failed\n",
              static_cast<long>(::getpid()), stats.cells_run, stats.jobs_activated,
              stats.jobs_finalized, stats.jobs_failed);
  return 0;
}

int run_serve(const ConfigMap& cli, const std::string& queue_root) {
  const auto workers =
      static_cast<int>(cli.get_or("workers", std::int64_t{2}));
  if (workers <= 0) {
    std::fprintf(stderr, "farm_runner: workers must be >= 1\n");
    return 2;
  }
  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: run one worker loop and report through the exit status.
      int status = 1;
      try {
        status = run_work(cli, queue_root);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "farm_runner worker: %s\n", e.what());
      }
      ::_exit(status);
    }
    if (pid < 0) {
      std::fprintf(stderr, "farm_runner: fork failed after %d worker(s)\n", i);
      break;
    }
    children.push_back(pid);
  }
  if (children.empty()) return 1;
  std::printf("serving %s with %zu worker process(es)\n", queue_root.c_str(),
              children.size());
  int exit_code = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      exit_code = 1;
    }
  }
  return exit_code;
}

int run_cancel(farm::JobQueue& queue, const ConfigMap& cli) {
  const std::string id = cli.get_or("job", std::string{});
  if (id.empty()) {
    std::fprintf(stderr, "farm_runner: mode=cancel requires job= (try --help)\n");
    return 2;
  }
  if (!queue.cancel(id)) {
    std::fprintf(stderr, "farm_runner: job %s is neither pending nor active\n", id.c_str());
    return 1;
  }
  std::printf("cancelled %s\n", id.c_str());
  return 0;
}

int run_status(farm::JobQueue& queue) {
  const auto pending = queue.pending_jobs();
  std::printf("queue %s\n", queue.root().string().c_str());
  std::printf("pending (%zu):", pending.size());
  for (const std::string& id : pending) std::printf(" %s", id.c_str());
  std::printf("\n");
  const auto active = queue.active_jobs();
  std::printf("active (%zu):\n", active.size());
  for (const farm::JobRef& job : active) {
    std::size_t total = 0;
    try {
      const ConfigMap config = ConfigMap::load((job.dir / "job.spec").string());
      total = farm::parse_sweep_spec(config).cell_count();
    } catch (const std::exception&) {
      // Unreadable spec: a worker will move the job to failed/ shortly.
    }
    const farm::JournalReplay replay = farm::replay_job_journals(job.dir, false);
    std::printf("  %s: %zu/%zu cell(s) journaled", job.id.c_str(), replay.cells.size(),
                total);
    if (replay.skipped > 0) std::printf(", %zu corrupt frame(s) skipped", replay.skipped);
    std::printf("\n");
  }
  const auto done = queue.done_jobs();
  std::printf("done (%zu):", done.size());
  for (const std::string& id : done) std::printf(" %s", id.c_str());
  std::printf("\n");
  const auto failed = queue.failed_jobs();
  std::printf("failed (%zu):", failed.size());
  for (const std::string& id : failed) std::printf(" %s", id.c_str());
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmv2v;
  using namespace mmv2v::bench;

  std::vector<FlagSpec> specs{
      {"queue", "", "farm queue root directory (required)"},
      {"mode", "work", "submit | work | serve | cancel | status"},
      {"spec", "", "submit: job spec file to enqueue (knob flags override it)"},
      {"name", "", "submit: human-readable job id suffix"},
      {"job", "", "cancel: id of the pending/active job to cancel"},
      {"workers", "2", "serve: worker processes to fork"},
      {"poll_ms", "200", "work/serve: idle poll interval [ms]"},
      {"drain", "false", "work/serve: exit once the queue is empty (batch mode)"},
      {"idle_exit_s", "0", "work/serve: exit after this much continuous idle time (0 = never)"},
      {"max_cells", "0", "work: stop after journaling N cells (test hook; 0 = unlimited)"},
  };
  // Every sweep knob is also a submit-mode override flag. Defaults stay
  // empty here so only explicitly-passed knobs land in the job spec.
  for (const farm::SweepKnob& knob : farm::sweep_knobs()) {
    specs.push_back(FlagSpec{knob.name, "", knob.help});
  }

  const FlagParse parsed = parse_flags(argc, argv, specs);
  if (parsed.show_help) {
    print_flag_help(stdout, "farm_runner",
                    "Sweep-farm service: submit sweep jobs to a persistent on-disk\n"
                    "queue and serve them with work-stealing, crash-resumable worker\n"
                    "processes (DESIGN.md Section 15).",
                    specs);
    return 0;
  }
  if (!parsed.error.empty()) {
    std::fprintf(stderr, "farm_runner: %s (try --help)\n", parsed.error.c_str());
    return 2;
  }
  const ConfigMap& cli = parsed.values;
  const std::string queue_root = cli.get_or("queue", std::string{});
  const std::string mode = cli.get_or("mode", std::string{"work"});
  if (queue_root.empty()) {
    std::fprintf(stderr, "farm_runner: queue= is required (try --help)\n");
    return 2;
  }

  try {
    if (mode == "submit") {
      farm::JobQueue queue{queue_root};
      return run_submit(queue, cli);
    }
    if (mode == "work") return run_work(cli, queue_root);
    if (mode == "serve") return run_serve(cli, queue_root);
    if (mode == "cancel") {
      farm::JobQueue queue{queue_root};
      return run_cancel(queue, cli);
    }
    if (mode == "status") {
      farm::JobQueue queue{queue_root};
      return run_status(queue);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "farm_runner: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "farm_runner: unknown mode '%s' (try --help)\n", mode.c_str());
  return 2;
}
