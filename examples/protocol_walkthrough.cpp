// Narrated walkthrough of one mmV2V frame on a three-vehicle toy topology,
// mirroring the paper's worked examples: Fig. 3 (one SND round with v1 as
// receiver, v2/v3 as transmitters), Fig. 4 (DCM candidate setup and update),
// and Fig. 5 (beam refinement by cross searching). Uses the component APIs
// directly rather than the OhmSimulation facade.
#include <cstdio>
#include <exception>

#include "core/world.hpp"
#include "geom/angles.hpp"
#include "protocols/mmv2v/dcm.hpp"
#include "protocols/mmv2v/refinement.hpp"
#include "protocols/mmv2v/snd.hpp"

int main() try {
  using namespace mmv2v;

  // A tiny single-lane world; positions settle after warmup but the three
  // vehicles stay a few tens of meters apart in a line.
  core::ScenarioConfig scenario;
  scenario.traffic.road_length_m = 150.0;
  scenario.traffic.lanes_per_direction = 1;
  scenario.traffic.bidirectional = false;
  scenario.traffic.enable_lane_changes = false;
  scenario.traffic.density_vpl = 20.0;  // 3 vehicles on 150 m
  scenario.traffic.lane_speed_bands = {{50.0, 50.0}};
  scenario.traffic_warmup_s = 1.0;
  const core::World world{scenario, 7};

  std::printf("== world ==\n");
  for (net::NodeId v = 0; v < world.size(); ++v) {
    const auto p = world.position(v);
    std::printf("  v%zu at (%.1f, %.1f), MAC %s\n", v + 1, p.x, p.y,
                world.mac(v).to_string().c_str());
  }

  // --- Fig. 3: one SND round with fixed roles -----------------------------
  std::printf("\n== SND round (paper Fig. 3): v1 receiver, v2 & v3 transmitters ==\n");
  protocols::SndParams snd_params;
  snd_params.max_neighbor_range_m = scenario.comm_range_m;
  const protocols::SyncNeighborDiscovery snd{snd_params};
  std::vector<net::NeighborTable> tables(world.size(), net::NeighborTable{5});
  std::vector<bool> tx_first = {false, true, true};
  tx_first.resize(world.size(), true);
  snd.run_round(world, 0, tx_first, tables);

  for (net::NodeId v = 0; v < world.size(); ++v) {
    std::printf("  v%zu discovered:", v + 1);
    for (const net::NeighborEntry& e : tables[v].entries()) {
      std::printf("  v%zu (sector %d, SNR %.1f dB)", e.id + 1, e.sector_toward, e.snr_db);
    }
    std::printf("\n");
  }

  // --- Fig. 4: DCM candidate setup and update -----------------------------
  std::printf("\n== DCM (paper Fig. 4): M = 3 slots, C = 3 ==\n");
  protocols::ConsensualMatching dcm{{3, 3}};
  dcm.reset(world.size());
  std::vector<std::vector<net::NeighborEntry>> lists(world.size());
  std::vector<net::MacAddress> macs(world.size());
  for (net::NodeId v = 0; v < world.size(); ++v) {
    lists[v] = tables[v].entries();
    macs[v] = world.mac(v);
  }
  const protocols::ConsensualSchedule& cns = dcm.schedule();
  Xoshiro256pp rng{3};
  for (int m = 0; m < 3; ++m) {
    dcm.run_slot(m, lists, macs, nullptr, rng);
    std::printf("  slot %d:", m);
    for (net::NodeId v = 0; v < world.size(); ++v) {
      const auto& st = dcm.candidates()[v];
      if (st.candidate.has_value()) {
        std::printf("  v%zu<->v%zu (%.1f dB)", v + 1, *st.candidate + 1, st.quality_db);
      }
    }
    std::printf("\n");
  }
  std::printf("  pair slots:");
  for (net::NodeId a = 0; a < world.size(); ++a) {
    for (net::NodeId b = a + 1; b < world.size(); ++b) {
      std::printf("  (v%zu,v%zu)->%d", a + 1, b + 1, cns.pair_slot(macs[a], macs[b]));
    }
  }
  std::printf("\n");

  // --- Fig. 5: beam refinement by cross searching -------------------------
  std::printf("\n== beam refinement (paper Fig. 5) ==\n");
  const auto pairs = dcm.matched_pairs();
  protocols::RefinementParams ref_params;
  const protocols::BeamRefinement refinement{ref_params};
  std::printf("  narrow beams per side s = %d (theta 15°, theta_min 3°)\n",
              refinement.beams_per_side());
  for (const auto& [a, b] : pairs) {
    const auto ea = tables[a].find(b);
    const auto eb = tables[b].find(a);
    if (!ea || !eb) continue;
    const auto result =
        refinement.refine(world, a, ea->sector_toward, b, eb->sector_toward,
                          snd.tx_pattern());
    const core::PairGeom* g = world.pair(a, b);
    std::printf("  v%zu -> v%zu: true bearing %.1f°, refined beam %.1f° (err %.2f°)\n",
                a + 1, b + 1, geom::rad_to_deg(g->bearing_rad),
                geom::rad_to_deg(result.bearing_a),
                geom::rad_to_deg(geom::angular_distance(g->bearing_rad, result.bearing_a)));
    const double sinr_db = units::linear_to_db(result.final_rx_watts /
                                               world.channel().noise_watts());
    std::printf("       refined link SNR %.1f dB -> %.0f Mb/s (MCS %d)\n", sinr_db,
                units::bits_to_megabits(world.channel().mcs().data_rate_bps(sinr_db)),
                world.channel().mcs().select(sinr_db).value_or(-1));
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "protocol_walkthrough failed: %s\n", e.what());
  return 1;
}
