// Work-zone scenario: a 30 km/h speed-limit zone creates a moving congestion
// gradient — dense slow traffic upstream, free flow downstream — and shows
// how mmV2V's completion ratio varies along the road. Finishes with an ASCII
// snapshot of the road and the active matching.
//
// Usage: work_zone [vpl=D] [horizon_s=T]
#include <array>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config_parser.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

namespace {

void ascii_snapshot(const mmv2v::core::World& world,
                    const std::vector<std::pair<mmv2v::net::NodeId, mmv2v::net::NodeId>>&
                        matching) {
  using namespace mmv2v;
  constexpr int kCols = 100;
  const double road = world.config().traffic.road_length_m;
  // One row per forward lane; '.' empty, 'o' vehicle, '#' matched vehicle.
  std::array<std::string, 3> rows;
  rows.fill(std::string(kCols, '.'));
  std::vector<bool> matched(world.size(), false);
  for (const auto& [a, b] : matching) matched[a] = matched[b] = true;

  for (const auto& v : world.traffic().vehicles()) {
    if (v.direction != traffic::Direction::kForward) continue;
    const int col = std::min(kCols - 1, static_cast<int>(v.position(world.traffic().road()).x /
                                                         road * kCols));
    const auto lane = static_cast<std::size_t>(v.lane);
    if (lane < rows.size()) rows[lane][static_cast<std::size_t>(col)] = matched[v.id] ? '#' : 'o';
  }
  std::printf("forward carriageway ('#' = in a matched pair, zone marked below):\n");
  for (const std::string& row : rows) std::printf("  |%s|\n", row.c_str());
  std::string marker(kCols, ' ');
  for (int c = kCols * 40 / 100; c < kCols * 60 / 100; ++c) marker[static_cast<std::size_t>(c)] = '=';
  std::printf("   %s  <- 30 km/h work zone\n", marker.c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mmv2v;

  ConfigMap cli;
  cli.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));

  core::ScenarioConfig scenario;
  scenario.traffic.density_vpl = cli.get_or("vpl", 15.0);
  scenario.traffic.speed_zones.push_back(traffic::SpeedZone{400.0, 600.0, 30.0});
  scenario.traffic_warmup_s = 20.0;  // let the congestion wave form
  scenario.horizon_s = cli.get_or("horizon_s", 1.0);
  scenario.seed = 23;

  protocols::MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{scenario, protocol};
  std::printf("work zone at x in [400, 600) m; %zu vehicles, mean degree %.2f\n\n",
              sim.world().size(), sim.world().mean_degree());
  sim.run(0.0);

  // Road profile in 100 m buckets: vehicles, mean speed, mean OCR.
  constexpr int kBuckets = 10;
  std::array<int, kBuckets> count{};
  std::array<double, kBuckets> speed{};
  std::array<double, kBuckets> ocr{};
  std::array<int, kBuckets> ocr_n{};
  const auto& metrics = sim.final_metrics();
  for (const auto& v : sim.world().traffic().vehicles()) {
    const auto bucket = std::min<std::size_t>(
        kBuckets - 1,
        static_cast<std::size_t>(v.position(sim.world().traffic().road()).x / 100.0));
    ++count[bucket];
    speed[bucket] += v.speed_mps * 3.6;
  }
  for (const auto& vm : metrics.per_vehicle) {
    const auto& v = sim.world().traffic().vehicle(vm.id);
    const auto bucket = std::min<std::size_t>(
        kBuckets - 1,
        static_cast<std::size_t>(v.position(sim.world().traffic().road()).x / 100.0));
    ocr[bucket] += vm.ocr;
    ++ocr_n[bucket];
  }

  std::printf("%10s %10s %12s %8s\n", "x [m]", "vehicles", "speed [km/h]", "OCR");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("%4d-%-5d %10d %12.1f %8s\n", b * 100, (b + 1) * 100, count[b],
                count[b] > 0 ? speed[b] / count[b] : 0.0,
                ocr_n[b] > 0 ? std::to_string(ocr[b] / ocr_n[b]).substr(0, 5).c_str() : "-");
  }
  std::printf("\n");
  ascii_snapshot(sim.world(), protocol.current_matching());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "work_zone failed: %s\n", e.what());
  return 1;
}
