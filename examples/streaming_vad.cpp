// Live cooperative-perception streaming (the paper's VaD motivating
// application): each vehicle transports a 30 fps sensor stream to every
// neighbor via mmV2V. Instead of the bulk OHM task, success is measured per
// delivery window: delivery ratio and age of information.
//
// Usage: streaming_vad [vpl=D] [rate_mbps=R] [horizon_s=T] [window_s=W]
#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "apps/sensor_stream.hpp"
#include "apps/streaming.hpp"
#include "common/config_parser.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

int main(int argc, char** argv) try {
  using namespace mmv2v;

  ConfigMap cli;
  cli.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));
  const double vpl = cli.get_or("vpl", 15.0);
  const double rate = cli.get_or("rate_mbps", 200.0);
  const double horizon = cli.get_or("horizon_s", 2.0);
  const double window = cli.get_or("window_s", 0.1);

  // The stream the application layer would feed the radio.
  apps::SensorStream stream{{.rate_mbps = rate, .frame_rate_hz = 30.0}};
  std::printf("VaD stream: %.0f Mb/s, %.0f fps, mean sensor frame %.2f Mb (key frames %.2f Mb)\n",
              rate, stream.params().frame_rate_hz,
              units::bits_to_megabits(stream.mean_frame_bits()),
              units::bits_to_megabits(stream.frame_bits(0)));

  core::ScenarioConfig scenario;
  scenario.traffic.density_vpl = vpl;
  scenario.horizon_s = horizon;
  // Live stream: make the bulk unit undeliverable so pairs never "complete"
  // and the protocol keeps serving everyone.
  scenario.task.rate_mbps = 10.0 * rate;
  scenario.seed = 11;

  protocols::MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{scenario, protocol};

  apps::StreamingAnalyzer analyzer{{.rate_mbps = rate, .window_s = window}};
  sim.set_frame_observer([&analyzer](const core::FrameContext& ctx) {
    analyzer.on_frame(ctx);
  });

  std::printf("running %zu vehicles at %.0f vpl for %.1f s (windows of %.0f ms)...\n\n",
              sim.world().size(), vpl, horizon, window * 1e3);
  sim.run(0.0);
  analyzer.finish(sim.world(), sim.ledger());

  std::printf("windows evaluated : %zu\n", analyzer.windows_evaluated());
  std::printf("delivery ratio    : %.3f of (link, window) pairs met %.0f Mb/s\n",
              analyzer.delivery_ratio(), rate);
  std::printf("age of information: mean %.0f ms, worst %.0f ms\n",
              analyzer.mean_age_of_information_s() * 1e3,
              analyzer.max_age_of_information_s() * 1e3);

  const std::vector<double> per_vehicle = analyzer.per_vehicle_ratio(sim.world().size());
  std::vector<double> sorted = per_vehicle;
  std::sort(sorted.begin(), sorted.end());
  std::printf("per-vehicle delivery ratio: p10 %.3f, median %.3f, p90 %.3f\n",
              sorted[sorted.size() / 10], sorted[sorted.size() / 2],
              sorted[sorted.size() * 9 / 10]);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "streaming_vad failed: %s\n", e.what());
  return 1;
}
