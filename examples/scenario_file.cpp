// Scenario-file driven runner: loads a full scenario + protocol
// configuration from a key=value file (see examples/scenarios/*.cfg),
// applies CLI overrides, runs mmV2V and prints metric samples plus the
// per-vehicle OCR CDF. Shows how downstream users script experiments
// without recompiling.
//
// Usage: scenario_file <path/to/scenario.cfg> [key=value ...]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config_parser.hpp"
#include "common/stats.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

namespace {

mmv2v::core::ScenarioConfig scenario_from(const mmv2v::ConfigMap& cfg) {
  mmv2v::core::ScenarioConfig s;
  s.traffic.road_length_m = cfg.get_or("traffic.road_length_m", s.traffic.road_length_m);
  s.traffic.lanes_per_direction = static_cast<int>(
      cfg.get_or("traffic.lanes_per_direction",
                 static_cast<std::int64_t>(s.traffic.lanes_per_direction)));
  s.traffic.density_vpl = cfg.get_or("traffic.density_vpl", s.traffic.density_vpl);
  s.traffic.bidirectional = cfg.get_or("traffic.bidirectional", s.traffic.bidirectional);
  s.traffic.enable_lane_changes =
      cfg.get_or("traffic.enable_lane_changes", s.traffic.enable_lane_changes);
  s.channel.tx_power_dbm = cfg.get_or("channel.tx_power_dbm", s.channel.tx_power_dbm);
  s.task.rate_mbps = cfg.get_or("task.rate_mbps", s.task.rate_mbps);
  s.comm_range_m = cfg.get_or("comm_range_m", s.comm_range_m);
  s.horizon_s = cfg.get_or("horizon_s", s.horizon_s);
  s.seed = static_cast<std::uint64_t>(
      cfg.get_or("seed", static_cast<std::int64_t>(s.seed)));
  s.fault.clock_drift_us = cfg.get_or("fault.clock_drift_us", s.fault.clock_drift_us);
  s.fault.ctrl_loss = cfg.get_or("fault.ctrl_loss", s.fault.ctrl_loss);
  s.fault.burst_len = cfg.get_or("fault.burst_len", s.fault.burst_len);
  s.fault.gps_sigma_m = cfg.get_or("fault.gps_sigma_m", s.fault.gps_sigma_m);
  s.fault.churn_rate = cfg.get_or("fault.churn_rate", s.fault.churn_rate);
  return s;
}

mmv2v::protocols::MmV2VParams protocol_from(const mmv2v::ConfigMap& cfg) {
  mmv2v::protocols::MmV2VParams p;
  p.snd.sectors = static_cast<int>(
      cfg.get_or("mmv2v.sectors", static_cast<std::int64_t>(p.snd.sectors)));
  p.snd.alpha_deg = cfg.get_or("mmv2v.alpha_deg", p.snd.alpha_deg);
  p.snd.beta_deg = cfg.get_or("mmv2v.beta_deg", p.snd.beta_deg);
  p.snd.rounds = static_cast<int>(
      cfg.get_or("mmv2v.rounds_k", static_cast<std::int64_t>(p.snd.rounds)));
  p.dcm.slots = static_cast<int>(
      cfg.get_or("mmv2v.slots_m", static_cast<std::int64_t>(p.dcm.slots)));
  p.dcm.modulus_c = static_cast<int>(
      cfg.get_or("mmv2v.modulus_c", static_cast<std::int64_t>(p.dcm.modulus_c)));
  p.refinement.theta_min_deg = cfg.get_or("mmv2v.theta_min_deg", p.refinement.theta_min_deg);
  p.seed = static_cast<std::uint64_t>(cfg.get_or("mmv2v.seed", std::int64_t{0x5eed}));
  return p;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mmv2v;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <scenario.cfg> [key=value ...]\n", argv[0]);
    return 2;
  }
  ConfigMap cfg = ConfigMap::load(argv[1]);
  cfg.apply_overrides(std::vector<std::string>(argv + 2, argv + argc));

  const core::ScenarioConfig scenario = scenario_from(cfg);
  protocols::MmV2VProtocol protocol{protocol_from(cfg)};
  core::OhmSimulation sim{scenario, protocol};

  std::printf("scenario %s: %zu vehicles, degree %.2f, %0.f Mb/s, %.1f s\n", argv[1],
              sim.world().size(), sim.world().mean_degree(), scenario.task.rate_mbps,
              scenario.horizon_s);
  sim.run(0.5);

  std::printf("\n%8s %8s %8s %8s\n", "t [s]", "OCR", "ATP", "DTP");
  for (const core::MetricsSample& s : sim.samples()) {
    std::printf("%8.2f %8.3f %8.3f %8.3f\n", s.time_s, s.metrics.mean_ocr(),
                s.metrics.mean_atp(), s.metrics.mean_dtp());
  }

  std::printf("\nper-vehicle OCR CDF:\n");
  const auto curve = sim.final_metrics().ocr.cdf_curve(0.0, 1.0, 11);
  for (const auto& [x, f] : curve) {
    std::printf("  P(OCR <= %.1f) = %.3f\n", x, f);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "scenario_file failed: %s\n", e.what());
  return 1;
}
