// Platoon sensor sharing: a single-lane convoy of closely spaced vehicles
// (the 3GPP "video data sharing for assisted driving" use case the paper
// motivates) exchanging high-rate sensor streams with mmV2V. Demonstrates
// using the library below the OhmSimulation facade: a custom TrafficConfig,
// direct access to discovery tables and the per-frame matching.
//
// Usage: platoon_share [vehicles=N] [rate_mbps=R] [horizon_s=T]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config_parser.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

int main(int argc, char** argv) try {
  using namespace mmv2v;

  ConfigMap cli;
  cli.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));
  const auto vehicles = cli.get_or("vehicles", std::int64_t{20});
  const double rate = cli.get_or("rate_mbps", 400.0);
  const double horizon = cli.get_or("horizon_s", 1.0);

  core::ScenarioConfig scenario;
  // One lane, one direction, tight spacing, no lane changes: a platoon.
  scenario.traffic.lanes_per_direction = 1;
  scenario.traffic.bidirectional = false;
  scenario.traffic.enable_lane_changes = false;
  scenario.traffic.road_length_m = 1000.0;
  scenario.traffic.density_vpl = static_cast<double>(vehicles);
  scenario.traffic.lane_speed_bands = {{72.0, 72.0}};  // lockstep 20 m/s
  scenario.task.rate_mbps = rate;
  scenario.horizon_s = horizon;
  scenario.seed = 42;

  protocols::MmV2VParams params;
  params.seed = 7;
  protocols::MmV2VProtocol protocol{params};
  core::OhmSimulation sim{scenario, protocol};

  std::printf("platoon of %zu vehicles, %0.f Mb/s per link, %.1f s horizon\n",
              sim.world().size(), rate, horizon);
  std::printf("mean degree %.2f (platoon LOS is blocked past the next vehicle)\n\n",
              sim.world().mean_degree());

  sim.run(horizon / 4.0);

  std::printf("%8s %8s %8s %8s\n", "t [s]", "OCR", "ATP", "DTP");
  for (const core::MetricsSample& s : sim.samples()) {
    std::printf("%8.2f %8.3f %8.3f %8.3f\n", s.time_s, s.metrics.mean_ocr(),
                s.metrics.mean_atp(), s.metrics.mean_dtp());
  }

  // Per-vehicle completion detail: in a line platoon, LOS blockage means
  // each member mostly talks to its immediate neighbors.
  std::printf("\nper-vehicle detail (final):\n%6s %10s %8s %8s\n", "id", "neighbors",
              "OCR", "ATP");
  for (const core::VehicleMetrics& v : sim.final_metrics().per_vehicle) {
    std::printf("%6zu %10zu %8.3f %8.3f\n", v.id, v.neighbor_count, v.ocr, v.atp);
  }

  std::printf("\nlast-frame matching (%zu pairs):", protocol.current_matching().size());
  for (const auto& [a, b] : protocol.current_matching()) {
    std::printf(" %zu-%zu", a, b);
  }
  std::printf("\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "platoon_share failed: %s\n", e.what());
  return 1;
}
