// Quickstart: build a 15 vpl highway scenario, run the mmV2V protocol for
// two simulated seconds of the 200 Mb/s HRIE task, and print the paper's
// three metrics (OCR / ATP / DTP).
//
// Usage: quickstart [key=value ...]
//   e.g. quickstart traffic.density_vpl=20 horizon_s=1 seed=7
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config_parser.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

int main(int argc, char** argv) try {
  using namespace mmv2v;

  ConfigMap overrides;
  overrides.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));

  core::ScenarioConfig scenario;
  scenario.traffic.density_vpl = overrides.get_or("traffic.density_vpl", 15.0);
  scenario.horizon_s = overrides.get_or("horizon_s", 2.0);
  scenario.task.rate_mbps = overrides.get_or("task.rate_mbps", 200.0);
  scenario.seed = static_cast<std::uint64_t>(overrides.get_or("seed", std::int64_t{1}));

  protocols::MmV2VParams params;  // paper defaults: S=24, K=3, M=40, C=7
  params.seed = scenario.seed ^ 0xabcd;
  protocols::MmV2VProtocol protocol{params};

  core::OhmSimulation sim{scenario, protocol};
  std::printf("mmV2V quickstart: %zu vehicles at %.0f vpl, %.0f Mb/s task, %.1f s horizon\n",
              sim.world().size(), scenario.traffic.density_vpl, scenario.task.rate_mbps,
              scenario.horizon_s);
  std::printf("mean ground-truth degree: %.2f neighbors\n", sim.world().mean_degree());

  sim.run(/*sample_interval_s=*/0.5);

  std::printf("\n%8s %8s %8s %8s\n", "t [s]", "OCR", "ATP", "DTP");
  for (const core::MetricsSample& s : sim.samples()) {
    std::printf("%8.2f %8.3f %8.3f %8.3f\n", s.time_s, s.metrics.mean_ocr(),
                s.metrics.mean_atp(), s.metrics.mean_dtp());
  }
  const auto& final = sim.final_metrics();
  std::printf("\nfinal: OCR %.1f%%  ATP %.1f%%  DTP %.3f  (%zu vehicles with neighbors)\n",
              100.0 * final.mean_ocr(), 100.0 * final.mean_atp(), final.mean_dtp(),
              final.per_vehicle.size());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "quickstart failed: %s\n", e.what());
  return 1;
}
