// Dense-highway stress comparison: run all three OHM protocols (mmV2V, ROP,
// IEEE 802.11ad) on the same congested scenario and print the paper's three
// metrics side by side — a miniature of Fig. 9 at one density.
//
// Usage: dense_highway [vpl=D] [horizon_s=T] [seed=S] [rate_mbps=R]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/config_parser.hpp"
#include "core/simulation.hpp"
#include "protocols/ad/ieee80211ad.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/rop/rop.hpp"

namespace {

struct Row {
  const char* name;
  double ocr;
  double atp;
  double dtp;
};

template <typename Protocol, typename Params>
Row run(const char* name, const mmv2v::core::ScenarioConfig& scenario, Params params) {
  Protocol protocol{params};
  mmv2v::core::OhmSimulation sim{scenario, protocol};
  sim.run(0.0);
  const auto& m = sim.final_metrics();
  return Row{name, m.mean_ocr(), m.mean_atp(), m.mean_dtp()};
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace mmv2v;

  ConfigMap cli;
  cli.apply_overrides(std::vector<std::string>(argv + 1, argv + argc));

  core::ScenarioConfig scenario;
  scenario.traffic.density_vpl = cli.get_or("vpl", 25.0);
  scenario.horizon_s = cli.get_or("horizon_s", 1.0);
  scenario.task.rate_mbps = cli.get_or("rate_mbps", 200.0);
  scenario.seed = static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{5}));

  {
    // Report scenario shape once.
    const core::World world{scenario, scenario.seed};
    std::printf("dense highway: %zu vehicles at %.0f vpl, mean degree %.2f\n",
                world.size(), scenario.traffic.density_vpl, world.mean_degree());
    std::printf("task: %.0f Mb/s HRIE over %.1f s\n\n", scenario.task.rate_mbps,
                scenario.horizon_s);
  }

  protocols::MmV2VParams mm_params;
  mm_params.seed = scenario.seed ^ 1;
  protocols::RopParams rop_params;
  rop_params.seed = scenario.seed ^ 2;
  protocols::AdParams ad_params;
  ad_params.seed = scenario.seed ^ 3;
  const std::vector<Row> rows{
      run<protocols::MmV2VProtocol>("mmV2V", scenario, mm_params),
      run<protocols::RopProtocol>("ROP", scenario, rop_params),
      run<protocols::Ieee80211adProtocol>("802.11ad", scenario, ad_params),
  };

  std::printf("%-10s %8s %8s %8s\n", "protocol", "OCR", "ATP", "DTP");
  for (const Row& r : rows) {
    std::printf("%-10s %8.3f %8.3f %8.3f\n", r.name, r.ocr, r.atp, r.dtp);
  }
  std::printf("\nexpected ordering (paper Fig. 9): mmV2V well ahead; at high density\n"
              "802.11ad's PBSS serialization collapses toward or below ROP.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "dense_highway failed: %s\n", e.what());
  return 1;
}
