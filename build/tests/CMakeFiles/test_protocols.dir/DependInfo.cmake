
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/test_dcm.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_dcm.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_dcm.cpp.o.d"
  "/root/repo/tests/protocols/test_dcm_param.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_dcm_param.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_dcm_param.cpp.o.d"
  "/root/repo/tests/protocols/test_extensions.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_extensions.cpp.o.d"
  "/root/repo/tests/protocols/test_failure_injection.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_failure_injection.cpp.o.d"
  "/root/repo/tests/protocols/test_ieee80211ad.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_ieee80211ad.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_ieee80211ad.cpp.o.d"
  "/root/repo/tests/protocols/test_negotiation.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_negotiation.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_negotiation.cpp.o.d"
  "/root/repo/tests/protocols/test_paper_shape.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_paper_shape.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_paper_shape.cpp.o.d"
  "/root/repo/tests/protocols/test_protocols_integration.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_protocols_integration.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_protocols_integration.cpp.o.d"
  "/root/repo/tests/protocols/test_refinement_udt.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_refinement_udt.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_refinement_udt.cpp.o.d"
  "/root/repo/tests/protocols/test_snd.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_snd.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_snd.cpp.o.d"
  "/root/repo/tests/protocols/test_snd_param.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_snd_param.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_snd_param.cpp.o.d"
  "/root/repo/tests/protocols/test_udt_windows.cpp" "tests/CMakeFiles/test_protocols.dir/protocols/test_udt_windows.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/protocols/test_udt_windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmv2v_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mmv2v_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/mmv2v_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmv2v_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmv2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mmv2v_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmv2v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/mmv2v_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mmv2v_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
