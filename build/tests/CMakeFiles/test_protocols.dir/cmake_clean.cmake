file(REMOVE_RECURSE
  "CMakeFiles/test_protocols.dir/protocols/test_dcm.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_dcm.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_dcm_param.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_dcm_param.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_extensions.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_extensions.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_failure_injection.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_ieee80211ad.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_ieee80211ad.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_negotiation.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_negotiation.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_paper_shape.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_paper_shape.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_protocols_integration.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_protocols_integration.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_refinement_udt.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_refinement_udt.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_snd.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_snd.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_snd_param.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_snd_param.cpp.o.d"
  "CMakeFiles/test_protocols.dir/protocols/test_udt_windows.cpp.o"
  "CMakeFiles/test_protocols.dir/protocols/test_udt_windows.cpp.o.d"
  "test_protocols"
  "test_protocols.pdb"
  "test_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
