file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/test_antenna.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_antenna.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_antenna_param.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_antenna_param.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_channel.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_channel.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_fading.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_fading.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_mcs_param.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_mcs_param.cpp.o.d"
  "CMakeFiles/test_phy.dir/phy/test_pathloss_mcs.cpp.o"
  "CMakeFiles/test_phy.dir/phy/test_pathloss_mcs.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
