file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ledger_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ledger_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_world.cpp.o"
  "CMakeFiles/test_core.dir/core/test_world.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_world_fading.cpp.o"
  "CMakeFiles/test_core.dir/core/test_world_fading.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
