file(REMOVE_RECURSE
  "CMakeFiles/test_geom.dir/geom/test_angles.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_angles.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_rect_los.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_rect_los.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_sector_param.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_sector_param.cpp.o.d"
  "CMakeFiles/test_geom.dir/geom/test_vec2.cpp.o"
  "CMakeFiles/test_geom.dir/geom/test_vec2.cpp.o.d"
  "test_geom"
  "test_geom.pdb"
  "test_geom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
