file(REMOVE_RECURSE
  "CMakeFiles/test_traffic.dir/traffic/test_idm_mobil.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_idm_mobil.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_road.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_road.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_speed_zone.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_speed_zone.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_traffic_param.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_traffic_param.cpp.o.d"
  "CMakeFiles/test_traffic.dir/traffic/test_traffic_sim.cpp.o"
  "CMakeFiles/test_traffic.dir/traffic/test_traffic_sim.cpp.o.d"
  "test_traffic"
  "test_traffic.pdb"
  "test_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
