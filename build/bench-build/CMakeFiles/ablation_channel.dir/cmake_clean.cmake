file(REMOVE_RECURSE
  "../bench/ablation_channel"
  "../bench/ablation_channel.pdb"
  "CMakeFiles/ablation_channel.dir/ablation_channel.cpp.o"
  "CMakeFiles/ablation_channel.dir/ablation_channel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
