# Empty dependencies file for sweep_runner.
# This may be replaced when dependencies are built.
