file(REMOVE_RECURSE
  "../bench/sweep_runner"
  "../bench/sweep_runner.pdb"
  "CMakeFiles/sweep_runner.dir/sweep_runner.cpp.o"
  "CMakeFiles/sweep_runner.dir/sweep_runner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
