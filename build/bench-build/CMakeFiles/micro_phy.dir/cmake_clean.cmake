file(REMOVE_RECURSE
  "../bench/micro_phy"
  "../bench/micro_phy.pdb"
  "CMakeFiles/micro_phy.dir/micro_phy.cpp.o"
  "CMakeFiles/micro_phy.dir/micro_phy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
