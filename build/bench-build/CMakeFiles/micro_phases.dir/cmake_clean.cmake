file(REMOVE_RECURSE
  "../bench/micro_phases"
  "../bench/micro_phases.pdb"
  "CMakeFiles/micro_phases.dir/micro_phases.cpp.o"
  "CMakeFiles/micro_phases.dir/micro_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
