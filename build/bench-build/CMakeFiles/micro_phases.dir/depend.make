# Empty dependencies file for micro_phases.
# This may be replaced when dependencies are built.
