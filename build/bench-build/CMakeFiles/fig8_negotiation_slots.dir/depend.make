# Empty dependencies file for fig8_negotiation_slots.
# This may be replaced when dependencies are built.
