file(REMOVE_RECURSE
  "../bench/fig8_negotiation_slots"
  "../bench/fig8_negotiation_slots.pdb"
  "CMakeFiles/fig8_negotiation_slots.dir/fig8_negotiation_slots.cpp.o"
  "CMakeFiles/fig8_negotiation_slots.dir/fig8_negotiation_slots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_negotiation_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
