file(REMOVE_RECURSE
  "../bench/ablation_discovery"
  "../bench/ablation_discovery.pdb"
  "CMakeFiles/ablation_discovery.dir/ablation_discovery.cpp.o"
  "CMakeFiles/ablation_discovery.dir/ablation_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
