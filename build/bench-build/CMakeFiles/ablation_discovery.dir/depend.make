# Empty dependencies file for ablation_discovery.
# This may be replaced when dependencies are built.
