# Empty compiler generated dependencies file for fig7_discovery_rounds.
# This may be replaced when dependencies are built.
