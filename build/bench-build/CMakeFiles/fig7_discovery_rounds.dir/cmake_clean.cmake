file(REMOVE_RECURSE
  "../bench/fig7_discovery_rounds"
  "../bench/fig7_discovery_rounds.pdb"
  "CMakeFiles/fig7_discovery_rounds.dir/fig7_discovery_rounds.cpp.o"
  "CMakeFiles/fig7_discovery_rounds.dir/fig7_discovery_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_discovery_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
