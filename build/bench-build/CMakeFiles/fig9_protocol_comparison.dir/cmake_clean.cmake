file(REMOVE_RECURSE
  "../bench/fig9_protocol_comparison"
  "../bench/fig9_protocol_comparison.pdb"
  "CMakeFiles/fig9_protocol_comparison.dir/fig9_protocol_comparison.cpp.o"
  "CMakeFiles/fig9_protocol_comparison.dir/fig9_protocol_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
