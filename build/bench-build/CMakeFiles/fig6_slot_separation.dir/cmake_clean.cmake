file(REMOVE_RECURSE
  "../bench/fig6_slot_separation"
  "../bench/fig6_slot_separation.pdb"
  "CMakeFiles/fig6_slot_separation.dir/fig6_slot_separation.cpp.o"
  "CMakeFiles/fig6_slot_separation.dir/fig6_slot_separation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_slot_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
