# Empty compiler generated dependencies file for fig6_slot_separation.
# This may be replaced when dependencies are built.
