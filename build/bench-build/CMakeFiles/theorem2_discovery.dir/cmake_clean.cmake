file(REMOVE_RECURSE
  "../bench/theorem2_discovery"
  "../bench/theorem2_discovery.pdb"
  "CMakeFiles/theorem2_discovery.dir/theorem2_discovery.cpp.o"
  "CMakeFiles/theorem2_discovery.dir/theorem2_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem2_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
