# Empty compiler generated dependencies file for theorem2_discovery.
# This may be replaced when dependencies are built.
