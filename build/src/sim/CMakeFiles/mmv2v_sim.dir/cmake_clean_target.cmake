file(REMOVE_RECURSE
  "libmmv2v_sim.a"
)
