file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mmv2v_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mmv2v_sim.dir/frame.cpp.o"
  "CMakeFiles/mmv2v_sim.dir/frame.cpp.o.d"
  "libmmv2v_sim.a"
  "libmmv2v_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
