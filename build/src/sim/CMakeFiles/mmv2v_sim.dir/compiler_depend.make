# Empty compiler generated dependencies file for mmv2v_sim.
# This may be replaced when dependencies are built.
