file(REMOVE_RECURSE
  "libmmv2v_core.a"
)
