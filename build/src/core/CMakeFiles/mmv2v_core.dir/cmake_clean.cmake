file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_core.dir/experiment.cpp.o"
  "CMakeFiles/mmv2v_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mmv2v_core.dir/ledger.cpp.o"
  "CMakeFiles/mmv2v_core.dir/ledger.cpp.o.d"
  "CMakeFiles/mmv2v_core.dir/metrics.cpp.o"
  "CMakeFiles/mmv2v_core.dir/metrics.cpp.o.d"
  "CMakeFiles/mmv2v_core.dir/simulation.cpp.o"
  "CMakeFiles/mmv2v_core.dir/simulation.cpp.o.d"
  "CMakeFiles/mmv2v_core.dir/trace.cpp.o"
  "CMakeFiles/mmv2v_core.dir/trace.cpp.o.d"
  "CMakeFiles/mmv2v_core.dir/world.cpp.o"
  "CMakeFiles/mmv2v_core.dir/world.cpp.o.d"
  "libmmv2v_core.a"
  "libmmv2v_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
