# Empty compiler generated dependencies file for mmv2v_core.
# This may be replaced when dependencies are built.
