# Empty compiler generated dependencies file for mmv2v_traffic.
# This may be replaced when dependencies are built.
