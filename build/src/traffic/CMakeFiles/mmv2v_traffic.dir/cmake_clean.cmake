file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_traffic.dir/traffic_sim.cpp.o"
  "CMakeFiles/mmv2v_traffic.dir/traffic_sim.cpp.o.d"
  "libmmv2v_traffic.a"
  "libmmv2v_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
