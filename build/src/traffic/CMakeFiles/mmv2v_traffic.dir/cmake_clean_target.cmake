file(REMOVE_RECURSE
  "libmmv2v_traffic.a"
)
