file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_net.dir/mac_address.cpp.o"
  "CMakeFiles/mmv2v_net.dir/mac_address.cpp.o.d"
  "CMakeFiles/mmv2v_net.dir/neighbor_table.cpp.o"
  "CMakeFiles/mmv2v_net.dir/neighbor_table.cpp.o.d"
  "libmmv2v_net.a"
  "libmmv2v_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
