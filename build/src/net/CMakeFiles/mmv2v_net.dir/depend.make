# Empty dependencies file for mmv2v_net.
# This may be replaced when dependencies are built.
