file(REMOVE_RECURSE
  "libmmv2v_net.a"
)
