file(REMOVE_RECURSE
  "libmmv2v_geom.a"
)
