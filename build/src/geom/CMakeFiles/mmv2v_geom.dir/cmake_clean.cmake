file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_geom.dir/los.cpp.o"
  "CMakeFiles/mmv2v_geom.dir/los.cpp.o.d"
  "CMakeFiles/mmv2v_geom.dir/rect.cpp.o"
  "CMakeFiles/mmv2v_geom.dir/rect.cpp.o.d"
  "libmmv2v_geom.a"
  "libmmv2v_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
