# Empty compiler generated dependencies file for mmv2v_geom.
# This may be replaced when dependencies are built.
