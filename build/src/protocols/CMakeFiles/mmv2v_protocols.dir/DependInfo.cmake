
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/ad/ieee80211ad.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/ad/ieee80211ad.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/ad/ieee80211ad.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/cns.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/cns.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/cns.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/dcm.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/dcm.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/dcm.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/mmv2v.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/mmv2v.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/mmv2v.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/negotiation.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/negotiation.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/negotiation.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/refinement.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/refinement.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/refinement.cpp.o.d"
  "/root/repo/src/protocols/mmv2v/snd.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/snd.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/mmv2v/snd.cpp.o.d"
  "/root/repo/src/protocols/rop/rop.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/rop/rop.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/rop/rop.cpp.o.d"
  "/root/repo/src/protocols/udt_engine.cpp" "src/protocols/CMakeFiles/mmv2v_protocols.dir/udt_engine.cpp.o" "gcc" "src/protocols/CMakeFiles/mmv2v_protocols.dir/udt_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmv2v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mmv2v_net.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmv2v_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmv2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/mmv2v_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mmv2v_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mmv2v_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
