file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_protocols.dir/ad/ieee80211ad.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/ad/ieee80211ad.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/cns.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/cns.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/dcm.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/dcm.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/mmv2v.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/mmv2v.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/negotiation.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/negotiation.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/refinement.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/refinement.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/snd.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/mmv2v/snd.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/rop/rop.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/rop/rop.cpp.o.d"
  "CMakeFiles/mmv2v_protocols.dir/udt_engine.cpp.o"
  "CMakeFiles/mmv2v_protocols.dir/udt_engine.cpp.o.d"
  "libmmv2v_protocols.a"
  "libmmv2v_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
