# Empty dependencies file for mmv2v_protocols.
# This may be replaced when dependencies are built.
