file(REMOVE_RECURSE
  "libmmv2v_protocols.a"
)
