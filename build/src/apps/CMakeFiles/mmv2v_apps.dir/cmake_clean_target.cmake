file(REMOVE_RECURSE
  "libmmv2v_apps.a"
)
