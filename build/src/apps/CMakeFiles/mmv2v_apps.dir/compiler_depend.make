# Empty compiler generated dependencies file for mmv2v_apps.
# This may be replaced when dependencies are built.
