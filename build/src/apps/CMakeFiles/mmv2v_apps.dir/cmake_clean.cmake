file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_apps.dir/sensor_stream.cpp.o"
  "CMakeFiles/mmv2v_apps.dir/sensor_stream.cpp.o.d"
  "CMakeFiles/mmv2v_apps.dir/streaming.cpp.o"
  "CMakeFiles/mmv2v_apps.dir/streaming.cpp.o.d"
  "libmmv2v_apps.a"
  "libmmv2v_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
