# Empty dependencies file for mmv2v_phy.
# This may be replaced when dependencies are built.
