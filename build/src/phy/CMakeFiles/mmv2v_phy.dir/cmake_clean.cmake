file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_phy.dir/antenna.cpp.o"
  "CMakeFiles/mmv2v_phy.dir/antenna.cpp.o.d"
  "CMakeFiles/mmv2v_phy.dir/channel.cpp.o"
  "CMakeFiles/mmv2v_phy.dir/channel.cpp.o.d"
  "CMakeFiles/mmv2v_phy.dir/codebook.cpp.o"
  "CMakeFiles/mmv2v_phy.dir/codebook.cpp.o.d"
  "CMakeFiles/mmv2v_phy.dir/fading.cpp.o"
  "CMakeFiles/mmv2v_phy.dir/fading.cpp.o.d"
  "CMakeFiles/mmv2v_phy.dir/mcs.cpp.o"
  "CMakeFiles/mmv2v_phy.dir/mcs.cpp.o.d"
  "libmmv2v_phy.a"
  "libmmv2v_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
