file(REMOVE_RECURSE
  "libmmv2v_phy.a"
)
