
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/antenna.cpp" "src/phy/CMakeFiles/mmv2v_phy.dir/antenna.cpp.o" "gcc" "src/phy/CMakeFiles/mmv2v_phy.dir/antenna.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/mmv2v_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/mmv2v_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/codebook.cpp" "src/phy/CMakeFiles/mmv2v_phy.dir/codebook.cpp.o" "gcc" "src/phy/CMakeFiles/mmv2v_phy.dir/codebook.cpp.o.d"
  "/root/repo/src/phy/fading.cpp" "src/phy/CMakeFiles/mmv2v_phy.dir/fading.cpp.o" "gcc" "src/phy/CMakeFiles/mmv2v_phy.dir/fading.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/mmv2v_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/mmv2v_phy.dir/mcs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmv2v_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mmv2v_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
