file(REMOVE_RECURSE
  "libmmv2v_common.a"
)
