file(REMOVE_RECURSE
  "CMakeFiles/mmv2v_common.dir/config_parser.cpp.o"
  "CMakeFiles/mmv2v_common.dir/config_parser.cpp.o.d"
  "CMakeFiles/mmv2v_common.dir/logging.cpp.o"
  "CMakeFiles/mmv2v_common.dir/logging.cpp.o.d"
  "CMakeFiles/mmv2v_common.dir/stats.cpp.o"
  "CMakeFiles/mmv2v_common.dir/stats.cpp.o.d"
  "CMakeFiles/mmv2v_common.dir/svg_plot.cpp.o"
  "CMakeFiles/mmv2v_common.dir/svg_plot.cpp.o.d"
  "libmmv2v_common.a"
  "libmmv2v_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmv2v_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
