# Empty compiler generated dependencies file for mmv2v_common.
# This may be replaced when dependencies are built.
