file(REMOVE_RECURSE
  "../examples/platoon_share"
  "../examples/platoon_share.pdb"
  "CMakeFiles/platoon_share.dir/platoon_share.cpp.o"
  "CMakeFiles/platoon_share.dir/platoon_share.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
