# Empty dependencies file for platoon_share.
# This may be replaced when dependencies are built.
