# Empty dependencies file for scenario_file.
# This may be replaced when dependencies are built.
