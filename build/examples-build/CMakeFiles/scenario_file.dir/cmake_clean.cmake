file(REMOVE_RECURSE
  "../examples/scenario_file"
  "../examples/scenario_file.pdb"
  "CMakeFiles/scenario_file.dir/scenario_file.cpp.o"
  "CMakeFiles/scenario_file.dir/scenario_file.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
