
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/work_zone.cpp" "examples-build/CMakeFiles/work_zone.dir/work_zone.cpp.o" "gcc" "examples-build/CMakeFiles/work_zone.dir/work_zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mmv2v_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mmv2v_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/mmv2v_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mmv2v_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mmv2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mmv2v_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mmv2v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/mmv2v_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mmv2v_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
