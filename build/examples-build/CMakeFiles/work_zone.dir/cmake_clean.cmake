file(REMOVE_RECURSE
  "../examples/work_zone"
  "../examples/work_zone.pdb"
  "CMakeFiles/work_zone.dir/work_zone.cpp.o"
  "CMakeFiles/work_zone.dir/work_zone.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
