# Empty dependencies file for work_zone.
# This may be replaced when dependencies are built.
