file(REMOVE_RECURSE
  "../examples/dense_highway"
  "../examples/dense_highway.pdb"
  "CMakeFiles/dense_highway.dir/dense_highway.cpp.o"
  "CMakeFiles/dense_highway.dir/dense_highway.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_highway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
