# Empty dependencies file for dense_highway.
# This may be replaced when dependencies are built.
