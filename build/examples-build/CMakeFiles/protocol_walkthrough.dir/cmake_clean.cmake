file(REMOVE_RECURSE
  "../examples/protocol_walkthrough"
  "../examples/protocol_walkthrough.pdb"
  "CMakeFiles/protocol_walkthrough.dir/protocol_walkthrough.cpp.o"
  "CMakeFiles/protocol_walkthrough.dir/protocol_walkthrough.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
