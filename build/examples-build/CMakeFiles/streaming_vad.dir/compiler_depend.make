# Empty compiler generated dependencies file for streaming_vad.
# This may be replaced when dependencies are built.
