file(REMOVE_RECURSE
  "../examples/streaming_vad"
  "../examples/streaming_vad.pdb"
  "CMakeFiles/streaming_vad.dir/streaming_vad.cpp.o"
  "CMakeFiles/streaming_vad.dir/streaming_vad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_vad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
