#include <gtest/gtest.h>

#include "apps/sensor_stream.hpp"
#include "apps/streaming.hpp"
#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "test_util.hpp"

namespace mmv2v::apps {
namespace {

TEST(SensorStream, ValidatesParameters) {
  EXPECT_THROW(SensorStream({.rate_mbps = 0.0}), std::invalid_argument);
  EXPECT_THROW(SensorStream({.frame_rate_hz = -1.0}), std::invalid_argument);
  EXPECT_THROW(SensorStream({.key_frame_interval = 0}), std::invalid_argument);
  EXPECT_THROW(SensorStream({.key_frame_scale = 0.5}), std::invalid_argument);
}

TEST(SensorStream, LongRunRateMatchesNominal) {
  const SensorStream stream{{.rate_mbps = 200.0, .frame_rate_hz = 30.0}};
  double bits = 0.0;
  const int frames = 3000;  // 100 s
  for (int i = 0; i < frames; ++i) bits += stream.frame_bits(static_cast<std::uint64_t>(i));
  const double rate = bits / (frames / 30.0);
  EXPECT_NEAR(rate, 200e6, 200e6 * 0.03);
}

TEST(SensorStream, KeyFramesAreLarger) {
  const SensorStream stream{{.rate_mbps = 200.0, .key_frame_interval = 10,
                             .key_frame_scale = 2.5}};
  const double key = stream.frame_bits(0);
  for (std::uint64_t i = 1; i < 10; ++i) {
    EXPECT_GT(key, stream.frame_bits(i) * 1.5);
  }
  EXPECT_DOUBLE_EQ(stream.frame_bits(0), stream.frame_bits(10));
}

TEST(SensorStream, DeltaJitterIsBoundedAndDeterministic) {
  const SensorStream a{{.rate_mbps = 100.0, .seed = 5}};
  const SensorStream b{{.rate_mbps = 100.0, .seed = 5}};
  for (std::uint64_t i = 1; i < 200; ++i) {
    if (i % 10 == 0) continue;
    EXPECT_DOUBLE_EQ(a.frame_bits(i), b.frame_bits(i));
  }
}

TEST(SensorStream, TimeIndexing) {
  const SensorStream stream{{.rate_mbps = 100.0, .frame_rate_hz = 30.0}};
  EXPECT_EQ(stream.latest_frame_at(-1.0), 0u);
  EXPECT_EQ(stream.latest_frame_at(0.0), 0u);
  EXPECT_EQ(stream.latest_frame_at(1.0), 30u);
  EXPECT_NEAR(stream.frame_interval_s(), 1.0 / 30.0, 1e-12);
  EXPECT_GT(stream.bits_generated_by(1.0), stream.bits_generated_by(0.5));
}

TEST(StreamingAnalyzer, ValidatesParameters) {
  EXPECT_THROW(StreamingAnalyzer({.rate_mbps = 0.0}), std::invalid_argument);
  EXPECT_THROW(StreamingAnalyzer({.window_s = 0.0}), std::invalid_argument);
}

class StreamingEndToEnd : public ::testing::Test {
 protected:
  static core::ScenarioConfig scenario() {
    core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 51);
    s.horizon_s = 0.4;
    s.task.rate_mbps = 50000.0;  // never completes: live-stream semantics
    return s;
  }
};

TEST_F(StreamingEndToEnd, LowRateStreamServesRoughlyOneNeighbourPerFrame) {
  protocols::MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{scenario(), protocol};
  StreamingAnalyzer analyzer{{.rate_mbps = 5.0, .window_s = 0.1}};
  sim.set_frame_observer([&](const core::FrameContext& ctx) { analyzer.on_frame(ctx); });
  sim.run(0.0);
  analyzer.finish(sim.world(), sim.ledger());

  EXPECT_EQ(analyzer.windows_evaluated(), 4u);
  // Without completion-based rotation (a live stream never completes), the
  // SNR-greedy matching keeps serving each vehicle's best link: the expected
  // delivery ratio sits near 1/degree, well above zero but below 50%.
  EXPECT_GT(analyzer.delivery_ratio(), 0.12);
  EXPECT_LT(analyzer.delivery_ratio(), 0.6);
  EXPECT_LE(analyzer.max_age_of_information_s(), 0.4 + 1e-9);
}

TEST_F(StreamingEndToEnd, ImpossibleRateIsNeverDelivered) {
  protocols::MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{scenario(), protocol};
  StreamingAnalyzer analyzer{{.rate_mbps = 50000.0, .window_s = 0.1}};
  sim.set_frame_observer([&](const core::FrameContext& ctx) { analyzer.on_frame(ctx); });
  sim.run(0.0);
  analyzer.finish(sim.world(), sim.ledger());
  EXPECT_DOUBLE_EQ(analyzer.delivery_ratio(), 0.0);
  // Links that never met a window age from t = 0.
  EXPECT_NEAR(analyzer.max_age_of_information_s(), 0.4, 1e-6);
}

TEST_F(StreamingEndToEnd, HigherRateLowersDeliveryRatio) {
  auto ratio_for = [&](double rate) {
    protocols::MmV2VProtocol protocol{{}};
    core::OhmSimulation sim{scenario(), protocol};
    StreamingAnalyzer analyzer{{.rate_mbps = rate, .window_s = 0.1}};
    sim.set_frame_observer([&](const core::FrameContext& ctx) { analyzer.on_frame(ctx); });
    sim.run(0.0);
    analyzer.finish(sim.world(), sim.ledger());
    return analyzer.delivery_ratio();
  };
  EXPECT_GE(ratio_for(10.0) + 1e-9, ratio_for(400.0));
}

TEST_F(StreamingEndToEnd, PerVehicleRatiosAreBounded) {
  protocols::MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{scenario(), protocol};
  StreamingAnalyzer analyzer{{.rate_mbps = 20.0, .window_s = 0.1}};
  sim.set_frame_observer([&](const core::FrameContext& ctx) { analyzer.on_frame(ctx); });
  sim.run(0.0);
  analyzer.finish(sim.world(), sim.ledger());
  for (double r : analyzer.per_vehicle_ratio(sim.world().size())) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

}  // namespace
}  // namespace mmv2v::apps
