// Statistical failover invariant (DESIGN.md Section 16): across 200 seeded
// repetitions per control-loss level, turning on the lossless in-range sub-6
// fallback never lowers mean OCR. The fallback can only convert mmWave
// erasures into deliveries — it adds no interference and no contention — so
// mean OCR with the fallback must dominate mean OCR without it at every
// ctrl_loss level (and strictly beat it once erasures are common).
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::mmv2v_factory;

double mean_ocr(const ExperimentConfig& config, const ScenarioConfig& scenario) {
  const auto points = run_density_sweep(config, scenario, mmv2v_factory());
  EXPECT_EQ(points.size(), 1u);
  return points[0].ocr.mean();
}

TEST(NetFailoverStat, Sub6FallbackNeverLowersMeanOcrAtAnyLossLevel) {
  ExperimentConfig config = golden_experiment(/*threads=*/0);
  config.repetitions = 200;  // 200 independent seeds per (loss, config) point
  for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
    ScenarioConfig baseline = golden_scenario();
    baseline.fault.ctrl_loss = loss;
    ScenarioConfig fallback = baseline;
    fallback.net.sub6_enabled = true;
    fallback.net.sub6_loss = 0.0;
    fallback.net.sub6_range_m = 1000.0;  // covers the whole 500 m road
    const double without = mean_ocr(config, baseline);
    const double with = mean_ocr(config, fallback);
    // Means, not per-seed: a single seed can tie (no erasure hit a message
    // that mattered), but the mean must never go the wrong way.
    EXPECT_GE(with + 1e-9, without) << "fallback hurt OCR at ctrl_loss=" << loss;
    if (loss >= 0.3) {
      EXPECT_GT(with, without)
          << "heavy erasure with a lossless fallback must show a recovery gain";
    }
  }
}

}  // namespace
}  // namespace mmv2v::core
