// Control-plane bus unit tests (DESIGN.md Section 16): message-id dedup,
// transport priority/failover ordering, relay selection, and the sub-6
// transport's range gate + independent loss chain. Everything here is
// deterministic — scripted transports pin the policy, real Sub6Transport
// chains pin the fate function.
#include "net/control_plane.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace mmv2v::net {
namespace {

/// Fixed-outcome transport: the policy tests script each rung of the stack.
class ScriptedTransport final : public Transport {
 public:
  ScriptedTransport(TransportId id, bool eligible, fault::CtrlFate fate) noexcept
      : id_(id), eligible_(eligible), fate_(fate) {}
  [[nodiscard]] TransportId id() const noexcept override { return id_; }
  [[nodiscard]] bool eligible(const CtrlMessage&) const override { return eligible_; }
  [[nodiscard]] fault::CtrlFate fate(const CtrlMessage&, std::uint64_t) const override {
    return fate_;
  }

 private:
  TransportId id_;
  bool eligible_;
  fault::CtrlFate fate_;
};

ControlPlane scripted_plane(fault::CtrlFate mmwave, fault::CtrlFate sub6,
                            bool sub6_eligible = true) {
  std::vector<std::unique_ptr<Transport>> stack;
  stack.push_back(
      std::make_unique<ScriptedTransport>(TransportId::kMmWave, true, mmwave));
  stack.push_back(
      std::make_unique<ScriptedTransport>(TransportId::kSub6, sub6_eligible, sub6));
  return ControlPlane{std::move(stack)};
}

CtrlMessage msg(NodeId sender = 3, NodeId receiver = 7,
                fault::CtrlKind kind = fault::CtrlKind::kNegotiation,
                std::uint64_t slot = 2, double distance_m = 50.0) {
  CtrlMessage m;
  m.sender = sender;
  m.receiver = receiver;
  m.kind = kind;
  m.slot = slot;
  m.slots_per_frame = 4;
  m.distance_m = distance_m;
  return m;
}

TEST(MessageId, StableAndSensitiveToEveryEnvelopeField) {
  const CtrlMessage base = msg();
  EXPECT_EQ(message_id(base), message_id(base)) << "same envelope, same id";
  CtrlMessage other = base;
  other.sender = base.sender + 1;
  EXPECT_NE(message_id(base), message_id(other));
  other = base;
  other.receiver = base.receiver + 1;
  EXPECT_NE(message_id(base), message_id(other));
  other = base;
  other.kind = fault::CtrlKind::kSsw;
  EXPECT_NE(message_id(base), message_id(other));
  other = base;
  other.slot = base.slot + 1;
  EXPECT_NE(message_id(base), message_id(other));
  // Distance is geometry, not identity: copies on different transports (or a
  // retransmission after the pair moved) are still the same message.
  other = base;
  other.distance_m = 999.0;
  EXPECT_EQ(message_id(base), message_id(other));
}

TEST(ControlPlane, PrimarySuccessWinsAndLaterCopiesAreDuplicates) {
  const ControlPlane plane =
      scripted_plane(fault::CtrlFate::kDelivered, fault::CtrlFate::kDelivered);
  const Delivery d = plane.send(msg());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.via, TransportId::kMmWave);
  EXPECT_EQ(d.mmwave, fault::CtrlFate::kDelivered);
  EXPECT_EQ(d.duplicates, 1u) << "the sub-6 copy also arrived and was deduped";
  EXPECT_FALSE(d.recovered());
}

TEST(ControlPlane, Sub6RecoversALostPrimaryAndKeepsItsFate) {
  const ControlPlane plane =
      scripted_plane(fault::CtrlFate::kLost, fault::CtrlFate::kDelivered);
  const Delivery d = plane.send(msg());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.via, TransportId::kSub6);
  EXPECT_TRUE(d.recovered());
  EXPECT_EQ(d.duplicates, 0u);
  // Primary fate survives for fault.* accounting even though the message got
  // through: the mmWave loss still happened.
  EXPECT_EQ(d.mmwave, fault::CtrlFate::kLost);
}

TEST(ControlPlane, CorruptedPrimaryAlsoFailsOver) {
  const ControlPlane plane =
      scripted_plane(fault::CtrlFate::kCorrupted, fault::CtrlFate::kDelivered);
  const Delivery d = plane.send(msg());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.via, TransportId::kSub6);
  EXPECT_EQ(d.mmwave, fault::CtrlFate::kCorrupted);
}

TEST(ControlPlane, AllTransportsFailingMeansLost) {
  const ControlPlane plane =
      scripted_plane(fault::CtrlFate::kLost, fault::CtrlFate::kLost);
  const Delivery d = plane.send(msg());
  EXPECT_FALSE(d.delivered);
  EXPECT_FALSE(d.recovered());
  EXPECT_EQ(d.duplicates, 0u);
}

TEST(ControlPlane, IneligibleTransportCarriesNoCopy) {
  // Out-of-range sub-6: the lost primary has no rescuer.
  const ControlPlane plane = scripted_plane(
      fault::CtrlFate::kLost, fault::CtrlFate::kDelivered, /*sub6_eligible=*/false);
  const Delivery d = plane.send(msg());
  EXPECT_FALSE(d.delivered);
  // And a delivered primary collects no phantom duplicate from it either.
  const ControlPlane ok = scripted_plane(
      fault::CtrlFate::kDelivered, fault::CtrlFate::kDelivered, /*sub6_eligible=*/false);
  EXPECT_EQ(ok.send(msg()).duplicates, 0u);
}

TEST(ControlPlane, SendNotedDedupsRepeatsWithinAFrameAndResetsAcrossFrames) {
  ControlPlane plane =
      scripted_plane(fault::CtrlFate::kLost, fault::CtrlFate::kDelivered);
  plane.begin_frame(0);
  const Delivery first = plane.send_noted(msg());
  EXPECT_TRUE(first.delivered);
  EXPECT_FALSE(first.deduped);
  EXPECT_EQ(plane.frame_stats().sub6_recoveries, 1u);

  // Retransmission of the same id inside the frame: dropped, not recounted.
  const Delivery repeat = plane.send_noted(msg());
  EXPECT_TRUE(repeat.deduped);
  EXPECT_EQ(plane.frame_stats().sub6_recoveries, 1u);
  EXPECT_EQ(plane.frame_stats().duplicates_dropped, 1u);

  // A different slot is a different message.
  EXPECT_FALSE(plane.send_noted(msg(3, 7, fault::CtrlKind::kNegotiation, 3)).deduped);

  // The dedup window and the stats are per-frame.
  plane.begin_frame(1);
  EXPECT_EQ(plane.frame_stats().total(), 0u);
  EXPECT_FALSE(plane.send_noted(msg()).deduped);
}

TEST(SelectRelay, MaximizesBottleneckQualityAndBreaksTiesTowardLowId) {
  const std::vector<RelayCandidate> candidates{
      {.id = 5, .quality = 2.0}, {.id = 9, .quality = 3.0}, {.id = 3, .quality = 3.0}};
  EXPECT_EQ(select_relay(candidates), NodeId{3});
  EXPECT_EQ(select_relay(std::span<const RelayCandidate>{}), std::nullopt);
  const std::vector<RelayCandidate> one{{.id = 11, .quality = -4.0}};
  EXPECT_EQ(select_relay(one), NodeId{11});
}

TEST(ControlPlane, RelayViaIsGatedOnTheKnob) {
  const std::vector<RelayCandidate> candidates{{.id = 4, .quality = 1.0}};
  NetParams off;
  const ControlPlane disabled{off, /*seed=*/1, /*fault=*/nullptr};
  EXPECT_EQ(disabled.relay_via(candidates), std::nullopt);
  EXPECT_FALSE(disabled.active());

  NetParams on;
  on.relay_enabled = true;
  const ControlPlane enabled{on, /*seed=*/1, /*fault=*/nullptr};
  EXPECT_TRUE(enabled.active());
  EXPECT_EQ(enabled.relay_via(candidates), NodeId{4});
}

TEST(ControlPlane, StandardStackRespectsTheSub6RangeGate) {
  NetParams params;
  params.sub6_enabled = true;
  params.sub6_range_m = 100.0;
  params.sub6_loss = 0.0;
  const ControlPlane plane{params, /*seed=*/7, /*fault=*/nullptr};
  // Null fault plan = ideal mmWave, so an in-range lossless sub-6 copy shows
  // up exactly as one duplicate — and an out-of-range one not at all.
  EXPECT_EQ(plane.send(msg(3, 7, fault::CtrlKind::kSsw, 0, /*distance_m=*/50.0)).duplicates,
            1u);
  EXPECT_EQ(plane.send(msg(3, 7, fault::CtrlKind::kSsw, 0, /*distance_m=*/150.0)).duplicates,
            0u);
}

TEST(Sub6Transport, FateIsDeterministicLosslessAtZeroAndLossyInBetween) {
  const Sub6Transport lossless{250.0, 0.0, 42};
  const Sub6Transport lossy{250.0, 0.4, 42};
  const Sub6Transport lossy_again{250.0, 0.4, 42};
  const Sub6Transport other_seed{250.0, 0.4, 43};
  int losses = 0;
  bool seed_diverged = false;
  for (std::uint64_t frame = 0; frame < 400; ++frame) {
    const CtrlMessage m = msg(3, 7, fault::CtrlKind::kSsw, frame % 4);
    EXPECT_EQ(lossless.fate(m, frame), fault::CtrlFate::kDelivered);
    const fault::CtrlFate fate = lossy.fate(m, frame);
    EXPECT_EQ(fate, lossy_again.fate(m, frame)) << "same seed, same fate";
    if (fate != fault::CtrlFate::kDelivered) ++losses;
    seed_diverged = seed_diverged || fate != other_seed.fate(m, frame);
  }
  EXPECT_GT(losses, 0) << "a 40% chain that never loses is broken";
  EXPECT_LT(losses, 400) << "a 40% chain that always loses is broken";
  EXPECT_TRUE(seed_diverged) << "chains must key off the plane seed";
}

}  // namespace
}  // namespace mmv2v::net
