#include <gtest/gtest.h>

#include "net/mac_address.hpp"
#include "net/neighbor_table.hpp"

namespace mmv2v::net {
namespace {

TEST(MacAddress, Masks48Bits) {
  const MacAddress m{0xffff'ffff'ffff'ffffULL};
  EXPECT_EQ(m.value(), 0xffff'ffff'ffffULL);
}

TEST(MacAddress, ForVehicleIsInjective) {
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(MacAddress::for_vehicle(i).value() & 0xffffffULL, i);
    EXPECT_NE(MacAddress::for_vehicle(i), MacAddress::for_vehicle(i + 1));
  }
}

TEST(MacAddress, TotalOrderMatchesValue) {
  EXPECT_LT(MacAddress{1}, MacAddress{2});
  EXPECT_GT(MacAddress::for_vehicle(9), MacAddress::for_vehicle(3));
  EXPECT_EQ(MacAddress{5}, MacAddress{5});
}

TEST(MacAddress, ToStringFormat) {
  EXPECT_EQ(MacAddress{0x0200'5e00'002aULL}.to_string(), "02:00:5e:00:00:2a");
  EXPECT_EQ(MacAddress{0}.to_string(), "00:00:00:00:00:00");
}

NeighborEntry entry(NodeId id, std::uint64_t frame, double snr = 10.0, int sector = 0) {
  NeighborEntry e;
  e.id = id;
  e.mac = MacAddress::for_vehicle(id);
  e.sector_toward = sector;
  e.snr_db = snr;
  e.last_seen_frame = frame;
  return e;
}

TEST(NeighborTable, ObserveInsertsAndFinds) {
  NeighborTable t{5};
  t.observe(entry(3, 0));
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  ASSERT_TRUE(t.find(3).has_value());
  EXPECT_EQ(t.find(3)->id, 3u);
  EXPECT_FALSE(t.find(4).has_value());
  EXPECT_EQ(t.size(), 1u);
}

TEST(NeighborTable, NewerFrameReplaces) {
  NeighborTable t{5};
  t.observe(entry(3, 0, 10.0, 1));
  t.observe(entry(3, 2, 5.0, 7));
  EXPECT_EQ(t.find(3)->sector_toward, 7);
  EXPECT_DOUBLE_EQ(t.find(3)->snr_db, 5.0);
}

TEST(NeighborTable, SameFrameKeepsStrongest) {
  // Within one frame a main-lobe rendezvous must beat a side-lobe sighting
  // regardless of arrival order.
  NeighborTable t{5};
  t.observe(entry(3, 1, 4.0, 9));    // side lobe first
  t.observe(entry(3, 1, 20.0, 2));   // rendezvous
  t.observe(entry(3, 1, -3.0, 11));  // another side lobe after
  EXPECT_EQ(t.find(3)->sector_toward, 2);
  EXPECT_DOUBLE_EQ(t.find(3)->snr_db, 20.0);
}

TEST(NeighborTable, OlderFrameNeverDowngrades) {
  NeighborTable t{5};
  t.observe(entry(3, 5, 10.0, 1));
  t.observe(entry(3, 4, 50.0, 2));  // stale, even if stronger
  EXPECT_EQ(t.find(3)->sector_toward, 1);
}

TEST(NeighborTable, AgeOutDropsStaleEntries) {
  NeighborTable t{2};
  t.observe(entry(1, 0));
  t.observe(entry(2, 3));
  t.age_out(5);  // entry 1 is 5 frames old (> 2), entry 2 is 2 frames old
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.contains(2));
}

TEST(NeighborTable, AgeOutIgnoresEntriesFromFutureFrames) {
  // Regression: age_out computed `current_frame - last_seen_frame` unsigned,
  // so an entry stamped ahead of the caller's frame (replayed trace, frame
  // counter reset) wrapped to ~2^64 and was evicted as infinitely stale.
  NeighborTable t{2};
  t.observe(entry(1, 10));
  t.age_out(7);  // caller's clock is behind the entry's stamp
  EXPECT_TRUE(t.contains(1)) << "future-stamped entry must not wrap to stale";
  t.age_out(10);
  EXPECT_TRUE(t.contains(1));
  t.age_out(13);  // now genuinely 3 > 2 frames old
  EXPECT_FALSE(t.contains(1));
}

TEST(NeighborTable, EntriesSeenInFiltersByFrame) {
  NeighborTable t{10};
  t.observe(entry(1, 3));
  t.observe(entry(2, 4));
  t.observe(entry(3, 4));
  EXPECT_EQ(t.entries_seen_in(4).size(), 2u);
  EXPECT_EQ(t.entries_seen_in(3).size(), 1u);
  EXPECT_EQ(t.entries().size(), 3u);
}

TEST(NeighborTable, IterationIsAscendingByNodeId) {
  // The slab keeps entries sorted by NodeId, making iteration order a defined
  // part of the contract (the golden digest depends on it: DCM candidate
  // enumeration feeds reservoir sampling in table order).
  NeighborTable t{10};
  const NodeId ids[] = {7, 2, 9, 0, 5, 3};
  std::uint64_t frame = 0;
  for (NodeId id : ids) t.observe(entry(id, frame++));
  NodeId prev = 0;
  bool first = true;
  t.for_each([&](const NeighborEntry& e) {
    if (!first) EXPECT_LT(prev, e.id);
    prev = e.id;
    first = false;
  });
  EXPECT_FALSE(first);
  for (std::size_t i = 1; i < t.entries().size(); ++i) {
    EXPECT_LT(t.entries()[i - 1].id, t.entries()[i].id);
  }
  // Order survives erase + age_out compaction.
  t.erase(5);
  t.age_out(20);  // evicts ids seen at frames 0..9 older than 10 frames
  prev = 0;
  first = true;
  for (const NeighborEntry& e : t.entries()) {
    if (!first) EXPECT_LT(prev, e.id);
    prev = e.id;
    first = false;
  }
}

TEST(NeighborTable, AgeOutIsAllocationFree) {
  // age_out compacts the slab in place; steady-state frames must not touch
  // the heap (the zero-alloc pipeline test covers the full frame loop, this
  // pins the table primitive directly). Capacity may only shrink via clear().
  NeighborTable t{2};
  for (NodeId id = 0; id < 64; ++id) t.observe(entry(id, id));
  const std::size_t cap = t.capacity();
  const NeighborEntry* data = t.entries().data();
  t.age_out(40);  // evicts everything seen before frame 38
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.entries().data(), data);
  EXPECT_EQ(t.size(), 26u);  // frames 38..63 survive
  t.age_out(100);  // evicts the rest
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.entries().data(), data);
  EXPECT_EQ(t.size(), 0u);
}

TEST(NeighborTable, EraseAndClear) {
  NeighborTable t{5};
  t.observe(entry(1, 0));
  t.observe(entry(2, 0));
  t.erase(1);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace mmv2v::net
