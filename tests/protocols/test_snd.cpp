#include "protocols/mmv2v/snd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

class SndTest : public ::testing::Test {
 protected:
  SndTest() : world_(mmv2v::testing::small_scenario(15.0, 101), 101) {}

  SndParams params_with_range() const {
    SndParams p;
    p.max_neighbor_range_m = world_.config().comm_range_m;
    return p;
  }

  double discovery_ratio(const std::vector<net::NeighborTable>& tables) const {
    std::size_t found = 0;
    std::size_t total = 0;
    for (net::NodeId i = 0; i < world_.size(); ++i) {
      for (net::NodeId j : world_.ground_truth_neighbors(i)) {
        ++total;
        if (tables[i].contains(j)) ++found;
      }
    }
    return total == 0 ? 0.0 : static_cast<double>(found) / static_cast<double>(total);
  }

  core::World world_;
};

TEST_F(SndTest, ValidatesParameters) {
  SndParams p;
  p.sectors = 23;
  EXPECT_THROW(SyncNeighborDiscovery{p}, std::invalid_argument) << "odd sectors";
  p = SndParams{};
  p.p_tx = 0.0;
  EXPECT_THROW(SyncNeighborDiscovery{p}, std::invalid_argument);
  p = SndParams{};
  p.rounds = 0;
  EXPECT_THROW(SyncNeighborDiscovery{p}, std::invalid_argument);
}

TEST_F(SndTest, OppositeRolesDiscoverInOneRound) {
  // Force a deterministic split: all even ids transmit first. Every pair
  // with opposite first-sweep roles must discover each other (role swap
  // covers the other direction): with capture idealized away the sweep
  // rendezvous is a geometric guarantee.
  SndParams p = params_with_range();
  p.ideal_capture = true;
  const SyncNeighborDiscovery snd{p};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  std::vector<bool> tx_first(world_.size());
  for (std::size_t i = 0; i < world_.size(); ++i) tx_first[i] = (i % 2 == 0);
  snd.run_round(world_, 0, tx_first, tables);

  std::size_t opposite_pairs = 0;
  std::size_t discovered = 0;
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (net::NodeId j : world_.ground_truth_neighbors(i)) {
      if (tx_first[i] == tx_first[j]) continue;
      ++opposite_pairs;
      if (tables[i].contains(j)) ++discovered;
    }
  }
  ASSERT_GT(opposite_pairs, 0u);
  EXPECT_GT(static_cast<double>(discovered) / static_cast<double>(opposite_pairs), 0.99);
}

TEST_F(SndTest, CaptureCollisionsLoseOnlyAMinority) {
  // Same setup with the physical capture model: collinear same-sector
  // transmitters can collide, but the large majority still gets through.
  const SyncNeighborDiscovery snd{params_with_range()};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  std::vector<bool> tx_first(world_.size());
  for (std::size_t i = 0; i < world_.size(); ++i) tx_first[i] = (i % 2 == 0);
  snd.run_round(world_, 0, tx_first, tables);
  std::size_t opposite_pairs = 0;
  std::size_t discovered = 0;
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (net::NodeId j : world_.ground_truth_neighbors(i)) {
      if (tx_first[i] == tx_first[j]) continue;
      ++opposite_pairs;
      if (tables[i].contains(j)) ++discovered;
    }
  }
  ASSERT_GT(opposite_pairs, 0u);
  EXPECT_GT(static_cast<double>(discovered) / static_cast<double>(opposite_pairs), 0.7);
}

TEST_F(SndTest, SameRolesNeverDiscover) {
  const SyncNeighborDiscovery snd{params_with_range()};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  // Everyone transmits first, everyone receives second: no Tx/Rx overlap
  // between same-role pairs within the round.
  std::vector<bool> all_tx(world_.size(), true);
  snd.run_round(world_, 0, all_tx, tables);
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    EXPECT_EQ(tables[i].size(), 0u) << "identical roles cannot rendezvous";
  }
}

TEST_F(SndTest, DiscoveryRatioApproachesTheorem2) {
  const SndParams p = params_with_range();
  double prev_ratio = 0.0;
  for (int k = 1; k <= 4; ++k) {
    SndParams pk = p;
    pk.rounds = k;
    const SyncNeighborDiscovery snd{pk};
    mmv2v::RunningStats ratio;
    for (int rep = 0; rep < 5; ++rep) {
      std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
      Xoshiro256pp rng{static_cast<std::uint64_t>(1000 + rep * 13 + k)};
      snd.run(world_, 0, tables, rng);
      ratio.add(discovery_ratio(tables));
    }
    const double expected = 1.0 - std::pow(0.5, k);
    EXPECT_GT(ratio.mean(), prev_ratio) << "more rounds discover more";
    EXPECT_LT(ratio.mean(), expected + 0.05) << "cannot beat the combinatorial bound";
    EXPECT_GT(ratio.mean(), expected - 0.18) << "PHY losses stay moderate";
    prev_ratio = ratio.mean();
  }
}

TEST_F(SndTest, RecordedSectorPointsTowardNeighbor) {
  const SyncNeighborDiscovery snd{params_with_range()};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  Xoshiro256pp rng{99};
  snd.run(world_, 0, tables, rng);
  const geom::SectorGrid grid{snd.params().sectors};
  std::size_t checked = 0;
  std::size_t correct = 0;
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (const net::NeighborEntry& e : tables[i].entries()) {
      const core::PairGeom* p = world_.pair(i, e.id);
      if (p == nullptr) continue;
      ++checked;
      if (e.sector_toward == grid.sector_of(p->bearing_rad)) ++correct;
    }
  }
  ASSERT_GT(checked, 0u);
  // The main-lobe rendezvous records the true sector; only rare side-lobe-
  // only discoveries may disagree.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.9);
}

TEST_F(SndTest, RangeAdmissionFiltersFarNeighbors) {
  SndParams near = params_with_range();
  near.max_neighbor_range_m = 40.0;
  const SyncNeighborDiscovery snd{near};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  Xoshiro256pp rng{7};
  snd.run(world_, 0, tables, rng);
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (const net::NeighborEntry& e : tables[i].entries()) {
      const core::PairGeom* p = world_.pair(i, e.id);
      ASSERT_NE(p, nullptr);
      EXPECT_LE(p->distance_m, 40.0);
    }
  }
}

TEST_F(SndTest, SnrAdmissionFiltersWeakLinks) {
  SndParams p = params_with_range();
  p.admission_snr_db = 15.0;
  const SyncNeighborDiscovery snd{p};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  Xoshiro256pp rng{7};
  snd.run(world_, 0, tables, rng);
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (const net::NeighborEntry& e : tables[i].entries()) {
      EXPECT_GE(e.snr_db, 15.0);
    }
  }
}

TEST_F(SndTest, IdealCaptureFindsAtLeastAsMany) {
  SndParams real = params_with_range();
  SndParams ideal = real;
  ideal.ideal_capture = true;
  mmv2v::RunningStats real_ratio, ideal_ratio;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<net::NeighborTable> t1(world_.size(), net::NeighborTable{5});
    std::vector<net::NeighborTable> t2(world_.size(), net::NeighborTable{5});
    Xoshiro256pp rng1{static_cast<std::uint64_t>(rep + 1)};
    Xoshiro256pp rng2{static_cast<std::uint64_t>(rep + 1)};
    SyncNeighborDiscovery{real}.run(world_, 0, t1, rng1);
    SyncNeighborDiscovery{ideal}.run(world_, 0, t2, rng2);
    real_ratio.add(discovery_ratio(t1));
    ideal_ratio.add(discovery_ratio(t2));
  }
  EXPECT_GE(ideal_ratio.mean() + 1e-9, real_ratio.mean());
}

TEST_F(SndTest, AdmissionSnrHelperTracksLinkBudget) {
  const SyncNeighborDiscovery snd{params_with_range()};
  const auto& channel = world_.channel();
  const double at40 = admission_snr_for_range(channel, snd.tx_pattern(), snd.rx_pattern(),
                                              40.0);
  const double at80 = admission_snr_for_range(channel, snd.tx_pattern(), snd.rx_pattern(),
                                              80.0);
  EXPECT_GT(at40, at80) << "closer range = higher admission SNR";
  // The margin parameter shifts the threshold one-for-one.
  EXPECT_NEAR(admission_snr_for_range(channel, snd.tx_pattern(), snd.rx_pattern(), 80.0,
                                      0.0) -
                  at80,
              6.0, 1e-9);
  // Path-loss delta over a distance doubling: a*10*log10(2) plus atmospheric.
  const double expected_delta =
      channel.params().pathloss.exponent * 10.0 * std::log10(2.0) +
      channel.params().pathloss.atmospheric_db_per_km * 0.04;
  EXPECT_NEAR(at40 - at80, expected_delta, 1e-9);
}

TEST_F(SndTest, ObservationsStampedWithFrame) {
  const SyncNeighborDiscovery snd{params_with_range()};
  std::vector<net::NeighborTable> tables(world_.size(), net::NeighborTable{5});
  Xoshiro256pp rng{55};
  snd.run(world_, 42, tables, rng);
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (const net::NeighborEntry& e : tables[i].entries()) {
      EXPECT_EQ(e.last_seen_frame, 42u);
    }
  }
}

}  // namespace
}  // namespace mmv2v::protocols
