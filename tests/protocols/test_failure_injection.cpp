// Failure-injection and degenerate-configuration tests: the stack must stay
// well-behaved (no crashes, sane metrics) when the radio environment or the
// configuration is hostile.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "protocols/ad/ieee80211ad.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/rop/rop.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

TEST(FailureInjection, ExtremeBlockagePenaltyKillsAllBlockedLinks) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(20.0, 3);
  s.channel.pathloss.per_blocker_db = 100.0;  // any blocker = dead link
  s.horizon_s = 0.2;
  MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  // Ground-truth neighbors are LOS by definition, so progress still happens.
  EXPECT_GE(sim.final_metrics().mean_atp(), 0.0);
}

TEST(FailureInjection, HugePathLossMakesRadioSilent) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 5);
  s.channel.pathloss.intercept_db = 250.0;  // nothing decodes, ever
  s.horizon_s = 0.1;
  MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_DOUBLE_EQ(sim.final_metrics().mean_atp(), 0.0);
  EXPECT_DOUBLE_EQ(sim.final_metrics().mean_ocr(), 0.0);
}

TEST(FailureInjection, TinyTxPowerDegradesGracefully) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 7);
  s.horizon_s = 0.2;
  core::ScenarioConfig weak = s;
  weak.channel.tx_power_dbm = -20.0;

  MmV2VProtocol p1{{}};
  core::OhmSimulation strong_sim{s, p1};
  strong_sim.run(0.0);
  MmV2VProtocol p2{{}};
  core::OhmSimulation weak_sim{weak, p2};
  weak_sim.run(0.0);
  EXPECT_LE(weak_sim.final_metrics().mean_atp(),
            strong_sim.final_metrics().mean_atp() + 1e-9);
}

TEST(FailureInjection, SingleVehicleWorldIsQuietButAlive) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(1.0, 9);
  s.traffic.bidirectional = false;
  s.traffic.lanes_per_direction = 1;
  s.traffic.road_length_m = 500.0;
  s.horizon_s = 0.1;
  MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_TRUE(sim.final_metrics().per_vehicle.empty()) << "no neighbors anywhere";
}

TEST(FailureInjection, ZeroPcpProbabilityMeansNoPbss) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 11);
  s.horizon_s = 0.1;
  AdParams params;
  params.pcp_probability = 0.0;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_EQ(protocol.pbss_count(), 0u);
  EXPECT_DOUBLE_EQ(sim.final_metrics().mean_atp(), 0.0);
}

TEST(FailureInjection, AllPcpMeansNoMembers) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 13);
  s.horizon_s = 0.1;
  AdParams params;
  params.pcp_probability = 1.0;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  for (const auto& group : protocol.pbss_members()) {
    EXPECT_EQ(group.size(), 1u) << "PCP-only PBSSs cannot have members";
  }
  EXPECT_DOUBLE_EQ(sim.final_metrics().mean_atp(), 0.0);
}

TEST(FailureInjection, OverfullControlPlaneIsRejectedUpFront) {
  // K and M so large that no UDT time remains must throw at construction of
  // the schedule, not corrupt the frame.
  MmV2VParams params;
  params.snd.rounds = 20;   // 15.4 ms of sweeps
  params.dcm.slots = 300;   // + 9 ms of negotiation > 20 ms frame
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = mmv2v::testing::small_scenario(10.0, 15);
  s.horizon_s = 0.1;
  core::OhmSimulation sim{s, protocol};
  EXPECT_THROW(sim.run(0.0), std::invalid_argument);
}

TEST(FailureInjection, RopSurvivesEmptyDiscovery) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 17);
  s.channel.pathloss.intercept_db = 250.0;  // discovery always fails
  s.horizon_s = 0.1;
  RopProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_TRUE(protocol.current_matching().empty());
}

TEST(FailureInjection, NarrowInterferenceRangeStillRuns) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 19);
  s.interference_range_m = s.comm_range_m;  // cache barely covers comm range
  s.horizon_s = 0.2;
  MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_GT(sim.final_metrics().mean_atp(), 0.0);
}

TEST(FailureInjection, HugeTaskNeverCompletesButProgresses) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 21);
  s.task.rate_mbps = 1e6;  // absurd demand
  s.horizon_s = 0.2;
  MmV2VProtocol protocol{{}};
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_DOUBLE_EQ(sim.final_metrics().mean_ocr(), 0.0);
  EXPECT_GT(sim.final_metrics().mean_atp(), 0.0);
  EXPECT_LT(sim.final_metrics().mean_atp(), 0.05);
}

}  // namespace
}  // namespace mmv2v::protocols
