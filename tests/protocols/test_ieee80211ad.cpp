// 802.11ad baseline mechanics: PCP tenure, persistent association, A-BFT
// contention, and DTI time accounting.
#include "protocols/ad/ieee80211ad.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/simulation.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

core::ScenarioConfig ad_scenario(std::uint64_t seed, double horizon = 0.4) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, seed);
  s.horizon_s = horizon;
  s.task.rate_mbps = 5000.0;  // keep pairs busy so membership persists
  return s;
}

TEST(AdMechanics, MembershipPersistsAcrossFrames) {
  AdParams params;
  params.seed = 61;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{ad_scenario(61), protocol};

  std::vector<std::vector<std::vector<net::NodeId>>> groups_per_frame;
  sim.set_frame_observer([&](const core::FrameContext&) {
    groups_per_frame.push_back(protocol.pbss_members());
  });
  sim.run(0.0);

  // Count how often a (member -> PCP) association survives to the next
  // frame; with 15-frame tenures the survival rate must be high.
  std::size_t survived = 0, present = 0;
  for (std::size_t f = 1; f < groups_per_frame.size(); ++f) {
    std::set<std::pair<net::NodeId, net::NodeId>> prev;
    for (const auto& g : groups_per_frame[f - 1]) {
      for (std::size_t m = 1; m < g.size(); ++m) prev.insert({g[m], g[0]});
    }
    std::set<std::pair<net::NodeId, net::NodeId>> cur;
    for (const auto& g : groups_per_frame[f]) {
      for (std::size_t m = 1; m < g.size(); ++m) cur.insert({g[m], g[0]});
    }
    for (const auto& assoc : prev) {
      ++present;
      if (cur.count(assoc) != 0) ++survived;
    }
  }
  ASSERT_GT(present, 0u);
  EXPECT_GT(static_cast<double>(survived) / static_cast<double>(present), 0.6);
}

TEST(AdMechanics, PcpsDisbandAfterTenure) {
  AdParams params;
  params.seed = 67;
  params.pcp_tenure_frames = 3;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{ad_scenario(67), protocol};

  // A PCP may be re-elected right after its tenure expires (p = 0.3), so
  // streaks can chain; instead assert real churn: the set of PCPs changes
  // over the run and many distinct vehicles get the role.
  std::set<net::NodeId> ever_pcp;
  std::set<net::NodeId> prev;
  int changes = 0;
  sim.set_frame_observer([&](const core::FrameContext&) {
    std::set<net::NodeId> pcps;
    for (const auto& g : protocol.pbss_members()) pcps.insert(g.front());
    ever_pcp.insert(pcps.begin(), pcps.end());
    if (!prev.empty() && pcps != prev) ++changes;
    prev = std::move(pcps);
  });
  sim.run(0.0);
  EXPECT_GT(changes, 2) << "3-frame tenures must churn the PCP set";
  EXPECT_GT(ever_pcp.size(), prev.size()) << "more vehicles must have held the role than hold it now";
}

TEST(AdMechanics, AbftCollisionsOccurUnderContention) {
  AdParams params;
  params.seed = 71;
  params.abft_slots = 1;  // pathological: any two contenders collide
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{ad_scenario(71, 0.2), protocol};
  sim.run(0.0);
  EXPECT_GT(protocol.abft_collisions(), 0u)
      << "with a single A-BFT slot, contention must cause collisions";
}

TEST(AdMechanics, MoreAbftSlotsReduceCollisions) {
  auto collisions_with = [](int slots) {
    AdParams params;
    params.seed = 73;
    params.abft_slots = slots;
    Ieee80211adProtocol protocol{params};
    core::OhmSimulation sim{ad_scenario(73, 0.3), protocol};
    sim.run(0.0);
    return protocol.abft_collisions();
  };
  EXPECT_GE(collisions_with(1), collisions_with(8));
}

TEST(AdMechanics, AssociationCountIsConsistent) {
  AdParams params;
  params.seed = 79;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{ad_scenario(79), protocol};
  sim.set_frame_observer([&](const core::FrameContext&) {
    std::size_t members = 0;
    for (const auto& g : protocol.pbss_members()) members += g.size() - 1;
    ASSERT_EQ(members, protocol.associated_count());
  });
  sim.run(0.0);
}

TEST(AdMechanics, ServicePeriodsLeaveRoomForData) {
  AdParams params;
  params.seed = 83;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{ad_scenario(83), protocol};
  sim.run(0.0);
  // BTI (0.384 ms) + A-BFT (0.5 ms) leaves ~19.1 ms of DTI.
  EXPECT_NEAR(protocol.udt_start_offset_s(), 0.884e-3, 1e-6);
  EXPECT_GT(sim.final_metrics().mean_atp(), 0.0);
}

}  // namespace
}  // namespace mmv2v::protocols
