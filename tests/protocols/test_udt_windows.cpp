// UDT engine time-accounting: elementary-interval cutting across multiple
// service-period-style windows (the 802.11ad DTI pattern) must credit bits
// exactly proportionally to active time and never across window borders.
#include <gtest/gtest.h>

#include "protocols/udt_engine.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

class UdtWindowTest : public ::testing::Test {
 protected:
  UdtWindowTest()
      : world_(mmv2v::testing::small_scenario(15.0, 601), 601),
        narrow_(phy::BeamPattern::make(geom::deg_to_rad(3.0))) {
    // Pick one well-connected pair and precompute its beams.
    for (net::NodeId i = 0; i < world_.size() && a_ == b_; ++i) {
      const auto n = world_.ground_truth_neighbors(i);
      if (!n.empty()) {
        a_ = i;
        b_ = n.front();
      }
    }
    const core::PairGeom* g = world_.pair(a_, b_);
    bearing_ab_ = g->bearing_rad;
    bearing_ba_ = geom::wrap_two_pi(g->bearing_rad + geom::kPi);
  }

  DirectedTransfer transfer(double start, double end) const {
    return DirectedTransfer{a_,          b_,  start, end, bearing_ab_, bearing_ba_,
                            &narrow_, &narrow_};
  }

  core::World world_;
  phy::BeamPattern narrow_;
  net::NodeId a_ = 0;
  net::NodeId b_ = 0;
  double bearing_ab_ = 0.0;
  double bearing_ba_ = 0.0;
};

TEST_F(UdtWindowTest, DisjointWindowsAccumulateExactly) {
  // Two 2 ms windows vs one 4 ms window must deliver the same bits (same
  // link, no interference, static world).
  core::TransferLedger split_ledger{1e12};
  UdtEngine split;
  split.add(transfer(0.002, 0.004));
  split.add(transfer(0.010, 0.012));
  core::FrameContext split_ctx{world_, split_ledger, 0, 0.0};
  split.step(split_ctx, 0.0, 0.020);

  core::TransferLedger joint_ledger{1e12};
  UdtEngine joint;
  joint.add(transfer(0.004, 0.008));
  core::FrameContext joint_ctx{world_, joint_ledger, 0, 0.0};
  joint.step(joint_ctx, 0.0, 0.020);

  EXPECT_NEAR(split_ledger.delivered(a_, b_), joint_ledger.delivered(a_, b_), 1.0);
}

TEST_F(UdtWindowTest, StepSplitAtArbitraryPointsIsExact) {
  // Integrating [0, 20ms) in one call vs many unaligned sub-calls must agree.
  core::TransferLedger one_ledger{1e12};
  UdtEngine engine;
  engine.add(transfer(0.003, 0.017));
  core::FrameContext one_ctx{world_, one_ledger, 0, 0.0};
  engine.step(one_ctx, 0.0, 0.020);

  core::TransferLedger many_ledger{1e12};
  core::FrameContext many_ctx{world_, many_ledger, 0, 0.0};
  double t = 0.0;
  for (const double cut : {0.0017, 0.0049, 0.0081, 0.0130, 0.0168, 0.020}) {
    engine.step(many_ctx, t, cut);
    t = cut;
  }
  EXPECT_NEAR(one_ledger.delivered(a_, b_), many_ledger.delivered(a_, b_), 1.0);
}

TEST_F(UdtWindowTest, ZeroLengthStepIsNoop) {
  core::TransferLedger ledger{1e12};
  UdtEngine engine;
  engine.add(transfer(0.0, 0.010));
  core::FrameContext ctx{world_, ledger, 0, 0.0};
  EXPECT_DOUBLE_EQ(engine.step(ctx, 0.005, 0.005), 0.0);
  EXPECT_DOUBLE_EQ(engine.step(ctx, 0.007, 0.006), 0.0) << "reversed interval";
}

TEST_F(UdtWindowTest, BitsScaleLinearlyWithWindowLength) {
  const auto bits_for = [&](double len) {
    core::TransferLedger ledger{1e15};
    UdtEngine engine;
    engine.add(transfer(0.0, len));
    core::FrameContext ctx{world_, ledger, 0, 0.0};
    engine.step(ctx, 0.0, 0.020);
    return ledger.delivered(a_, b_);
  };
  const double one_ms = bits_for(0.001);
  EXPECT_NEAR(bits_for(0.004), 4.0 * one_ms, one_ms * 0.001);
  EXPECT_NEAR(bits_for(0.016), 16.0 * one_ms, one_ms * 0.001);
}

TEST_F(UdtWindowTest, SequentialSpsDoNotInterfere) {
  // Two pairs in back-to-back windows (like 802.11ad SPs in one PBSS) see no
  // mutual interference: each achieves its isolated rate.
  net::NodeId c = world_.size(), d = world_.size();
  for (net::NodeId i = 0; i < world_.size() && c == world_.size(); ++i) {
    if (i == a_ || i == b_) continue;
    for (net::NodeId j : world_.ground_truth_neighbors(i)) {
      if (j != a_ && j != b_) {
        c = i;
        d = j;
        break;
      }
    }
  }
  if (c == world_.size()) GTEST_SKIP() << "no second pair available";
  const core::PairGeom* g_cd = world_.pair(c, d);

  const auto run = [&](bool sequential) {
    core::TransferLedger ledger{1e15};
    UdtEngine engine;
    engine.add(transfer(0.0, 0.008));
    const double start2 = sequential ? 0.008 : 0.0;
    engine.add(DirectedTransfer{c, d, start2, start2 + 0.008, g_cd->bearing_rad,
                                geom::wrap_two_pi(g_cd->bearing_rad + geom::kPi), &narrow_,
                                &narrow_});
    core::FrameContext ctx{world_, ledger, 0, 0.0};
    engine.step(ctx, 0.0, 0.020);
    return ledger.delivered(a_, b_);
  };
  EXPECT_GE(run(true) + 1.0, run(false))
      << "serialized windows must do at least as well as concurrent ones";
}

}  // namespace
}  // namespace mmv2v::protocols
