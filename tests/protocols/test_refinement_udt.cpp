#include <gtest/gtest.h>

#include "protocols/mmv2v/refinement.hpp"
#include "protocols/udt_engine.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

class RefinementTest : public ::testing::Test {
 protected:
  RefinementTest() : world_(mmv2v::testing::small_scenario(15.0, 201), 201) {}

  /// First in-range LOS pair in the world.
  std::pair<net::NodeId, net::NodeId> some_pair() const {
    for (net::NodeId i = 0; i < world_.size(); ++i) {
      const auto n = world_.ground_truth_neighbors(i);
      if (!n.empty()) return {i, n.front()};
    }
    throw std::runtime_error{"no pair in test world"};
  }

  core::World world_;
  geom::SectorGrid grid_{24};
};

TEST_F(RefinementTest, ParameterValidation) {
  EXPECT_THROW(BeamRefinement({-1.0, 24, 20.0}), std::invalid_argument);
  EXPECT_THROW(BeamRefinement({3.0, 0, 20.0}), std::invalid_argument);
}

TEST_F(RefinementTest, BeamsPerSideMatchesPaperFormula) {
  // s = floor(theta / theta_min) + 1; theta = 15 deg, theta_min = 3 deg.
  const BeamRefinement r{{3.0, 24, 20.0}};
  EXPECT_EQ(r.beams_per_side(), 6);
  const BeamRefinement r2{{4.0, 24, 20.0}};
  EXPECT_EQ(r2.beams_per_side(), 4);  // floor(15/4)+1
}

TEST_F(RefinementTest, CandidatesSpanTheSector) {
  const BeamRefinement r{{3.0, 24, 20.0}};
  const auto c = r.candidate_bearings(4);  // sector 4: [60, 75) deg
  ASSERT_EQ(c.size(), 6u);
  for (const double b : c) {
    EXPECT_GE(b, geom::deg_to_rad(60.0) - 1e-9);
    EXPECT_LT(b, geom::deg_to_rad(75.0));
  }
}

TEST_F(RefinementTest, CrossSearchPointsAtPartner) {
  const BeamRefinement refinement{{3.0, 24, 20.0}};
  const phy::BeamPattern wide = phy::BeamPattern::make(geom::deg_to_rad(30.0));
  const auto [a, b] = some_pair();
  const core::PairGeom* ab = world_.pair(a, b);
  ASSERT_NE(ab, nullptr);
  const int sector_a = grid_.sector_of(ab->bearing_rad);
  const int sector_b =
      grid_.sector_of(geom::wrap_two_pi(ab->bearing_rad + geom::kPi));

  const auto result = refinement.refine(world_, a, sector_a, b, sector_b, wide);
  // The chosen narrow beams must point within half a candidate step of the
  // true bearings.
  const double step = grid_.width() / refinement.beams_per_side();
  EXPECT_LE(geom::angular_distance(result.bearing_a, ab->bearing_rad), step);
  EXPECT_LE(geom::angular_distance(result.bearing_b,
                                   geom::wrap_two_pi(ab->bearing_rad + geom::kPi)),
            step);
  EXPECT_GT(result.final_rx_watts, 0.0);
}

TEST_F(RefinementTest, WrongSectorYieldsWeakLink) {
  const BeamRefinement refinement{{3.0, 24, 20.0}};
  const phy::BeamPattern wide = phy::BeamPattern::make(geom::deg_to_rad(30.0));
  const auto [a, b] = some_pair();
  const core::PairGeom* ab = world_.pair(a, b);
  const int true_sector = grid_.sector_of(ab->bearing_rad);
  const int true_back =
      grid_.sector_of(geom::wrap_two_pi(ab->bearing_rad + geom::kPi));

  const auto good = refinement.refine(world_, a, true_sector, b, true_back, wide);
  const auto bad = refinement.refine(world_, a, grid_.opposite(true_sector), b,
                                     true_back, wide);
  // Searching the wrong sector leaves only side-lobe gain on that end: with
  // a 20 dB side-lobe floor the loss approaches 100x.
  EXPECT_GT(good.final_rx_watts, bad.final_rx_watts * 50.0);
}

TEST_F(RefinementTest, OutOfRangePairFallsBackToSectorCenters) {
  const BeamRefinement refinement{{3.0, 24, 20.0}};
  const phy::BeamPattern wide = phy::BeamPattern::make(geom::deg_to_rad(30.0));
  // Use a pair guaranteed out of cache range: vehicle 0 against an id beyond
  // the network size is not possible; instead find two far vehicles.
  net::NodeId far_a = 0, far_b = 0;
  for (net::NodeId i = 0; i < world_.size() && far_b == 0; ++i) {
    for (net::NodeId j = 0; j < world_.size(); ++j) {
      if (i != j && world_.pair(i, j) == nullptr) {
        far_a = i;
        far_b = j;
        break;
      }
    }
  }
  if (far_a == far_b) GTEST_SKIP() << "all vehicles within cache range";
  const auto r = refinement.refine(world_, far_a, 3, far_b, 15, wide);
  EXPECT_DOUBLE_EQ(r.final_rx_watts, 0.0);
  EXPECT_NEAR(r.bearing_a, grid_.center(3), 1e-12);
  EXPECT_NEAR(r.bearing_b, grid_.center(15), 1e-12);
}

class UdtEngineTest : public ::testing::Test {
 protected:
  UdtEngineTest()
      : world_(mmv2v::testing::small_scenario(15.0, 301), 301),
        ledger_(1e9),
        narrow_(phy::BeamPattern::make(geom::deg_to_rad(3.0))) {}

  /// Build a refined TDD session for the first available pair.
  std::pair<net::NodeId, net::NodeId> add_refined_pair(UdtEngine& udt, double start,
                                                       double end) {
    for (net::NodeId i = 0; i < world_.size(); ++i) {
      const auto n = world_.ground_truth_neighbors(i);
      if (n.empty()) continue;
      const net::NodeId j = n.front();
      const core::PairGeom* ij = world_.pair(i, j);
      const double bearing_ij = ij->bearing_rad;
      const double bearing_ji = geom::wrap_two_pi(bearing_ij + geom::kPi);
      udt.add_tdd_pair(i, bearing_ij, &narrow_, j, bearing_ji, &narrow_, start, end);
      return {i, j};
    }
    throw std::runtime_error{"no pair"};
  }

  core::World world_;
  core::TransferLedger ledger_;
  phy::BeamPattern narrow_;
};

TEST_F(UdtEngineTest, TddPairSplitsWindowInHalves) {
  UdtEngine udt;
  udt.add_tdd_pair(1, 0.0, &narrow_, 2, geom::kPi, &narrow_, 0.004, 0.020);
  ASSERT_EQ(udt.transfers().size(), 2u);
  EXPECT_DOUBLE_EQ(udt.transfers()[0].window_start_s, 0.004);
  EXPECT_DOUBLE_EQ(udt.transfers()[0].window_end_s, 0.012);
  EXPECT_DOUBLE_EQ(udt.transfers()[1].window_start_s, 0.012);
  EXPECT_DOUBLE_EQ(udt.transfers()[1].window_end_s, 0.020);
  EXPECT_EQ(udt.transfers()[0].tx, 1u);
  EXPECT_EQ(udt.transfers()[1].tx, 2u);
}

TEST_F(UdtEngineTest, TransfersBitsBothWays) {
  UdtEngine udt;
  const auto [a, b] = add_refined_pair(udt, 0.004, 0.020);
  core::FrameContext ctx{world_, ledger_, 0, 0.0};
  udt.step(ctx, 0.004, 0.020);
  EXPECT_GT(ledger_.delivered(a, b), 0.0);
  EXPECT_GT(ledger_.delivered(b, a), 0.0);
  // An aligned 3-degree link at <80 m sustains gigabit rates: 8 ms per
  // direction should move several Mb.
  EXPECT_GT(ledger_.delivered(a, b), 5e6);
}

TEST_F(UdtEngineTest, StepOutsideWindowMovesNothing) {
  UdtEngine udt;
  add_refined_pair(udt, 0.010, 0.020);
  core::FrameContext ctx{world_, ledger_, 0, 0.0};
  EXPECT_DOUBLE_EQ(udt.step(ctx, 0.0, 0.009), 0.0);
}

TEST_F(UdtEngineTest, PartialOverlapScalesBits) {
  UdtEngine udt1, udt2;
  const auto [a, b] = add_refined_pair(udt1, 0.0, 0.010);
  add_refined_pair(udt2, 0.0, 0.010);
  core::FrameContext ctx{world_, ledger_, 0, 0.0};
  const double full = udt1.step(ctx, 0.0, 0.005);  // first half only
  core::TransferLedger ledger2{1e9};
  core::FrameContext ctx2{world_, ledger2, 0, 0.0};
  const double half = udt2.step(ctx2, 0.0, 0.0025);
  EXPECT_NEAR(half, full / 2.0, full * 0.01);
  (void)a;
  (void)b;
}

TEST_F(UdtEngineTest, StopsWhenDirectionComplete) {
  core::TransferLedger tiny{1e3};  // 1 kb unit: completes instantly
  UdtEngine udt;
  const auto [a, b] = add_refined_pair(udt, 0.0, 0.016);
  core::FrameContext ctx{world_, tiny, 0, 0.0};
  udt.step(ctx, 0.0, 0.016);
  EXPECT_TRUE(tiny.pair_complete(a, b));
  // A second step credits nothing: both directions are complete.
  EXPECT_DOUBLE_EQ(udt.step(ctx, 0.0, 0.016), 0.0);
}

TEST_F(UdtEngineTest, EmptyEngineIsNoop) {
  UdtEngine udt;
  core::FrameContext ctx{world_, ledger_, 0, 0.0};
  EXPECT_DOUBLE_EQ(udt.step(ctx, 0.0, 0.020), 0.0);
  udt.clear();
  EXPECT_TRUE(udt.transfers().empty());
}

TEST_F(UdtEngineTest, ConcurrentSessionsInterfere) {
  // Two co-channel sessions: per-session throughput with a neighbor session
  // active must not exceed the isolated throughput.
  UdtEngine solo;
  const auto [a, b] = add_refined_pair(solo, 0.0, 0.016);
  core::TransferLedger solo_ledger{1e12};
  core::FrameContext solo_ctx{world_, solo_ledger, 0, 0.0};
  solo.step(solo_ctx, 0.0, 0.016);

  UdtEngine both;
  add_refined_pair(both, 0.0, 0.016);
  // Second pair: find another disjoint pair.
  net::NodeId c = world_.size(), d = world_.size();
  for (net::NodeId i = 0; i < world_.size() && c == world_.size(); ++i) {
    if (i == a || i == b) continue;
    for (net::NodeId j : world_.ground_truth_neighbors(i)) {
      if (j != a && j != b) {
        c = i;
        d = j;
        break;
      }
    }
  }
  if (c == world_.size()) GTEST_SKIP() << "no second pair";
  const core::PairGeom* cd = world_.pair(c, d);
  both.add_tdd_pair(c, cd->bearing_rad, &narrow_, d,
                    geom::wrap_two_pi(cd->bearing_rad + geom::kPi), &narrow_, 0.0, 0.016);
  core::TransferLedger both_ledger{1e12};
  core::FrameContext both_ctx{world_, both_ledger, 0, 0.0};
  both.step(both_ctx, 0.0, 0.016);

  EXPECT_LE(both_ledger.delivered(a, b), solo_ledger.delivered(a, b) + 1e-6);
}

}  // namespace
}  // namespace mmv2v::protocols
