// Tests for the extension features beyond the paper's core design:
// clock-synchronization error in SND and the persistent-matching variant.
#include <gtest/gtest.h>

#include <set>

#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/mmv2v/snd.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

double discovery_ratio(const core::World& world, const SndParams& params,
                       std::uint64_t seed) {
  const SyncNeighborDiscovery snd{params};
  std::vector<net::NeighborTable> tables(world.size(), net::NeighborTable{5});
  Xoshiro256pp rng{seed};
  snd.run(world, 0, tables, rng);
  std::size_t found = 0, total = 0;
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (net::NodeId j : world.ground_truth_neighbors(i)) {
      ++total;
      if (tables[i].contains(j)) ++found;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(found) / static_cast<double>(total);
}

class ClockErrorTest : public ::testing::Test {
 protected:
  ClockErrorTest() : world_(mmv2v::testing::small_scenario(18.0, 401), 401) {}
  SndParams params(double sigma_s) const {
    SndParams p;
    p.max_neighbor_range_m = world_.config().comm_range_m;
    p.clock_sigma_s = sigma_s;
    return p;
  }
  core::World world_;
};

TEST_F(ClockErrorTest, GpsGradeSyncIsHarmless) {
  // 100 ns (the paper's GPS budget) vs perfect sync: identical discovery.
  const double perfect = discovery_ratio(world_, params(0.0), 9);
  const double gps = discovery_ratio(world_, params(100e-9), 9);
  EXPECT_DOUBLE_EQ(gps, perfect);
}

TEST_F(ClockErrorTest, DwellScaleErrorsDegradeDiscovery) {
  const double perfect = discovery_ratio(world_, params(0.0), 9);
  const double bad = discovery_ratio(world_, params(16e-6), 9);
  EXPECT_LT(bad, perfect * 0.75);
}

TEST_F(ClockErrorTest, HugeErrorsKillMostDiscovery) {
  const double huge = discovery_ratio(world_, params(200e-6), 9);
  EXPECT_LT(huge, 0.15);
}

TEST_F(ClockErrorTest, OffsetsAreStableAndSeeded) {
  const SyncNeighborDiscovery a{params(1e-6)};
  const SyncNeighborDiscovery b{params(1e-6)};
  for (net::NodeId v = 0; v < 20; ++v) {
    EXPECT_DOUBLE_EQ(a.clock_offset_s(v), b.clock_offset_s(v));
  }
  SndParams reseeded = params(1e-6);
  reseeded.clock_seed = 99;
  const SyncNeighborDiscovery c{reseeded};
  bool any_diff = false;
  for (net::NodeId v = 0; v < 20; ++v) {
    any_diff = any_diff || a.clock_offset_s(v) != c.clock_offset_s(v);
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ClockErrorTest, ZeroSigmaMeansZeroOffsets) {
  const SyncNeighborDiscovery snd{params(0.0)};
  for (net::NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(snd.clock_offset_s(v), 0.0);
  }
}

class PersistentMatchingTest : public ::testing::Test {
 protected:
  static core::ScenarioConfig scenario(std::uint64_t seed) {
    core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, seed);
    s.horizon_s = 0.4;
    s.task.rate_mbps = 5000.0;  // large task: pairs stay incomplete
    return s;
  }
};

TEST_F(PersistentMatchingTest, PairsSurviveAcrossFrames) {
  MmV2VParams params;
  params.persistent_matching = true;
  params.seed = 5;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{scenario(5), protocol};

  std::vector<std::set<std::pair<net::NodeId, net::NodeId>>> matchings;
  sim.set_frame_observer([&](const core::FrameContext&) {
    matchings.emplace_back(protocol.current_matching().begin(),
                           protocol.current_matching().end());
  });
  sim.run(0.0);

  // With an undeliverable task every matched pair should persist: frame f+1's
  // matching must contain (almost) every pair of frame f that stayed in range.
  ASSERT_GE(matchings.size(), 3u);
  std::size_t kept = 0, had = 0;
  for (std::size_t f = 1; f < matchings.size(); ++f) {
    for (const auto& pair : matchings[f - 1]) {
      ++had;
      if (matchings[f].count(pair) != 0) ++kept;
    }
  }
  ASSERT_GT(had, 0u);
  EXPECT_GT(static_cast<double>(kept) / static_cast<double>(had), 0.95);
}

TEST_F(PersistentMatchingTest, PerFrameModeReshufflesPairs) {
  MmV2VParams params;
  params.persistent_matching = false;
  params.seed = 5;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{scenario(5), protocol};
  std::vector<std::set<std::pair<net::NodeId, net::NodeId>>> matchings;
  sim.set_frame_observer([&](const core::FrameContext&) {
    matchings.emplace_back(protocol.current_matching().begin(),
                           protocol.current_matching().end());
  });
  sim.run(0.0);
  // Some churn must exist (SNR-greedy keeps the best pairs, but the 0.5^K
  // discovery misses reshuffle the rest).
  std::size_t changed = 0;
  for (std::size_t f = 1; f < matchings.size(); ++f) {
    if (matchings[f] != matchings[f - 1]) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST_F(PersistentMatchingTest, MatchingStaysValidWithCarryOver) {
  MmV2VParams params;
  params.persistent_matching = true;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{scenario(7), protocol};
  sim.set_frame_observer([&](const core::FrameContext&) {
    std::set<net::NodeId> seen;
    for (const auto& [a, b] : protocol.current_matching()) {
      ASSERT_TRUE(seen.insert(a).second) << "vehicle matched twice";
      ASSERT_TRUE(seen.insert(b).second) << "vehicle matched twice";
    }
  });
  sim.run(0.0);
}

}  // namespace
}  // namespace mmv2v::protocols
