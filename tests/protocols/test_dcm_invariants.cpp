// Randomized DCM invariant harness (DESIGN.md Section 8): over many random
// neighbor graphs, the distributed matching must always produce a valid
// matching, every adoption must strictly improve (or establish) both sides'
// candidates at adoption time, the observability counters must stay
// consistent with each other, and the TDD sessions scheduled for the
// matching must respect half-duplex.
//
// Note the invariant is per-adoption, not per-slot-end: a vehicle can
// legitimately end a slot worse off than it started when its partner was
// displaced mid-slot. DcmSlotStats::adoptions_detail records the quality on
// both sides at the instant of adoption, which is where the paper's
// improvement rule actually applies.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "geom/angles.hpp"
#include "phy/antenna.hpp"
#include "protocols/mmv2v/dcm.hpp"
#include "protocols/udt_engine.hpp"

namespace mmv2v::protocols {
namespace {

struct RandomGraph {
  std::vector<std::vector<net::NeighborEntry>> neighbors;
  std::vector<net::MacAddress> macs;
};

/// Symmetric random graph: each edge exists with probability `p_edge` and
/// both endpoints measure the same SNR (the paper's reciprocal channel).
RandomGraph random_graph(std::size_t n, double p_edge, Xoshiro256pp& rng) {
  RandomGraph g;
  g.neighbors.resize(n);
  g.macs.resize(n);
  for (std::size_t i = 0; i < n; ++i) g.macs[i] = net::MacAddress::for_vehicle(i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!rng.bernoulli(p_edge)) continue;
      const double snr = rng.uniform(0.0, 40.0);
      net::NeighborEntry e;
      e.snr_db = snr;
      e.id = j;
      e.mac = g.macs[j];
      g.neighbors[i].push_back(e);
      e.id = i;
      e.mac = g.macs[i];
      g.neighbors[j].push_back(e);
    }
  }
  return g;
}

TEST(DcmInvariants, RandomGraphsProduceValidImprovingMatchings) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Xoshiro256pp rng{seed};
    const std::size_t n = 4 + rng.uniform_int(21);  // 4..24 vehicles
    const double p_edge = rng.uniform(0.2, 0.9);
    const RandomGraph g = random_graph(n, p_edge, rng);

    ConsensualMatching dcm{{40, 7}};
    dcm.reset(n);
    core::PhaseStats frame_stats;
    dcm.run_all(g.neighbors, g.macs, nullptr, rng, nullptr, &frame_stats);
    const DcmSlotStats& stats = frame_stats.dcm;

    // Valid matching: no vehicle appears in two pairs, pairs are ordered,
    // and the candidate relation is mutual.
    std::set<net::NodeId> seen;
    for (const auto& [a, b] : dcm.matched_pairs()) {
      EXPECT_LT(a, b) << "seed " << seed;
      EXPECT_TRUE(seen.insert(a).second) << "vehicle " << a << " in two pairs, seed " << seed;
      EXPECT_TRUE(seen.insert(b).second) << "vehicle " << b << " in two pairs, seed " << seed;
    }
    const auto& st = dcm.candidates();
    for (std::size_t i = 0; i < n; ++i) {
      if (st[i].candidate.has_value()) {
        ASSERT_LT(*st[i].candidate, n) << "seed " << seed;
        EXPECT_EQ(st[*st[i].candidate].candidate, i) << "seed " << seed;
      }
    }

    // Adoption rule: at adoption time the new link strictly improves (or
    // establishes) both sides' candidates. A relink — re-negotiating the
    // vehicle's own current candidate to heal a possibly-stale link — is the
    // one adoption allowed without strict improvement.
    ASSERT_EQ(stats.adoptions, stats.adoptions_detail.size()) << "seed " << seed;
    for (const DcmAdoption& ad : stats.adoptions_detail) {
      EXPECT_NE(ad.a, ad.b) << "seed " << seed;
      if (ad.had_prev_a && !ad.relink_a) {
        EXPECT_GT(ad.q_a, ad.prev_q_a) << "non-improving adoption, seed " << seed;
      }
      if (ad.had_prev_b && !ad.relink_b) {
        EXPECT_GT(ad.q_b, ad.prev_q_b) << "non-improving adoption, seed " << seed;
      }
    }

    // Counter consistency: a mutual pick resolves to exactly one of
    // {exchange failure, conflict, adoption, already-linked no-op}; every
    // pick of a mutual pair was a proposal; a displaced candidate belongs
    // to some adoption (at most one per side).
    EXPECT_LE(stats.adoptions + stats.conflicts + stats.exchange_failures, stats.mutual_pairs)
        << "seed " << seed;
    EXPECT_LE(2 * stats.mutual_pairs, stats.proposals) << "seed " << seed;
    EXPECT_LE(stats.drops, 2 * stats.adoptions) << "seed " << seed;
    EXPECT_EQ(stats.exchange_failures, 0u) << "ideal channel, seed " << seed;

    // The surviving matching must be non-empty whenever anything was adopted
    // and the graph has at least one edge both sides kept.
    if (stats.adoptions > 0) {
      EXPECT_FALSE(dcm.matched_pairs().empty()) << "seed " << seed;
    }
  }
}

TEST(DcmInvariants, LossyControlNeverProducesAsymmetricMatches) {
  // The paper's DCM assumes the drop-inform in the second half-slot always
  // arrives. Under injected loss it can vanish, leaving the displaced side
  // with a stale candidate — which must only ever cost capacity, never
  // produce an asymmetric *match*: matched_pairs() is built from mutual
  // candidate links, every per-adoption invariant still holds, and a vehicle
  // whose stale candidate resolves by relink does so without faking an
  // improvement.
  std::uint64_t total_fault_drops = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Xoshiro256pp rng{seed};
    const std::size_t n = 4 + rng.uniform_int(21);
    const double p_edge = rng.uniform(0.2, 0.9);
    const RandomGraph g = random_graph(n, p_edge, rng);

    fault::FaultParams fp;
    fp.ctrl_loss = rng.uniform(0.05, 0.6);
    fp.burst_len = 1.0 + rng.uniform(0.0, 4.0);
    fault::FaultPlan fault{fp, seed ^ 0xfa17ULL};
    fault.begin_frame(0, n, 20e-3);

    ConsensualMatching dcm{{40, 7}};
    dcm.reset(n);
    core::PhaseStats frame_stats;
    dcm.run_all(g.neighbors, g.macs, nullptr, rng, nullptr, &frame_stats, &fault);
    const DcmSlotStats& stats = frame_stats.dcm;

    // Matched pairs are mutual and disjoint even when informs were dropped.
    std::set<net::NodeId> seen;
    for (const auto& [a, b] : dcm.matched_pairs()) {
      EXPECT_LT(a, b) << "seed " << seed;
      EXPECT_TRUE(seen.insert(a).second) << "vehicle " << a << " in two pairs, seed " << seed;
      EXPECT_TRUE(seen.insert(b).second) << "vehicle " << b << " in two pairs, seed " << seed;
    }
    // Stale one-way candidate links may survive a lost inform; a matched
    // vehicle's link, however, must be mutual.
    const auto& st = dcm.candidates();
    for (const auto& [a, b] : dcm.matched_pairs()) {
      ASSERT_TRUE(st[a].candidate.has_value()) << "seed " << seed;
      ASSERT_TRUE(st[b].candidate.has_value()) << "seed " << seed;
      EXPECT_EQ(*st[a].candidate, b) << "seed " << seed;
      EXPECT_EQ(*st[b].candidate, a) << "seed " << seed;
    }

    ASSERT_EQ(stats.adoptions, stats.adoptions_detail.size()) << "seed " << seed;
    for (const DcmAdoption& ad : stats.adoptions_detail) {
      if (ad.had_prev_a && !ad.relink_a) {
        EXPECT_GT(ad.q_a, ad.prev_q_a) << "non-improving adoption, seed " << seed;
      }
      if (ad.had_prev_b && !ad.relink_b) {
        EXPECT_GT(ad.q_b, ad.prev_q_b) << "non-improving adoption, seed " << seed;
      }
    }
    // Lost negotiations surface as exchange failures, never as silent
    // successes: every negotiation drop failed some mutual pair's exchange.
    EXPECT_LE(stats.exchange_failures, stats.mutual_pairs) << "seed " << seed;
    total_fault_drops += fault.frame_stats().negotiation_drops +
                         fault.frame_stats().inform_drops;
  }
  // Across 200 seeds of >= 5% loss the injector certainly fired; a zero here
  // means the fault hook fell out of the slot loop.
  EXPECT_GT(total_fault_drops, 0u);
}

TEST(DcmInvariants, TddSessionsRespectHalfDuplex) {
  const phy::BeamPattern beam = phy::BeamPattern::make(geom::deg_to_rad(12.0));
  for (std::uint64_t seed = 500; seed < 560; ++seed) {
    Xoshiro256pp rng{seed};
    const std::size_t n = 6 + rng.uniform_int(15);
    const RandomGraph g = random_graph(n, 0.6, rng);
    ConsensualMatching dcm{{40, 7}};
    dcm.reset(n);
    dcm.run_all(g.neighbors, g.macs, nullptr, rng);

    UdtEngine engine;
    for (const auto& [a, b] : dcm.matched_pairs()) {
      const double bearing = rng.uniform(0.0, 2.0 * geom::kPi);
      engine.add_tdd_pair(a, bearing, &beam, b, geom::wrap_two_pi(bearing + geom::kPi),
                          &beam, 0.0052, 0.020);
    }

    // Half-duplex: no vehicle's transmit window may overlap a window in
    // which it receives (TDD splits the session; matched pairs are disjoint
    // so cross-pair overlap cannot involve the same vehicle).
    const auto overlaps = [](const DirectedTransfer& x, const DirectedTransfer& y) {
      return x.window_start_s < y.window_end_s && y.window_start_s < x.window_end_s;
    };
    const auto& transfers = engine.transfers();
    for (const DirectedTransfer& tx_half : transfers) {
      EXPECT_LT(tx_half.window_start_s, tx_half.window_end_s) << "seed " << seed;
      for (const DirectedTransfer& other : transfers) {
        if (&tx_half == &other) continue;
        const bool same_vehicle = tx_half.tx == other.tx || tx_half.tx == other.rx ||
                                  tx_half.rx == other.tx || tx_half.rx == other.rx;
        if (same_vehicle) {
          EXPECT_FALSE(overlaps(tx_half, other))
              << "vehicle radiates and listens simultaneously, seed " << seed;
        }
      }
    }
    EXPECT_EQ(transfers.size(), 2 * dcm.matched_pairs().size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mmv2v::protocols
