// Parameterized SND sweeps: Theorem 2's discovery-ratio law over (p, K) and
// structural invariants over sector counts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "protocols/mmv2v/snd.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

core::World& shared_world() {
  static core::World world{mmv2v::testing::small_scenario(18.0, 777), 777};
  return world;
}

double measured_ratio(const SndParams& params, int reps, std::uint64_t seed) {
  const core::World& world = shared_world();
  const SyncNeighborDiscovery snd{params};
  mmv2v::RunningStats ratio;
  for (int r = 0; r < reps; ++r) {
    std::vector<net::NeighborTable> tables(world.size(), net::NeighborTable{5});
    Xoshiro256pp rng{seed + static_cast<std::uint64_t>(r) * 101};
    snd.run(world, 0, tables, rng);
    std::size_t found = 0, total = 0;
    for (net::NodeId i = 0; i < world.size(); ++i) {
      for (net::NodeId j : world.ground_truth_neighbors(i)) {
        ++total;
        if (tables[i].contains(j)) ++found;
      }
    }
    if (total > 0) ratio.add(static_cast<double>(found) / static_cast<double>(total));
  }
  return ratio.mean();
}

SndParams ideal_params() {
  SndParams p;
  p.ideal_capture = true;  // isolate the combinatorial role-coin effect
  p.max_neighbor_range_m = shared_world().config().comm_range_m;
  return p;
}

// --- Theorem 2(a): ratio ~ 1 - [p^2 + (1-p)^2]^K over K ---------------------

class DiscoveryRoundsLaw : public ::testing::TestWithParam<int> {};

TEST_P(DiscoveryRoundsLaw, MatchesTheorem2) {
  SndParams p = ideal_params();
  p.rounds = GetParam();
  const double expected = 1.0 - std::pow(0.5, GetParam());
  const double measured = measured_ratio(p, 6, 50 + static_cast<std::uint64_t>(GetParam()));
  EXPECT_NEAR(measured, expected, 0.06) << "K=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(KSweep, DiscoveryRoundsLaw, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) { return "K" + std::to_string(info.param); });

// --- Theorem 2(b): p = 0.5 maximizes single-round discovery -----------------

class RoleProbabilityLaw : public ::testing::TestWithParam<double> {};

TEST_P(RoleProbabilityLaw, MatchesExpectedRatio) {
  SndParams params = ideal_params();
  params.rounds = 1;
  params.p_tx = GetParam();
  const double p = GetParam();
  const double expected = 1.0 - (p * p + (1.0 - p) * (1.0 - p));
  const double measured =
      measured_ratio(params, 8, 900 + static_cast<std::uint64_t>(p * 100));
  EXPECT_NEAR(measured, expected, 0.07) << "p=" << p;
}

TEST_P(RoleProbabilityLaw, NeverBeatsHalf) {
  SndParams params = ideal_params();
  params.rounds = 1;
  params.p_tx = GetParam();
  SndParams half = params;
  half.p_tx = 0.5;
  const double at_p = measured_ratio(params, 8, 1300);
  const double at_half = measured_ratio(half, 8, 1300);
  EXPECT_LE(at_p, at_half + 0.05);
}

INSTANTIATE_TEST_SUITE_P(PSweep, RoleProbabilityLaw,
                         ::testing::Values(0.2, 0.35, 0.5, 0.65, 0.8),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(info.param * 100));
                         });

// --- Sector-count invariants -------------------------------------------------

class SectorCountProperties : public ::testing::TestWithParam<int> {};

TEST_P(SectorCountProperties, DiscoveryWorksForAnyEvenSectorCount) {
  SndParams p = ideal_params();
  p.sectors = GetParam();
  // Keep beams matched to the sector pitch so the rendezvous stays covered.
  p.alpha_deg = 2.0 * 360.0 / GetParam();
  p.beta_deg = 0.8 * 360.0 / GetParam();
  const double measured = measured_ratio(p, 3, 2000 + static_cast<std::uint64_t>(GetParam()));
  EXPECT_GT(measured, 0.70) << "S=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SSweep, SectorCountProperties, ::testing::Values(8, 12, 16, 24, 36),
                         [](const auto& info) { return "S" + std::to_string(info.param); });

}  // namespace
}  // namespace mmv2v::protocols
