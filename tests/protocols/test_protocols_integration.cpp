// End-to-end protocol tests: each OHM protocol driven by OhmSimulation on a
// small world, checking progress, invariants, and the paper's qualitative
// ordering on a coarse scale.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "protocols/ad/ieee80211ad.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/rop/rop.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

core::ScenarioConfig integration_scenario(std::uint64_t seed) {
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, seed);
  s.horizon_s = 0.4;  // 20 frames
  return s;
}

TEST(MmV2VIntegration, MakesProgressAndRespectsInvariants) {
  MmV2VParams params;
  params.seed = 1;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(1), protocol};
  sim.run(0.0);

  const auto& m = sim.final_metrics();
  EXPECT_GT(m.mean_atp(), 0.05) << "data must flow";
  EXPECT_GT(sim.frames_run(), 0u);
  // Matching of the last frame is a valid matching.
  std::set<net::NodeId> seen;
  for (const auto& [a, b] : protocol.current_matching()) {
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
  }
}

TEST(MmV2VIntegration, ControlOverheadMatchesSchedule) {
  MmV2VParams params;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(2), protocol};
  sim.run(0.0);
  // K=3, M=40, S=24: SND 2.304 ms + DCM 1.2 ms + refinement ~0.21 ms.
  EXPECT_NEAR(protocol.control_overhead_s(), 3.7e-3, 0.3e-3);
  EXPECT_LT(protocol.udt_start_offset_s(), 5e-3) << "paper: control < 5 ms";
}

TEST(MmV2VIntegration, CompletedNeighborsAreNotRematched) {
  MmV2VParams params;
  params.seed = 3;
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = integration_scenario(3);
  s.task.rate_mbps = 1.0;  // trivially small task: completes in one frame
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  // With a trivial task nearly everything completes.
  EXPECT_GT(sim.final_metrics().mean_ocr(), 0.8);
  // DCM skipped completed pairs at match time, so a small task leaves most
  // of the network with nothing left to schedule: the final matching must be
  // far smaller than the first-frame matching would be (~size/2 pairs).
  EXPECT_LT(protocol.current_matching().size(), sim.world().size() / 4);
}

TEST(MmV2VIntegration, DeterministicGivenSeeds) {
  auto run = [] {
    MmV2VParams params;
    params.seed = 7;
    MmV2VProtocol protocol{params};
    core::OhmSimulation sim{integration_scenario(7), protocol};
    sim.run(0.0);
    return sim.final_metrics().mean_atp();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(RopIntegration, RunsAndLagsMmV2V) {
  RopParams rop_params;
  rop_params.seed = 11;
  RopProtocol rop{rop_params};
  core::OhmSimulation rop_sim{integration_scenario(11), rop};
  rop_sim.run(0.0);

  MmV2VParams mm_params;
  mm_params.seed = 11;
  MmV2VProtocol mm{mm_params};
  core::OhmSimulation mm_sim{integration_scenario(11), mm};
  mm_sim.run(0.0);

  EXPECT_GE(rop_sim.final_metrics().mean_atp(), 0.0);
  EXPECT_GT(mm_sim.final_metrics().mean_atp(), rop_sim.final_metrics().mean_atp())
      << "coordinated discovery must beat the random baseline";
}

TEST(RopIntegration, MatchingIsValid) {
  RopParams params;
  params.seed = 13;
  RopProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(13), protocol};
  sim.run(0.0);
  std::set<net::NodeId> seen;
  for (const auto& [a, b] : protocol.current_matching()) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
  }
}

TEST(AdIntegration, FormsPbssAndMovesData) {
  AdParams params;
  params.seed = 17;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(17), protocol};
  sim.run(0.0);
  EXPECT_GT(protocol.pbss_count(), 0u) << "with p=0.3 some PCPs must exist";
  EXPECT_GT(sim.final_metrics().mean_atp(), 0.0);
}

TEST(AdIntegration, PbssMembershipIsDisjoint) {
  AdParams params;
  params.seed = 19;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(19), protocol};
  sim.run(0.0);
  std::set<net::NodeId> seen;
  for (const auto& group : protocol.pbss_members()) {
    EXPECT_FALSE(group.empty());
    for (net::NodeId v : group) {
      EXPECT_TRUE(seen.insert(v).second) << "vehicle in two PBSSs";
    }
  }
}

TEST(AdIntegration, DtiStartsAfterBtiAndAbft) {
  AdParams params;
  Ieee80211adProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(23), protocol};
  sim.run(0.0);
  // BTI: 24 * 16 us = 0.384 ms; A-BFT 0.5 ms.
  EXPECT_NEAR(protocol.udt_start_offset_s(), 0.884e-3, 1e-6);
}

TEST(Simulation, SamplesAtRequestedInterval) {
  MmV2VParams params;
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = integration_scenario(29);
  s.horizon_s = 0.3;
  core::OhmSimulation sim{s, protocol};
  sim.run(0.1);
  ASSERT_GE(sim.samples().size(), 3u);
  EXPECT_NEAR(sim.samples()[0].time_s, 0.1, 1e-9);
  EXPECT_NEAR(sim.samples().back().time_s, 0.3, 1e-9);
}

TEST(Simulation, AtpNeverDecreasesOverSamples) {
  MmV2VParams params;
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = integration_scenario(31);
  s.horizon_s = 0.4;
  core::OhmSimulation sim{s, protocol};
  sim.run(0.1);
  // The ledger only accumulates; with mild topology churn mean ATP should be
  // (weakly) increasing up to small neighborhood-composition noise.
  for (std::size_t i = 1; i < sim.samples().size(); ++i) {
    EXPECT_GE(sim.samples()[i].metrics.mean_atp(),
              sim.samples()[i - 1].metrics.mean_atp() - 0.05);
  }
}

TEST(Simulation, ThrowsOnMisalignedFrameAndTick) {
  MmV2VParams params;
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = integration_scenario(37);
  s.timing.mobility_tick_s = 3e-3;  // does not divide 20 ms
  EXPECT_THROW((core::OhmSimulation{s, protocol}), std::invalid_argument);
}

TEST(Simulation, FinalMetricsRequiresRun) {
  MmV2VParams params;
  MmV2VProtocol protocol{params};
  core::OhmSimulation sim{integration_scenario(41), protocol};
  EXPECT_THROW((void)sim.final_metrics(), std::logic_error);
}

}  // namespace
}  // namespace mmv2v::protocols
