// Parameterized DCM properties over the CNS modulus C and network size:
// mutuality, matching validity, and approximate maximality.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <tuple>

#include "protocols/mmv2v/dcm.hpp"

namespace mmv2v::protocols {
namespace {

struct DcmCase {
  int modulus_c;
  std::size_t vehicles;
};

class DcmProperties : public ::testing::TestWithParam<DcmCase> {
 protected:
  /// Geometric-ish random graph: i and j are neighbors iff |i-j| <= 3.
  std::vector<std::vector<net::NeighborEntry>> band_graph(std::size_t n) const {
    std::vector<std::vector<net::NeighborEntry>> lists(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || (i > j ? i - j : j - i) > 3) continue;
        net::NeighborEntry e;
        e.id = j;
        e.mac = net::MacAddress::for_vehicle(j);
        e.snr_db = 10.0 + static_cast<double>((i * 31 + j * 17) % 23);
        lists[i].push_back(e);
      }
    }
    return lists;
  }

  std::vector<net::MacAddress> macs(std::size_t n) const {
    std::vector<net::MacAddress> m(n);
    for (std::size_t i = 0; i < n; ++i) m[i] = net::MacAddress::for_vehicle(i);
    return m;
  }
};

TEST_P(DcmProperties, CandidatesAreMutualAfterEverySlot) {
  const auto [c, n] = GetParam();
  ConsensualMatching dcm{{40, c}};
  dcm.reset(n);
  const auto lists = band_graph(n);
  const auto ms = macs(n);
  Xoshiro256pp rng{static_cast<std::uint64_t>(c * 1000 + static_cast<int>(n))};
  for (int m = 0; m < 40; ++m) {
    dcm.run_slot(m, lists, ms, nullptr, rng);
    const auto& st = dcm.candidates();
    for (std::size_t i = 0; i < n; ++i) {
      if (st[i].candidate.has_value()) {
        ASSERT_EQ(st[*st[i].candidate].candidate, i);
      }
    }
  }
}

TEST_P(DcmProperties, MatchingIsValid) {
  const auto [c, n] = GetParam();
  ConsensualMatching dcm{{40, c}};
  dcm.reset(n);
  Xoshiro256pp rng{static_cast<std::uint64_t>(c * 7 + static_cast<int>(n))};
  dcm.run_all(band_graph(n), macs(n), nullptr, rng);
  std::set<net::NodeId> seen;
  for (const auto& [a, b] : dcm.matched_pairs()) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
    EXPECT_LE((b > a ? b - a : a - b), 3u) << "matched pairs must be graph neighbors";
  }
}

TEST_P(DcmProperties, MatchingIsNearlyMaximal) {
  // After M=40 slots, two unmatched mutual neighbors are an anomaly: their
  // CNS slot recurred ~40/C times and both were free. Tolerate a small
  // fraction from same-slot pick collisions.
  const auto [c, n] = GetParam();
  ConsensualMatching dcm{{40, c}};
  dcm.reset(n);
  const auto lists = band_graph(n);
  Xoshiro256pp rng{static_cast<std::uint64_t>(c * 131 + static_cast<int>(n))};
  dcm.run_all(lists, macs(n), nullptr, rng);

  std::vector<bool> matched(n, false);
  for (const auto& [a, b] : dcm.matched_pairs()) matched[a] = matched[b] = true;
  std::size_t violations = 0;
  std::size_t unmatched_adjacent_pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : lists[i]) {
      if (e.id <= i) continue;
      if (!matched[i] && !matched[e.id]) {
        ++unmatched_adjacent_pairs;
        ++violations;
      }
    }
  }
  // C = 1 is the paper's pathological case (every neighbor in one slot,
  // random tie-breaks): tolerate more residue there.
  const std::size_t limit = c == 1 ? n / 4 : n / 10;
  EXPECT_LE(violations, limit) << unmatched_adjacent_pairs
                               << " unmatched adjacent pairs remain";
}

TEST_P(DcmProperties, RespectsLedgerExclusions) {
  const auto [c, n] = GetParam();
  core::TransferLedger ledger{1.0};
  // Mark every pair involving vehicle 0 complete.
  for (std::size_t j = 1; j <= 3 && j < n; ++j) {
    ledger.record(0, j, 1.0);
    ledger.record(j, 0, 1.0);
  }
  ConsensualMatching dcm{{40, c}};
  dcm.reset(n);
  Xoshiro256pp rng{99};
  dcm.run_all(band_graph(n), macs(n), &ledger, rng);
  for (const auto& [a, b] : dcm.matched_pairs()) {
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModulusAndSize, DcmProperties,
    ::testing::Values(DcmCase{1, 20}, DcmCase{3, 20}, DcmCase{7, 20}, DcmCase{12, 20},
                      DcmCase{7, 6}, DcmCase{7, 60}, DcmCase{4, 41}),
    [](const auto& info) {
      return "C" + std::to_string(info.param.modulus_c) + "_n" +
             std::to_string(info.param.vehicles);
    });

}  // namespace
}  // namespace mmv2v::protocols
