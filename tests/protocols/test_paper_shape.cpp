// Regression guard for the reproduction's headline shapes (EXPERIMENTS.md):
// run all three protocols on one moderate scenario and assert the paper's
// qualitative orderings. Uses a smaller world than the benches for speed but
// a fixed seed so thresholds are stable.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "protocols/ad/ieee80211ad.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/rop/rop.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

struct Outcome {
  double ocr;
  double atp;
  double dtp;
};

template <typename Protocol, typename Params>
Outcome run(const core::ScenarioConfig& scenario, Params params) {
  Protocol protocol{params};
  core::OhmSimulation sim{scenario, protocol};
  sim.run(0.0);
  const auto& m = sim.final_metrics();
  return {m.mean_ocr(), m.mean_atp(), m.mean_dtp()};
}

class PaperShape : public ::testing::Test {
 protected:
  static core::ScenarioConfig scenario() {
    core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 901);
    s.horizon_s = 0.6;
    return s;
  }
};

namespace {
MmV2VParams mm_params(std::uint64_t seed) {
  MmV2VParams p;
  p.seed = seed;
  return p;
}
RopParams rop_params(std::uint64_t seed) {
  RopParams p;
  p.seed = seed;
  return p;
}
AdParams ad_params(std::uint64_t seed) {
  AdParams p;
  p.seed = seed;
  return p;
}
}  // namespace

TEST_F(PaperShape, MmV2VDominatesBothBaselines) {
  const Outcome mm = run<MmV2VProtocol>(scenario(), mm_params(1));
  const Outcome rop = run<RopProtocol>(scenario(), rop_params(2));
  const Outcome ad = run<Ieee80211adProtocol>(scenario(), ad_params(3));

  // Fig. 9 orderings at normal density: mmV2V well ahead of both baselines
  // (paper: 0.742 vs 0.319 and 0.465 at 15 vpl).
  EXPECT_GT(mm.ocr, 1.3 * ad.ocr);
  EXPECT_GT(mm.ocr, 1.8 * rop.ocr);
  EXPECT_GT(mm.atp, ad.atp);
  EXPECT_GT(mm.atp, rop.atp);
  // And the absolute level is in the paper's neighborhood.
  EXPECT_GT(mm.ocr, 0.55);
  EXPECT_LT(mm.ocr, 0.95);
}

TEST_F(PaperShape, MmV2VIsFairerAtNormalLoad) {
  // Fig. 9c: at moderate density mmV2V completes most tasks, giving small
  // DTP relative to the baselines' skewed progress.
  const Outcome mm = run<MmV2VProtocol>(scenario(), mm_params(4));
  const Outcome rop = run<RopProtocol>(scenario(), rop_params(5));
  EXPECT_LT(mm.dtp, rop.dtp + 0.05);
}

TEST_F(PaperShape, DensityDegradesEveryProtocol) {
  core::ScenarioConfig sparse = scenario();
  sparse.traffic.density_vpl = 10.0;
  core::ScenarioConfig dense = scenario();
  dense.traffic.density_vpl = 30.0;

  const double mm_sparse = run<MmV2VProtocol>(sparse, mm_params(6)).ocr;
  const double mm_dense = run<MmV2VProtocol>(dense, mm_params(6)).ocr;
  EXPECT_GT(mm_sparse, mm_dense) << "more neighbors = more task per vehicle";

  const double ad_sparse = run<Ieee80211adProtocol>(sparse, ad_params(7)).ocr;
  const double ad_dense = run<Ieee80211adProtocol>(dense, ad_params(7)).ocr;
  EXPECT_GT(ad_sparse, ad_dense);
  // 802.11ad's collapse is steeper than mmV2V's (PBSS serialization).
  EXPECT_GT(mm_dense / std::max(mm_sparse, 1e-9),
            ad_dense / std::max(ad_sparse, 1e-9) - 0.05);
}

TEST_F(PaperShape, DiscoveryLawAnchorsAtKThree) {
  // Theorem 2's working point: with K = 3 a single frame discovers most of
  // the neighborhood, so mmV2V's first frame already matches many pairs.
  MmV2VParams params;
  params.seed = 8;
  MmV2VProtocol protocol{params};
  core::ScenarioConfig s = scenario();
  s.horizon_s = 0.02;  // exactly one frame
  core::OhmSimulation sim{s, protocol};
  sim.run(0.0);
  EXPECT_GT(protocol.current_matching().size(), sim.world().size() / 6)
      << "one frame must already pair a large fraction of the network";
}

}  // namespace
}  // namespace mmv2v::protocols
