// Statistical validation of Theorem 2 (paper Section III-B): with
// transmitter probability p = 0.5 and role-swapped sweeps, an ordered
// neighbor pair rendezvouses in a round iff the two vehicles draw different
// roles, so after K independent rounds the discovery ratio is 1 - 0.5^K.
//
// The PHY is not ideal at sector edges (beta = 12 deg < the 15 deg sector),
// so the test first builds the *rendezvous-certain* universe: the ordered
// pairs that actually decode when their rendezvous happens. Six forced
// rounds with tx_first[i] = bit k of i cover every ordered pair of distinct
// vehicles (n <= 64) in both directions on the static world, and decode is
// deterministic (no fading, ideal capture). Within that universe the only
// randomness left is the role draws, which is exactly what Theorem 2
// quantifies; per-pair indicators are pairwise independent, so a binomial
// 3-sigma band around 1 - 0.5^K is a sound acceptance region.
//
// Labeled `stat` (not tier1): hundreds of sweeps of real PHY work.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/world.hpp"
#include "net/neighbor_table.hpp"
#include "protocols/mmv2v/snd.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

using OrderedPair = std::pair<net::NodeId, net::NodeId>;

SndParams theorem2_params(const core::World& world, int rounds) {
  SndParams p;
  p.rounds = rounds;
  p.ideal_capture = true;  // Theorem 2 abstracts from SSW collisions
  p.max_neighbor_range_m = world.config().comm_range_m;
  return p;
}

/// Ordered pairs (i observed j) currently present in the tables.
std::set<OrderedPair> discovered_pairs(const std::vector<net::NeighborTable>& tables) {
  std::set<OrderedPair> pairs;
  for (net::NodeId i = 0; i < tables.size(); ++i) {
    for (const net::NeighborEntry& e : tables[i].entries()) pairs.insert({i, e.id});
  }
  return pairs;
}

TEST(Theorem2, DiscoveryRatioMatchesOneMinusHalfPowK) {
  const core::World world{mmv2v::testing::small_scenario(12.0, 4242), 4242};
  const std::size_t n = world.size();
  ASSERT_GE(n, 10u);
  ASSERT_LE(n, 64u) << "forced-role construction covers 2^6 vehicles";

  // Rendezvous-certain universe: for every ordered pair of distinct vehicles
  // some forced round assigns them different first-sweep roles, so both
  // sweep directions happen for every pair; what remains in the tables is
  // exactly the set of pairs whose PHY decode succeeds when aligned.
  const SyncNeighborDiscovery probe{theorem2_params(world, 1)};
  std::vector<net::NeighborTable> tables(n, net::NeighborTable{1000});
  for (int k = 0; k < 6; ++k) {
    std::vector<bool> tx_first(n);
    for (std::size_t i = 0; i < n; ++i) tx_first[i] = ((i >> k) & 1u) != 0;
    probe.run_round(world, 0, tx_first, tables);
  }
  const std::set<OrderedPair> universe = discovered_pairs(tables);
  ASSERT_GT(universe.size(), 40u) << "scenario too sparse for a meaningful band";

  Xoshiro256pp rng{99};
  constexpr int kTrials = 160;
  for (int K = 1; K <= 6; ++K) {
    const SyncNeighborDiscovery snd{theorem2_params(world, K)};
    std::size_t hits = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<net::NeighborTable> trial_tables(n, net::NeighborTable{1000});
      snd.run(world, 0, trial_tables, rng);
      const std::set<OrderedPair> found = discovered_pairs(trial_tables);
      for (const OrderedPair& pair : universe) hits += found.count(pair);
      // Random rounds can never discover outside the rendezvous-certain set
      // on this static world.
      for (const OrderedPair& pair : found) {
        ASSERT_EQ(universe.count(pair), 1u)
            << "pair (" << pair.first << "," << pair.second
            << ") decoded in a random round but not in the forced rounds";
      }
    }
    const double N = static_cast<double>(kTrials) * static_cast<double>(universe.size());
    const double p = 1.0 - std::pow(0.5, K);
    const double ratio = static_cast<double>(hits) / N;
    const double sigma = std::sqrt(p * (1.0 - p) / N);
    EXPECT_NEAR(ratio, p, 3.0 * sigma)
        << "K=" << K << " empirical discovery ratio " << ratio << " outside the 3-sigma band of "
        << p << " (sigma=" << sigma << ", universe=" << universe.size() << ")";
  }
}

}  // namespace
}  // namespace mmv2v::protocols
