#include "protocols/mmv2v/negotiation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/mmv2v/snd.hpp"
#include "test_util.hpp"

namespace mmv2v::protocols {
namespace {

class NegotiationTest : public ::testing::Test {
 protected:
  NegotiationTest()
      : world_(mmv2v::testing::small_scenario(18.0, 501), 501),
        alpha_(phy::BeamPattern::make(geom::deg_to_rad(30.0))),
        beta_(phy::BeamPattern::make(geom::deg_to_rad(12.0))) {
    // Populate tables via one full SND pass so sectors are realistic.
    SndParams params;
    params.max_neighbor_range_m = world_.config().comm_range_m;
    const SyncNeighborDiscovery snd{params};
    tables_.assign(world_.size(), net::NeighborTable{5});
    Xoshiro256pp rng{77};
    snd.run(world_, 0, tables_, rng);
  }

  /// All mutually discovered ground-truth pairs.
  std::vector<std::pair<net::NodeId, net::NodeId>> discovered_pairs() const {
    std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
    for (net::NodeId i = 0; i < world_.size(); ++i) {
      for (net::NodeId j : world_.ground_truth_neighbors(i)) {
        if (j > i && tables_[i].contains(j) && tables_[j].contains(i)) {
          pairs.emplace_back(i, j);
        }
      }
    }
    return pairs;
  }

  core::World world_;
  phy::BeamPattern alpha_;
  phy::BeamPattern beta_;
  std::vector<net::NeighborTable> tables_;
};

TEST_F(NegotiationTest, SinglePairAlwaysSucceeds) {
  const PhyNegotiationChannel channel{world_, tables_, alpha_, beta_, 24};
  const auto pairs = discovered_pairs();
  ASSERT_FALSE(pairs.empty());
  for (std::size_t p = 0; p < std::min<std::size_t>(pairs.size(), 10); ++p) {
    const auto ok = channel.exchange_succeeds({pairs[p]});
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_TRUE(ok[0]) << "isolated in-range exchange must decode";
  }
}

TEST_F(NegotiationTest, ConcurrentSlotMostlySucceeds) {
  // The paper's design claim: CNS-scheduled concurrent exchanges across the
  // network rarely collide thanks to directional beams. Throw ALL discovered
  // pairs into one slot (a worst case far beyond a real CNS slot) and the
  // success rate should still be high.
  const PhyNegotiationChannel channel{world_, tables_, alpha_, beta_, 24};
  // Build a valid matching (disjoint vehicles) greedily.
  std::vector<bool> used(world_.size(), false);
  std::vector<std::pair<net::NodeId, net::NodeId>> slot_pairs;
  for (const auto& [a, b] : discovered_pairs()) {
    if (used[a] || used[b]) continue;
    used[a] = used[b] = true;
    slot_pairs.emplace_back(a, b);
  }
  ASSERT_GT(slot_pairs.size(), 5u);
  const auto ok = channel.exchange_succeeds(slot_pairs);
  std::size_t succeeded = 0;
  for (bool b : ok) succeeded += b ? 1 : 0;
  EXPECT_GT(static_cast<double>(succeeded) / static_cast<double>(ok.size()), 0.8);
}

TEST_F(NegotiationTest, OutOfRangePairFails) {
  const PhyNegotiationChannel channel{world_, tables_, alpha_, beta_, 24};
  // Find two vehicles with no cached geometry (beyond interference range).
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (net::NodeId j = i + 1; j < world_.size(); ++j) {
      if (world_.pair(i, j) == nullptr) {
        const auto ok = channel.exchange_succeeds({{i, j}});
        EXPECT_FALSE(ok[0]);
        return;
      }
    }
  }
  GTEST_SKIP() << "all pairs within range in this world";
}

TEST_F(NegotiationTest, DcmHonorsChannelVerdict) {
  // A channel that rejects everything must leave DCM with no matches.
  class RejectAll final : public NegotiationChannel {
   public:
    using NegotiationChannel::exchange_succeeds;
    void exchange_succeeds(const std::vector<std::pair<net::NodeId, net::NodeId>>& /*pairs*/,
                           std::vector<bool>& ok) const override {
      std::fill(ok.begin(), ok.end(), false);
    }
  };
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(world_.size());
  std::vector<std::vector<net::NeighborEntry>> neighbors(world_.size());
  std::vector<net::MacAddress> macs(world_.size());
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    neighbors[i] = tables_[i].entries();
    macs[i] = world_.mac(i);
  }
  Xoshiro256pp rng{31};
  const RejectAll reject;
  dcm.run_all(neighbors, macs, nullptr, rng, &reject);
  EXPECT_TRUE(dcm.matched_pairs().empty());
}

TEST_F(NegotiationTest, IdealChannelMatchesNullBehavior) {
  class AcceptAll final : public NegotiationChannel {
   public:
    using NegotiationChannel::exchange_succeeds;
    void exchange_succeeds(const std::vector<std::pair<net::NodeId, net::NodeId>>& /*pairs*/,
                           std::vector<bool>& /*ok*/) const override {
      // `ok` arrives all-true: accepting everything is a no-op.
    }
  };
  std::vector<std::vector<net::NeighborEntry>> neighbors(world_.size());
  std::vector<net::MacAddress> macs(world_.size());
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    neighbors[i] = tables_[i].entries();
    macs[i] = world_.mac(i);
  }
  ConsensualMatching with_channel{{40, 7}};
  with_channel.reset(world_.size());
  ConsensualMatching without{{40, 7}};
  without.reset(world_.size());
  Xoshiro256pp rng_a{31};
  Xoshiro256pp rng_b{31};
  const AcceptAll accept;
  with_channel.run_all(neighbors, macs, nullptr, rng_a, &accept);
  without.run_all(neighbors, macs, nullptr, rng_b);
  EXPECT_EQ(with_channel.matched_pairs(), without.matched_pairs());
}

}  // namespace
}  // namespace mmv2v::protocols
