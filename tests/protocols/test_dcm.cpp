#include "protocols/mmv2v/dcm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "protocols/mmv2v/cns.hpp"

namespace mmv2v::protocols {
namespace {

net::NeighborEntry neighbor(net::NodeId id, double snr) {
  net::NeighborEntry e;
  e.id = id;
  e.mac = net::MacAddress::for_vehicle(id);
  e.snr_db = snr;
  return e;
}

std::vector<net::MacAddress> macs_for(std::size_t n) {
  std::vector<net::MacAddress> macs(n);
  for (std::size_t i = 0; i < n; ++i) macs[i] = net::MacAddress::for_vehicle(i);
  return macs;
}

/// Fully connected symmetric neighbor lists with given SNR(i,j).
std::vector<std::vector<net::NeighborEntry>> clique(
    std::size_t n, const std::function<double(std::size_t, std::size_t)>& snr) {
  std::vector<std::vector<net::NeighborEntry>> lists(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) lists[i].push_back(neighbor(j, snr(i, j)));
    }
  }
  return lists;
}

TEST(Cns, PairSlotIsSymmetricAndBounded) {
  const ConsensualSchedule cns{7};
  for (std::size_t a = 0; a < 30; ++a) {
    for (std::size_t b = 0; b < 30; ++b) {
      const int s = cns.pair_slot(net::MacAddress::for_vehicle(a),
                                  net::MacAddress::for_vehicle(b));
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 7);
      EXPECT_EQ(s, cns.pair_slot(net::MacAddress::for_vehicle(b),
                                 net::MacAddress::for_vehicle(a)));
    }
  }
}

TEST(Cns, ScheduledInRecursModuloC) {
  const ConsensualSchedule cns{7};
  const auto a = net::MacAddress::for_vehicle(1);
  const auto b = net::MacAddress::for_vehicle(2);
  const int slot = cns.pair_slot(a, b);
  for (int m = 0; m < 40; ++m) {
    EXPECT_EQ(cns.scheduled_in(a, b, m), m % 7 == slot);
  }
}

TEST(Cns, RejectsNonPositiveModulus) {
  EXPECT_THROW(ConsensualSchedule{0}, std::invalid_argument);
  EXPECT_THROW(ConsensualSchedule{-3}, std::invalid_argument);
}

TEST(Dcm, ValidatesParameters) {
  EXPECT_THROW(ConsensualMatching({0, 7}), std::invalid_argument);
  EXPECT_THROW(ConsensualMatching({40, 0}), std::invalid_argument);
}

TEST(Dcm, CandidateRelationStaysMutual) {
  // Core invariant: after any number of slots, i's candidate j implies j's
  // candidate is i.
  const std::size_t n = 12;
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(n);
  const auto lists = clique(n, [](std::size_t i, std::size_t j) {
    return 10.0 + static_cast<double>((i * 7 + j * 13) % 17);
  });
  const auto macs = macs_for(n);
  Xoshiro256pp rng{11};
  for (int m = 0; m < 40; ++m) {
    dcm.run_slot(m, lists, macs, nullptr, rng);
    const auto& st = dcm.candidates();
    for (std::size_t i = 0; i < n; ++i) {
      if (st[i].candidate.has_value()) {
        EXPECT_EQ(st[*st[i].candidate].candidate, i) << "slot " << m;
      }
    }
  }
}

TEST(Dcm, MatchingIsValidMatching) {
  const std::size_t n = 20;
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(n);
  const auto lists = clique(n, [](std::size_t i, std::size_t j) {
    return 5.0 + static_cast<double>((i + j) % 11);
  });
  Xoshiro256pp rng{13};
  dcm.run_all(lists, macs_for(n), nullptr, rng);
  std::set<net::NodeId> seen;
  for (const auto& [a, b] : dcm.matched_pairs()) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(seen.insert(a).second) << "vehicle in two pairs";
    EXPECT_TRUE(seen.insert(b).second) << "vehicle in two pairs";
  }
}

TEST(Dcm, TwoVehiclesAlwaysPairUp) {
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(2);
  const auto lists = clique(2, [](std::size_t, std::size_t) { return 10.0; });
  Xoshiro256pp rng{17};
  dcm.run_all(lists, macs_for(2), nullptr, rng);
  ASSERT_EQ(dcm.matched_pairs().size(), 1u);
  EXPECT_EQ(dcm.matched_pairs()[0], (std::pair<net::NodeId, net::NodeId>{0, 1}));
}

TEST(Dcm, PrefersBetterLinks) {
  // Triangle where link (0,1) is far better than (0,2) and (1,2): the greedy
  // matching must pick (0,1).
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(3);
  const auto lists = clique(3, [](std::size_t i, std::size_t j) {
    return (i + j == 1) ? 30.0 : 5.0;  // pair {0,1} has SNR 30
  });
  Xoshiro256pp rng{19};
  dcm.run_all(lists, macs_for(3), nullptr, rng);
  ASSERT_EQ(dcm.matched_pairs().size(), 1u);
  EXPECT_EQ(dcm.matched_pairs()[0], (std::pair<net::NodeId, net::NodeId>{0, 1}));
}

TEST(Dcm, DroppedCandidateIsInformed) {
  // 0-1 pair first, then 1 upgrades to 2 (better link): 0 must become
  // candidate-less (the "link update" of paper Fig. 4).
  ConsensualMatching dcm{{40, 1}};  // C=1: every pair negotiates every slot
  dcm.reset(3);
  std::vector<std::vector<net::NeighborEntry>> lists(3);
  lists[0] = {neighbor(1, 10.0)};
  lists[1] = {neighbor(0, 10.0), neighbor(2, 20.0)};
  lists[2] = {neighbor(1, 20.0)};
  Xoshiro256pp rng{23};
  dcm.run_all(lists, macs_for(3), nullptr, rng);
  const auto pairs = dcm.matched_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<net::NodeId, net::NodeId>{1, 2}));
  EXPECT_FALSE(dcm.candidates()[0].candidate.has_value());
}

TEST(Dcm, CompletedPairsAreSkipped) {
  core::TransferLedger ledger{100.0};
  ledger.record(0, 1, 100.0);
  ledger.record(1, 0, 100.0);  // pair (0,1) complete
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(3);
  const auto lists = clique(3, [](std::size_t i, std::size_t j) {
    return (i + j == 1) ? 30.0 : 5.0;
  });
  Xoshiro256pp rng{29};
  dcm.run_all(lists, macs_for(3), &ledger, rng);
  // (0,1) is done; the only possible matches involve vehicle 2.
  for (const auto& [a, b] : dcm.matched_pairs()) {
    EXPECT_TRUE(a == 2 || b == 2);
  }
  EXPECT_EQ(dcm.matched_pairs().size(), 1u);
}

TEST(Dcm, MoreSlotsNeverReduceMatchSize) {
  const std::size_t n = 16;
  const auto lists = clique(n, [](std::size_t i, std::size_t j) {
    return 10.0 + static_cast<double>((i * 3 + j * 5) % 13);
  });
  const auto macs = macs_for(n);
  std::size_t prev = 0;
  for (int slots : {5, 10, 20, 40}) {
    ConsensualMatching dcm{{slots, 7}};
    dcm.reset(n);
    Xoshiro256pp rng{31};
    dcm.run_all(lists, macs, nullptr, rng);
    const std::size_t matched = dcm.matched_pairs().size();
    EXPECT_GE(matched + 1, prev) << "allow +-1 jitter from random slot picks";
    prev = matched;
  }
}

TEST(Dcm, SlotMismatchedSizesThrow) {
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(3);
  const auto lists = clique(2, [](std::size_t, std::size_t) { return 1.0; });
  Xoshiro256pp rng{1};
  EXPECT_THROW(dcm.run_slot(0, lists, macs_for(2), nullptr, rng), std::invalid_argument);
}

TEST(Dcm, IsolatedVehiclesStayUnmatched) {
  ConsensualMatching dcm{{40, 7}};
  dcm.reset(4);
  std::vector<std::vector<net::NeighborEntry>> lists(4);  // nobody knows anyone
  Xoshiro256pp rng{37};
  dcm.run_all(lists, macs_for(4), nullptr, rng);
  EXPECT_TRUE(dcm.matched_pairs().empty());
  for (const auto& st : dcm.candidates()) EXPECT_FALSE(st.candidate.has_value());
}

TEST(Dcm, GreedyApproximatesMaxWeightMatchingOnSmallGraphs) {
  // 4 vehicles, weights chosen so the greedy outcome is the true maximum
  // weight matching {0-1, 2-3}: w(0,1)=30, w(2,3)=29, w(1,2)=20, others 5.
  ConsensualMatching dcm{{80, 7}};
  dcm.reset(4);
  const auto w = [](std::size_t i, std::size_t j) -> double {
    const auto key = std::minmax(i, j);
    if (key == std::minmax<std::size_t>(0, 1)) return 30.0;
    if (key == std::minmax<std::size_t>(2, 3)) return 29.0;
    if (key == std::minmax<std::size_t>(1, 2)) return 20.0;
    return 5.0;
  };
  const auto lists = clique(4, w);
  Xoshiro256pp rng{41};
  dcm.run_all(lists, macs_for(4), nullptr, rng);
  std::set<std::pair<net::NodeId, net::NodeId>> pairs(dcm.matched_pairs().begin(),
                                                      dcm.matched_pairs().end());
  EXPECT_TRUE(pairs.count({0, 1}) == 1);
  EXPECT_TRUE(pairs.count({2, 3}) == 1);
}

}  // namespace
}  // namespace mmv2v::protocols
