#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmv2v {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, PercentileRejectsBadQ) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
  // NaN must throw, not fall through the range check into an undefined
  // float-to-size_t cast (regression test for the negated-comparison guard).
  EXPECT_THROW((void)s.percentile(std::nan("")), std::invalid_argument);
  // Invalid q throws even on an empty set — same contract on every call site.
  SampleSet empty;
  EXPECT_THROW((void)empty.percentile(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)empty.percentile(-0.5), std::invalid_argument);
}

TEST(SampleSet, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(37.5), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
}

TEST(SampleSet, PercentileMatchesNumpyRankConvention) {
  // rank = q/100 * (n-1): for n=5 over {1..5}, p25 lands exactly on index 1.
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(90.0), 4.6);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 4.96);
}

TEST(SampleSet, CdfAtMatchesDefinition) {
  SampleSet s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99.0), 1.0);
}

TEST(SampleSet, CdfCurveIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(std::fmod(i * 17.31, 10.0));
  const auto curve = s.cdf_curve(0.0, 10.0, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSet, AddAllAndMoments) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SampleSet, EmptyQueriesAreSafe) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 4}), std::invalid_argument);
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_THROW((void)empty.percentile(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)empty.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)empty.percentile(100.5), std::invalid_argument);

  // Single sample in bin [3, 4): p0 = lower edge, p100 = upper edge,
  // p50 = bin midpoint (mass uniform within the bin).
  Histogram one{0.0, 10.0, 10};
  one.add(3.5);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(one.percentile(50.0), 3.5);
  EXPECT_DOUBLE_EQ(one.percentile(100.0), 4.0);
}

TEST(Histogram, PercentileInterpolatesBetweenBuckets) {
  // 2 samples in [0,1), 2 in [1,2): cumulative mass hits 50% exactly at the
  // bucket edge, 25% at the middle of the first bin's mass.
  Histogram h{0.0, 2.0, 2};
  h.add(0.2);
  h.add(0.8);
  h.add(1.2);
  h.add(1.8);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 1.0);  // value exactly on a bucket edge
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(75.0), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 2.0);
}

TEST(Histogram, PercentileSkipsEmptyBuckets) {
  Histogram h{0.0, 10.0, 10};
  h.add(1.5);  // bin 1
  h.add(8.5);  // bin 8
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);    // lower edge of first occupied bin
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 9.0);  // upper edge of last occupied bin
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);   // half the mass sits in bin 1
}

TEST(Histogram, MergeAccumulatesBinForBin) {
  Histogram a{0.0, 10.0, 10};
  Histogram b{0.0, 10.0, 10};
  a.add(1.5);
  a.add(5.5);
  b.add(1.5);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(5), 1u);
  EXPECT_EQ(a.count(9), 1u);
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  Histogram a{0.0, 10.0, 10};
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 20)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 5.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 10)), std::invalid_argument);
  a.merge(Histogram(0.0, 10.0, 10));  // identical layout: fine
  EXPECT_EQ(a.total(), 0u);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.1);
  h.add(0.1);
  h.add(0.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace mmv2v
