#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mmv2v {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, PercentileRejectsBadQ) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(SampleSet, CdfAtMatchesDefinition) {
  SampleSet s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99.0), 1.0);
}

TEST(SampleSet, CdfCurveIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(std::fmod(i * 17.31, 10.0));
  const auto curve = s.cdf_curve(0.0, 10.0, 21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSet, AddAllAndMoments) {
  SampleSet s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(SampleSet, EmptyQueriesAreSafe) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(15.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(5), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW((Histogram{2.0, 1.0, 4}), std::invalid_argument);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h{0.0, 1.0, 4};
  h.add(0.1);
  h.add(0.1);
  h.add(0.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace mmv2v
