#include "common/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mmv2v {
namespace {

TEST(MetricsRegistry, CounterGetOrCreate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("discovery.decodes");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  // Same name yields the same counter.
  EXPECT_EQ(&reg.counter("discovery.decodes"), &c);
  EXPECT_EQ(reg.counter("discovery.decodes").value(), 42u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("links.active");
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("links.active").value(), 4.5);
}

TEST(MetricsRegistry, HistogramLayoutFixedByFirstRegistration) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("udt.sinr_db", -20.0, 60.0, 40);
  h.add(0.0);
  h.add(1000.0);  // clamps into the top bin
  // A second registration with different bounds returns the same histogram.
  Histogram& again = reg.histogram("udt.sinr_db", 0.0, 1.0, 2);
  EXPECT_EQ(&again, &h);
  EXPECT_DOUBLE_EQ(again.lo(), -20.0);
  EXPECT_DOUBLE_EQ(again.hi(), 60.0);
  EXPECT_EQ(again.total(), 2u);
}

TEST(MetricsRegistry, HandleAddressesSurviveLaterRegistrations) {
  // The hot path caches Counter*/Histogram* across frames; registering more
  // metrics later must not move existing handles.
  MetricsRegistry reg;
  Counter* first = &reg.counter("a.first");
  Gauge* gauge = &reg.gauge("a.gauge");
  for (int i = 0; i < 200; ++i) {
    reg.counter("bulk." + std::to_string(i));
    reg.gauge("bulkg." + std::to_string(i));
  }
  first->add(7);
  gauge->set(2.5);
  EXPECT_EQ(reg.find_counter("a.first")->value(), 7u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("a.gauge")->value(), 2.5);
}

TEST(MetricsRegistry, FindReturnsNullForUnknownNames) {
  MetricsRegistry reg;
  reg.counter("known");
  EXPECT_NE(reg.find_counter("known"), nullptr);
  EXPECT_EQ(reg.find_counter("unknown"), nullptr);
  EXPECT_EQ(reg.find_gauge("unknown"), nullptr);
  EXPECT_EQ(reg.find_histogram("unknown"), nullptr);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", 0.0, 10.0, 5);
  // A single-bucket histogram exercised the old reset bug; keep it covered.
  Histogram& h1 = reg.histogram("h1", 0.0, 1.0, 1);
  c.add(3);
  g.set(9.0);
  h.add(5.0);
  h1.add(0.5);

  reg.reset_values();

  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(&reg.counter("c"), &c);  // handles still valid
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h1.total(), 0u);
  // Layout survives the reset.
  EXPECT_DOUBLE_EQ(h.lo(), 0.0);
  EXPECT_DOUBLE_EQ(h.hi(), 10.0);
  h1.add(0.5);
  EXPECT_EQ(h1.total(), 1u);
}

TEST(MetricsRegistry, JsonIsCanonical) {
  MetricsRegistry reg;
  // Register out of lexicographic order; output must still be sorted.
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("mid").set(0.5);
  reg.histogram("hist", 0.0, 2.0, 2).add(0.5);

  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.first\":1,\"z.last\":2},"
            "\"gauges\":{\"mid\":0.5},"
            "\"histograms\":{\"hist\":{\"lo\":0,\"hi\":2,\"counts\":[1,0]}}}");
}

TEST(MetricsRegistry, EmptyRegistryJson) {
  const MetricsRegistry reg;
  EXPECT_EQ(reg.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistry, JsonHistogramBucketBoundaryValue) {
  // A sample exactly on an interior bucket edge belongs to the upper bucket
  // ([lo, hi) bins), and the serialized counts must reflect that.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("edge", 0.0, 4.0, 4);
  h.add(1.0);  // exactly on the 0/1 edge: bin 1
  h.add(2.0);  // exactly on the 1/2 edge: bin 2
  h.add(4.0);  // == hi: clamps into the top bin
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"edge\":{\"lo\":0,\"hi\":4,\"counts\":[0,1,1,1]}}}");
}

TEST(MetricsRegistry, MergeFromAccumulates) {
  MetricsRegistry a;
  a.counter("hits").add(2);
  a.gauge("load").set(1.5);
  a.histogram("lat", 0.0, 10.0, 5).add(1.0);

  MetricsRegistry b;
  b.counter("hits").add(3);
  b.counter("only_in_b").add(7);
  b.gauge("load").set(2.0);
  b.histogram("lat", 0.0, 10.0, 5).add(1.0);
  b.histogram("only_b_hist", 0.0, 1.0, 2).add(0.2);

  a.merge_from(b);
  EXPECT_EQ(a.find_counter("hits")->value(), 5u);
  EXPECT_EQ(a.find_counter("only_in_b")->value(), 7u);
  EXPECT_DOUBLE_EQ(a.find_gauge("load")->value(), 3.5);
  EXPECT_EQ(a.find_histogram("lat")->total(), 2u);
  EXPECT_EQ(a.find_histogram("lat")->count(0), 2u);
  // Absent histograms are registered with the source's layout.
  ASSERT_NE(a.find_histogram("only_b_hist"), nullptr);
  EXPECT_DOUBLE_EQ(a.find_histogram("only_b_hist")->hi(), 1.0);
  EXPECT_EQ(a.find_histogram("only_b_hist")->total(), 1u);
  // b is untouched.
  EXPECT_EQ(b.find_counter("hits")->value(), 3u);
}

TEST(MetricsRegistry, MergeFromIsOverflowFreeNearUint64Max) {
  // Counters must accumulate across many merged registries without any
  // intermediate signed/float conversion; value arithmetic is modulo-free
  // within uint64 range.
  constexpr std::uint64_t kBig = 0x8000000000000000ULL;  // 2^63
  MetricsRegistry a;
  a.counter("events").add(kBig - 1);
  MetricsRegistry b;
  b.counter("events").add(kBig - 1);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("events")->value(), 2 * (kBig - 1));
  EXPECT_GT(a.find_counter("events")->value(), kBig);
}

TEST(MetricsRegistry, MergeFromRejectsHistogramLayoutMismatch) {
  MetricsRegistry a;
  a.histogram("lat", 0.0, 10.0, 5);
  MetricsRegistry b;
  b.histogram("lat", 0.0, 20.0, 5);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(MetricsRegistry, MergedJsonStaysCanonicallyOrdered) {
  MetricsRegistry a;
  a.counter("m.mid").add(1);
  MetricsRegistry b;
  b.counter("z.last").add(1);
  b.counter("a.first").add(1);
  a.merge_from(b);
  const std::string json = a.to_json();
  const std::size_t pa = json.find("a.first");
  const std::size_t pm = json.find("m.mid");
  const std::size_t pz = json.find("z.last");
  ASSERT_NE(pa, std::string::npos);
  EXPECT_LT(pa, pm);
  EXPECT_LT(pm, pz);
}

}  // namespace
}  // namespace mmv2v
