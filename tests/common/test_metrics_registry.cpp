#include "common/metrics_registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mmv2v {
namespace {

TEST(MetricsRegistry, CounterGetOrCreate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("discovery.decodes");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  // Same name yields the same counter.
  EXPECT_EQ(&reg.counter("discovery.decodes"), &c);
  EXPECT_EQ(reg.counter("discovery.decodes").value(), 42u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("links.active");
  g.set(3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("links.active").value(), 4.5);
}

TEST(MetricsRegistry, HistogramLayoutFixedByFirstRegistration) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("udt.sinr_db", -20.0, 60.0, 40);
  h.add(0.0);
  h.add(1000.0);  // clamps into the top bin
  // A second registration with different bounds returns the same histogram.
  Histogram& again = reg.histogram("udt.sinr_db", 0.0, 1.0, 2);
  EXPECT_EQ(&again, &h);
  EXPECT_DOUBLE_EQ(again.lo(), -20.0);
  EXPECT_DOUBLE_EQ(again.hi(), 60.0);
  EXPECT_EQ(again.total(), 2u);
}

TEST(MetricsRegistry, HandleAddressesSurviveLaterRegistrations) {
  // The hot path caches Counter*/Histogram* across frames; registering more
  // metrics later must not move existing handles.
  MetricsRegistry reg;
  Counter* first = &reg.counter("a.first");
  Gauge* gauge = &reg.gauge("a.gauge");
  for (int i = 0; i < 200; ++i) {
    reg.counter("bulk." + std::to_string(i));
    reg.gauge("bulkg." + std::to_string(i));
  }
  first->add(7);
  gauge->set(2.5);
  EXPECT_EQ(reg.find_counter("a.first")->value(), 7u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("a.gauge")->value(), 2.5);
}

TEST(MetricsRegistry, FindReturnsNullForUnknownNames) {
  MetricsRegistry reg;
  reg.counter("known");
  EXPECT_NE(reg.find_counter("known"), nullptr);
  EXPECT_EQ(reg.find_counter("unknown"), nullptr);
  EXPECT_EQ(reg.find_gauge("unknown"), nullptr);
  EXPECT_EQ(reg.find_histogram("unknown"), nullptr);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", 0.0, 10.0, 5);
  // A single-bucket histogram exercised the old reset bug; keep it covered.
  Histogram& h1 = reg.histogram("h1", 0.0, 1.0, 1);
  c.add(3);
  g.set(9.0);
  h.add(5.0);
  h1.add(0.5);

  reg.reset_values();

  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(&reg.counter("c"), &c);  // handles still valid
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h1.total(), 0u);
  // Layout survives the reset.
  EXPECT_DOUBLE_EQ(h.lo(), 0.0);
  EXPECT_DOUBLE_EQ(h.hi(), 10.0);
  h1.add(0.5);
  EXPECT_EQ(h1.total(), 1u);
}

TEST(MetricsRegistry, JsonIsCanonical) {
  MetricsRegistry reg;
  // Register out of lexicographic order; output must still be sorted.
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("mid").set(0.5);
  reg.histogram("hist", 0.0, 2.0, 2).add(0.5);

  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.first\":1,\"z.last\":2},"
            "\"gauges\":{\"mid\":0.5},"
            "\"histograms\":{\"hist\":{\"lo\":0,\"hi\":2,\"counts\":[1,0]}}}");
}

TEST(MetricsRegistry, EmptyRegistryJson) {
  const MetricsRegistry reg;
  EXPECT_EQ(reg.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace mmv2v
