#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mmv2v {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink([this](LogLevel level, std::string_view msg) {
      captured_.emplace_back(level, std::string{msg});
    });
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override { Logger::instance().set_sink(nullptr); }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, MessagesReachSink) {
  MMV2V_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, LevelFiltersLowerSeverity) {
  Logger::instance().set_level(LogLevel::kWarn);
  MMV2V_LOG(kDebug) << "dropped";
  MMV2V_LOG(kError) << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, DisabledLevelSkipsStreaming) {
  Logger::instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string{"expensive"};
  };
  MMV2V_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0) << "stream operands must not evaluate when filtered";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace mmv2v
