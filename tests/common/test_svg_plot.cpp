#include "common/svg_plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mmv2v {
namespace {

TEST(SvgChart, RejectsTinyCanvas) {
  EXPECT_THROW(SvgChart(100, 50, "t"), std::invalid_argument);
}

TEST(SvgChart, RendersWellFormedDocument) {
  SvgChart chart{640, 400, "OCR vs density"};
  chart.set_x_label("vpl");
  chart.set_y_label("OCR");
  chart.add_series("mmV2V", {{10, 0.85}, {20, 0.62}, {30, 0.52}});
  chart.add_series("ROP", {{10, 0.30}, {20, 0.20}, {30, 0.14}});
  const std::string svg = chart.render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("OCR vs density"), std::string::npos);
  EXPECT_NE(svg.find("mmV2V"), std::string::npos);
  EXPECT_NE(svg.find("ROP"), std::string::npos);
  EXPECT_EQ(chart.series_count(), 2u);
  // Two polylines, one per series.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgChart, EscapesXmlInLabels) {
  SvgChart chart{640, 400, "a < b & c"};
  chart.add_series("s<1>", {{0, 0}, {1, 1}});
  const std::string svg = chart.render();
  EXPECT_EQ(svg.find("a < b &"), std::string::npos) << "raw specials must be escaped";
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
}

TEST(SvgChart, PixelMappingIsMonotone) {
  SvgChart chart{640, 400, "t"};
  chart.set_x_range(0.0, 10.0);
  chart.set_y_range(0.0, 1.0);
  const auto [x0, y0] = chart.to_pixels(0.0, 0.0);
  const auto [x1, y1] = chart.to_pixels(10.0, 1.0);
  EXPECT_LT(x0, x1) << "x grows rightward";
  EXPECT_GT(y0, y1) << "y grows upward (pixel y decreases)";
  const auto [xm, ym] = chart.to_pixels(5.0, 0.5);
  EXPECT_NEAR(xm, (x0 + x1) / 2.0, 1e-9);
  EXPECT_NEAR(ym, (y0 + y1) / 2.0, 1e-9);
}

TEST(SvgChart, AutoRangeCoversData) {
  SvgChart chart{640, 400, "t"};
  chart.add_series("s", {{-5.0, 100.0}, {15.0, 300.0}});
  // All data points must land inside the canvas.
  for (const auto& [x, y] : std::vector<std::pair<double, double>>{{-5, 100}, {15, 300}}) {
    const auto [px, py] = chart.to_pixels(x, y);
    EXPECT_GE(px, 0.0);
    EXPECT_LE(px, 640.0);
    EXPECT_GE(py, 0.0);
    EXPECT_LE(py, 400.0);
  }
}

TEST(SvgChart, FixedRangeValidation) {
  SvgChart chart{640, 400, "t"};
  EXPECT_THROW(chart.set_x_range(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(chart.set_y_range(2.0, 1.0), std::invalid_argument);
}

TEST(SvgChart, SaveWritesFile) {
  SvgChart chart{640, 400, "save test"};
  chart.add_series("s", {{0, 0}, {1, 1}});
  const std::string path = ::testing::TempDir() + "mmv2v_chart_test.svg";
  chart.save(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  in.close();
  std::remove(path.c_str());
  EXPECT_THROW(chart.save("/nonexistent-dir/x.svg"), std::runtime_error);
}

TEST(SvgChart, EmptySeriesStillRenders) {
  SvgChart chart{640, 400, "empty"};
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace mmv2v
