#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace mmv2v {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, ByteSpanMatchesString) {
  const std::array<std::uint8_t, 3> bytes{'a', 'b', 'c'};
  EXPECT_EQ(fnv1a64(std::span<const std::uint8_t>{bytes}), fnv1a64("abc"));
}

TEST(Mix64, IsBijectiveOnSamples) {
  // A bijective mixer must not collide; sample a large set.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 100000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 100000u);
}

TEST(Mix64, ZeroMapsToZero) {
  // Stafford mix13 of 0 is 0 (known fixed point) — document the property.
  EXPECT_EQ(mix64(0), 0u);
}

TEST(CnsHash, ConsecutiveKeysSpread) {
  // Sequential MAC addresses must land uniformly across a small modulus.
  const int kMod = 7;
  std::array<int, kMod> buckets{};
  const int n = 7000;
  for (int i = 0; i < n; ++i) {
    ++buckets[static_cast<std::size_t>(cns_hash(static_cast<std::uint64_t>(i)) % kMod)];
  }
  const double expected = static_cast<double>(n) / kMod;
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), expected, expected * 0.15);
  }
}

TEST(CnsPairHash, IsSymmetric) {
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 50; ++b) {
      EXPECT_EQ(cns_pair_hash(a, b), cns_pair_hash(b, a));
    }
  }
}

TEST(CnsPairHash, DistinctPairsMostlyDistinctSlots) {
  // The CNS's purpose: different pairs of one vehicle's neighbors should
  // usually map to different slots mod C. Uniform balls-in-bins with 7
  // balls into 7 bins yields ~4.5 distinct bins on average; check the mean
  // over many vehicles is in that regime.
  // Note the neighbor sets must differ per vehicle: for one fixed neighbor
  // set the slot multiset is (nearly) a fixed rotation of H(other) mod C.
  const int kMod = 7;
  double distinct_sum = 0.0;
  const int vehicles = 500;
  for (std::uint64_t me = 0; me < vehicles; ++me) {
    std::set<int> unique;
    for (std::uint64_t k = 0; k < 7; ++k) {
      const std::uint64_t other = 100000 + me * 64 + k;  // distinct per vehicle
      unique.insert(static_cast<int>(cns_pair_hash(me, other) % kMod));
    }
    distinct_sum += static_cast<double>(unique.size());
  }
  const double mean_distinct = distinct_sum / vehicles;
  EXPECT_GT(mean_distinct, 4.0);
  EXPECT_LT(mean_distinct, 5.0);
}

TEST(DeriveSeed, DistinctTriplesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  std::size_t total = 0;
  for (std::uint64_t base : {0ULL, 1ULL, 0xdeadbeefULL}) {
    for (std::uint64_t a = 0; a < 24; ++a) {
      for (std::uint64_t b = 0; b < 24; ++b) {
        seeds.insert(derive_seed(base, a, b));
        ++total;
      }
    }
  }
  EXPECT_EQ(seeds.size(), total);
}

TEST(DeriveSeed, BreaksAdditiveAliasing) {
  // The old experiment scheme `seed + rep*7919 + density*131` collides, e.g.
  // (rep, density_scaled) pairs that sum identically. derive_seed keys on
  // the density *index* and mixes, so these cells differ.
  EXPECT_NE(derive_seed(1, 0, 7919 / 131), derive_seed(1, 1, 0));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(42, 5, 9), derive_seed(42, 5, 9));
}

}  // namespace
}  // namespace mmv2v
