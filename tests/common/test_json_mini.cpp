#include "common/json_mini.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/textio.hpp"

namespace mmv2v {
namespace {

TEST(JsonMini, ParsesScalars) {
  EXPECT_TRUE(json::Value::parse("null").is_null());
  EXPECT_TRUE(json::Value::parse("true").boolean());
  EXPECT_FALSE(json::Value::parse("false").boolean());
  EXPECT_DOUBLE_EQ(json::Value::parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(json::Value::parse("-3.5e2").number(), -350.0);
  EXPECT_EQ(json::Value::parse("\"hi\"").str(), "hi");
  EXPECT_DOUBLE_EQ(json::Value::parse("  7  ").number(), 7.0);  // ws both sides
}

TEST(JsonMini, ParsesNestedContainers) {
  const json::Value doc = json::Value::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": []})");
  ASSERT_TRUE(doc.is_object());
  const json::Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.0);
  EXPECT_EQ(a->array()[2].string_or("b", ""), "c");
  EXPECT_TRUE(doc.find("d")->find("e")->is_null());
  EXPECT_TRUE(doc.find("f")->array().empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonMini, StringEscapes) {
  EXPECT_EQ(json::Value::parse(R"("\" \\ \/ \b \f \n \r \t")").str(),
            "\" \\ / \b \f \n \r \t");
  EXPECT_EQ(json::Value::parse(R"("Aé")").str(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8.
  EXPECT_EQ(json::Value::parse(R"("😀")").str(), "\xf0\x9f\x98\x80");
  // Lone high surrogate is malformed.
  EXPECT_THROW((void)json::Value::parse(R"("\ud83d")"), std::runtime_error);
  // Raw control characters must be escaped.
  EXPECT_THROW((void)json::Value::parse("\"a\nb\""), std::runtime_error);
}

TEST(JsonMini, RoundTripsTextioOutput) {
  // Everything the write-side helpers emit must parse back losslessly.
  std::string text = "{\"label\":";
  io::append_json_string(text, "line1\nline2 \"quoted\" \x01");
  text += ",\"pi\":";
  io::append_number(text, 3.141592653589793);
  text += ",\"big\":";
  io::append_number(text, std::uint64_t{1} << 53);
  text += "}";
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.find("label")->str(), "line1\nline2 \"quoted\" \x01");
  EXPECT_DOUBLE_EQ(doc.find("pi")->number(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(doc.find("big")->number(), 9007199254740992.0);
}

TEST(JsonMini, RejectsMalformedInput) {
  EXPECT_THROW((void)json::Value::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{'a':1}"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("01"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("+1"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("1."), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("\"unterminated"), std::runtime_error);
  // Trailing content after one complete value is an error.
  EXPECT_THROW((void)json::Value::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("{} {}"), std::runtime_error);
}

TEST(JsonMini, ErrorsCarryByteOffset) {
  try {
    (void)json::Value::parse("[1, 2, x]");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The message names the byte offset of the offending character.
    EXPECT_NE(std::string{e.what()}.find("7"), std::string::npos) << e.what();
  }
}

TEST(JsonMini, DuplicateKeysLastWins) {
  const json::Value doc = json::Value::parse(R"({"k": 1, "k": 2})");
  EXPECT_DOUBLE_EQ(doc.find("k")->number(), 2.0);
  EXPECT_EQ(doc.object().size(), 2u);  // both members retained in order
}

TEST(JsonMini, TypedAccessorsThrowOnMismatch) {
  const json::Value num = json::Value::parse("1");
  EXPECT_THROW((void)num.str(), std::runtime_error);
  EXPECT_THROW((void)num.array(), std::runtime_error);
  EXPECT_THROW((void)num.object(), std::runtime_error);
  EXPECT_THROW((void)num.boolean(), std::runtime_error);
  EXPECT_THROW((void)json::Value::parse("\"s\"").number(), std::runtime_error);
  // find on a non-object is a harmless nullptr, not a throw.
  EXPECT_EQ(num.find("k"), nullptr);
}

TEST(JsonMini, FallbackAccessors) {
  const json::Value doc = json::Value::parse(R"({"n": 2.5, "s": "txt", "b": true})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(doc.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("s", -1.0), -1.0);  // mistyped -> fallback
  EXPECT_EQ(doc.string_or("s", "def"), "txt");
  EXPECT_EQ(doc.string_or("absent", "def"), "def");
  EXPECT_EQ(doc.string_or("n", "def"), "def");
}

}  // namespace
}  // namespace mmv2v
