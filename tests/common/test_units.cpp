#include "common/units.hpp"

#include <gtest/gtest.h>

namespace mmv2v::units {
namespace {

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Units, KnownDbValues) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623, 1e-6);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
}

TEST(Units, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(28.0)), 28.0, 1e-12);
}

TEST(Units, SpeedConversions) {
  EXPECT_NEAR(kmh_to_mps(36.0), 10.0, 1e-12);
  EXPECT_NEAR(mps_to_kmh(10.0), 36.0, 1e-12);
  EXPECT_NEAR(mps_to_kmh(kmh_to_mps(72.5)), 72.5, 1e-12);
}

TEST(Units, DataAndTime) {
  EXPECT_DOUBLE_EQ(mbps_to_bps(200.0), 2e8);
  EXPECT_DOUBLE_EQ(gbps_to_bps(4.62), 4.62e9);
  EXPECT_DOUBLE_EQ(bits_to_megabits(2e8), 200.0);
  EXPECT_DOUBLE_EQ(us_to_s(15.0), 15e-6);
  EXPECT_DOUBLE_EQ(ms_to_s(20.0), 0.02);
  EXPECT_DOUBLE_EQ(s_to_ms(0.02), 20.0);
  EXPECT_DOUBLE_EQ(s_to_us(1.0), 1e6);
}

TEST(Units, ThermalNoise80211adChannel) {
  // -174 dBm/Hz over 2.16 GHz is about -80.65 dBm (paper Eq. 3 terms).
  EXPECT_NEAR(thermal_noise_dbm(), -80.654, 0.01);
  EXPECT_NEAR(watts_to_dbm(thermal_noise_watts()), thermal_noise_dbm(), 1e-9);
}

}  // namespace
}  // namespace mmv2v::units
