// MonotonicArena / ArenaAllocator coverage: alignment, overflow fallback,
// O(1) reset-reuse, and std-container adaptation. The arena is the storage
// backbone of the staged frame pipeline (DESIGN.md Section 11), so these
// pin its contract independently of any protocol.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mmv2v {
namespace {

std::uintptr_t addr(const void* p) { return reinterpret_cast<std::uintptr_t>(p); }

TEST(Arena, AlignmentRespected) {
  MonotonicArena arena{4096};
  // Interleave odd sizes with growing alignment requests; every pointer must
  // honor its alignment even when the bump cursor is left misaligned.
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
                            std::size_t{16}, std::size_t{32}, std::size_t{64}}) {
    void* misalign = arena.allocate(3, 1);
    ASSERT_NE(misalign, nullptr);
    void* p = arena.allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(addr(p) % align, 0u) << "align " << align;
  }
  EXPECT_EQ(arena.overflow_count(), 0u);
}

TEST(Arena, BumpAdvancesWithinCapacity) {
  MonotonicArena arena{1024};
  EXPECT_EQ(arena.capacity(), 1024u);
  EXPECT_EQ(arena.used(), 0u);
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.used(), 200u);
  EXPECT_LE(arena.used(), arena.capacity());
  EXPECT_EQ(arena.overflow_count(), 0u);
  // Both blocks are writable and distinct.
  std::memset(a, 0xAB, 100);
  std::memset(b, 0xCD, 100);
  EXPECT_EQ(static_cast<unsigned char*>(a)[99], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xCD);
}

TEST(Arena, ExhaustionFallsBackToHeap) {
  MonotonicArena arena{64};
  void* fits = arena.allocate(32, 8);
  ASSERT_NE(fits, nullptr);
  EXPECT_EQ(arena.overflow_count(), 0u);

  // Too large for the remaining block: served from the heap, still usable.
  void* big = arena.allocate(256, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(addr(big) % 16, 0u);
  std::memset(big, 0x5A, 256);
  EXPECT_EQ(arena.overflow_count(), 1u);

  void* big2 = arena.allocate(512, 64);
  ASSERT_NE(big2, nullptr);
  EXPECT_EQ(addr(big2) % 64, 0u);
  EXPECT_EQ(arena.overflow_count(), 2u);

  // reset() reclaims the overflow blocks; the miss counter stays monotonic
  // so steady-state probes can detect undersizing across frames.
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.overflow_count(), 2u);
}

TEST(Arena, ZeroCapacityDegradesToHeap) {
  MonotonicArena arena{0};
  EXPECT_EQ(arena.capacity(), 0u);
  void* p = arena.allocate(40, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, 40);
  EXPECT_EQ(arena.overflow_count(), 1u);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, ResetReusesTheSameStorage) {
  MonotonicArena arena{1024};
  void* first = arena.allocate(128, 16);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  void* again = arena.allocate(128, 16);
  // Monotonic bump from a rewound cursor: the same bytes come back, which is
  // what makes steady-state frames allocation-free.
  EXPECT_EQ(first, again);
}

TEST(Arena, MoveTransfersOwnership) {
  MonotonicArena src{512};
  void* p = src.allocate(64, 8);
  ASSERT_NE(p, nullptr);
  const std::size_t used = src.used();

  MonotonicArena dst{std::move(src)};
  EXPECT_EQ(dst.capacity(), 512u);
  EXPECT_EQ(dst.used(), used);
  // The block moved wholesale, so prior pointers remain valid via dst.
  std::memset(p, 0x3C, 64);
  EXPECT_EQ(src.capacity(), 0u);  // NOLINT(bugprone-use-after-move): post-move state is specified
  EXPECT_EQ(src.used(), 0u);
}

TEST(ArenaAllocator, VectorDrawsFromArena) {
  MonotonicArena arena{1 << 16};
  ArenaVector<int> v{ArenaAllocator<int>{arena}};
  for (int i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);
  // Growth (including the geometric reallocations) came out of the arena.
  EXPECT_GE(arena.used(), 1000 * sizeof(int));
  EXPECT_EQ(arena.overflow_count(), 0u);
}

TEST(ArenaAllocator, NodeContainerWorks) {
  MonotonicArena arena{1 << 16};
  using Alloc = ArenaAllocator<std::pair<const int, double>>;
  std::unordered_map<int, double, std::hash<int>, std::equal_to<int>, Alloc> map{Alloc{arena}};
  for (int i = 0; i < 200; ++i) map.emplace(i, i * 0.5);
  ASSERT_EQ(map.size(), 200u);
  EXPECT_DOUBLE_EQ(map.at(117), 58.5);
  map.erase(117);  // deallocate() is a no-op; erase must still be legal
  EXPECT_EQ(map.count(117), 0u);
  EXPECT_GT(arena.used(), 0u);
}

TEST(ArenaAllocator, EqualityIsArenaIdentity) {
  MonotonicArena a{256};
  MonotonicArena b{256};
  const ArenaAllocator<int> on_a{a};
  const ArenaAllocator<int> also_a{a};
  const ArenaAllocator<int> on_b{b};
  EXPECT_TRUE(on_a == also_a);
  EXPECT_TRUE(on_a != on_b);
  // Rebound copies (what node containers do internally) share the arena.
  const ArenaAllocator<double> rebound{on_a};
  EXPECT_EQ(rebound.arena(), &a);
  EXPECT_TRUE(rebound == ArenaAllocator<double>{also_a});
}

}  // namespace
}  // namespace mmv2v
