#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace mmv2v {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a{42};
  SplitMix64 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256pp a{7};
  Xoshiro256pp b{7};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformRangeIsHalfOpen) {
  Xoshiro256pp rng{123};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformBoundsRespected) {
  Xoshiro256pp rng{9};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformMeanApproximatesMidpoint) {
  Xoshiro256pp rng{11};
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.005);
}

TEST(Xoshiro, UniformIntInRange) {
  Xoshiro256pp rng{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all buckets should be hit";
}

TEST(Xoshiro, UniformIntInclusiveRange) {
  Xoshiro256pp rng{19};
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Xoshiro, BernoulliFrequencyMatchesP) {
  Xoshiro256pp rng{23};
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro, BernoulliDegenerateProbabilities) {
  Xoshiro256pp rng{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Xoshiro256pp parent{31};
  Xoshiro256pp childA = parent.fork(1);
  Xoshiro256pp childB = parent.fork(2);
  // Streams with different keys should not be identical.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA() == childB()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, ForkIsDeterministic) {
  Xoshiro256pp parent{31};
  Xoshiro256pp a = parent.fork(5);
  Xoshiro256pp b = parent.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256pp>);
  SUCCEED();
}

TEST(Xoshiro, ChiSquareByteUniformity) {
  // Coarse uniformity check over the top byte of each draw.
  Xoshiro256pp rng{37};
  std::array<int, 256> counts{};
  const int n = 256 * 1000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng() >> 56)];
  double chi2 = 0.0;
  const double expected = n / 256.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 255 dof; mean 255, stddev ~22.6. Accept within ~5 sigma.
  EXPECT_LT(chi2, 255.0 + 5.0 * 22.6);
  EXPECT_GT(chi2, 255.0 - 5.0 * 22.6);
}

}  // namespace
}  // namespace mmv2v
