#include "common/config_parser.hpp"

#include <gtest/gtest.h>

namespace mmv2v {
namespace {

TEST(ConfigMap, ParsesKeyValueLines) {
  const auto cfg = ConfigMap::parse("a = 1\ntraffic.density_vpl = 15.5\nname = hello world\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_double("traffic.density_vpl"), 15.5);
  EXPECT_EQ(cfg.get_string("name"), "hello world");
}

TEST(ConfigMap, IgnoresCommentsAndBlankLines) {
  const auto cfg = ConfigMap::parse("# header\n\n  \nkey = 3  # trailing comment\n");
  EXPECT_EQ(cfg.get_int("key"), 3);
  EXPECT_EQ(cfg.entries().size(), 1u);
}

TEST(ConfigMap, ThrowsOnMalformedLine) {
  EXPECT_THROW(ConfigMap::parse("not a key value"), std::runtime_error);
  EXPECT_THROW(ConfigMap::parse("ok = 1\n= empty key"), std::runtime_error);
}

TEST(ConfigMap, ErrorMessageNamesLine) {
  try {
    ConfigMap::parse("good = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(ConfigMap, TypedAccessorsRejectGarbage) {
  const auto cfg = ConfigMap::parse("x = 12abc\ny = maybe\n");
  EXPECT_FALSE(cfg.get_int("x").has_value());
  EXPECT_FALSE(cfg.get_double("x").has_value());
  EXPECT_FALSE(cfg.get_bool("y").has_value());
  EXPECT_TRUE(cfg.get_string("x").has_value());
}

TEST(ConfigMap, BoolSpellings) {
  const auto cfg =
      ConfigMap::parse("a = true\nb = FALSE\nc = 1\nd = 0\ne = Yes\nf = off\n");
  EXPECT_EQ(cfg.get_bool("a"), true);
  EXPECT_EQ(cfg.get_bool("b"), false);
  EXPECT_EQ(cfg.get_bool("c"), true);
  EXPECT_EQ(cfg.get_bool("d"), false);
  EXPECT_EQ(cfg.get_bool("e"), true);
  EXPECT_EQ(cfg.get_bool("f"), false);
}

TEST(ConfigMap, GetOrDefaults) {
  const auto cfg = ConfigMap::parse("present = 2\n");
  EXPECT_EQ(cfg.get_or("present", std::int64_t{9}), 2);
  EXPECT_EQ(cfg.get_or("missing", std::int64_t{9}), 9);
  EXPECT_DOUBLE_EQ(cfg.get_or("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_or("missing", std::string{"d"}), "d");
  EXPECT_EQ(cfg.get_or("missing", true), true);
}

TEST(ConfigMap, OverridesReplaceValues) {
  auto cfg = ConfigMap::parse("k = 1\n");
  cfg.apply_overrides({"k=2", "new.key = 7"});
  EXPECT_EQ(cfg.get_int("k"), 2);
  EXPECT_EQ(cfg.get_int("new.key"), 7);
  EXPECT_THROW(cfg.apply_overrides({"no-equals"}), std::runtime_error);
}

TEST(ConfigMap, MissingFileThrows) {
  EXPECT_THROW(ConfigMap::load("/nonexistent/path/config.txt"), std::runtime_error);
}

TEST(NetworkKnobs, DefaultsToLegacyRing) {
  const auto net = parse_network_knobs(ConfigMap::parse(""));
  EXPECT_EQ(net.topology, traffic::NetworkTopology::kLegacyRing);
}

TEST(NetworkKnobs, ParsesCityGrid) {
  const auto net = parse_network_knobs(ConfigMap::parse(
      "network.topology = city_grid\nnetwork.grid_rows = 5\n"
      "network.grid_cols = 6\nnetwork.block_m = 300\nnetwork.signal_green_s = 9\n"));
  EXPECT_EQ(net.topology, traffic::NetworkTopology::kCityGrid);
  EXPECT_EQ(net.grid_rows, 5);
  EXPECT_EQ(net.grid_cols, 6);
  EXPECT_DOUBLE_EQ(net.block_m, 300.0);
  EXPECT_DOUBLE_EQ(net.signal_green_s, 9.0);
}

TEST(NetworkKnobs, RejectsBadValues) {
  EXPECT_THROW(parse_network_knobs(ConfigMap::parse("network.topology = moebius\n")),
               std::runtime_error);
  EXPECT_THROW(parse_network_knobs(ConfigMap::parse("network.grid_rows = 1\n")),
               std::runtime_error);
  EXPECT_THROW(parse_network_knobs(ConfigMap::parse("network.block_m = -5\n")),
               std::runtime_error);
}

TEST(TierKnobs, ParsesFocusRegionList) {
  const auto tier = parse_tier_knobs(ConfigMap::parse(
      "tier.enabled = true\n"
      "tier.focus = 100, 200, 50 ; 1800,1800,500\n"
      "tier.kinematic_radius_m = 120\ntier.hysteresis_m = 15\n"
      "tier.promote_budget = 8\ntier.demote_budget = 9\n"
      "tier.onrails_duty_cycle = 0.05\n"));
  EXPECT_TRUE(tier.enabled);
  ASSERT_EQ(tier.focus.size(), 2u);
  EXPECT_DOUBLE_EQ(tier.focus[0].center.x, 100.0);
  EXPECT_DOUBLE_EQ(tier.focus[0].center.y, 200.0);
  EXPECT_DOUBLE_EQ(tier.focus[0].radius_m, 50.0);
  EXPECT_DOUBLE_EQ(tier.focus[1].radius_m, 500.0);
  EXPECT_DOUBLE_EQ(tier.kinematic_radius_m, 120.0);
  EXPECT_DOUBLE_EQ(tier.hysteresis_m, 15.0);
  EXPECT_EQ(tier.promote_budget, 8);
  EXPECT_EQ(tier.demote_budget, 9);
  EXPECT_DOUBLE_EQ(tier.onrails_duty_cycle, 0.05);
}

TEST(TierKnobs, DisabledByDefault) {
  const auto tier = parse_tier_knobs(ConfigMap::parse(""));
  EXPECT_FALSE(tier.enabled);
  EXPECT_TRUE(tier.focus.empty());
}

TEST(TierKnobs, RejectsBadValues) {
  EXPECT_THROW(parse_tier_knobs(ConfigMap::parse("tier.enabled = true\n")),
               std::runtime_error);  // no focus region
  EXPECT_THROW(parse_tier_knobs(ConfigMap::parse("tier.focus = 1,2\n")),
               std::runtime_error);  // not a triple
  EXPECT_THROW(parse_tier_knobs(ConfigMap::parse("tier.focus = 1,2,3,4\n")),
               std::runtime_error);  // trailing garbage
  EXPECT_THROW(parse_tier_knobs(ConfigMap::parse("tier.focus = 1,2,-3\n")),
               std::runtime_error);  // negative radius
  EXPECT_THROW(parse_tier_knobs(ConfigMap::parse("tier.onrails_duty_cycle = 1.5\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace mmv2v
