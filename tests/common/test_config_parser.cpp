#include "common/config_parser.hpp"

#include <gtest/gtest.h>

namespace mmv2v {
namespace {

TEST(ConfigMap, ParsesKeyValueLines) {
  const auto cfg = ConfigMap::parse("a = 1\ntraffic.density_vpl = 15.5\nname = hello world\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_double("traffic.density_vpl"), 15.5);
  EXPECT_EQ(cfg.get_string("name"), "hello world");
}

TEST(ConfigMap, IgnoresCommentsAndBlankLines) {
  const auto cfg = ConfigMap::parse("# header\n\n  \nkey = 3  # trailing comment\n");
  EXPECT_EQ(cfg.get_int("key"), 3);
  EXPECT_EQ(cfg.entries().size(), 1u);
}

TEST(ConfigMap, ThrowsOnMalformedLine) {
  EXPECT_THROW(ConfigMap::parse("not a key value"), std::runtime_error);
  EXPECT_THROW(ConfigMap::parse("ok = 1\n= empty key"), std::runtime_error);
}

TEST(ConfigMap, ErrorMessageNamesLine) {
  try {
    ConfigMap::parse("good = 1\nbad line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(ConfigMap, TypedAccessorsRejectGarbage) {
  const auto cfg = ConfigMap::parse("x = 12abc\ny = maybe\n");
  EXPECT_FALSE(cfg.get_int("x").has_value());
  EXPECT_FALSE(cfg.get_double("x").has_value());
  EXPECT_FALSE(cfg.get_bool("y").has_value());
  EXPECT_TRUE(cfg.get_string("x").has_value());
}

TEST(ConfigMap, BoolSpellings) {
  const auto cfg =
      ConfigMap::parse("a = true\nb = FALSE\nc = 1\nd = 0\ne = Yes\nf = off\n");
  EXPECT_EQ(cfg.get_bool("a"), true);
  EXPECT_EQ(cfg.get_bool("b"), false);
  EXPECT_EQ(cfg.get_bool("c"), true);
  EXPECT_EQ(cfg.get_bool("d"), false);
  EXPECT_EQ(cfg.get_bool("e"), true);
  EXPECT_EQ(cfg.get_bool("f"), false);
}

TEST(ConfigMap, GetOrDefaults) {
  const auto cfg = ConfigMap::parse("present = 2\n");
  EXPECT_EQ(cfg.get_or("present", std::int64_t{9}), 2);
  EXPECT_EQ(cfg.get_or("missing", std::int64_t{9}), 9);
  EXPECT_DOUBLE_EQ(cfg.get_or("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_or("missing", std::string{"d"}), "d");
  EXPECT_EQ(cfg.get_or("missing", true), true);
}

TEST(ConfigMap, OverridesReplaceValues) {
  auto cfg = ConfigMap::parse("k = 1\n");
  cfg.apply_overrides({"k=2", "new.key = 7"});
  EXPECT_EQ(cfg.get_int("k"), 2);
  EXPECT_EQ(cfg.get_int("new.key"), 7);
  EXPECT_THROW(cfg.apply_overrides({"no-equals"}), std::runtime_error);
}

TEST(ConfigMap, MissingFileThrows) {
  EXPECT_THROW(ConfigMap::load("/nonexistent/path/config.txt"), std::runtime_error);
}

}  // namespace
}  // namespace mmv2v
