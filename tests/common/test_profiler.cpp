#include "common/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/json_mini.hpp"

namespace mmv2v {
namespace {

/// Every profiler test owns the global registry for its duration; reset on
/// both ends so tests compose in any order. In a MMV2V_PROFILER=OFF build
/// PROF_SCOPE compiles to nothing, so every recording test is skipped —
/// except DisabledRecordsNothing, whose expectation holds either way.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::reset();
    prof::set_enabled(true);
  }
  void TearDown() override {
    prof::set_enabled(false);
    prof::reset();
  }
};

void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

#if defined(MMV2V_PROFILER_DISABLED)
#define SKIP_WITHOUT_PROFILER() GTEST_SKIP() << "profiler compiled out (MMV2V_PROFILER=OFF)"
#else
#define SKIP_WITHOUT_PROFILER() ((void)0)
#endif

const prof::ReportNode* find_path(const std::vector<prof::ReportNode>& nodes,
                                  std::string_view path) {
  for (const prof::ReportNode& n : nodes) {
    if (n.path == path) return &n;
  }
  return nullptr;
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  prof::set_enabled(false);
  {
    PROF_SCOPE("should.not.appear");
  }
  EXPECT_EQ(prof::total_records(), 0u);
  EXPECT_TRUE(prof::report().empty());
}

TEST_F(ProfilerTest, NestedScopesBuildHierarchy) {
  SKIP_WITHOUT_PROFILER();
  for (int i = 0; i < 3; ++i) {
    PROF_SCOPE("outer");
    spin_for(std::chrono::microseconds{200});
    {
      PROF_SCOPE("inner");
      spin_for(std::chrono::microseconds{100});
    }
  }
  const std::vector<prof::ReportNode> nodes = prof::report();
  const prof::ReportNode* outer = find_path(nodes, "outer");
  const prof::ReportNode* inner = find_path(nodes, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  // Child time is contained in the parent, and self = total - children.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
  // Each invocation spun >= 100us inner, >= 300us outer (inner included).
  EXPECT_GE(inner->total_ns, 3 * 100'000);
  EXPECT_GE(outer->total_ns, 3 * 300'000);
  EXPECT_GT(inner->p50_ns, 0.0);
  EXPECT_GE(inner->p99_ns, inner->p50_ns);
}

TEST_F(ProfilerTest, SameNameAtDifferentDepthsStaysSeparate) {
  SKIP_WITHOUT_PROFILER();
  {
    PROF_SCOPE("step");
    PROF_SCOPE("step");
  }
  const std::vector<prof::ReportNode> nodes = prof::report();
  const prof::ReportNode* root = find_path(nodes, "step");
  const prof::ReportNode* nested = find_path(nodes, "step/step");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(root->count, 1u);
  EXPECT_EQ(nested->count, 1u);
}

TEST_F(ProfilerTest, MergesAcrossThreads) {
  SKIP_WITHOUT_PROFILER();
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([] {
        for (int i = 0; i < kIters; ++i) {
          PROF_SCOPE("worker.item");
        }
      });
    }
  }  // joined
  const std::vector<prof::ReportNode> nodes = prof::report();
  const prof::ReportNode* item = find_path(nodes, "worker.item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->count, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ProfilerTest, ResetClearsRecords) {
  SKIP_WITHOUT_PROFILER();
  {
    PROF_SCOPE("transient");
  }
  EXPECT_GT(prof::total_records(), 0u);
  prof::reset();
  EXPECT_EQ(prof::total_records(), 0u);
  EXPECT_TRUE(prof::report().empty());
}

TEST_F(ProfilerTest, ReportJsonParses) {
  SKIP_WITHOUT_PROFILER();
  {
    PROF_SCOPE("a");
    PROF_SCOPE("b");
  }
  const json::Value doc = json::Value::parse(prof::report_json());
  const json::Value* scopes = doc.find("scopes");
  ASSERT_NE(scopes, nullptr);
  ASSERT_EQ(scopes->array().size(), 2u);
  const json::Value& first = scopes->array()[0];
  EXPECT_EQ(first.find("path")->str(), "a");
  EXPECT_EQ(first.find("count")->number(), 1.0);
  EXPECT_GE(first.find("total_ns")->number(), 0.0);
  const json::Value& second = scopes->array()[1];
  EXPECT_EQ(second.find("path")->str(), "a/b");
  EXPECT_EQ(second.find("depth")->number(), 1.0);
}

TEST_F(ProfilerTest, ChromeTraceIsValidJsonWithThreadTracks) {
  SKIP_WITHOUT_PROFILER();
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < 2; ++t) {
      pool.emplace_back([] {
        PROF_SCOPE("track.scope");
        spin_for(std::chrono::microseconds{50});
      });
    }
  }
  const json::Value doc = json::Value::parse(prof::chrome_trace_json());
  ASSERT_TRUE(doc.is_array());
  int meta_threads = 0;
  int complete_events = 0;
  for (const json::Value& event : doc.array()) {
    const std::string ph = event.string_or("ph", "");
    if (ph == "M" && event.string_or("name", "") == "thread_name") ++meta_threads;
    if (ph == "X") {
      ++complete_events;
      EXPECT_EQ(event.find("name")->str(), "track.scope");
      EXPECT_EQ(event.string_or("cat", ""), "mmv2v");
      EXPECT_GE(event.find("dur")->number(), 50.0);  // microseconds
      ASSERT_NE(event.find("ts"), nullptr);
      ASSERT_NE(event.find("tid"), nullptr);
    }
  }
  EXPECT_EQ(meta_threads, 2);
  EXPECT_EQ(complete_events, 2);
}

TEST_F(ProfilerTest, ReportTextListsScopes) {
  SKIP_WITHOUT_PROFILER();
  {
    PROF_SCOPE("alpha");
    PROF_SCOPE("beta");
  }
  const std::string text = prof::report_text();
  EXPECT_NE(text.find("scope"), std::string::npos);  // header
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("  beta"), std::string::npos);  // indented child
}

}  // namespace
}  // namespace mmv2v
