// .mmtrace flight-recorder format tests (DESIGN.md Section 14): codec
// round-trips, the CRC check vector, synthetic multi-chunk encode/decode,
// corruption recovery, and the headline guarantee — a binary golden sweep
// replayed to JSONL is byte-identical to the direct JSONL writer and keeps
// the checked-in golden digest, for every thread count, shard count and
// flush cadence.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"
#include "obs/crc32.hpp"
#include "obs/mmtrace.hpp"
#include "obs/varint.hpp"

namespace mmv2v::obs {
namespace {

using core::ScenarioConfig;
using core::SweepTrace;
using core::TraceEvent;
using core::golden::golden_experiment;
using core::golden::golden_scenario;
using core::golden::hex64;
using core::golden::kGoldenDigest;
using core::golden::mmv2v_factory;

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,     1,     127,   128,
                                  300,   16383, 16384, 0xdeadbeefULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::string buf;
    put_varint(buf, v);
    EXPECT_LE(buf.size(), 10u);
    std::size_t pos = 0;
    std::uint64_t decoded = 0;
    ASSERT_TRUE(get_varint(buf, pos, decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size()) << "decoder must consume exactly the encoding";
  }
}

TEST(Varint, RejectsTruncatedInput) {
  std::string buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::size_t pos = 0;
    std::uint64_t decoded = 0;
    EXPECT_FALSE(get_varint(std::string_view{buf}.substr(0, cut), pos, decoded));
  }
  // Over-long: 11 continuation bytes never terminate a valid varint.
  const std::string overlong(11, '\x80');
  std::size_t pos = 0;
  std::uint64_t decoded = 0;
  EXPECT_FALSE(get_varint(overlong, pos, decoded));
}

TEST(Varint, ZigzagRoundTripsSignedExtremes) {
  const std::int64_t values[] = {0,  -1, 1,  -2, 2,  63, -64, 1'000'000, -1'000'000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  // Small magnitudes of either sign stay small (the point of the mapping).
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(Crc32, MatchesCheckVector) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

// Build a small synthetic trace through a tiny-chunk writer and read it
// back: every record must survive chunk boundaries, string interning resets,
// JSON escaping and f64 bit patterns.
TEST(Mmtrace, SyntheticMultiChunkRoundTrip) {
  MmtraceWriter writer{/*chunk_bytes=*/64};  // force many chunks
  std::vector<std::string> expected_lines;
  std::string expected_jsonl;

  const std::string manifest = R"({"ev":"manifest","note":"synthetic"})";
  writer.add_line(manifest, /*meta=*/true);

  const double weird = std::bit_cast<double>(0x7ff8dead'beef0001ULL);  // a NaN payload
  for (int i = 0; i < 40; ++i) {
    TraceEvent e{i % 2 == 0 ? "alpha" : "beta\"quoted\""};
    e.frame = static_cast<std::uint64_t>(i / 3);
    e.time_s = 0.02 * (i / 3);
    e.u64("round", static_cast<std::uint64_t>(i));
    e.u64("max", std::numeric_limits<std::uint64_t>::max());
    e.f64("gain", i == 7 ? weird : -3.25 * i);
    e.str("who", i % 5 == 0 ? "tab\there" : "plain");
    writer.add_event(e);
    e.append_json(expected_jsonl);
    expected_jsonl += '\n';
    if (i % 10 == 0) {
      std::string line = R"({"ev":"cell_begin","i":)" + std::to_string(i) + "}";
      writer.add_line(line);
      expected_lines.push_back(line);
      expected_jsonl += line;
      expected_jsonl += '\n';
    }
  }

  std::string file = mmtrace_file_header();
  std::vector<ChunkInfo> chunks;
  append_mmtrace_chunks(file, chunks, writer.take());
  append_mmtrace_index(file, chunks);
  ASSERT_GT(chunks.size(), 1u) << "64-byte chunks must split this stream";
  ASSERT_TRUE(is_mmtrace(file));

  MmtraceStats stats;
  std::size_t meta_seen = 0;
  std::size_t lines_seen = 0;
  std::string replayed;
  const MmtraceReader reader{file};
  stats = reader.for_each([&](const MmtraceRecord& r) {
    switch (r.tag) {
      case MmtraceTag::kMetaLine:
        ++meta_seen;
        EXPECT_EQ(r.line, manifest);
        break;
      case MmtraceTag::kLine:
        EXPECT_EQ(r.line, expected_lines[lines_seen++]);
        replayed += r.line;
        replayed += '\n';
        break;
      case MmtraceTag::kEvent:
        r.event.append_json(replayed);
        replayed += '\n';
        break;
      case MmtraceTag::kIntern:
        break;
    }
  });
  EXPECT_EQ(stats.chunks, chunks.size());
  EXPECT_EQ(stats.skipped_chunks, 0u);
  EXPECT_TRUE(stats.index_ok);
  EXPECT_EQ(stats.events, 40u);
  EXPECT_EQ(meta_seen, 1u);
  EXPECT_EQ(lines_seen, expected_lines.size());

  // Line-for-line interleaving preserved, bytes included (NaN bit pattern
  // and escapes travel through the f64 raw encoding / intern table).
  EXPECT_EQ(replayed, expected_jsonl);
  EXPECT_EQ(mmtrace_to_jsonl(file, /*include_meta=*/false), expected_jsonl);
  EXPECT_EQ(mmtrace_to_jsonl(file, /*include_meta=*/true),
            manifest + "\n" + expected_jsonl);
}

TEST(Mmtrace, EmptyWriterYieldsValidEmptyFile) {
  MmtraceWriter writer;
  std::string file = mmtrace_file_header();
  std::vector<ChunkInfo> chunks;
  append_mmtrace_chunks(file, chunks, writer.take());
  append_mmtrace_index(file, chunks);
  EXPECT_TRUE(is_mmtrace(file));
  EXPECT_EQ(chunks.size(), 0u);

  MmtraceStats stats;
  EXPECT_EQ(mmtrace_to_jsonl(file, true, &stats), "");
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(stats.skipped_chunks, 0u);
  EXPECT_TRUE(stats.index_ok);
}

TEST(Mmtrace, DetectsForeignBytes) {
  EXPECT_FALSE(is_mmtrace(""));
  EXPECT_FALSE(is_mmtrace("MMTRACE"));                      // too short
  EXPECT_FALSE(is_mmtrace(R"({"ev":"manifest"})"));         // a JSONL trace
  EXPECT_FALSE(is_mmtrace(std::string("NOTTRACE") + "\x01\x00\x00\x00"));

  // Garbage with no header: the reader reports one skipped "chunk" and stops.
  const MmtraceStats stats = MmtraceReader{"garbage bytes, not a trace"}.for_each(
      [](const MmtraceRecord&) { FAIL() << "no record should decode"; });
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(stats.skipped_chunks, 1u);
}

// ---- golden-sweep equivalence ----------------------------------------------

SweepTrace run_golden(core::TraceFormat format, int threads, int shards,
                      std::size_t flush_events) {
  ScenarioConfig base = golden_scenario();
  base.trace.format = format;
  base.trace.flush_events = flush_events;
  base.engine.world_shards = shards;
  SweepTrace trace;
  const auto points =
      run_density_sweep(golden_experiment(threads), base, mmv2v_factory(), &trace);
  EXPECT_EQ(points.size(), 1u);
  return trace;
}

TEST(MmtraceGolden, BinarySweepReplaysByteIdenticalToJsonl) {
  const SweepTrace jsonl =
      run_golden(core::TraceFormat::kJsonl, /*threads=*/1, /*shards=*/1, 0);
  ASSERT_FALSE(jsonl.events_jsonl.empty());
  ASSERT_EQ(jsonl.digest, kGoldenDigest)
      << "JSONL reference diverged first; binary comparison is meaningless. "
         "New digest: " << hex64(jsonl.digest);
  EXPECT_TRUE(jsonl.binary.empty()) << "JSONL runs must not pay for the binary image";

  for (const int threads : {1, 4}) {
    for (const int shards : {1, 2}) {
      const SweepTrace binary =
          run_golden(core::TraceFormat::kBinary, threads, shards, 0);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      ASSERT_FALSE(binary.binary.empty());
      EXPECT_TRUE(is_mmtrace(binary.binary));
      // events_jsonl / digest are derived by replaying the .mmtrace image.
      EXPECT_EQ(binary.events_jsonl, jsonl.events_jsonl);
      EXPECT_EQ(binary.digest, kGoldenDigest);

      MmtraceStats stats;
      EXPECT_EQ(mmtrace_to_jsonl(binary.binary, /*include_meta=*/false, &stats),
                jsonl.events_jsonl);
      EXPECT_EQ(stats.skipped_chunks, 0u);
      EXPECT_TRUE(stats.index_ok);
      EXPECT_GT(stats.meta_lines, 0u) << "manifest meta chunk missing";
    }
  }
}

TEST(MmtraceGolden, FlushCadenceDoesNotChangeTheBytes) {
  // Bounded flushing streams the same events through the same encoder; the
  // serialized image must be identical for any cadence.
  const SweepTrace unbuffered =
      run_golden(core::TraceFormat::kBinary, /*threads=*/2, /*shards=*/1, 0);
  const SweepTrace chunky =
      run_golden(core::TraceFormat::kBinary, /*threads=*/2, /*shards=*/1, 7);
  EXPECT_EQ(unbuffered.binary, chunky.binary);
  EXPECT_EQ(chunky.digest, kGoldenDigest);

  const SweepTrace jsonl_flushed =
      run_golden(core::TraceFormat::kJsonl, /*threads=*/2, /*shards=*/1, 3);
  EXPECT_EQ(jsonl_flushed.digest, kGoldenDigest);
}

TEST(MmtraceGolden, CorruptedChunkIsSkippedNotFatal) {
  SweepTrace trace = run_golden(core::TraceFormat::kBinary, 1, 1, 0);
  ASSERT_FALSE(trace.binary.empty());
  MmtraceStats clean;
  const std::string full = mmtrace_to_jsonl(trace.binary, false, &clean);
  ASSERT_GT(clean.chunks, 1u);
  ASSERT_GT(clean.events, 0u);

  // Flip one payload byte inside the second chunk (the first is the manifest
  // meta chunk, which a digest replay skips anyway): its CRC fails, it is
  // skipped, and every other chunk still decodes.
  std::string damaged = trace.binary;
  const std::size_t second_chunk =
      kFileHeaderBytes + kChunkHeaderBytes + detail::get_u32(damaged, kFileHeaderBytes + 4);
  ASSERT_EQ(detail::get_u32(damaged, second_chunk), kChunkMagic);
  const std::size_t victim = second_chunk + kChunkHeaderBytes + 5;
  damaged[victim] = static_cast<char>(damaged[victim] ^ 0xff);
  MmtraceStats stats;
  const std::string partial = mmtrace_to_jsonl(damaged, false, &stats);
  EXPECT_EQ(stats.skipped_chunks, 1u);
  EXPECT_EQ(stats.chunks, clean.chunks - 1);
  EXPECT_TRUE(stats.index_ok) << "the index chunk was not touched";
  EXPECT_LT(partial.size(), full.size());
  EXPECT_GT(stats.events + stats.lines, 0u) << "surviving chunks must decode";
}

TEST(MmtraceGolden, TruncatedFileStopsCleanly) {
  const SweepTrace trace = run_golden(core::TraceFormat::kBinary, 1, 1, 0);
  ASSERT_GT(trace.binary.size(), kFileHeaderBytes + kChunkHeaderBytes + 32);

  // Cut mid-first-chunk: no index, no complete chunk — clean empty replay.
  const std::string stub = trace.binary.substr(0, kFileHeaderBytes + kChunkHeaderBytes + 8);
  MmtraceStats stats;
  EXPECT_EQ(mmtrace_to_jsonl(stub, true, &stats), "");
  EXPECT_FALSE(stats.index_ok);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_EQ(stats.skipped_chunks, 1u);

  // Cut just past the footer magic's start: index unusable, chunks intact.
  const std::string no_footer = trace.binary.substr(0, trace.binary.size() - 4);
  MmtraceStats tail_stats;
  const std::string replay = mmtrace_to_jsonl(no_footer, false, &tail_stats);
  EXPECT_FALSE(tail_stats.index_ok);
  EXPECT_EQ(replay, mmtrace_to_jsonl(trace.binary, false));
}

TEST(MmtraceGolden, BinaryIsSubstantiallySmallerThanJsonl) {
  const SweepTrace jsonl = run_golden(core::TraceFormat::kJsonl, 1, 1, 0);
  const SweepTrace binary = run_golden(core::TraceFormat::kBinary, 1, 1, 0);
  ASSERT_FALSE(jsonl.events_jsonl.empty());
  ASSERT_FALSE(binary.binary.empty());
  // Interning + delta encoding should beat the text form by a wide margin;
  // gate conservatively at 3x so the test is stable across event-mix drift
  // (bench/micro_trace.cpp tracks the precise ratio).
  EXPECT_LT(binary.binary.size() * 3, jsonl.events_jsonl.size())
      << "binary=" << binary.binary.size() << "B jsonl=" << jsonl.events_jsonl.size() << "B";
}

}  // namespace
}  // namespace mmv2v::obs
