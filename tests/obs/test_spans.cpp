// Link-lifecycle span tests (DESIGN.md Section 14): the online span builder
// must reconcile exactly against the protocol's own fault/UDT counters on a
// faulted long-horizon run, the post-hoc replay paths (from the recorded
// events and from an .mmtrace round trip) must reproduce the online rollup,
// span events must be byte-identical across trace formats, and the whole
// machinery must stay off — and digest-invisible — by default.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"
#include "core/simulation.hpp"
#include "obs/mmtrace.hpp"
#include "obs/span_builder.hpp"
#include "obs/span_events.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

namespace mmv2v::obs {
namespace {

using core::OhmSimulation;
using core::ScenarioConfig;
using core::SimulationOptions;
using core::SweepTrace;
using core::golden::golden_experiment;
using core::golden::golden_scenario;
using core::golden::kGoldenDigest;
using core::golden::mmv2v_factory;

// The golden ~20-vehicle world run long enough (~200 frames) under a fault
// cocktail — bursty control loss, churn, clock drift, GPS noise — that every
// span outcome class has a chance to occur.
ScenarioConfig faulted_scenario() {
  ScenarioConfig s = golden_scenario();
  s.horizon_s = 4.0;
  s.traffic.density_vpl = 10.0;
  s.seed = 20260806;
  s.fault.ctrl_loss = 0.05;
  s.fault.churn_rate = 0.02;
  s.fault.clock_drift_us = 50.0;
  s.fault.gps_sigma_m = 1.0;
  s.trace.spans = true;
  return s;
}

std::uint64_t counter_value(const MetricsRegistry& m, std::string_view name) {
  const Counter* c = m.find_counter(name);
  return c == nullptr ? 0 : c->value();
}

TEST(SpanReconciliation, OutcomesMatchFaultAndUdtCountersExactly) {
  const ScenarioConfig s = faulted_scenario();
  protocols::MmV2VParams params;
  params.seed = s.seed;
  protocols::MmV2VProtocol protocol{params};
  OhmSimulation sim{s, protocol, SimulationOptions{.instrument = true}};
  sim.run();

  const MetricsRegistry& m = sim.metrics();
  // The fault cocktail must actually bite, or the reconciliation below is
  // vacuous.
  const std::uint64_t fault_truncations = counter_value(m, "fault.udt_truncations");
  ASSERT_GT(fault_truncations, 0u)
      << "fault knobs no longer produce truncations; retune faulted_scenario()";
  ASSERT_GT(counter_value(m, "span.count"), 0u);

  // Guarantee 1: churn span events are emitted at the truncation call site,
  // so the totals agree exactly.
  EXPECT_EQ(counter_value(m, "span.truncations"), fault_truncations);

  // Guarantee 2: the span rollup adds per-transfer bits in the same (event)
  // order as the udt.delivered_bits gauge — bit-exact double equality.
  const Gauge* span_bits = m.find_gauge("span.delivered_bits");
  const Gauge* udt_bits = m.find_gauge("udt.delivered_bits");
  ASSERT_NE(span_bits, nullptr);
  ASSERT_NE(udt_bits, nullptr);
  EXPECT_EQ(span_bits->value(), udt_bits->value());

  // Every span gets exactly one terminal outcome.
  std::uint64_t outcome_sum = 0;
  for (std::size_t i = 0; i < kSpanOutcomeCount; ++i) {
    std::string name{"span.outcome."};
    name += span_outcome_name(static_cast<SpanOutcome>(i));
    outcome_sum += counter_value(m, name);
  }
  EXPECT_EQ(outcome_sum, counter_value(m, "span.count"));
  EXPECT_GT(counter_value(m, "span.outcome.delivered"), 0u)
      << "a 4 s run should deliver on at least one pair";
}

TEST(SpanReconciliation, PostHocReplayReproducesTheOnlineRollup) {
  const ScenarioConfig s = faulted_scenario();
  protocols::MmV2VParams params;
  params.seed = s.seed;
  protocols::MmV2VProtocol protocol{params};
  OhmSimulation sim{s, protocol, SimulationOptions{.instrument = true}};
  sim.run();
  const MetricsRegistry& online = sim.metrics();
  ASSERT_GT(counter_value(online, "span.count"), 0u);

  // Replay 1: straight from the recorded event buffer.
  SpanBuilder from_events;
  for (const core::TraceEvent& e : sim.trace().events()) from_events.on_event(e);

  // Replay 2: through a tiny-chunk .mmtrace round trip — interning, delta
  // coding and chunk-boundary resets must not perturb attribution.
  MmtraceWriter writer{/*chunk_bytes=*/512};
  for (const core::TraceEvent& e : sim.trace().events()) writer.add_event(e);
  std::string file = mmtrace_file_header();
  std::vector<ChunkInfo> chunks;
  append_mmtrace_chunks(file, chunks, writer.take());
  append_mmtrace_index(file, chunks);
  SpanBuilder from_binary;
  const MmtraceStats stats = MmtraceReader{file}.for_each([&](const MmtraceRecord& r) {
    if (r.tag == MmtraceTag::kEvent) from_binary.on_event(r.event);
  });
  ASSERT_EQ(stats.skipped_chunks, 0u);
  ASSERT_GT(stats.chunks, 1u);

  for (SpanBuilder* replay : {&from_events, &from_binary}) {
    const SpanRollup r = replay->rollup();
    EXPECT_EQ(r.spans, counter_value(online, "span.count"));
    EXPECT_EQ(r.truncations, counter_value(online, "span.truncations"));
    const Gauge* bits = online.find_gauge("span.delivered_bits");
    ASSERT_NE(bits, nullptr);
    EXPECT_EQ(r.delivered_bits, bits->value());
    for (std::size_t i = 0; i < kSpanOutcomeCount; ++i) {
      std::string name{"span.outcome."};
      name += span_outcome_name(static_cast<SpanOutcome>(i));
      EXPECT_EQ(r.outcomes[i], counter_value(online, name)) << name;
    }
  }
}

TEST(SpanEvents, SweepIsByteIdenticalAcrossTraceFormats) {
  ScenarioConfig base = golden_scenario();
  base.trace.spans = true;

  SweepTrace jsonl;
  base.trace.format = core::TraceFormat::kJsonl;
  ASSERT_EQ(run_density_sweep(golden_experiment(2), base, mmv2v_factory(), &jsonl).size(), 1u);

  SweepTrace binary;
  base.trace.format = core::TraceFormat::kBinary;
  ASSERT_EQ(run_density_sweep(golden_experiment(2), base, mmv2v_factory(), &binary).size(), 1u);

  // Span events ride the same recorder, so the format equivalence holds for
  // the extended stream too.
  ASSERT_FALSE(jsonl.events_jsonl.empty());
  EXPECT_EQ(jsonl.events_jsonl, binary.events_jsonl);
  EXPECT_EQ(jsonl.digest, binary.digest);
  // Enabling spans extends the stream — the digest must move off the golden
  // value (it is an intentional, opt-in change).
  EXPECT_NE(jsonl.digest, kGoldenDigest);
  EXPECT_NE(jsonl.events_jsonl.find("\"ev\":\"span_disc\""), std::string::npos);
  EXPECT_NE(jsonl.events_jsonl.find("\"ev\":\"span_udt\""), std::string::npos);
  EXPECT_NE(jsonl.events_jsonl.find("\"span.count\":"), std::string::npos)
      << "cell_end metrics must carry the span rollup";
}

TEST(SpanEvents, OffByDefaultAndInvisibleToTheGoldenDigest) {
  // Same faulted run, spans left at the default: no span.* metric names may
  // register (they would change the canonical metrics JSON).
  ScenarioConfig s = faulted_scenario();
  s.trace.spans = false;
  protocols::MmV2VParams params;
  params.seed = s.seed;
  protocols::MmV2VProtocol protocol{params};
  OhmSimulation sim{s, protocol, SimulationOptions{.instrument = true}};
  sim.run();
  EXPECT_EQ(sim.metrics().find_counter("span.count"), nullptr);
  EXPECT_EQ(sim.metrics().find_gauge("span.delivered_bits"), nullptr);

  // And the default golden sweep stream contains no span events at all.
  SweepTrace trace;
  ASSERT_EQ(run_density_sweep(golden_experiment(1), golden_scenario(), mmv2v_factory(), &trace)
                .size(),
            1u);
  EXPECT_EQ(trace.digest, kGoldenDigest);
  EXPECT_EQ(trace.events_jsonl.find("\"ev\":\"span_"), std::string::npos);
}

}  // namespace
}  // namespace mmv2v::obs
