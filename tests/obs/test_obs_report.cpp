// Streaming aggregator + run-report tests (DESIGN.md Section 14): per-cell
// rollup folding and the atomic snapshot file, the on_cell_done wiring into
// a real sweep, stacked-bar chart plumbing, and the report loader's parity
// between binary and JSONL inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json_mini.hpp"
#include "common/logging.hpp"
#include "common/svg_plot.hpp"
#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"
#include "obs/atomic_file.hpp"
#include "obs/report.hpp"
#include "obs/stream_aggregator.hpp"

namespace mmv2v::obs {
namespace {

using core::CellProgress;
using core::ScenarioConfig;
using core::SweepTrace;
using core::golden::golden_experiment;
using core::golden::golden_scenario;
using core::golden::mmv2v_factory;

CellProgress make_cell(std::size_t completed, double density, int rep, double ocr) {
  CellProgress c;
  c.index = completed - 1;
  c.completed = completed;
  c.total = 3;
  c.density_vpl = density;
  c.rep = rep;
  c.seed = 1000 + completed;
  c.protocol = "mmV2V";
  c.degree = 4.0 + rep;
  c.ocr = ocr;
  c.atp = 0.5 * ocr;
  c.dtp = 0.25 * ocr;
  c.fairness = 0.9;
  return c;
}

TEST(StreamAggregator, FoldsCellsIntoSortedDensityRollups) {
  StreamAggregator agg;
  // Deliberately out of density order: rollups() must sort.
  agg.on_cell(make_cell(1, 20.0, 0, 0.6));
  agg.on_cell(make_cell(2, 10.0, 0, 0.8));
  agg.on_cell(make_cell(3, 10.0, 1, 0.9));

  EXPECT_EQ(agg.cells_seen(), 3u);
  EXPECT_EQ(agg.write_failures(), 0u);
  const std::vector<DensityRollup> rollups = agg.rollups();
  ASSERT_EQ(rollups.size(), 2u);
  EXPECT_EQ(rollups[0].density_vpl, 10.0);
  EXPECT_EQ(rollups[0].cells, 2u);
  EXPECT_DOUBLE_EQ(rollups[0].ocr.mean(), 0.85);
  EXPECT_EQ(rollups[1].density_vpl, 20.0);
  EXPECT_EQ(rollups[1].cells, 1u);
  EXPECT_DOUBLE_EQ(rollups[1].ocr.mean(), 0.6);

  // The snapshot document is valid JSON with the documented shape.
  const json::Value doc = json::Value::parse(agg.snapshot_json());
  EXPECT_EQ(doc.number_or("completed", -1.0), 3.0);
  EXPECT_EQ(doc.number_or("total", -1.0), 3.0);
  EXPECT_EQ(doc.string_or("protocol", ""), "mmV2V");
  const json::Value* densities = doc.find("densities");
  ASSERT_NE(densities, nullptr);
  ASSERT_EQ(densities->array().size(), 2u);
  EXPECT_EQ(densities->array()[0].number_or("density_vpl", -1.0), 10.0);
  EXPECT_EQ(densities->array()[0].number_or("cells", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(densities->array()[0].number_or("ocr_mean", -1.0), 0.85);
}

TEST(StreamAggregator, RewritesTheSnapshotFileOnEveryCell) {
  const std::string path = ::testing::TempDir() + "mmv2v_progress_snapshot.json";
  StreamAggregator agg{path};
  agg.on_cell(make_cell(1, 15.0, 0, 0.7));
  EXPECT_EQ(agg.write_failures(), 0u);

  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "snapshot file missing after on_cell";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), agg.snapshot_json());

  // A second cell replaces the document wholesale (tmp + rename — readers
  // never see a partial write, so the file always parses).
  agg.on_cell(make_cell(2, 15.0, 1, 0.5));
  std::ifstream again{path, std::ios::binary};
  std::ostringstream buf2;
  buf2 << again.rdbuf();
  EXPECT_EQ(buf2.str(), agg.snapshot_json());
  EXPECT_NO_THROW(json::Value::parse(buf2.str()));
}

TEST(StreamAggregator, StreamsFromSweepWorkerThreads) {
  StreamAggregator agg;
  core::ExperimentConfig config = golden_experiment(/*threads=*/2);
  config.on_cell_done = agg.callback();
  const auto points = run_density_sweep(config, golden_scenario(), mmv2v_factory(), nullptr);
  ASSERT_EQ(points.size(), 1u);

  // 1 density x 2 repetitions.
  EXPECT_EQ(agg.cells_seen(), 2u);
  const std::vector<DensityRollup> rollups = agg.rollups();
  ASSERT_EQ(rollups.size(), 1u);
  EXPECT_EQ(rollups[0].density_vpl, 10.0);
  EXPECT_EQ(rollups[0].cells, 2u);
  // The streaming rollup must agree with the sweep's own aggregation.
  EXPECT_DOUBLE_EQ(rollups[0].ocr.mean(), points[0].ocr.mean());
  EXPECT_DOUBLE_EQ(rollups[0].atp.mean(), points[0].atp.mean());
  EXPECT_DOUBLE_EQ(rollups[0].fairness.mean(), points[0].fairness.mean());
}

TEST(StreamAggregator, SurfacesSnapshotWriteFailures) {
  // Regression: write failures used to bump a private counter and nothing
  // else — a dead dashboard for a whole sweep with zero evidence. Now each
  // failure is logged at warn level and the counter is public.
  const std::string path =
      ::testing::TempDir() + "mmv2v-no-such-dir/sub/progress.json";
  std::vector<std::string> warnings;
  Logger::instance().set_sink([&](LogLevel level, std::string_view message) {
    if (level == LogLevel::kWarn) warnings.emplace_back(message);
  });
  {
    StreamAggregator agg{path};
    agg.on_cell(make_cell(1, 15.0, 0, 0.7));
    EXPECT_EQ(agg.write_failures(), 1u);
    agg.on_cell(make_cell(2, 15.0, 1, 0.5));
    EXPECT_EQ(agg.write_failures(), 2u);
  }
  Logger::instance().set_sink(nullptr);
  ASSERT_EQ(warnings.size(), 2u) << "snapshot write failures must be logged";
  EXPECT_NE(warnings[0].find(path), std::string::npos)
      << "warning must name the failing snapshot path";
}

TEST(AtomicFile, TempNamesAreUniquePerWrite) {
  const std::string a = unique_tmp_path("/tmp/snap.json");
  const std::string b = unique_tmp_path("/tmp/snap.json");
  EXPECT_NE(a, b) << "two writes racing on one tmp name can rename each "
                     "other's half-written files";
  EXPECT_TRUE(a.starts_with("/tmp/snap.json.tmp.")) << a;
}

TEST(AtomicFile, WritesReplacesAndFailsCleanly) {
  const std::string path = ::testing::TempDir() + "mmv2v_atomic_file.json";
  ASSERT_TRUE(atomic_write_file(path, "first"));
  ASSERT_TRUE(atomic_write_file(path, "second"));
  std::ifstream in{path, std::ios::binary};
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "second");
  // Unwritable target: returns false and leaves no temp litter behind.
  const std::string bad = ::testing::TempDir() + "mmv2v-no-such-dir/x.json";
  EXPECT_FALSE(atomic_write_file(bad, "payload"));
}

TEST(SvgChart, StackedBarsRenderAndValidate) {
  SvgChart chart{400, 300, "outcomes"};
  EXPECT_THROW(chart.add_bar_layer("early", {1.0}), std::logic_error);
  chart.set_categories({"10", "20"});
  EXPECT_THROW(chart.add_bar_layer("short", {1.0}), std::invalid_argument);
  chart.add_bar_layer("delivered", {3.0, 5.0});
  chart.add_bar_layer("churned", {1.0, 0.0});
  EXPECT_EQ(chart.bar_layer_count(), 2u);
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("delivered"), std::string::npos);
  EXPECT_NE(svg.find("churned"), std::string::npos);
}

// One spans-enabled golden sweep, loaded through both trace formats.
struct LoadedPair {
  SweepTrace trace;
  ReportData binary;
  ReportData jsonl;
};

LoadedPair load_golden_report() {
  ScenarioConfig base = golden_scenario();
  base.trace.spans = true;
  base.trace.format = core::TraceFormat::kBinary;
  LoadedPair out;
  EXPECT_EQ(run_density_sweep(golden_experiment(2), base, mmv2v_factory(), &out.trace).size(),
            1u);
  out.binary = load_report_data(out.trace.binary);
  // The JSONL trace file layout: manifest line first, then the event stream.
  out.jsonl = load_report_data(out.trace.manifest_json + "\n" + out.trace.events_jsonl);
  return out;
}

TEST(Report, LoadsBinaryAndJsonlTracesIdentically) {
  const LoadedPair loaded = load_golden_report();
  ASSERT_FALSE(loaded.trace.binary.empty());

  EXPECT_TRUE(loaded.binary.binary);
  EXPECT_FALSE(loaded.jsonl.binary);
  EXPECT_TRUE(loaded.binary.stats.index_ok);
  EXPECT_EQ(loaded.binary.stats.skipped_chunks, 0u);

  for (const ReportData* data : {&loaded.binary, &loaded.jsonl}) {
    EXPECT_EQ(data->protocol, "mmV2V");
    ASSERT_EQ(data->cells.size(), 2u) << "manifest carries one summary per cell";
    EXPECT_EQ(data->cells[0].density_vpl, 10.0);
    EXPECT_EQ(data->cells[0].rep, 0);
    EXPECT_EQ(data->cells[1].rep, 1);
    ASSERT_EQ(data->density_spans.size(), 1u);
    EXPECT_EQ(data->density_spans[0].density_vpl, 10.0);
    EXPECT_GT(data->spans.spans, 0u);
  }
  // Format parity: same events, same span attribution.
  EXPECT_EQ(loaded.binary.events, loaded.jsonl.events);
  EXPECT_EQ(loaded.binary.spans.spans, loaded.jsonl.spans.spans);
  EXPECT_EQ(loaded.binary.spans.outcomes, loaded.jsonl.spans.outcomes);
  EXPECT_EQ(loaded.binary.spans.delivered_bits, loaded.jsonl.spans.delivered_bits);
}

TEST(Report, RendersSelfContainedHtml) {
  const LoadedPair loaded = load_golden_report();
  const std::string html = render_report_html(loaded.binary, "obs test report");
  EXPECT_NE(html.find("obs test report"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos) << "charts must be inlined";
  EXPECT_NE(html.find("delivered"), std::string::npos);
  EXPECT_EQ(html.find("<script src"), std::string::npos) << "no external assets";

  const std::string path = ::testing::TempDir() + "mmv2v_obs_report.html";
  write_report_html(path, loaded.binary, "obs test report");
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), html);
}

TEST(Report, DegradesGracefullyOnBareEventStreams) {
  // No manifest, no span events: the loader must still produce a renderable
  // model instead of throwing.
  const std::string bare =
      "{\"frame\":0,\"t\":0,\"ev\":\"snd_round\",\"round\":1}\n"
      "{\"frame\":1,\"t\":0.02,\"ev\":\"frame_end\"}\n";
  const ReportData data = load_report_data(bare);
  EXPECT_FALSE(data.binary);
  EXPECT_EQ(data.events, 2u);
  EXPECT_TRUE(data.cells.empty());
  EXPECT_EQ(data.spans.spans, 0u);
  const std::string html = render_report_html(data);
  EXPECT_NE(html.find("<html"), std::string::npos);
}

}  // namespace
}  // namespace mmv2v::obs
