#include "phy/fading.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace mmv2v::phy {
namespace {

TEST(Fading, DisabledByDefault) {
  const FadingModel model;
  EXPECT_FALSE(model.enabled());
  EXPECT_DOUBLE_EQ(model.loss_db(1, 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.shadowing_db(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(model.small_scale_gain(1, 2, 7), 1.0);
}

TEST(Fading, ShadowingIsSymmetricAndQuasiStatic) {
  const FadingModel model{{.shadowing_sigma_db = 4.0, .nakagami_m = 0.0, .seed = 9}};
  EXPECT_DOUBLE_EQ(model.shadowing_db(3, 8), model.shadowing_db(8, 3));
  EXPECT_DOUBLE_EQ(model.loss_db(3, 8, 0), model.loss_db(3, 8, 1000))
      << "shadowing must not vary with the tick";
}

TEST(Fading, ShadowingMomentsMatchSigma) {
  const double sigma = 6.0;
  const FadingModel model{{.shadowing_sigma_db = sigma, .nakagami_m = 0.0, .seed = 1}};
  RunningStats stats;
  for (std::size_t a = 0; a < 200; ++a) {
    for (std::size_t b = a + 1; b < a + 11; ++b) stats.add(model.shadowing_db(a, b));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.5);
  EXPECT_NEAR(stats.stddev(), sigma, sigma * 0.1);
}

TEST(Fading, SmallScaleGainHasUnitMean) {
  const FadingModel model{{.shadowing_sigma_db = 0.0, .nakagami_m = 3.0, .seed = 2}};
  RunningStats stats;
  for (std::uint64_t tick = 0; tick < 20000; ++tick) {
    stats.add(model.small_scale_gain(1, 2, tick));
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.05);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Fading, SmallScaleVarianceShrinksWithM) {
  // Nakagami power gain variance = 1/m: m=1 (Rayleigh) is much more volatile
  // than m=10 (near-AWGN).
  auto stddev_for = [](double m) {
    const FadingModel model{{.shadowing_sigma_db = 0.0, .nakagami_m = m, .seed = 3}};
    RunningStats stats;
    for (std::uint64_t tick = 0; tick < 20000; ++tick) {
      stats.add(model.small_scale_gain(4, 5, tick));
    }
    return stats.stddev();
  };
  const double s1 = stddev_for(1.0);
  const double s10 = stddev_for(10.0);
  EXPECT_GT(s1, 2.0 * s10);
  EXPECT_NEAR(s1, 1.0, 0.25) << "Rayleigh power std ~ 1";
}

TEST(Fading, SmallScaleVariesPerTickAndPerPair) {
  const FadingModel model{{.shadowing_sigma_db = 0.0, .nakagami_m = 2.0, .seed = 4}};
  EXPECT_NE(model.small_scale_gain(1, 2, 0), model.small_scale_gain(1, 2, 1));
  EXPECT_NE(model.small_scale_gain(1, 2, 0), model.small_scale_gain(1, 3, 0));
}

TEST(Fading, DeterministicAcrossInstances) {
  const FadingParams params{.shadowing_sigma_db = 3.0, .nakagami_m = 2.0, .seed = 5};
  const FadingModel a{params};
  const FadingModel b{params};
  for (std::uint64_t tick = 0; tick < 50; ++tick) {
    EXPECT_DOUBLE_EQ(a.loss_db(7, 9, tick), b.loss_db(7, 9, tick));
  }
}

TEST(Fading, SeedChangesRealization) {
  const FadingModel a{{.shadowing_sigma_db = 3.0, .nakagami_m = 0.0, .seed = 1}};
  const FadingModel b{{.shadowing_sigma_db = 3.0, .nakagami_m = 0.0, .seed = 2}};
  EXPECT_NE(a.shadowing_db(1, 2), b.shadowing_db(1, 2));
}

}  // namespace
}  // namespace mmv2v::phy
