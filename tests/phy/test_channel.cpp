#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "geom/angles.hpp"
#include "phy/codebook.hpp"

namespace mmv2v::phy {
namespace {

using geom::deg_to_rad;

class ChannelTest : public ::testing::Test {
 protected:
  ChannelModel channel_{};
  BeamPattern narrow_ = BeamPattern::make(deg_to_rad(3.0));
  BeamPattern wide_ = BeamPattern::make(deg_to_rad(30.0));
  geom::LosEvaluator empty_los_{};

  Emitter emitter(std::size_t id, geom::Vec2 pos, double bearing,
                  const BeamPattern* p) const {
    return Emitter{id, pos, Beam{bearing, p}, channel_.params().tx_power_dbm};
  }
  Receiver receiver(std::size_t id, geom::Vec2 pos, double bearing,
                    const BeamPattern* p) const {
    return Receiver{id, pos, Beam{bearing, p}};
  }
};

TEST_F(ChannelTest, BoresightLinkBudget) {
  // Vehicle at origin beaming north at a receiver 66 m north beaming south.
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  const double p_rx_dbm = units::watts_to_dbm(channel_.rx_power_watts(tx, rx, empty_los_));
  const double expected = 28.0 + 2.0 * 10.0 * std::log10(narrow_.main_gain()) -
                          path_loss_db(channel_.params().pathloss, 66.0);
  EXPECT_NEAR(p_rx_dbm, expected, 1e-9);
}

TEST_F(ChannelTest, SnrSupportsHighMcsAtPaperDistances) {
  // At the paper's 15 vpl spacing (66 m) a refined link must run fast MCS.
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  const double snr = channel_.snr_db(tx, rx, empty_los_);
  EXPECT_GT(channel_.mcs().data_rate_bps(snr), 2.0e9);
}

TEST_F(ChannelTest, MisalignedBeamsLoseGain) {
  const Emitter tx_on = emitter(0, {0, 0}, 0.0, &narrow_);
  const Emitter tx_off = emitter(0, {0, 0}, deg_to_rad(20.0), &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  EXPECT_GT(channel_.rx_power_watts(tx_on, rx, empty_los_),
            channel_.rx_power_watts(tx_off, rx, empty_los_) * 50.0);
}

TEST_F(ChannelTest, BlockerCutsPower) {
  geom::LosEvaluator los;
  los.add(geom::Blocker{geom::OrientedRect{{0, 33}, {0, 1}, 2.3, 0.9}, 99});
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  const double clear = channel_.rx_power_watts(tx, rx, empty_los_);
  const double blocked = channel_.rx_power_watts(tx, rx, los);
  EXPECT_NEAR(10.0 * std::log10(clear / blocked),
              channel_.params().pathloss.per_blocker_db, 1e-9);
}

TEST_F(ChannelTest, SinrEqualsSnrWithoutInterferers) {
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  EXPECT_NEAR(channel_.sinr_db(tx, rx, {}, empty_los_), channel_.snr_db(tx, rx, empty_los_),
              1e-12);
}

TEST_F(ChannelTest, InterferenceLowersSinr) {
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  // An interferer 30 m east of the receiver beaming straight at it.
  const Emitter interferer = emitter(2, {30, 66}, deg_to_rad(270.0), &narrow_);
  std::vector<Emitter> interferers{interferer};
  const double sinr = channel_.sinr_db(tx, rx, interferers, empty_los_);
  EXPECT_LT(sinr, channel_.snr_db(tx, rx, empty_los_) - 3.0);
}

TEST_F(ChannelTest, InterferenceSkipsLinkEndpoints) {
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  // "Interferers" that are actually the link's own endpoints are skipped.
  std::vector<Emitter> interferers{emitter(0, {0, 0}, 0.0, &narrow_),
                                   emitter(1, {0, 66}, geom::kPi, &narrow_)};
  EXPECT_NEAR(channel_.sinr_db(tx, rx, interferers, empty_los_),
              channel_.snr_db(tx, rx, empty_los_), 1e-12);
}

TEST_F(ChannelTest, SidelobeInterferenceIsWeak) {
  const Emitter tx = emitter(0, {0, 0}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {0, 66}, geom::kPi, &narrow_);
  // Interferer at same distance but beaming away from the receiver.
  const Emitter interferer = emitter(2, {30, 66}, deg_to_rad(90.0), &narrow_);
  std::vector<Emitter> interferers{interferer};
  EXPECT_NEAR(channel_.sinr_db(tx, rx, interferers, empty_los_),
              channel_.snr_db(tx, rx, empty_los_), 1.5);
}

TEST_F(ChannelTest, CoLocatedRadiosYieldNoPower) {
  const Emitter tx = emitter(0, {5, 5}, 0.0, &narrow_);
  const Receiver rx = receiver(1, {5, 5}, 0.0, &narrow_);
  EXPECT_DOUBLE_EQ(channel_.rx_power_watts(tx, rx, empty_los_), 0.0);
}

TEST(Codebook, LevelBeamsTileTheCircle) {
  const CodebookLevel level{deg_to_rad(15.0), 24};
  EXPECT_EQ(level.beam_count(), 24);
  EXPECT_NEAR(level.center_of(0), deg_to_rad(7.5), 1e-12);
  EXPECT_NEAR(level.center_of(23), deg_to_rad(352.5), 1e-12);
  EXPECT_THROW((void)level.center_of(24), std::out_of_range);
}

TEST(Codebook, BestBeamTowardIsNearest) {
  const CodebookLevel level{deg_to_rad(15.0), 24};
  EXPECT_EQ(level.best_index_toward(deg_to_rad(8.0)), 0);
  EXPECT_EQ(level.best_index_toward(deg_to_rad(16.0)), 1);
  EXPECT_EQ(level.best_index_toward(deg_to_rad(359.0)), 23);
  const Beam b = level.best_beam_toward(deg_to_rad(100.0));
  EXPECT_NEAR(b.center_bearing_rad, deg_to_rad(97.5), 1e-12);
}

TEST(Codebook, SteeredBeamPointsAnywhere) {
  const CodebookLevel level{deg_to_rad(3.0), 120};
  const Beam b = level.steered(deg_to_rad(123.4));
  EXPECT_NEAR(b.center_bearing_rad, deg_to_rad(123.4), 1e-12);
}

TEST(Codebook, MultiLevelAccess) {
  Codebook book;
  EXPECT_EQ(book.add_level(CodebookLevel{deg_to_rad(30.0), 12}), 0u);
  EXPECT_EQ(book.add_level(CodebookLevel{deg_to_rad(12.0), 30}), 1u);
  EXPECT_EQ(book.add_level(CodebookLevel{deg_to_rad(3.0), 120}), 2u);
  EXPECT_EQ(book.level_count(), 3u);
  EXPECT_EQ(book.level(2).beam_count(), 120);
  EXPECT_THROW((void)book.level(3), std::out_of_range);
}

}  // namespace
}  // namespace mmv2v::phy
