#include "phy/antenna.hpp"

#include <gtest/gtest.h>

#include "geom/angles.hpp"

namespace mmv2v::phy {
namespace {

using geom::deg_to_rad;

TEST(BeamPattern, PeakAtBoresight) {
  const BeamPattern p = BeamPattern::make(deg_to_rad(30.0));
  EXPECT_DOUBLE_EQ(p.gain(0.0), p.main_gain());
  EXPECT_LT(p.gain(deg_to_rad(5.0)), p.main_gain());
}

TEST(BeamPattern, HalfPowerAtHalfBeamWidth) {
  // By Eq. 2 the gain at gamma = w/2 is exactly 3 dB below the peak.
  for (double width_deg : {12.0, 30.0, 3.0}) {
    const BeamPattern p = BeamPattern::make(deg_to_rad(width_deg));
    const double ratio = p.gain(deg_to_rad(width_deg / 2.0)) / p.main_gain();
    EXPECT_NEAR(10.0 * std::log10(ratio), -3.0, 1e-9) << width_deg << " deg";
  }
}

TEST(BeamPattern, SideLobeFloorBeyondBoundary) {
  const BeamPattern p = BeamPattern::make(deg_to_rad(30.0), 20.0);
  EXPECT_DOUBLE_EQ(p.gain(geom::kPi), p.side_gain());
  EXPECT_DOUBLE_EQ(p.gain(p.main_lobe_boundary() * 1.01), p.side_gain());
  EXPECT_NEAR(10.0 * std::log10(p.main_gain() / p.side_gain()), 20.0, 1e-9);
}

TEST(BeamPattern, ContinuousAtMainLobeBoundary) {
  const BeamPattern p = BeamPattern::make(deg_to_rad(12.0), 20.0);
  const double theta1 = p.main_lobe_boundary();
  EXPECT_NEAR(p.gain(theta1 - 1e-9), p.side_gain(), p.side_gain() * 1e-3);
}

TEST(BeamPattern, EnergyConservation) {
  // make() chooses the main gain so total radiated power over the circle is
  // 2*pi (Wildman-style normalization).
  for (double width_deg : {3.0, 12.0, 30.0, 60.0}) {
    const BeamPattern p = BeamPattern::make(deg_to_rad(width_deg));
    EXPECT_NEAR(p.integrated_power(), geom::kTwoPi, geom::kTwoPi * 0.01)
        << width_deg << " deg";
  }
}

TEST(BeamPattern, NarrowerBeamHasHigherPeakGain) {
  const double g30 = BeamPattern::make(deg_to_rad(30.0)).main_gain();
  const double g12 = BeamPattern::make(deg_to_rad(12.0)).main_gain();
  const double g3 = BeamPattern::make(deg_to_rad(3.0)).main_gain();
  EXPECT_GT(g12, g30);
  EXPECT_GT(g3, g12);
}

TEST(BeamPattern, GainIsEven) {
  const BeamPattern p = BeamPattern::make(deg_to_rad(30.0));
  for (double g = 0.0; g < geom::kPi; g += 0.1) {
    EXPECT_DOUBLE_EQ(p.gain(g), p.gain(-g));
  }
}

TEST(BeamPattern, RejectsBadParameters) {
  EXPECT_THROW(BeamPattern::make(0.0), std::invalid_argument);
  EXPECT_THROW(BeamPattern::make(deg_to_rad(30.0), 0.0), std::invalid_argument);
  EXPECT_THROW((BeamPattern{deg_to_rad(30.0), 1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((BeamPattern{deg_to_rad(30.0), -1.0, 0.5}), std::invalid_argument);
}

TEST(BeamPattern, IsotropicSpecialCase) {
  const BeamPattern omni{geom::kTwoPi, 1.0, 1.0};
  for (double g = 0.0; g <= geom::kPi; g += 0.3) {
    EXPECT_DOUBLE_EQ(omni.gain(g), 1.0);
  }
}

TEST(Beam, GainTowardUsesAngularDistance) {
  const BeamPattern p = BeamPattern::make(deg_to_rad(30.0));
  const Beam beam{deg_to_rad(350.0), &p};
  // 15 degrees away across the north wrap.
  EXPECT_NEAR(beam.gain_toward(deg_to_rad(5.0)), p.gain(deg_to_rad(15.0)), 1e-12);
  EXPECT_DOUBLE_EQ(beam.gain_toward(deg_to_rad(350.0)), p.main_gain());
}

TEST(BeamPattern, PaperBeamWidthsHavePlausibleGains) {
  // 2-D energy-conserving gains: 30 deg -> ~10 dB, 12 deg -> ~13.5 dB,
  // 3 deg -> ~17 dB. These anchor the link budget of the whole simulator.
  const auto db = [](double g) { return 10.0 * std::log10(g); };
  EXPECT_NEAR(db(BeamPattern::make(deg_to_rad(30.0)).main_gain()), 10.2, 0.5);
  EXPECT_NEAR(db(BeamPattern::make(deg_to_rad(12.0)).main_gain()), 13.5, 0.5);
  EXPECT_NEAR(db(BeamPattern::make(deg_to_rad(3.0)).main_gain()), 17.3, 0.5);
}

}  // namespace
}  // namespace mmv2v::phy
