// Parameterized property suite over beam widths: every codebook level the
// protocols use (and a few extremes) must satisfy the pattern invariants.
#include "phy/antenna.hpp"

#include <gtest/gtest.h>

#include "geom/angles.hpp"

namespace mmv2v::phy {
namespace {

class BeamWidthProperties : public ::testing::TestWithParam<double> {
 protected:
  double width_rad() const { return geom::deg_to_rad(GetParam()); }
};

TEST_P(BeamWidthProperties, EnergyIsConserved) {
  const BeamPattern p = BeamPattern::make(width_rad());
  EXPECT_NEAR(p.integrated_power(), geom::kTwoPi, geom::kTwoPi * 0.015);
}

TEST_P(BeamWidthProperties, GainIsMonotoneOutToSideLobe) {
  const BeamPattern p = BeamPattern::make(width_rad());
  double prev = p.gain(0.0);
  const double theta1 = std::min(p.main_lobe_boundary(), geom::kPi);
  for (double g = theta1 / 200.0; g <= theta1; g += theta1 / 200.0) {
    const double cur = p.gain(g);
    EXPECT_LE(cur, prev + 1e-12) << "at offset " << g;
    prev = cur;
  }
}

TEST_P(BeamWidthProperties, SideLobeTwentyDbBelowPeak) {
  const BeamPattern p = BeamPattern::make(width_rad(), 20.0);
  EXPECT_NEAR(10.0 * std::log10(p.main_gain() / p.side_gain()), 20.0, 1e-9);
}

TEST_P(BeamWidthProperties, HalfPowerPointAtHalfWidth) {
  const BeamPattern p = BeamPattern::make(width_rad());
  const double ratio_db =
      10.0 * std::log10(p.gain(width_rad() / 2.0) / p.main_gain());
  EXPECT_NEAR(ratio_db, -3.0, 1e-9);
}

TEST_P(BeamWidthProperties, PeakGainBelowTheoreticalMaximum) {
  // A 2-D pattern radiating all power into exactly the main lobe of width w
  // would have gain 2*pi/w; the Gaussian pattern must stay below that.
  const BeamPattern p = BeamPattern::make(width_rad());
  EXPECT_LT(p.main_gain(), geom::kTwoPi / width_rad() * 1.5);
  EXPECT_GT(p.main_gain(), 1.0) << "directional beams beat isotropic";
}

INSTANTIATE_TEST_SUITE_P(PaperAndExtremeWidths, BeamWidthProperties,
                         ::testing::Values(1.0, 3.0, 6.0, 12.0, 15.0, 30.0, 45.0,
                                           60.0, 90.0),
                         [](const auto& info) {
                           return "deg" + std::to_string(static_cast<int>(info.param));
                         });

class SideLobeProperties : public ::testing::TestWithParam<double> {};

TEST_P(SideLobeProperties, DeeperSuppressionRaisesPeak) {
  const double sll = GetParam();
  const BeamPattern base = BeamPattern::make(geom::deg_to_rad(30.0), sll);
  const BeamPattern deeper = BeamPattern::make(geom::deg_to_rad(30.0), sll + 10.0);
  EXPECT_GT(deeper.main_gain(), base.main_gain());
  EXPECT_LT(deeper.side_gain(), base.side_gain());
}

TEST_P(SideLobeProperties, EnergyHoldsAcrossSuppressionLevels) {
  const BeamPattern p = BeamPattern::make(geom::deg_to_rad(12.0), GetParam());
  EXPECT_NEAR(p.integrated_power(), geom::kTwoPi, geom::kTwoPi * 0.015);
}

INSTANTIATE_TEST_SUITE_P(Suppression, SideLobeProperties,
                         ::testing::Values(10.0, 15.0, 20.0, 25.0, 30.0),
                         [](const auto& info) {
                           return "sll" + std::to_string(static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace mmv2v::phy
