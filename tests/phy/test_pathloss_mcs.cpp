#include <gtest/gtest.h>

#include "phy/mcs.hpp"
#include "phy/pathloss.hpp"

namespace mmv2v::phy {
namespace {

TEST(PathLoss, MonotoneInDistance) {
  const PathLossParams p;
  double prev = path_loss_db(p, 1.0);
  for (double d = 2.0; d <= 500.0; d *= 1.5) {
    const double pl = path_loss_db(p, d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(PathLoss, Eq1Composition) {
  // PL(d) = a*10*log10(d) + O + 15*d/1000 with zero blockers.
  const PathLossParams p{.exponent = 2.66, .intercept_db = 68.0, .per_blocker_db = 10.0,
                         .atmospheric_db_per_km = 15.0};
  EXPECT_NEAR(path_loss_db(p, 100.0), 2.66 * 10.0 * 2.0 + 68.0 + 1.5, 1e-9);
  EXPECT_NEAR(path_loss_db(p, 1.0), 68.0 + 0.015, 1e-9);
}

TEST(PathLoss, BlockerPenaltyIsLinear) {
  const PathLossParams p;
  const double base = path_loss_db(p, 50.0, 0);
  EXPECT_NEAR(path_loss_db(p, 50.0, 1) - base, p.per_blocker_db, 1e-12);
  EXPECT_NEAR(path_loss_db(p, 50.0, 3) - base, 3.0 * p.per_blocker_db, 1e-12);
}

TEST(PathLoss, ClampsBelowOneMeter) {
  const PathLossParams p;
  EXPECT_DOUBLE_EQ(path_loss_db(p, 0.1), path_loss_db(p, 1.0));
}

TEST(PathLoss, ChannelGainInvertsLoss) {
  const PathLossParams p;
  const double g = channel_gain(p, 80.0, 1);
  EXPECT_NEAR(10.0 * std::log10(g), -path_loss_db(p, 80.0, 1), 1e-9);
}

TEST(McsTable, RatesMatchStandard) {
  const McsTable mcs;
  EXPECT_DOUBLE_EQ(mcs.rate_of(0), 27.5e6);
  EXPECT_DOUBLE_EQ(mcs.rate_of(1), 385.0e6);
  EXPECT_DOUBLE_EQ(mcs.rate_of(12), 4620.0e6);
  EXPECT_DOUBLE_EQ(McsTable::max_rate_bps(), 4.62e9);
  EXPECT_THROW((void)mcs.rate_of(13), std::out_of_range);
  EXPECT_THROW((void)mcs.rate_of(-1), std::out_of_range);
}

TEST(McsTable, RequiredSnrTracksSensitivity) {
  const McsTable mcs{10.0};
  // MCS12: -53 dBm sensitivity, noise floor ~-80.65 dBm, NF 10 dB.
  EXPECT_NEAR(mcs.required_snr_db(12), -53.0 + 80.654 - 10.0, 0.01);
  // Control PHY is far more robust than any data MCS.
  EXPECT_LT(mcs.required_snr_db(0), mcs.required_snr_db(1));
}

TEST(McsTable, SelectPicksHighestRateNotHighestIndex) {
  const McsTable mcs;
  // At an SINR between MCS5's and MCS6's thresholds the higher-rate MCS6
  // (whose sensitivity is better) must win even though 5 < 6.
  const double snr = mcs.required_snr_db(6) + 0.1;
  ASSERT_LT(mcs.required_snr_db(6), mcs.required_snr_db(5));
  const auto pick = mcs.select(snr);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(mcs.rate_of(*pick), mcs.rate_of(6));
}

TEST(McsTable, SelectReturnsNulloptBelowControl) {
  const McsTable mcs;
  EXPECT_FALSE(mcs.select(-40.0).has_value());
  EXPECT_FALSE(mcs.control_decodable(-40.0));
  EXPECT_TRUE(mcs.control_decodable(mcs.required_snr_db(0) + 0.01));
}

TEST(McsTable, DataRateMonotoneInSinr) {
  const McsTable mcs;
  double prev = -1.0;
  for (double snr = -15.0; snr <= 30.0; snr += 0.5) {
    const double r = mcs.data_rate_bps(snr);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(mcs.data_rate_bps(30.0), 4.62e9);
  EXPECT_DOUBLE_EQ(mcs.data_rate_bps(-20.0), 0.0);
}

TEST(McsTable, ControlOnlyRegionHasZeroDataRate) {
  const McsTable mcs;
  const double snr = (mcs.required_snr_db(0) + mcs.required_snr_db(1)) / 2.0;
  EXPECT_TRUE(mcs.control_decodable(snr));
  EXPECT_DOUBLE_EQ(mcs.data_rate_bps(snr), 0.0);
}

TEST(Evm, MatchesInverseSqrtSinr) {
  EXPECT_DOUBLE_EQ(evm_from_sinr(1.0), 1.0);
  EXPECT_DOUBLE_EQ(evm_from_sinr(100.0), 0.1);
  EXPECT_NEAR(evm_from_sinr(4.0), 0.5, 1e-12);
}

}  // namespace
}  // namespace mmv2v::phy
