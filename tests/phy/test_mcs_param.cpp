// Parameterized MCS-table properties over every index and several receiver
// noise figures.
#include <gtest/gtest.h>

#include "phy/mcs.hpp"

namespace mmv2v::phy {
namespace {

class McsIndexProperties : public ::testing::TestWithParam<int> {
 protected:
  McsTable table_{};
};

TEST_P(McsIndexProperties, SelectAtThresholdDecodesAtLeastThisRate) {
  const int mcs = GetParam();
  const double snr = table_.required_snr_db(mcs) + 1e-9;
  const auto pick = table_.select(snr);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(table_.rate_of(*pick), table_.rate_of(mcs))
      << "selection must never pick a slower scheme than a decodable one";
}

TEST_P(McsIndexProperties, JustBelowThresholdCannotUseThisMcs) {
  const int mcs = GetParam();
  const double snr = table_.required_snr_db(mcs) - 0.01;
  const auto pick = table_.select(snr);
  if (pick.has_value()) {
    EXPECT_NE(*pick, mcs);
  }
}

TEST_P(McsIndexProperties, RequiredSnrShiftsOneToOneWithNoiseFigure) {
  const int mcs = GetParam();
  const McsTable nf6{6.0};
  const McsTable nf12{12.0};
  EXPECT_NEAR(nf6.required_snr_db(mcs) - nf12.required_snr_db(mcs), 6.0, 1e-9);
}

TEST_P(McsIndexProperties, DataRateAtThresholdIsAtLeastTabulated) {
  const int mcs = GetParam();
  if (mcs == 0) GTEST_SKIP() << "MCS0 is control-only";
  EXPECT_GE(table_.data_rate_bps(table_.required_snr_db(mcs) + 1e-9),
            table_.rate_of(mcs));
}

INSTANTIATE_TEST_SUITE_P(AllIndices, McsIndexProperties, ::testing::Range(0, 13),
                         [](const auto& info) { return "MCS" + std::to_string(info.param); });

TEST(McsTableGlobal, RatesStrictlyIncreaseWithIndexWithinFamilies) {
  // Data rates are strictly increasing in index (the standard's table).
  const McsTable table;
  for (int m = 2; m <= 12; ++m) {
    EXPECT_GT(table.rate_of(m), table.rate_of(m - 1));
  }
}

TEST(McsTableGlobal, ControlPhyIsMostRobust) {
  const McsTable table;
  for (int m = 1; m <= 12; ++m) {
    EXPECT_LT(table.required_snr_db(0), table.required_snr_db(m));
  }
}

TEST(McsTableGlobal, NoiseFloorMatchesBandwidth) {
  const McsTable full{10.0, 2.16e9};
  const McsTable half{10.0, 1.08e9};
  EXPECT_NEAR(full.noise_floor_dbm() - half.noise_floor_dbm(), 3.0103, 1e-3)
      << "halving bandwidth lowers the floor by 3 dB";
}

}  // namespace
}  // namespace mmv2v::phy
