// Scalar-vs-batched differential harness for the SoA kernels (DESIGN.md
// Section 13). Every batched kernel in phy/kernels and geom/batch is pinned
// BIT-exact — compared through std::bit_cast, not EXPECT_DOUBLE_EQ — against
// its *_scalar twin over randomized sweeps, because the engine promises that
// `engine.batched_kernels` changes HOW a frame is computed, never WHAT: the
// golden trace digest must not move when the knob flips.
//
// Structure: each suite draws a few dozen independent seeds (over 300
// randomized cases across the file) and re-rolls batch size, parameters and
// operands per seed; deterministic edge geometries — coincident positions,
// bearings astride the ±pi wrap, the exactly-at-range admission boundary,
// empty and single-element batches, sector-boundary bearings — are either
// injected into the random batches or pinned in dedicated tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "geom/angles.hpp"
#include "geom/batch.hpp"
#include "geom/los.hpp"
#include "geom/rect.hpp"
#include "phy/antenna.hpp"
#include "phy/kernels.hpp"

namespace mmv2v {
namespace {

using geom::kPi;
using geom::kTwoPi;

/// Bit-pattern equality: distinguishes +0.0 from -0.0 and treats any NaN
/// payload as itself — the contract the golden digest actually depends on.
::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bits 0x" << std::hex
         << std::bit_cast<std::uint64_t>(a) << " vs 0x"
         << std::bit_cast<std::uint64_t>(b) << ")";
}

void ExpectArraysBitEqual(const double* a, const double* b, std::size_t n,
                          const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(BitsEqual(a[i], b[i])) << what << " diverges at element " << i;
  }
}

/// A batch of bearings in [0, 2*pi) with the edge geometries mixed in:
/// element 0 is exactly 0, element 1 sits just below 2*pi (the wrap seam),
/// element 2 is exactly pi, element 3 just above pi and element 4 just
/// below — the ±pi wrap neighborhood every angular-distance bug lives in.
std::vector<double> random_bearings(Xoshiro256pp& rng, std::size_t n) {
  std::vector<double> a(n);
  for (double& v : a) v = rng.uniform(0.0, kTwoPi);
  if (n > 0) a[0] = 0.0;
  if (n > 1) a[1] = std::nextafter(kTwoPi, 0.0);
  if (n > 2) a[2] = kPi;
  if (n > 3) a[3] = std::nextafter(kPi, 4.0);
  if (n > 4) a[4] = std::nextafter(kPi, 0.0);
  return a;
}

// ---------------------------------------------------------------------------
// Bounded-domain angle arithmetic (the Sterbenz-exact fmod replacements).

TEST(BoundedAngles, WrapMatchesFmodAcrossDomain) {
  // wrap_two_pi_bounded is documented for |a| < 4*pi with a > -2*pi; sweep
  // the whole domain plus the exact seam values.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{seed * 0x9e37 + 1};
    for (int i = 0; i < 256; ++i) {
      const double a = rng.uniform(-kTwoPi + 1e-9, 2.0 * kTwoPi);
      ASSERT_TRUE(BitsEqual(geom::wrap_two_pi_bounded(a), geom::wrap_two_pi(a)))
          << "a = " << a;
    }
  }
  for (const double a : {0.0, -0.0, kPi, kTwoPi, std::nextafter(kTwoPi, 0.0),
                         std::nextafter(kTwoPi, 7.0), 2.0 * kTwoPi * (1.0 - 1e-16),
                         std::nextafter(-kTwoPi, 0.0), 1e-300, -1e-300}) {
    EXPECT_TRUE(BitsEqual(geom::wrap_two_pi_bounded(a), geom::wrap_two_pi(a)))
        << "a = " << a;
  }
}

TEST(BoundedAngles, AngularDistanceMatchesReference) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{0xd15c0 + seed};
    for (int i = 0; i < 256; ++i) {
      // Both operands in [0, 2*pi] — the closed upper end included, since
      // cached bearings can legally hold an exact 2*pi before the fold.
      const double a = std::min(rng.uniform(0.0, std::nextafter(kTwoPi, 7.0)), kTwoPi);
      const double b = std::min(rng.uniform(0.0, std::nextafter(kTwoPi, 7.0)), kTwoPi);
      ASSERT_TRUE(
          BitsEqual(geom::angular_distance_bounded(a, b), geom::angular_distance(a, b)))
          << "a = " << a << " b = " << b;
    }
  }
  // The ±pi wrap seam and coincident operands, exactly.
  EXPECT_TRUE(BitsEqual(geom::angular_distance_bounded(0.1, kTwoPi - 0.1),
                        geom::angular_distance(0.1, kTwoPi - 0.1)));
  EXPECT_TRUE(BitsEqual(geom::angular_distance_bounded(kTwoPi, 0.0),
                        geom::angular_distance(kTwoPi, 0.0)));
  EXPECT_TRUE(BitsEqual(geom::angular_distance_bounded(kPi, kPi),
                        geom::angular_distance(kPi, kPi)));
  EXPECT_EQ(geom::angular_distance_bounded(kTwoPi, 0.0), 0.0);
}

// ---------------------------------------------------------------------------
// geom/batch.hpp SoA kernels.

TEST(GeomBatch, ReverseBearingMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0xbea2 + seed};
    const std::size_t n = seed == 0 ? 0 : (seed == 1 ? 1 : rng.uniform_int(96));
    const std::vector<double> bearing = random_bearings(rng, n);
    std::vector<double> batched(n), scalar(n);
    geom::reverse_bearing_batch(bearing.data(), static_cast<int>(n), batched.data());
    geom::reverse_bearing_batch_scalar(bearing.data(), static_cast<int>(n), scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "reverse_bearing");
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitsEqual(batched[i], geom::wrap_two_pi(bearing[i] + kPi)))
          << "bearing = " << bearing[i];
    }
  }
}

TEST(GeomBatch, AngularDistanceMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0xd157 + seed};
    const std::size_t n = seed == 0 ? 0 : (seed == 1 ? 1 : rng.uniform_int(96));
    const std::vector<double> angle = random_bearings(rng, n);
    const double ref = seed % 3 == 0 ? 0.0 : rng.uniform(0.0, kTwoPi);
    std::vector<double> batched(n), scalar(n);
    geom::angular_distance_batch(angle.data(), ref, static_cast<int>(n), batched.data());
    geom::angular_distance_batch_scalar(angle.data(), ref, static_cast<int>(n),
                                        scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "angular_distance");
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitsEqual(batched[i], geom::angular_distance(angle[i], ref)));
    }
  }
}

TEST(GeomBatch, DistanceSqMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0xd5 + seed};
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(80) + 1;
    std::vector<double> x(n), y(n);
    const double ox = rng.uniform(-500.0, 500.0);
    const double oy = rng.uniform(-20.0, 20.0);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.uniform(-500.0, 500.0);
      y[i] = rng.uniform(-20.0, 20.0);
    }
    if (n > 0) {  // coincident positions: distance must be exactly 0
      x[0] = ox;
      y[0] = oy;
    }
    std::vector<double> batched(n), scalar(n);
    geom::distance_sq_batch(x.data(), y.data(), ox, oy, static_cast<int>(n),
                            batched.data());
    geom::distance_sq_batch_scalar(x.data(), y.data(), ox, oy, static_cast<int>(n),
                                   scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "distance_sq");
    if (n > 0) {
      EXPECT_EQ(batched[0], 0.0);
    }
  }
}

TEST(GeomBatch, AdmissionMaskMatchesScalarAndAdmitsTheBoundary) {
  constexpr double kRange = 80.0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0xad31 + seed};
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(80) + 4;
    std::vector<double> d(n);
    for (double& v : d) v = rng.uniform(0.0, 2.0 * kRange);
    if (n > 3) {
      d[0] = kRange;                          // exactly at range: admitted
      d[1] = std::nextafter(kRange, 1e9);     // one ulp beyond: rejected
      d[2] = std::nextafter(kRange, 0.0);     // one ulp inside: admitted
      d[3] = 0.0;                             // coincident positions
    }
    const double max_m =
        seed % 4 == 0 ? std::numeric_limits<double>::quiet_NaN() : kRange;
    std::vector<std::uint8_t> batched(n), scalar(n);
    geom::admission_mask(d.data(), static_cast<int>(n), max_m, batched.data());
    geom::admission_mask_scalar(d.data(), static_cast<int>(n), max_m, scalar.data());
    ASSERT_EQ(batched, scalar);
    for (std::size_t i = 0; i < n; ++i) {
      const bool admit = !(!std::isnan(max_m) && d[i] > max_m);
      ASSERT_EQ(batched[i] != 0, admit) << "d = " << d[i];
    }
    if (n > 3 && !std::isnan(max_m)) {
      EXPECT_NE(batched[0], 0) << "the exactly-at-range neighbor must be admitted";
      EXPECT_EQ(batched[1], 0);
      EXPECT_NE(batched[2], 0);
      EXPECT_NE(batched[3], 0);
    }
  }
}

TEST(GeomBatch, SectorIndexMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0x5ec7 + seed};
    const geom::SectorGrid grid{static_cast<int>(4 + 4 * (seed % 6))};
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(96) + 8;
    std::vector<double> bearing = random_bearings(rng, n);
    // Exact sector boundaries and centers — the fp-rounding guard paths.
    for (std::size_t i = 5; i < n && i < 5 + static_cast<std::size_t>(grid.count()); ++i) {
      const int t = static_cast<int>(i - 5);
      bearing[i] = (i % 2 == 0) ? static_cast<double>(t) * grid.width() : grid.center(t);
    }
    std::vector<std::int32_t> batched(n), scalar(n);
    geom::sector_index_batch(grid, bearing.data(), static_cast<int>(n), batched.data());
    geom::sector_index_batch_scalar(grid, bearing.data(), static_cast<int>(n),
                                    scalar.data());
    ASSERT_EQ(batched, scalar);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], grid.sector_of(bearing[i])) << "bearing = " << bearing[i];
    }
  }
}

// ---------------------------------------------------------------------------
// phy/kernels.hpp SoA kernels.

phy::BeamPattern random_pattern(Xoshiro256pp& rng) {
  const double width = geom::deg_to_rad(rng.uniform(6.0, 60.0));
  const double down_db = rng.uniform(10.0, 30.0);
  return phy::BeamPattern::make(width, down_db);
}

TEST(PhyKernels, GainBatchMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{0x6a13 + seed};
    const phy::BeamPattern pattern = random_pattern(rng);
    const std::size_t n = seed == 0 ? 0 : (seed == 1 ? 1 : rng.uniform_int(128));
    std::vector<double> gamma(n);
    for (double& g : gamma) g = rng.uniform(0.0, kPi);
    if (n > 2) {
      gamma[0] = 0.0;                             // boresight
      gamma[1] = pattern.main_lobe_boundary();    // exact lobe seam
      gamma[2] = std::nextafter(pattern.main_lobe_boundary(), 0.0);
    }
    std::vector<double> batched(n), scalar(n);
    phy::kernels::gain_batch(pattern, gamma.data(), static_cast<int>(n), batched.data());
    phy::kernels::gain_batch_scalar(pattern, gamma.data(), static_cast<int>(n),
                                    scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "gain");
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitsEqual(batched[i], pattern.gain(gamma[i]))) << "gamma = " << gamma[i];
    }
  }
}

TEST(PhyKernels, SectorGainTableMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    Xoshiro256pp rng{0x7ab1e + seed};
    const phy::BeamPattern pattern = random_pattern(rng);
    const int sectors = 4 + 4 * static_cast<int>(seed % 6);
    const geom::SectorGrid grid{sectors};
    const bool opposite = (seed % 2) == 1;
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(48) + 1;
    const std::vector<double> angle = random_bearings(rng, n);
    const std::size_t table = static_cast<std::size_t>(sectors) * n;
    std::vector<double> batched(table), scalar(table);
    phy::kernels::sector_gain_table(pattern, grid, angle.data(), static_cast<int>(n),
                                    opposite, batched.data());
    phy::kernels::sector_gain_table_scalar(pattern, grid, angle.data(),
                                           static_cast<int>(n), opposite, scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), table, "sector_gain_table");
    // Spot-check the documented formula: the sector-window shortcut may only
    // skip elements whose gain is exactly the side-lobe constant.
    for (int t = 0; t < sectors; ++t) {
      const int e = opposite ? grid.opposite(t) : t;
      for (std::size_t i = 0; i < n; ++i) {
        const double want =
            pattern.gain(geom::angular_distance(angle[i], grid.center(e)));
        ASSERT_TRUE(BitsEqual(batched[static_cast<std::size_t>(t) * n + i], want))
            << "sector " << t << " angle " << angle[i];
      }
    }
  }
}

TEST(PhyKernels, RxWattsMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{0x3a77 + seed};
    const double p_w = rng.uniform(1e-4, 1.0);
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(128) + 1;
    std::vector<double> g_t(n), g_c(n), g_r(n);
    for (std::size_t i = 0; i < n; ++i) {
      g_t[i] = rng.uniform(1e-3, 30.0);
      g_c[i] = rng.uniform(1e-14, 1e-6);
      g_r[i] = rng.uniform(1e-3, 30.0);
    }
    std::vector<double> batched(n), scalar(n);
    phy::kernels::rx_watts_batch(p_w, g_t.data(), g_c.data(), g_r.data(),
                                 static_cast<int>(n), batched.data());
    phy::kernels::rx_watts_batch_scalar(p_w, g_t.data(), g_c.data(), g_r.data(),
                                        static_cast<int>(n), scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "rx_watts");

    std::vector<double> batched2(n), scalar2(n);
    phy::kernels::rx_watts2_batch(p_w, g_t.data(), g_c.data(), static_cast<int>(n),
                                  batched2.data());
    phy::kernels::rx_watts2_batch_scalar(p_w, g_t.data(), g_c.data(),
                                         static_cast<int>(n), scalar2.data());
    ExpectArraysBitEqual(batched2.data(), scalar2.data(), n, "rx_watts2");
  }
}

TEST(PhyKernels, RxWattsGatherMatchesScalarAndCompaction) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{0x6a7e2 + seed};
    const double p_w = rng.uniform(1e-4, 1.0);
    const std::size_t full = rng.uniform_int(96) + 1;
    std::vector<double> g_t(full), g_c(full), g_r(full);
    for (std::size_t i = 0; i < full; ++i) {
      g_t[i] = rng.uniform(1e-3, 30.0);
      g_c[i] = rng.uniform(1e-14, 1e-6);
      g_r[i] = rng.uniform(1e-3, 30.0);
    }
    // A random (possibly empty, possibly repeating) candidate subset — the
    // frame-major sweep replays different subsets against one gain table.
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(full + 1);
    std::vector<std::int32_t> idx(n);
    for (std::int32_t& k : idx) k = static_cast<std::int32_t>(rng.uniform_int(full));

    std::vector<double> batched(n), scalar(n), compacted(n);
    phy::kernels::rx_watts_gather(p_w, g_t.data(), g_c.data(), g_r.data(), idx.data(),
                                  static_cast<int>(n), batched.data());
    phy::kernels::rx_watts_gather_scalar(p_w, g_t.data(), g_c.data(), g_r.data(),
                                         idx.data(), static_cast<int>(n), scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "rx_watts_gather");

    // Gathering must equal compact-first-then-rx_watts_batch bit for bit:
    // that is the equivalence the frame-major SND schedule rests on.
    std::vector<double> ct(n), cc(n), cr(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(idx[i]);
      ct[i] = g_t[k];
      cc[i] = g_c[k];
      cr[i] = g_r[k];
    }
    phy::kernels::rx_watts_batch(p_w, ct.data(), cc.data(), cr.data(),
                                 static_cast<int>(n), compacted.data());
    ExpectArraysBitEqual(batched.data(), compacted.data(), n, "gather-vs-compaction");
  }
}

TEST(PhyKernels, SinrDbMatchesScalar) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256pp rng{0x51a2 + seed};
    const double noise_w = rng.uniform(1e-13, 1e-9);
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(96) + 1;
    std::vector<double> sig(n), itf(n);
    for (std::size_t i = 0; i < n; ++i) {
      sig[i] = rng.uniform(1e-15, 1e-5);
      itf[i] = (i % 3 == 0) ? 0.0 : rng.uniform(1e-15, 1e-7);
    }
    std::vector<double> batched(n), scalar(n);
    phy::kernels::sinr_db_batch(sig.data(), itf.data(), noise_w, static_cast<int>(n),
                                batched.data());
    phy::kernels::sinr_db_batch_scalar(sig.data(), itf.data(), noise_w,
                                       static_cast<int>(n), scalar.data());
    ExpectArraysBitEqual(batched.data(), scalar.data(), n, "sinr_db");
  }
}

TEST(PhyKernels, SumArgmaxMatchesSweepAccumulation) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Xoshiro256pp rng{0xa26 + seed};
    const std::size_t n = seed == 0 ? 0 : rng.uniform_int(64) + 1;
    std::vector<double> w(n);
    for (double& v : w) v = rng.uniform_int(4) == 0 ? 0.0 : rng.uniform(0.0, 1e-8);
    if (n > 2 && seed % 3 == 0) w[2] = w[n - 1];  // duplicate maxima candidate

    const phy::kernels::SumArgmax acc =
        phy::kernels::sum_and_argmax(w.data(), static_cast<int>(n));
    // The reference is the exact accumulation every sweep loop used to run:
    // ordered sum, strict > argmax seeded at 0 (so all-zero rows decode
    // nothing and the FIRST of tied maxima wins).
    double total = 0.0, best = 0.0;
    int best_idx = -1;
    for (std::size_t i = 0; i < n; ++i) {
      total += w[i];
      if (w[i] > best) {
        best = w[i];
        best_idx = static_cast<int>(i);
      }
    }
    EXPECT_TRUE(BitsEqual(acc.total_w, total));
    EXPECT_TRUE(BitsEqual(acc.best_w, best));
    EXPECT_EQ(acc.best_idx, best_idx);
  }
  const phy::kernels::SumArgmax empty = phy::kernels::sum_and_argmax(nullptr, 0);
  EXPECT_EQ(empty.best_idx, -1);
  EXPECT_EQ(empty.total_w, 0.0);
  const double zeros[3] = {0.0, 0.0, 0.0};
  EXPECT_EQ(phy::kernels::sum_and_argmax(zeros, 3).best_idx, -1);
}

// ---------------------------------------------------------------------------
// LosCorridor vs LosEvaluator::blocker_count — the batched LOS prefilter
// (y-stripes, per-stripe x-windows, normal-axis separation, inscribed-radius
// accept) must reproduce the scalar grid walk's count exactly.

geom::LosEvaluator random_world(Xoshiro256pp& rng, std::size_t bodies) {
  std::vector<geom::Blocker> blockers;
  blockers.reserve(bodies);
  for (std::size_t i = 0; i < bodies; ++i) {
    const double heading = rng.uniform(0.0, kTwoPi);
    const geom::Vec2 axis{std::sin(heading), std::cos(heading)};
    const geom::Vec2 center{rng.uniform(0.0, 400.0), rng.uniform(-12.0, 12.0)};
    blockers.push_back(geom::Blocker{
        geom::OrientedRect{center, axis, rng.uniform(1.5, 3.0), rng.uniform(0.6, 1.2)},
        i});
  }
  return geom::LosEvaluator{std::move(blockers)};
}

TEST(LosCorridor, CountMatchesEvaluatorOverRandomWorlds) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Xoshiro256pp rng{0x10c0 + seed};
    const std::size_t bodies = seed == 0 ? 0 : (seed == 1 ? 1 : rng.uniform_int(120) + 2);
    const geom::LosEvaluator los = random_world(rng, bodies);
    geom::LosCorridor corridor;
    corridor.gather(los);

    for (int q = 0; q < 50; ++q) {
      geom::Vec2 a{rng.uniform(-20.0, 420.0), rng.uniform(-15.0, 15.0)};
      geom::Vec2 b{rng.uniform(-20.0, 420.0), rng.uniform(-15.0, 15.0)};
      std::size_t owner_a = bodies > 0 ? rng.uniform_int(bodies) : 0;
      std::size_t owner_b = bodies > 0 ? rng.uniform_int(bodies) : 0;
      switch (q) {
        case 0:  // coincident endpoints (zero-length segment)
          b = a;
          break;
        case 1:  // a link between two gathered bodies, owners excluded
          if (bodies > 1) {
            a = los.blockers()[0].body.center();
            b = los.blockers()[1].body.center();
            owner_a = 0;
            owner_b = 1;
          }
          break;
        case 2:  // horizontal lane-parallel segment (stripe-aligned)
          a.y = b.y = 0.0;
          break;
        case 3:  // near-vertical segment (worst case for the x-window)
          b.x = a.x + 1e-9;
          break;
        case 4:  // far outside every stripe
          a.y = 200.0;
          b.y = 210.0;
          break;
        default:
          break;
      }
      const int want = los.blocker_count(a, b, owner_a, owner_b);
      const int got = corridor.count(a, b, owner_a, owner_b);
      ASSERT_EQ(got, want) << "seed " << seed << " query " << q << ": segment ("
                           << a.x << "," << a.y << ")-(" << b.x << "," << b.y << ")";
    }
  }
}

TEST(LosCorridor, EmptyEvaluatorCountsZero) {
  geom::LosEvaluator los;
  geom::LosCorridor corridor;
  corridor.gather(los);
  EXPECT_EQ(corridor.count({0.0, 0.0}, {100.0, 0.0}, 1, 2), 0);
}

}  // namespace
}  // namespace mmv2v
