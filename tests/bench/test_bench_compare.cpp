// Tests for the bench harness plumbing: the strict flag parser, the
// BENCH_results.json read/write round trip, and the --compare regression
// gate (a 2x slowdown must be flagged so bench_runner exits nonzero).
#include "bench_json.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mmv2v::bench {
namespace {

BenchReport make_report(std::vector<std::pair<std::string, double>> entries) {
  BenchReport r;
  r.suite = "smoke";
  for (auto& [name, ns] : entries) {
    BenchResult b;
    b.name = std::move(name);
    b.ns_per_op = ns;
    r.benchmarks.push_back(std::move(b));
  }
  return r;
}

TEST(BenchCompare, TwoXSlowdownIsARegression) {
  const BenchReport baseline = make_report({{"phy.pathloss", 100.0}});
  const BenchReport current = make_report({{"phy.pathloss", 200.0}});
  const CompareOutcome out = compare_results(baseline, current, 0.10);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_TRUE(out.regression);
  EXPECT_EQ(out.rows[0].status, CompareRow::Status::Regression);
  EXPECT_DOUBLE_EQ(out.rows[0].delta, 1.0);
}

TEST(BenchCompare, WithinThresholdPasses) {
  const BenchReport baseline = make_report({{"a", 100.0}, {"b", 100.0}});
  const BenchReport current = make_report({{"a", 109.0}, {"b", 95.0}});
  const CompareOutcome out = compare_results(baseline, current, 0.10);
  EXPECT_FALSE(out.regression);
  EXPECT_EQ(out.rows[0].status, CompareRow::Status::Ok);
  EXPECT_EQ(out.rows[1].status, CompareRow::Status::Ok);
}

TEST(BenchCompare, LargeSpeedupIsInformationalOnly) {
  const BenchReport baseline = make_report({{"a", 100.0}});
  const BenchReport current = make_report({{"a", 40.0}});
  const CompareOutcome out = compare_results(baseline, current, 0.10);
  EXPECT_FALSE(out.regression);
  EXPECT_EQ(out.rows[0].status, CompareRow::Status::Improvement);
}

TEST(BenchCompare, MissingAndNewBenchmarksAreNotRegressions) {
  const BenchReport baseline = make_report({{"removed", 50.0}, {"kept", 10.0}});
  const BenchReport current = make_report({{"kept", 10.0}, {"added", 5.0}});
  const CompareOutcome out = compare_results(baseline, current, 0.10);
  EXPECT_FALSE(out.regression);
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0].name, "removed");
  EXPECT_EQ(out.rows[0].status, CompareRow::Status::MissingInCurrent);
  EXPECT_EQ(out.rows[1].status, CompareRow::Status::Ok);
  EXPECT_EQ(out.rows[2].name, "added");
  EXPECT_EQ(out.rows[2].status, CompareRow::Status::New);
}

TEST(BenchCompare, ZeroBaselineNeverDividesByZero) {
  const BenchReport baseline = make_report({{"a", 0.0}});
  const BenchReport current = make_report({{"a", 100.0}});
  const CompareOutcome out = compare_results(baseline, current, 0.10);
  EXPECT_FALSE(out.regression);
  EXPECT_DOUBLE_EQ(out.rows[0].delta, 0.0);
}

TEST(BenchCompare, TableNamesEveryRowAndStatus) {
  const BenchReport baseline = make_report({{"slow", 100.0}, {"gone", 1.0}});
  const BenchReport current = make_report({{"slow", 300.0}, {"fresh", 2.0}});
  const std::string table = format_compare_table(compare_results(baseline, current, 0.10));
  EXPECT_NE(table.find("slow"), std::string::npos);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("missing in current"), std::string::npos);
  EXPECT_NE(table.find("new (no baseline)"), std::string::npos);
}

TEST(BenchJson, RoundTripsReportWithManifest) {
  BenchReport report = make_report({{"phy.pathloss", 123.5}});
  report.benchmarks[0].p50_ns = 120.0;
  report.benchmarks[0].p99_ns = 150.25;
  report.benchmarks[0].ops = 1'000'000;
  report.benchmarks[0].bytes = 64;
  report.manifest.git_describe = "v1.2-3-gabc";
  report.manifest.compiler = "gcc 13.2 \"test\"";
  report.manifest.flags = "-O3 -DNDEBUG [Release]";
  report.manifest.threads = 16;
  report.manifest.cpu = "Test CPU @ 3.0GHz";

  const BenchReport back = parse_results_json(to_json(report));
  EXPECT_EQ(back.suite, "smoke");
  ASSERT_EQ(back.benchmarks.size(), 1u);
  EXPECT_EQ(back.benchmarks[0].name, "phy.pathloss");
  EXPECT_DOUBLE_EQ(back.benchmarks[0].ns_per_op, 123.5);
  EXPECT_DOUBLE_EQ(back.benchmarks[0].p50_ns, 120.0);
  EXPECT_DOUBLE_EQ(back.benchmarks[0].p99_ns, 150.25);
  EXPECT_EQ(back.benchmarks[0].ops, 1'000'000u);
  EXPECT_EQ(back.benchmarks[0].bytes, 64u);
  EXPECT_EQ(back.manifest.git_describe, "v1.2-3-gabc");
  EXPECT_EQ(back.manifest.compiler, "gcc 13.2 \"test\"");
  EXPECT_EQ(back.manifest.flags, "-O3 -DNDEBUG [Release]");
  EXPECT_EQ(back.manifest.threads, 16u);
  EXPECT_EQ(back.manifest.cpu, "Test CPU @ 3.0GHz");
}

TEST(BenchJson, ParseRejectsMissingRequiredFields) {
  EXPECT_THROW((void)parse_results_json("{}"), std::runtime_error);
  EXPECT_THROW((void)parse_results_json(R"({"benchmarks":[{"ns_per_op":1}]})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_results_json(R"({"benchmarks":[{"name":"a"}]})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_results_json("not json"), std::runtime_error);
  // Manifest is optional; percentiles and ops default to zero.
  const BenchReport ok =
      parse_results_json(R"({"suite":"s","benchmarks":[{"name":"a","ns_per_op":2}]})");
  EXPECT_DOUBLE_EQ(ok.benchmarks[0].ns_per_op, 2.0);
  EXPECT_EQ(ok.benchmarks[0].ops, 0u);
}

TEST(BenchFlags, ParsesAllSpellingsAndSeedsDefaults) {
  const std::vector<FlagSpec> specs{{"vpl_min", "10", "lowest density"},
                                    {"trace_out", "", "trace path"},
                                    {"reps", "3", "repetitions"}};
  const char* argv[] = {"prog", "--vpl-min=20", "--reps", "7", "trace_out=t.json"};
  FlagParse p = parse_flags(5, const_cast<char**>(argv), specs);
  EXPECT_TRUE(p.error.empty());
  EXPECT_FALSE(p.show_help);
  EXPECT_EQ(p.values.get_or("vpl_min", std::int64_t{0}), 20);
  EXPECT_EQ(p.values.get_or("reps", std::int64_t{0}), 7);
  EXPECT_EQ(p.values.get_or("trace_out", std::string{}), "t.json");

  const char* only_prog[] = {"prog"};
  p = parse_flags(1, const_cast<char**>(only_prog), specs);
  EXPECT_EQ(p.values.get_or("vpl_min", std::int64_t{0}), 10);  // default pre-seeded
  EXPECT_EQ(p.values.get_or("reps", std::int64_t{0}), 3);
}

TEST(BenchFlags, UnknownFlagAndMissingValueAreErrors) {
  const std::vector<FlagSpec> specs{{"reps", "3", "repetitions"}};
  const char* unknown[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parse_flags(2, const_cast<char**>(unknown), specs).error.empty());
  const char* unknown_bare[] = {"prog", "bogus"};
  EXPECT_FALSE(parse_flags(2, const_cast<char**>(unknown_bare), specs).error.empty());
  const char* dangling[] = {"prog", "--reps"};
  EXPECT_FALSE(parse_flags(2, const_cast<char**>(dangling), specs).error.empty());
}

TEST(BenchFlags, HelpShortCircuits) {
  const std::vector<FlagSpec> specs{{"reps", "3", "repetitions"}};
  const char* argv[] = {"prog", "--help"};
  EXPECT_TRUE(parse_flags(2, const_cast<char**>(argv), specs).show_help);
  const char* short_form[] = {"prog", "-h"};
  EXPECT_TRUE(parse_flags(2, const_cast<char**>(short_form), specs).show_help);
}

}  // namespace
}  // namespace mmv2v::bench
