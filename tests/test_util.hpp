// Shared helpers for protocol/core tests: small deterministic worlds.
#pragma once

#include "core/scenario.hpp"
#include "core/world.hpp"

namespace mmv2v::testing {

/// A small scenario that builds fast: short road, moderate density.
inline core::ScenarioConfig small_scenario(double density_vpl = 15.0,
                                           std::uint64_t seed = 1) {
  core::ScenarioConfig s;
  s.traffic.road_length_m = 500.0;
  s.traffic.density_vpl = density_vpl;
  s.traffic_warmup_s = 2.0;
  s.horizon_s = 0.2;
  s.seed = seed;
  return s;
}

}  // namespace mmv2v::testing
