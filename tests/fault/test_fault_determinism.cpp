// End-to-end guarantees of the fault-injection layer on the golden scenario:
//
//   * all knobs zero  -> the event-stream digest equals the checked-in golden
//     value, proving the layer's mere presence perturbs nothing;
//   * knobs on        -> the digest is still bit-identical across worker
//     thread counts (fault RNG streams are per-cell, not per-thread);
//   * knobs on        -> the digest differs from golden and the trace carries
//     `fault` events, proving injection actually happened;
//   * raising ctrl_loss degrades OCR monotonically — the protocols lose
//     capacity gracefully instead of crashing or deadlocking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::hex64;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

SweepTrace run_with_faults(const fault::FaultParams& faults, int threads) {
  ScenarioConfig s = golden_scenario();
  s.fault = faults;
  SweepTrace trace;
  const auto points =
      run_density_sweep(golden_experiment(threads), s, mmv2v_factory(), &trace);
  EXPECT_EQ(points.size(), 1u);
  return trace;
}

fault::FaultParams all_faults() {
  fault::FaultParams f;
  f.clock_drift_us = 10.0;
  f.ctrl_loss = 0.2;
  f.burst_len = 3.0;
  f.gps_sigma_m = 2.0;
  f.churn_rate = 0.05;
  return f;
}

TEST(FaultDeterminism, AllKnobsZeroReproducesGoldenDigest) {
  const SweepTrace trace = run_with_faults(fault::FaultParams{}, /*threads=*/1);
  EXPECT_EQ(trace.digest, kGoldenDigest)
      << "a zeroed fault config perturbed the event stream; digest is now "
      << hex64(trace.digest);
  EXPECT_EQ(trace.events_jsonl.find("\"ev\":\"fault\""), std::string::npos);
}

TEST(FaultDeterminism, FaultedRunIsBitIdenticalAcrossThreadCounts) {
  const SweepTrace serial = run_with_faults(all_faults(), /*threads=*/1);
  const SweepTrace parallel = run_with_faults(all_faults(), /*threads=*/4);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.events_jsonl, parallel.events_jsonl);
}

TEST(FaultDeterminism, FaultedRunDivergesFromGoldenAndEmitsFaultEvents) {
  const SweepTrace trace = run_with_faults(all_faults(), /*threads=*/2);
  EXPECT_NE(trace.digest, kGoldenDigest);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"fault\""), std::string::npos);
  // The stream still has the normal shape: faults degrade, never derail.
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"snd_round\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"frame_end\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"cell_end\""), std::string::npos);
}

TEST(FaultDeterminism, OcrDegradesMonotonicallyWithControlLoss) {
  // Longer horizon and more reps than the golden config so the OCR means are
  // stable enough to order; still < 1 s of wall clock.
  ExperimentConfig config = golden_experiment(/*threads=*/0);
  config.repetitions = 4;
  config.horizon_s = 0.4;
  std::vector<double> ocr;
  for (const double loss : {0.0, 0.4, 0.9}) {
    ScenarioConfig s = golden_scenario();
    s.fault.ctrl_loss = loss;
    const auto points = run_density_sweep(config, s, mmv2v_factory());
    ASSERT_EQ(points.size(), 1u);
    ocr.push_back(points[0].ocr.mean());
  }
  EXPECT_GT(ocr[0], ocr[1]);
  EXPECT_GT(ocr[1], ocr[2]);
  EXPECT_GT(ocr[0], 0.0);
}

TEST(FaultDeterminism, HeavyFaultSweepCompletesWithoutDerailing) {
  // Aggressive everything: the run must finish, produce frames for every
  // cell, and keep some OCR (bursty 40% loss is harsh, not fatal).
  fault::FaultParams f;
  f.clock_drift_us = 40.0;
  f.ctrl_loss = 0.4;
  f.burst_len = 5.0;
  f.ctrl_corrupt = 0.05;
  f.gps_sigma_m = 5.0;
  f.churn_rate = 0.15;
  f.churn_outage_frames = 3.0;
  const SweepTrace trace = run_with_faults(f, /*threads=*/2);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"frame_end\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"fault\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"churn_down\""), std::string::npos);
}

}  // namespace
}  // namespace mmv2v::core
