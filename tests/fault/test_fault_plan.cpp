// Unit tests for the deterministic fault plan: Gilbert-Elliott loss
// statistics, counter-based clock/GPS noise, the churn state machine, and
// seed reproducibility. Everything here runs on the plan in isolation — the
// end-to-end guarantees (golden digest, thread invariance, graceful
// degradation) live in test_fault_determinism.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault_plan.hpp"

namespace mmv2v::fault {
namespace {

constexpr std::uint64_t kSeed = 0xfa17'2026'0806ULL;

FaultParams loss_only(double loss, double burst) {
  FaultParams p;
  p.ctrl_loss = loss;
  p.burst_len = burst;
  return p;
}

TEST(FaultParams, EnabledOnlyWhenAKnobIsNonZero) {
  FaultParams p;
  EXPECT_FALSE(p.enabled());
  p.burst_len = 8.0;  // burst length alone injects nothing
  EXPECT_FALSE(p.enabled());
  p.ctrl_loss = 0.1;
  EXPECT_TRUE(p.enabled());
}

TEST(FaultPlan, BernoulliLossMatchesConfiguredRate) {
  FaultPlan plan{loss_only(0.25, 1.0), kSeed};
  plan.begin_frame(0, 4, 20e-3);
  const int draws = 200000;
  int lost = 0;
  for (int i = 0; i < draws; ++i) {
    lost += plan.ctrl_lost(net::NodeId{0}, CtrlKind::kSsw,
                           static_cast<std::uint64_t>(i))
                ? 1
                : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost) / draws, 0.25, 0.01);
  EXPECT_EQ(plan.frame_stats().ssw_drops, static_cast<std::uint64_t>(lost));
}

TEST(FaultPlan, GilbertElliottMatchesRateAndBurstLength) {
  // Statistical pin for the counter-based loss process: the stationary loss
  // rate must equal ctrl_loss and losses must arrive in runs of mean length
  // ~burst_len, exactly like the serial chain it replaced. With ~20k runs the
  // standard error of the mean run length is ~0.025, so 0.25 is a 10-sigma
  // pin that still catches any parameterization or coupling regression.
  const double loss = 0.2;
  const double burst = 4.0;
  FaultPlan plan{loss_only(loss, burst), kSeed};
  plan.begin_frame(0, 4, 20e-3);
  const int draws = 400000;
  int lost = 0;
  int runs = 0;
  bool in_run = false;
  for (int i = 0; i < draws; ++i) {
    const bool l = plan.ctrl_fate_at_step(net::NodeId{0}, CtrlKind::kNegotiation,
                                          static_cast<std::uint64_t>(i)) ==
                   CtrlFate::kLost;
    lost += l ? 1 : 0;
    if (l && !in_run) ++runs;
    in_run = l;
  }
  EXPECT_NEAR(static_cast<double>(lost) / draws, loss, 0.01);
  ASSERT_GT(runs, 0);
  EXPECT_NEAR(static_cast<double>(lost) / runs, burst, 0.25);
}

TEST(FaultPlan, LossQueriesAreOrderIndependent) {
  // The whole point of the counter-based process: the fate at a step is a
  // pure function of (seed, sender, kind, step). Querying backward, querying
  // twice, or interleaving other senders must not change anything.
  const FaultPlan plan{loss_only(0.2, 4.0), kSeed};
  const int steps = 4096;
  std::vector<CtrlFate> forward(steps);
  for (int i = 0; i < steps; ++i) {
    forward[i] = plan.ctrl_fate_at_step(net::NodeId{3}, CtrlKind::kSsw,
                                        static_cast<std::uint64_t>(i));
  }
  for (int i = steps - 1; i >= 0; --i) {
    (void)plan.ctrl_fate_at_step(net::NodeId{9}, CtrlKind::kSsw,
                                 static_cast<std::uint64_t>(i));
    EXPECT_EQ(plan.ctrl_fate_at_step(net::NodeId{3}, CtrlKind::kSsw,
                                     static_cast<std::uint64_t>(i)),
              forward[i]);
  }
}

TEST(FaultPlan, ChainsAreIndependentPerSender) {
  // Counter-based chains are keyed per (sender, kind): sender 0's queries
  // cannot perturb sender 1's sequence — bit-exact, not just statistically.
  FaultPlan lone{loss_only(0.3, 3.0), kSeed};
  FaultPlan pair{loss_only(0.3, 3.0), kSeed};
  lone.begin_frame(0, 4, 20e-3);
  pair.begin_frame(0, 4, 20e-3);
  const int draws = 100000;
  int lost_pair = 0;
  for (int i = 0; i < draws; ++i) {
    const auto step = static_cast<std::uint64_t>(i);
    (void)pair.ctrl_lost(net::NodeId{0}, CtrlKind::kSsw, step);
    const bool l = pair.ctrl_lost(net::NodeId{1}, CtrlKind::kSsw, step);
    EXPECT_EQ(lone.ctrl_lost(net::NodeId{1}, CtrlKind::kSsw, step), l);
    lost_pair += l ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost_pair) / draws, 0.3, 0.02);
}

TEST(FaultPlan, CorruptionCountsSeparatelyFromLoss) {
  FaultParams p;
  p.ctrl_corrupt = 0.5;
  FaultPlan plan{p, kSeed};
  plan.begin_frame(0, 2, 20e-3);
  const int draws = 50000;
  int lost = 0;
  for (int i = 0; i < draws; ++i) {
    lost += plan.ctrl_lost(net::NodeId{0}, CtrlKind::kRefine,
                           static_cast<std::uint64_t>(i))
                ? 1
                : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost) / draws, 0.5, 0.02);
  // Corruptions are tallied in their own counter, not the per-kind drops.
  EXPECT_EQ(plan.frame_stats().corruptions, static_cast<std::uint64_t>(lost));
  EXPECT_EQ(plan.frame_stats().refine_drops, 0u);
}

TEST(FaultPlan, BurstsSpanFrameBoundaries) {
  // ctrl_fate steps the chain at frame * slots_per_frame + slot, so the last
  // slot of frame f and slot 0 of frame f+1 are adjacent chain steps and a
  // burst can straddle them. Pin the addressing: the fate sequence read via
  // per-frame (slot, slots_per_frame) queries must equal the flat
  // ctrl_fate_at_step sequence.
  FaultPlan plan{loss_only(0.2, 4.0), kSeed};
  const std::uint64_t spf = 48;
  std::uint64_t step = 0;
  for (std::uint64_t f = 0; f < 20; ++f) {
    plan.begin_frame(f, 4, 20e-3);
    for (std::uint64_t s = 0; s < spf; ++s, ++step) {
      EXPECT_EQ(plan.ctrl_fate(net::NodeId{2}, CtrlKind::kSsw, s, spf),
                plan.ctrl_fate_at_step(net::NodeId{2}, CtrlKind::kSsw, step));
    }
  }
}

TEST(FaultPlan, ClockOffsetsAreStableAndScaleWithSigma) {
  FaultParams p;
  p.clock_drift_us = 50.0;
  FaultPlan plan{p, kSeed};
  plan.begin_frame(0, 64, 20e-3);
  // Counter-based: repeated queries and query order change nothing.
  const double a = plan.clock_offset_s(net::NodeId{7});
  const double b = plan.clock_offset_s(net::NodeId{3});
  EXPECT_EQ(plan.clock_offset_s(net::NodeId{7}), a);
  EXPECT_EQ(plan.clock_offset_s(net::NodeId{3}), b);
  EXPECT_NE(a, b);

  // Empirical sigma over many vehicles tracks the knob (in seconds).
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double o = plan.clock_offset_s(static_cast<net::NodeId>(i));
    sum_sq += o * o;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / n), 50.0e-6, 5.0e-6);
}

TEST(FaultPlan, GpsOffsetsAreStableWithinAFrameAndRedrawnAcross) {
  FaultParams p;
  p.gps_sigma_m = 3.0;
  FaultPlan plan{p, kSeed};
  plan.begin_frame(0, 8, 20e-3);
  const geom::Vec2 frame0 = plan.gps_offset(net::NodeId{5});
  EXPECT_EQ(plan.gps_offset(net::NodeId{5}).x, frame0.x);
  EXPECT_EQ(plan.gps_offset(net::NodeId{5}).y, frame0.y);
  plan.begin_frame(1, 8, 20e-3);
  const geom::Vec2 frame1 = plan.gps_offset(net::NodeId{5});
  EXPECT_TRUE(frame1.x != frame0.x || frame1.y != frame0.y);

  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const geom::Vec2 o = plan.gps_offset(static_cast<net::NodeId>(i));
    sum_sq += o.x * o.x + o.y * o.y;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / (2 * n)), 3.0, 0.3);
}

TEST(FaultPlan, ChurnOutageStartsPartialThenGoesDark) {
  FaultParams p;
  p.churn_rate = 1.0;  // every vehicle drops in frame 0
  p.churn_outage_frames = 1000;
  FaultPlan plan{p, kSeed};
  plan.begin_frame(0, 4, 20e-3);
  EXPECT_EQ(plan.frame_stats().churn_drops, 4u);
  for (net::NodeId v = 0; v < 4; ++v) {
    // The outage starts mid-frame: control still runs, the data tail dies.
    EXPECT_FALSE(plan.control_down(v));
    const double t = plan.udt_down_from_s(v);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 20e-3);
  }
  plan.begin_frame(1, 4, 20e-3);
  for (net::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(plan.control_down(v));
    EXPECT_EQ(plan.udt_down_from_s(v), 0.0);
  }
  EXPECT_EQ(plan.frame_stats().churn_down, 4u);
  EXPECT_EQ(plan.frame_stats().churn_drops, 0u);
}

TEST(FaultPlan, ChurnRejoinRestoresTheRadio) {
  FaultParams p;
  p.churn_rate = 1.0;
  p.churn_outage_frames = 1.0;  // minimum outage: down this frame, up next
  FaultPlan plan{p, kSeed};
  plan.begin_frame(0, 16, 20e-3);
  EXPECT_EQ(plan.frame_stats().churn_drops, 16u);
  plan.begin_frame(1, 16, 20e-3);
  // A one-frame outage ends at the top of the next frame: everyone rejoins
  // and runs the control plane again, even though churn_rate = 1 starts a
  // fresh mid-frame outage immediately after.
  EXPECT_EQ(plan.frame_stats().churn_rejoins, 16u);
  for (net::NodeId v = 0; v < 16; ++v) EXPECT_FALSE(plan.control_down(v));

  // With moderate churn some vehicle that was fully dark comes back with an
  // untouched data window (udt_down_from_s = +inf), proving the rejoin path
  // actually clears the churn state rather than only re-arming it.
  FaultParams q;
  q.churn_rate = 0.3;
  q.churn_outage_frames = 2.0;
  FaultPlan moderate{q, kSeed};
  moderate.begin_frame(0, 16, 20e-3);
  std::vector<bool> was_dark(16, false);
  bool saw_clean_rejoin = false;
  for (std::uint64_t f = 1; f < 50 && !saw_clean_rejoin; ++f) {
    moderate.begin_frame(f, 16, 20e-3);
    for (net::NodeId v = 0; v < 16; ++v) {
      if (was_dark[v] && !moderate.control_down(v) &&
          moderate.udt_down_from_s(v) == std::numeric_limits<double>::infinity()) {
        saw_clean_rejoin = true;
      }
      was_dark[v] = moderate.control_down(v);
    }
  }
  EXPECT_TRUE(saw_clean_rejoin);
}

TEST(FaultPlan, SameSeedSameParamsReproducesExactly) {
  FaultParams p;
  p.ctrl_loss = 0.15;
  p.burst_len = 3.0;
  p.churn_rate = 0.05;
  p.clock_drift_us = 20.0;
  p.gps_sigma_m = 2.0;
  FaultPlan a{p, kSeed};
  FaultPlan b{p, kSeed};
  for (std::uint64_t f = 0; f < 5; ++f) {
    a.begin_frame(f, 12, 20e-3);
    b.begin_frame(f, 12, 20e-3);
    for (net::NodeId v = 0; v < 12; ++v) {
      EXPECT_EQ(a.control_down(v), b.control_down(v));
      EXPECT_EQ(a.udt_down_from_s(v), b.udt_down_from_s(v));
      EXPECT_EQ(a.clock_offset_s(v), b.clock_offset_s(v));
      EXPECT_EQ(a.gps_offset(v).x, b.gps_offset(v).x);
      EXPECT_EQ(a.gps_offset(v).y, b.gps_offset(v).y);
      EXPECT_EQ(a.ctrl_lost(v, CtrlKind::kSsw), b.ctrl_lost(v, CtrlKind::kSsw));
      EXPECT_EQ(a.ctrl_lost(v, CtrlKind::kNegotiation),
                b.ctrl_lost(v, CtrlKind::kNegotiation));
    }
    EXPECT_EQ(a.frame_stats().total(), b.frame_stats().total());
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a{loss_only(0.5, 1.0), kSeed};
  FaultPlan b{loss_only(0.5, 1.0), kSeed + 1};
  a.begin_frame(0, 2, 20e-3);
  b.begin_frame(0, 2, 20e-3);
  int mismatches = 0;
  for (int i = 0; i < 256; ++i) {
    const auto step = static_cast<std::uint64_t>(i);
    if (a.ctrl_lost(net::NodeId{0}, CtrlKind::kSsw, step) !=
        b.ctrl_lost(net::NodeId{0}, CtrlKind::kSsw, step)) {
      ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 0);
}

}  // namespace
}  // namespace mmv2v::fault
