// World-scale suite, part 2: sharded snapshots. Sharding the pair
// enumeration into x-strips with halo exchange is an execution detail — the
// cached geometry and the golden digest must be bit-identical for any shard
// count, and every in-range pair must match a brute-force enumeration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"
#include "core/world.hpp"
#include "geom/spatial_grid.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

ScenarioConfig grid_scenario(int shards) {
  ScenarioConfig s = golden_scenario();
  s.network.topology = traffic::NetworkTopology::kCityGrid;
  s.network.grid_rows = 3;
  s.network.grid_cols = 3;
  s.network.block_m = 150.0;
  s.traffic.lanes_per_direction = 2;
  s.traffic.lane_width_m = 3.5;
  s.traffic.density_vpl = 10.0;
  s.engine.world_shards = shards;
  return s;
}

void expect_identical_snapshots(const World& a, const World& b) {
  ASSERT_EQ(a.size(), b.size());
  for (net::NodeId id = 0; id < a.size(); ++id) {
    const auto pa = a.nearby(id);
    const auto pb = b.nearby(id);
    ASSERT_EQ(pa.size(), pb.size()) << "node " << id;
    for (std::size_t k = 0; k < pa.size(); ++k) {
      EXPECT_EQ(pa[k].other, pb[k].other) << "node " << id;
      EXPECT_EQ(pa[k].distance_m, pb[k].distance_m) << "node " << id;
      EXPECT_EQ(pa[k].bearing_rad, pb[k].bearing_rad) << "node " << id;
      EXPECT_EQ(pa[k].blockers, pb[k].blockers) << "node " << id;
      EXPECT_EQ(pa[k].extra_loss_db, pb[k].extra_loss_db) << "node " << id;
    }
  }
}

TEST(WorldShards, ShardedSnapshotBitIdenticalToUnsharded) {
  for (const int shards : {2, 4, 7}) {
    const World reference{grid_scenario(1), 11};
    const World sharded{grid_scenario(shards), 11};
    expect_identical_snapshots(reference, sharded);
  }
}

TEST(WorldShards, ShardLayoutPartitionsVehicles) {
  const World world{grid_scenario(4), 11};
  const auto& shards = world.shards();
  ASSERT_EQ(shards.size(), 4u);
  std::vector<int> seen(world.size(), 0);
  for (const WorldShard& s : shards) {
    EXPECT_LE(s.x_min, s.x_max);
    for (const std::uint32_t i : s.owned) {
      ++seen[i];
      EXPECT_GE(world.position(i).x, s.x_min - 1e-9);
    }
    // Halo bodies are close enough to matter and are never owned twice.
    for (const std::uint32_t i : s.halo) {
      const double x = world.position(i).x;
      EXPECT_TRUE(x < s.x_min || x > s.x_max ||
                  (x >= s.x_min - 1e-9 && x <= s.x_max + 1e-9));
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(WorldShards, CrossShardPairsMatchBruteForce) {
  const ScenarioConfig scenario = grid_scenario(4);
  const World world{scenario, 23};
  ASSERT_GT(world.size(), 10u);
  const double range = scenario.interference_range_m;
  std::size_t checked = 0;
  for (net::NodeId a = 0; a < world.size(); ++a) {
    for (net::NodeId b = a + 1; b < world.size(); ++b) {
      const geom::Vec2 pa = world.position(a);
      const geom::Vec2 pb = world.position(b);
      const double d = geom::distance(pa, pb);
      const PairGeom* cached = world.pair(a, b);
      if (geom::distance_sq(pa, pb) > range * range) {
        EXPECT_EQ(cached, nullptr) << a << "," << b;
        continue;
      }
      ASSERT_NE(cached, nullptr) << a << "," << b;
      EXPECT_EQ(cached->distance_m, d);
      // Blocker count through the shard-local evaluator (with halo) must
      // equal the count over the global evaluator.
      int expected = world.los().blocker_count(pa, pb, a, b);
      if (world.mobility().cross_median(a, b)) {
        expected += scenario.cross_median_blockers;
      }
      EXPECT_EQ(cached->blockers, expected) << a << "," << b;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(WorldShards, GoldenDigestInvariantAcrossShardAndLaneCounts) {
  for (const int shards : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      ScenarioConfig s = golden_scenario();
      s.engine.world_shards = shards;
      SweepTrace trace;
      const auto points =
          run_density_sweep(golden_experiment(threads), s, mmv2v_factory(), &trace);
      ASSERT_EQ(points.size(), 1u);
      EXPECT_EQ(trace.digest, kGoldenDigest)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace mmv2v::core
