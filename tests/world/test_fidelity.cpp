// World-scale suite, part 3: fidelity tiering. Focus regions must keep the
// full protocol stack (and the golden digest) pinned inside them; tier
// transitions must be hysteretic, budget-limited, and deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/fidelity.hpp"
#include "core/golden_scenario.hpp"
#include "core/world.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::kGoldenDigest;
using golden::mmv2v_factory;
using traffic::FidelityTier;

TierConfig covering_tiers() {
  TierConfig tier;
  tier.enabled = true;
  // One focus region swallowing the whole legacy ring: every vehicle stays
  // kFull, so tiering must be a behavioral no-op.
  tier.focus.push_back(FocusRegion{{250.0, 0.0}, 1e6});
  return tier;
}

ScenarioConfig tiered_city(double focus_radius) {
  ScenarioConfig s = golden_scenario();
  s.network.topology = traffic::NetworkTopology::kCityGrid;
  s.network.grid_rows = 3;
  s.network.grid_cols = 3;
  s.network.block_m = 200.0;
  s.traffic.lanes_per_direction = 2;
  s.traffic.lane_width_m = 3.5;
  s.traffic.density_vpl = 10.0;
  s.tier.enabled = true;
  s.tier.focus.push_back(FocusRegion{{200.0, 200.0}, focus_radius});
  s.tier.kinematic_radius_m = 120.0;
  s.tier.hysteresis_m = 20.0;
  return s;
}

// A focus region covering the whole scenario keeps every vehicle at kFull,
// and the full StagedOhmProtocol must then reproduce the golden digest bit
// for bit — on the legacy ring and on the ring-as-network topology.
TEST(FidelityTiers, CoveringFocusRegionKeepsGoldenDigest) {
  for (const bool as_network : {false, true}) {
    ScenarioConfig s = golden_scenario();
    if (as_network) s.network.topology = traffic::NetworkTopology::kRingNetwork;
    s.tier = covering_tiers();
    SweepTrace trace;
    const auto points =
        run_density_sweep(golden_experiment(1), s, mmv2v_factory(), &trace);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(trace.digest, kGoldenDigest) << "as_network=" << as_network;
  }
}

TEST(FidelityTiers, HysteresisPreventsBoundaryFlapping) {
  TierConfig cfg;
  cfg.enabled = true;
  cfg.focus.push_back(FocusRegion{{0.0, 0.0}, 100.0});
  cfg.kinematic_radius_m = 200.0;
  cfg.hysteresis_m = 30.0;
  const FidelityTiering tiering{cfg};

  // One vehicle just inside the Full region, then oscillating across the
  // edge by less than the hysteresis band: the tier must never change.
  std::vector<geom::Vec2> pos{{99.0, 0.0}};
  std::vector<FidelityTier> tiers;
  tiering.reset(pos, tiers);
  ASSERT_EQ(tiers[0], FidelityTier::kFull);
  for (int k = 0; k < 20; ++k) {
    pos[0].x = (k % 2 == 0) ? 99.0 : 100.0 + cfg.hysteresis_m / 2.0;
    tiering.update(pos, tiers);
    EXPECT_EQ(tiers[0], FidelityTier::kFull) << "iteration " << k;
  }
  // Past the exit radius the demotion does happen.
  pos[0].x = 100.0 + cfg.hysteresis_m + 1.0;
  tiering.update(pos, tiers);
  EXPECT_EQ(tiers[0], FidelityTier::kKinematic);
  // And the same band protects the Kinematic/OnRails boundary.
  pos[0].x = 100.0 + cfg.kinematic_radius_m + cfg.hysteresis_m - 1.0;
  tiering.update(pos, tiers);
  EXPECT_EQ(tiers[0], FidelityTier::kKinematic);
  pos[0].x = 100.0 + cfg.kinematic_radius_m + cfg.hysteresis_m + 1.0;
  tiering.update(pos, tiers);
  EXPECT_EQ(tiers[0], FidelityTier::kOnRails);
}

TEST(FidelityTiers, BudgetsCapTransitionsPerUpdate) {
  TierConfig cfg;
  cfg.enabled = true;
  cfg.focus.push_back(FocusRegion{{0.0, 0.0}, 100.0});
  cfg.kinematic_radius_m = 200.0;
  cfg.hysteresis_m = 10.0;
  cfg.promote_budget = 3;
  cfg.demote_budget = 5;
  const FidelityTiering tiering{cfg};

  // 20 vehicles inside the region, then all teleported far outside.
  std::vector<geom::Vec2> pos(20, geom::Vec2{50.0, 0.0});
  std::vector<FidelityTier> tiers;
  tiering.reset(pos, tiers);
  for (auto& p : pos) p.x = 1000.0;
  tiering.update(pos, tiers);
  std::size_t demoted = 0;
  for (const FidelityTier t : tiers) demoted += (t != FidelityTier::kFull) ? 1 : 0;
  EXPECT_EQ(demoted, 5u);  // demote_budget, ascending id

  // Teleport back: promotions are budgeted too, one tier step per update.
  for (auto& p : pos) p.x = 50.0;
  tiering.update(pos, tiers);
  std::size_t promoted = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    promoted += (tiers[i] == FidelityTier::kFull) ? 1 : 0;
  }
  EXPECT_EQ(promoted, 3u);  // promote_budget
}

// The named world-label invariant: tier assignment over a live city-grid
// world is a deterministic function of the scenario and seed.
TEST(FidelityTiers, TierHysteresisDeterministicAcrossRuns) {
  const ScenarioConfig s = tiered_city(150.0);
  World a{s, 7};
  World b{s, 7};
  bool saw_non_full = false;
  for (int tick = 0; tick < 40; ++tick) {
    a.advance(0.1);
    b.advance(0.1);
    ASSERT_EQ(a.size(), b.size());
    for (net::NodeId id = 0; id < a.size(); ++id) {
      ASSERT_EQ(a.tier_of(id), b.tier_of(id)) << "tick " << tick << " id " << id;
      saw_non_full |= a.tier_of(id) != FidelityTier::kFull;
    }
  }
  EXPECT_TRUE(saw_non_full) << "scenario never exercised a demotion";
  EXPECT_EQ(a.tier_count(FidelityTier::kFull) + a.tier_count(FidelityTier::kKinematic) +
                a.tier_count(FidelityTier::kOnRails),
            a.size());
}

TEST(FidelityTiers, OnRailsVehiclesDropOutOfPairGeometry) {
  // Small focus region in one corner of the grid: far vehicles go OnRails.
  ScenarioConfig s = tiered_city(100.0);
  s.tier.focus[0].center = {0.0, 0.0};
  s.tier.kinematic_radius_m = 80.0;
  s.tier.demote_budget = 10'000;  // let everyone settle immediately
  World world{s, 3};
  for (int tick = 0; tick < 30; ++tick) world.advance(0.1);

  const std::size_t on_rails = world.tier_count(FidelityTier::kOnRails);
  ASSERT_GT(on_rails, 0u);
  ASSERT_GT(world.tier_count(FidelityTier::kFull), 0u);

  std::size_t checked = 0;
  bool saw_occupancy = false;
  for (net::NodeId id = 0; id < world.size(); ++id) {
    if (world.tier_of(id) == FidelityTier::kOnRails) {
      // No cached geometry in either direction.
      EXPECT_TRUE(world.nearby(id).empty()) << "id " << id;
      ++checked;
    } else {
      for (const PairGeom& p : world.nearby(id)) {
        EXPECT_NE(world.tier_of(p.other), FidelityTier::kOnRails)
            << id << " -> " << p.other;
      }
      if (world.onrails_near(id) > 0) {
        saw_occupancy = true;
        EXPECT_GT(world.onrails_occupancy(id), 0.0);
        EXPECT_LT(world.onrails_occupancy(id), 1.0);
      }
    }
  }
  EXPECT_EQ(checked, on_rails);
  EXPECT_TRUE(saw_occupancy) << "no full-tier vehicle saw OnRails traffic nearby";
}

TEST(FidelityTiers, DisabledTieringReportsAllFull) {
  const World world{golden_scenario(), 5};
  EXPECT_EQ(world.tier_count(FidelityTier::kFull), world.size());
  EXPECT_EQ(world.tier_count(FidelityTier::kOnRails), 0u);
  EXPECT_EQ(world.tier_of(0), FidelityTier::kFull);
  EXPECT_EQ(world.onrails_near(0), 0u);
  EXPECT_EQ(world.onrails_occupancy(0), 0.0);
}

}  // namespace
}  // namespace mmv2v::core
