// World-scale suite, part 1: the degenerate one-segment ring network must be
// a perfect stand-in for the legacy ring — the full protocol stack over a
// kRingNetwork world reproduces the checked-in golden digest bit-for-bit.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"
#include "core/world.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::hex64;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

ScenarioConfig network_golden_scenario() {
  ScenarioConfig s = golden_scenario();
  s.network.topology = traffic::NetworkTopology::kRingNetwork;
  return s;
}

TEST(NetworkWorld, RingNetworkReproducesGoldenDigest) {
  SweepTrace trace;
  const auto points = run_density_sweep(golden_experiment(/*threads=*/1),
                                        network_golden_scenario(), mmv2v_factory(), &trace);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(trace.digest, kGoldenDigest)
      << "the ring road network diverged from the legacy ring simulator; "
         "digest is " << hex64(trace.digest);
}

TEST(NetworkWorld, LegacyAccessorGatedByTopology) {
  const World ring{golden_scenario(), 1};
  EXPECT_NO_THROW(ring.traffic());
  EXPECT_EQ(&ring.mobility(), static_cast<const traffic::MobilityModel*>(&ring.traffic()));

  const World net{network_golden_scenario(), 1};
  EXPECT_THROW(net.traffic(), std::logic_error);
  EXPECT_GT(net.mobility().size(), 0u);
  EXPECT_EQ(net.size(), ring.size());
}

TEST(NetworkWorld, CityGridWorldRunsTheProtocolStack) {
  // A small signalized grid drives the same World snapshot machinery; the
  // sweep completes and reports sane metrics (no NaNs, no empty cells).
  ScenarioConfig s = golden_scenario();
  s.network.topology = traffic::NetworkTopology::kCityGrid;
  s.network.grid_rows = 2;
  s.network.grid_cols = 2;
  s.network.block_m = 150.0;
  s.traffic.density_vpl = 8.0;
  ExperimentConfig e = golden_experiment(/*threads=*/1);
  e.densities_vpl = {8.0};
  e.repetitions = 1;
  const auto points = run_density_sweep(e, s, mmv2v_factory(), nullptr);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(std::isfinite(points[0].ocr.mean()));
  EXPECT_GE(points[0].degree.mean(), 0.0);
}

}  // namespace
}  // namespace mmv2v::core
