// Unit tests for the process-wide lane budgeter: grant policy (flexible vs
// explicit requests, explicit budgets), lease accounting, and the
// FrameResources integration that replaced the multiplicative sweep x frame
// thread scheme.
#include <gtest/gtest.h>

#include "core/frame_resources.hpp"
#include "sim/lane_budgeter.hpp"

namespace mmv2v::sim {
namespace {

TEST(LaneBudgeter, FlexibleRequestTakesTheRemainder) {
  LaneBudgeter b;
  b.set_budget(8);
  LaneBudgeter::Lease first = b.acquire(0);
  EXPECT_EQ(first.lanes(), 8);
  EXPECT_EQ(b.extra_in_use(), 7);
  // The budget is spoken for: a nested flexible request degrades to serial
  // instead of multiplying.
  LaneBudgeter::Lease second = b.acquire(0);
  EXPECT_EQ(second.lanes(), 1);
  first.release();
  EXPECT_EQ(b.extra_in_use(), 0);
  LaneBudgeter::Lease third = b.acquire(0);
  EXPECT_EQ(third.lanes(), 8);
}

TEST(LaneBudgeter, ExplicitRequestClampedUnderExplicitBudget) {
  LaneBudgeter b;
  b.set_budget(4);
  LaneBudgeter::Lease sweep = b.acquire(3);
  EXPECT_EQ(sweep.lanes(), 3);
  // 4-lane budget, 2 extra already out: an ask for 8 gets 1 + 1.
  LaneBudgeter::Lease frame = b.acquire(8);
  EXPECT_EQ(frame.lanes(), 2);
  // Grants never drop below the caller's own lane.
  LaneBudgeter::Lease floor = b.acquire(5);
  EXPECT_EQ(floor.lanes(), 1);
}

TEST(LaneBudgeter, ExplicitRequestHonoredUnderHardwareDefault) {
  // Without an explicit budget an explicit ask is the user's deliberate
  // choice (results are lane-count invariant), so it is honored even beyond
  // the hardware default — this keeps engine.threads = 8 meaningful on a
  // small CI box.
  LaneBudgeter b;
  LaneBudgeter::Lease lease = b.acquire(16);
  EXPECT_EQ(lease.lanes(), 16);
  EXPECT_EQ(b.extra_in_use(), 15);
}

TEST(LaneBudgeter, SetBudgetZeroRestoresHardwareDefault) {
  LaneBudgeter b;
  b.set_budget(2);
  EXPECT_EQ(b.budget(), 2);
  b.set_budget(0);
  EXPECT_GE(b.budget(), 1);
  // Back under the hardware default: explicit asks are honored again.
  LaneBudgeter::Lease lease = b.acquire(b.budget() + 5);
  EXPECT_EQ(lease.lanes(), b.budget() + 5);
}

TEST(LaneBudgeter, LeaseMoveTransfersOwnership) {
  LaneBudgeter b;
  b.set_budget(6);
  LaneBudgeter::Lease a = b.acquire(4);
  EXPECT_EQ(b.extra_in_use(), 3);
  LaneBudgeter::Lease c = std::move(a);
  EXPECT_EQ(a.lanes(), 0);
  EXPECT_EQ(c.lanes(), 4);
  EXPECT_EQ(b.extra_in_use(), 3);
  c.release();
  EXPECT_EQ(b.extra_in_use(), 0);
  c.release();  // double release is a no-op
  EXPECT_EQ(b.extra_in_use(), 0);
}

TEST(LaneBudgeter, FrameResourcesLeaseFromProcessBudgeter) {
  // FrameResources routes engine.threads through the process budgeter; the
  // lease shows up in the process-wide accounting and returns on
  // destruction. (Uses the singleton — keep asks modest and restore state.)
  LaneBudgeter& global = LaneBudgeter::instance();
  const int before = global.extra_in_use();
  {
    core::EngineParams params;
    params.threads = 3;
    core::FrameResources resources{params};
    EXPECT_EQ(resources.lanes(), 3);
    EXPECT_EQ(global.extra_in_use(), before + 2);
  }
  EXPECT_EQ(global.extra_in_use(), before);
}

}  // namespace
}  // namespace mmv2v::sim
