#include "sim/frame.hpp"

#include <gtest/gtest.h>

namespace mmv2v::sim {
namespace {

// Paper configuration: S=24, K=3, M=40, s=6 refinement beams.
FrameSchedule paper_schedule() { return FrameSchedule{TimingConfig{}, 24, 3, 40, 6}; }

TEST(FrameSchedule, SndRoundMatchesPaperTiming) {
  // "For scanning 24 sectors, one round of SND takes 0.8 ms" — 24 dwells of
  // 16 us twice (role swap) = 0.768 ms.
  const FrameSchedule s = paper_schedule();
  EXPECT_NEAR(s.sector_dwell_s(), 16e-6, 1e-12);
  EXPECT_NEAR(s.snd_round_s(), 0.768e-3, 1e-9);
  EXPECT_NEAR(s.snd_round_s(), 0.8e-3, 0.05e-3) << "paper quotes ~0.8 ms";
}

TEST(FrameSchedule, DcmSlotMatchesPaperTiming) {
  const FrameSchedule s = paper_schedule();
  EXPECT_NEAR(s.timing().negotiation_slot_s, 0.03e-3, 1e-12);
  EXPECT_NEAR(s.dcm_total_s(), 40 * 0.03e-3, 1e-12);
}

TEST(FrameSchedule, ControlPhasesUnderFiveMs) {
  // Paper Section IV-B3: SND + DCM take < 5 ms, so topology is static.
  const FrameSchedule s = paper_schedule();
  EXPECT_LT(s.snd_total_s() + s.dcm_total_s(), 5e-3);
}

TEST(FrameSchedule, PhaseOffsetsAreContiguous) {
  const FrameSchedule s = paper_schedule();
  EXPECT_DOUBLE_EQ(s.snd_start_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.dcm_start_s(), s.snd_total_s());
  EXPECT_DOUBLE_EQ(s.refinement_start_s(), s.snd_total_s() + s.dcm_total_s());
  EXPECT_DOUBLE_EQ(s.udt_start_s(), s.refinement_start_s() + s.refinement_s());
  EXPECT_NEAR(s.udt_start_s() + s.udt_duration_s(), s.timing().frame_s, 1e-12);
}

TEST(FrameSchedule, MostOfTheFrameIsForData) {
  const FrameSchedule s = paper_schedule();
  EXPECT_GT(s.udt_duration_s(), 0.75 * s.timing().frame_s);
}

TEST(FrameSchedule, RefinementScalesWithBeams) {
  const FrameSchedule s6 = FrameSchedule{TimingConfig{}, 24, 3, 40, 6};
  const FrameSchedule s12 = FrameSchedule{TimingConfig{}, 24, 3, 40, 12};
  EXPECT_GT(s12.refinement_s(), s6.refinement_s());
}

TEST(FrameSchedule, ValidatesArguments) {
  const TimingConfig t;
  EXPECT_THROW((FrameSchedule{t, 23, 3, 40, 6}), std::invalid_argument) << "odd sectors";
  EXPECT_THROW((FrameSchedule{t, 0, 3, 40, 6}), std::invalid_argument);
  EXPECT_THROW((FrameSchedule{t, 24, 0, 40, 6}), std::invalid_argument);
  EXPECT_THROW((FrameSchedule{t, 24, 3, 0, 6}), std::invalid_argument);
  EXPECT_THROW((FrameSchedule{t, 24, 3, 40, 0}), std::invalid_argument);
}

TEST(FrameSchedule, RejectsOverfullFrame) {
  TimingConfig t;
  t.frame_s = 2e-3;  // 2 ms frame cannot hold 3 SND rounds + 40 slots
  EXPECT_THROW((FrameSchedule{t, 24, 3, 40, 6}), std::invalid_argument);
}

TEST(FrameSchedule, ManyRoundsEatDataTime) {
  const double udt_k1 = FrameSchedule{TimingConfig{}, 24, 1, 40, 6}.udt_duration_s();
  const double udt_k4 = FrameSchedule{TimingConfig{}, 24, 4, 40, 6}.udt_duration_s();
  EXPECT_NEAR(udt_k1 - udt_k4, 3 * 0.768e-3, 1e-9);
}

}  // namespace
}  // namespace mmv2v::sim
