// PoolRegistry: persistent WorkerPool checkout/park lifecycle. The registry
// only recycles execution threads — results must be identical whether a
// pool is fresh or reused, and parked pools must actually be reused instead
// of respawned.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sim/pool_registry.hpp"

namespace mmv2v::sim {
namespace {

TEST(PoolRegistry, CheckoutCreatesPoolWithRequestedLanes) {
  PoolRegistry registry;
  PoolRegistry::Checkout co = registry.checkout(3);
  ASSERT_NE(co.pool(), nullptr);
  EXPECT_EQ(co.pool()->lanes(), 3);
  EXPECT_EQ(registry.idle_count(), 0u);
}

TEST(PoolRegistry, ReleaseParksAndSameWidthCheckoutReuses) {
  PoolRegistry registry;
  PoolRegistry::Checkout co = registry.checkout(2);
  WorkerPool* first = co.pool();
  co.release();
  EXPECT_EQ(co.pool(), nullptr);
  EXPECT_EQ(registry.idle_count(), 1u);

  PoolRegistry::Checkout again = registry.checkout(2);
  EXPECT_EQ(again.pool(), first);  // recycled, not respawned
  EXPECT_EQ(registry.idle_count(), 0u);
}

TEST(PoolRegistry, DifferentWidthGetsAFreshPool) {
  PoolRegistry registry;
  registry.checkout(2).release();
  ASSERT_EQ(registry.idle_count(), 1u);
  PoolRegistry::Checkout wide = registry.checkout(4);
  EXPECT_EQ(wide.pool()->lanes(), 4);
  EXPECT_EQ(registry.idle_count(), 1u);  // the 2-lane pool stays parked
}

TEST(PoolRegistry, DestructionOfCheckoutParksThePool) {
  PoolRegistry registry;
  { PoolRegistry::Checkout co = registry.checkout(2); }
  EXPECT_EQ(registry.idle_count(), 1u);
  registry.clear();
  EXPECT_EQ(registry.idle_count(), 0u);
}

TEST(PoolRegistry, ReusedPoolStillCoversEveryChunk) {
  PoolRegistry registry;
  registry.checkout(4).release();
  PoolRegistry::Checkout co = registry.checkout(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  co.pool()->for_chunks(kN, 7, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(PoolRegistry, ProcessInstanceIsStable) {
  EXPECT_EQ(&PoolRegistry::instance(), &PoolRegistry::instance());
}

}  // namespace
}  // namespace mmv2v::sim
