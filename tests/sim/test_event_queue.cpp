#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmv2v::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownOrFiredReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(id)) << "already fired";
  EXPECT_FALSE(q.cancel(9999)) << "unknown id";
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, LiveCountTracksCancellations) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.live_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_count(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0) << "cancelled front is skipped";
}

TEST(EventQueue, EmptyQueueThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.run_next(), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1.0);
    q.schedule(1.5, [&] { fired.push_back(1.5); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine engine;
  int count = 0;
  engine.schedule_at(0.5, [&] { ++count; });
  engine.schedule_at(1.5, [&] { ++count; });
  engine.run_until(1.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(1.0, [&] {
    engine.schedule_in(0.25, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.25);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine engine;
  engine.run_until(5.0);
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, ResetClearsEverything) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run_until(0.5);
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.queue().empty());
}

TEST(EventQueue, NextTimeSkipsRunsOfCancelledFrontEvents) {
  // The heap keeps the invariant "front is live" eagerly at cancel time, so
  // next_time() is a pure read even when every earlier event was cancelled.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  for (int i = 0; i < 49; ++i) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
  EXPECT_EQ(q.live_count(), 1u);
  const EventQueue& cq = q;  // next_time() must be callable on a const queue
  EXPECT_DOUBLE_EQ(cq.next_time(), 49.0);
  EXPECT_DOUBLE_EQ(q.run_next(), 49.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelChurnStressStaysConsistent) {
  // Regression harness for the O(n)-scan cancel: heavy interleaved
  // schedule/cancel traffic must keep live_count, next_time and the fired
  // set exactly consistent. Deterministic LCG so the test is reproducible.
  EventQueue q;
  std::vector<EventId> live;
  std::vector<int> fired;
  int cancelled_payloads = 0;
  std::uint64_t lcg = 1;
  const auto next_rand = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  int scheduled = 0;
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 10; ++k) {
      const double t = 1.0 + static_cast<double>(next_rand() % 1000);
      const int payload = scheduled++;
      live.push_back(q.schedule(t, [&fired, payload] { fired.push_back(payload); }));
    }
    for (int k = 0; k < 5 && !live.empty(); ++k) {
      const std::size_t pick = next_rand() % live.size();
      if (q.cancel(live[pick])) ++cancelled_payloads;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (!q.empty()) {
      const double front = q.next_time();
      EXPECT_DOUBLE_EQ(q.run_next(), front);
    }
  }
  const std::size_t ran_in_rounds = fired.size();
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired.size() + static_cast<std::size_t>(cancelled_payloads),
            static_cast<std::size_t>(scheduled));
  EXPECT_GT(ran_in_rounds, 0u);
  EXPECT_GT(cancelled_payloads, 0);
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  std::vector<double> times;
  // Insert in a scrambled order.
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule(t, [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(times.size(), 2000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace mmv2v::sim
