#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mmv2v::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownOrFiredReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(id)) << "already fired";
  EXPECT_FALSE(q.cancel(9999)) << "unknown id";
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, LiveCountTracksCancellations) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.live_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.live_count(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0) << "cancelled front is skipped";
}

TEST(EventQueue, EmptyQueueThrowsOnAccess) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.run_next(), std::logic_error);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1.0);
    q.schedule(1.5, [&] { fired.push_back(1.5); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine engine;
  int count = 0;
  engine.schedule_at(0.5, [&] { ++count; });
  engine.schedule_at(1.5, [&] { ++count; });
  engine.run_until(1.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(1.0, [&] {
    engine.schedule_in(0.25, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.25);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine engine;
  engine.run_until(5.0);
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, ResetClearsEverything) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run_until(0.5);
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.queue().empty());
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  std::vector<double> times;
  // Insert in a scrambled order.
  for (int i = 0; i < 2000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.schedule(t, [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(times.size(), 2000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace mmv2v::sim
