// Sweep-farm service tests (DESIGN.md Section 15): queue lifecycle, claim
// protocol, and the headline contract — an interrupted-and-resumed farm run
// produces output bytes identical to an uninterrupted one, whose digest and
// aggregate JSON in turn match a plain in-process run_density_sweep.
#include "farm/farm_worker.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "common/config_parser.hpp"
#include "common/hash.hpp"
#include "farm/job_queue.hpp"
#include "farm/sweep_spec.hpp"
#include "obs/mmtrace.hpp"

namespace mmv2v::farm {
namespace {

namespace fs = std::filesystem;

// Small but real sweep: 2 densities x 2 reps on a short horizon, binary
// trace format so the journal carries chunk payloads.
constexpr const char* kSpecText =
    "densities = 10,14\n"
    "reps = 2\n"
    "horizon_s = 0.2\n"
    "seed = 5\n"
    "trace_out = run.trace\n"
    "trace.format = binary\n"
    "out = results_points.json\n";

class FarmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} /
            ("mmv2v_farm_" +
             std::string{::testing::UnitTest::GetInstance()->current_test_info()->name()});
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  [[nodiscard]] std::string queue_root() const { return (root_ / "queue").string(); }

  static std::string read_file(const fs::path& path) {
    std::ifstream in{path, std::ios::binary};
    EXPECT_TRUE(in) << "missing " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
  }

  fs::path root_;
};

TEST_F(FarmTest, SubmitActivateFinishLifecycle) {
  JobQueue queue{queue_root()};
  const std::string id = queue.submit("reps = 1\n", "smoke");
  EXPECT_TRUE(id.starts_with("job-000001")) << id;
  EXPECT_NE(id.find("smoke"), std::string::npos);
  ASSERT_EQ(queue.pending_jobs().size(), 1u);
  EXPECT_TRUE(queue.active_jobs().empty());

  const std::optional<JobRef> job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, id);
  EXPECT_TRUE(queue.pending_jobs().empty());
  ASSERT_EQ(queue.active_jobs().size(), 1u);
  EXPECT_TRUE(fs::exists(job->dir / "job.spec"));
  EXPECT_TRUE(fs::is_directory(job->dir / "claims"));
  EXPECT_FALSE(queue.activate_next().has_value()) << "nothing left to activate";

  queue.finish(*job);
  EXPECT_TRUE(queue.active_jobs().empty());
  ASSERT_EQ(queue.done_jobs().size(), 1u);
  EXPECT_EQ(queue.done_jobs()[0], id);
}

TEST_F(FarmTest, SubmittedIdsNeverCollide) {
  JobQueue queue{queue_root()};
  const std::string a = queue.submit("reps = 1\n");
  const std::string b = queue.submit("reps = 1\n");
  EXPECT_NE(a, b);
  // Ids stay unique even against jobs that already left pending/.
  const std::optional<JobRef> job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  queue.finish(*job);
  const std::string c = queue.submit("reps = 1\n");
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
}

TEST_F(FarmTest, CellClaimsAreExclusiveAndStaleClaimsAreStolen) {
  JobQueue queue{queue_root()};
  (void)queue.submit("reps = 1\n");
  const std::optional<JobRef> job = queue.activate_next();
  ASSERT_TRUE(job.has_value());

  EXPECT_EQ(try_claim(job->dir, cell_claim_name(0)), ClaimResult::kClaimed);
  // Our own live pid holds it now.
  EXPECT_EQ(try_claim(job->dir, cell_claim_name(0)), ClaimResult::kHeld);

  // A claim owned by a dead process is stolen.
  {
    std::ofstream out{job->dir / "claims" / cell_claim_name(1)};
    out << 999999999 << "\n";  // beyond pid_max: certainly not running
  }
  EXPECT_FALSE(pid_alive(999999999));
  EXPECT_EQ(try_claim(job->dir, cell_claim_name(1)), ClaimResult::kClaimed);

  // Claims inside a vanished job report kGone, not a crash.
  fs::remove_all(job->dir);
  EXPECT_EQ(try_claim(job->dir, cell_claim_name(2)), ClaimResult::kGone);
}

TEST_F(FarmTest, DrainWorkerMatchesInProcessSweep) {
  // Reference: the same spec run directly through run_density_sweep.
  const ConfigMap config = ConfigMap::parse(kSpecText);
  SweepSpec reference = parse_sweep_spec(config);
  resolve_spec_paths(reference, root_ / "ref");
  fs::create_directories(root_ / "ref");
  core::SweepTrace ref_trace;
  const auto ref_points =
      core::run_density_sweep(reference.experiment, reference.base,
                              make_sweep_protocol_factory(config), &ref_trace);
  const std::string ref_json =
      core::sweep_points_json(reference.protocol, reference.experiment, ref_points);

  JobQueue queue{queue_root()};
  (void)queue.submit(kSpecText, "drain");
  FarmOptions options;
  options.queue_root = queue_root();
  options.drain = true;
  const FarmWorkerStats stats = run_farm_worker(options);
  EXPECT_EQ(stats.cells_run, 4u);
  EXPECT_EQ(stats.jobs_activated, 1u);
  EXPECT_EQ(stats.jobs_finalized, 1u);
  EXPECT_EQ(stats.jobs_failed, 0u);

  ASSERT_EQ(queue.done_jobs().size(), 1u);
  const fs::path done = fs::path{queue_root()} / "done" / queue.done_jobs()[0];

  // Aggregate JSON is bit-identical to the in-process sweep.
  EXPECT_EQ(read_file(done / "results_points.json"), ref_json);
  // The merged binary trace replays to the same event digest (the manifest
  // meta chunk may differ: it records thread counts).
  const std::string farm_trace = read_file(done / "run.trace");
  EXPECT_EQ(fnv1a64(obs::mmtrace_to_jsonl(farm_trace, /*include_meta=*/false)),
            ref_trace.digest);
  // Progress snapshot reports completion.
  const std::string progress = read_file(done / "progress.json");
  EXPECT_NE(progress.find("\"completed\":4"), std::string::npos) << progress;
}

TEST_F(FarmTest, InterruptedFarmResumesBitIdentical) {
  // Run A: uninterrupted single worker.
  JobQueue queue_a{(root_ / "qa").string()};
  (void)queue_a.submit(kSpecText, "full");
  FarmOptions full;
  full.queue_root = (root_ / "qa").string();
  full.drain = true;
  (void)run_farm_worker(full);
  ASSERT_EQ(queue_a.done_jobs().size(), 1u);
  const fs::path done_a = root_ / "qa" / "done" / queue_a.done_jobs()[0];

  // Run B: a worker that "dies" after two cells (max_cells stops it exactly
  // where SIGKILL would), then a fresh worker resumes.
  JobQueue queue_b{(root_ / "qb").string()};
  (void)queue_b.submit(kSpecText, "full");
  FarmOptions interrupted = full;
  interrupted.queue_root = (root_ / "qb").string();
  interrupted.max_cells = 2;
  const FarmWorkerStats first = run_farm_worker(interrupted);
  EXPECT_EQ(first.cells_run, 2u);
  EXPECT_EQ(first.jobs_finalized, 0u);
  ASSERT_EQ(queue_b.active_jobs().size(), 1u) << "job must still be in flight";

  FarmOptions resume = full;
  resume.queue_root = (root_ / "qb").string();
  const FarmWorkerStats second = run_farm_worker(resume);
  EXPECT_EQ(second.cells_run, 2u) << "resume must re-run only the missing cells";
  EXPECT_EQ(second.jobs_finalized, 1u);
  ASSERT_EQ(queue_b.done_jobs().size(), 1u);
  const fs::path done_b = root_ / "qb" / "done" / queue_b.done_jobs()[0];

  // Byte-for-byte identical outputs: trace (manifest chunk included — both
  // farm runs record workers=0) and aggregate JSON.
  EXPECT_EQ(read_file(done_a / "run.trace"), read_file(done_b / "run.trace"));
  EXPECT_EQ(read_file(done_a / "run.trace.manifest.json"),
            read_file(done_b / "run.trace.manifest.json"));
  EXPECT_EQ(read_file(done_a / "results_points.json"),
            read_file(done_b / "results_points.json"));
  EXPECT_EQ(read_file(done_a / "results.json"), read_file(done_b / "results.json"));
}

TEST_F(FarmTest, ResumeSurvivesTruncatedJournal) {
  JobQueue queue{queue_root()};
  (void)queue.submit(kSpecText, "trunc");
  FarmOptions options;
  options.queue_root = queue_root();
  options.drain = true;
  options.max_cells = 3;
  (void)run_farm_worker(options);
  ASSERT_EQ(queue.active_jobs().size(), 1u);
  const JobRef job = queue.active_jobs()[0];

  // Tear the journal tail: the last record loses some bytes, as if the
  // worker was killed mid-append.
  fs::path journal;
  for (const auto& entry : fs::directory_iterator{job.dir}) {
    if (entry.path().extension() == ".mmcj") journal = entry.path();
  }
  ASSERT_FALSE(journal.empty());
  const auto size = fs::file_size(journal);
  fs::resize_file(journal, size - 5);
  const JournalReplay replay = replay_job_journals(job.dir, false);
  EXPECT_EQ(replay.cells.size(), 2u) << "exactly the torn record is lost";
  EXPECT_EQ(replay.skipped, 1u);

  // The torn cell's claim is still on disk with our (live) pid, so steal
  // protection would block an in-process resume; drop it like a dead
  // worker's claim would be dropped.
  fs::remove(job.dir / "claims" / cell_claim_name(2));

  options.max_cells = 0;
  const FarmWorkerStats stats = run_farm_worker(options);
  EXPECT_EQ(stats.cells_run, 2u) << "torn cell re-runs, journaled cells do not";
  EXPECT_EQ(stats.jobs_finalized, 1u);
  EXPECT_EQ(queue.done_jobs().size(), 1u);
}

TEST_F(FarmTest, BadSpecMovesJobToFailedWithDiagnostics) {
  JobQueue queue{queue_root()};
  (void)queue.submit("protocol = warp_drive\n", "bad");
  FarmOptions options;
  options.queue_root = queue_root();
  options.drain = true;
  const FarmWorkerStats stats = run_farm_worker(options);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.cells_run, 0u);
  ASSERT_EQ(queue.failed_jobs().size(), 1u);
  const std::string error = read_file(fs::path{queue_root()} / "failed" /
                                      queue.failed_jobs()[0] / "error.txt");
  EXPECT_NE(error.find("warp_drive"), std::string::npos) << error;
  EXPECT_TRUE(queue.pending_jobs().empty());
  EXPECT_TRUE(queue.active_jobs().empty());
}

TEST_F(FarmTest, UnwritableOutputFailsTheJobBeforeAnyCell) {
  // Satellite of the fail-fast bugfix: the farm probes every declared output
  // before running cells, so a typo'd absolute path fails in milliseconds.
  const std::string spec =
      "densities = 10\nreps = 1\nhorizon_s = 0.2\n"
      "out = /nonexistent-mmv2v-dir/results.json\n";
  JobQueue queue{queue_root()};
  (void)queue.submit(spec, "badout");
  FarmOptions options;
  options.queue_root = queue_root();
  options.drain = true;
  const FarmWorkerStats stats = run_farm_worker(options);
  EXPECT_EQ(stats.cells_run, 0u) << "cells ran despite an unwritable out=";
  EXPECT_EQ(stats.jobs_failed, 1u);
  ASSERT_EQ(queue.failed_jobs().size(), 1u);
  const std::string error = read_file(fs::path{queue_root()} / "failed" /
                                      queue.failed_jobs()[0] / "error.txt");
  EXPECT_NE(error.find("out"), std::string::npos) << error;
}

TEST_F(FarmTest, SpecKnobTableRejectsTyposAtSubmitTime) {
  EXPECT_THROW((void)parse_sweep_spec(ConfigMap::parse("horizon = 1\n")),
               std::runtime_error);
  EXPECT_THROW((void)canonical_spec_text(ConfigMap::parse("repz = 3\n")),
               std::runtime_error);
  EXPECT_THROW((void)minimal_sweep_config(ConfigMap::parse("repz = 3\n")),
               std::runtime_error);
  // Round trip: canonical text parses back to the same minimal config.
  const ConfigMap config = ConfigMap::parse("reps = 5\ndensities = 10,20\n");
  const ConfigMap minimal = minimal_sweep_config(config);
  const std::string text = canonical_spec_text(minimal);
  EXPECT_EQ(canonical_spec_text(minimal_sweep_config(ConfigMap::parse(text))), text);
  // Defaults are dropped from the minimal form.
  const ConfigMap with_default = ConfigMap::parse("reps = 3\nseed = 9\n");
  EXPECT_FALSE(minimal_sweep_config(with_default).contains("reps"));
  EXPECT_TRUE(minimal_sweep_config(with_default).contains("seed"));
}

TEST_F(FarmTest, PriorityOrdersActivationAndTiesKeepSubmissionOrder) {
  JobQueue queue{queue_root()};
  const std::string low_a = queue.submit("reps = 1\n", "low-a");
  const std::string high = queue.submit("reps = 1\npriority = 5\n", "high");
  const std::string low_b = queue.submit("reps = 1\n", "low-b");
  EXPECT_EQ(spec_priority(fs::path{queue_root()} / "pending" / (high + ".spec")), 5);
  EXPECT_EQ(spec_priority(fs::path{queue_root()} / "pending" / (low_a + ".spec")), 0);

  // Highest priority first, then the priority-0 jobs in submission order.
  std::optional<JobRef> job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, high);
  job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, low_a);
  job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->id, low_b);
}

TEST_F(FarmTest, CancelPendingJobMovesItToFailedWithMarker) {
  JobQueue queue{queue_root()};
  const std::string id = queue.submit(kSpecText, "doomed");
  ASSERT_TRUE(queue.cancel(id));
  EXPECT_TRUE(queue.pending_jobs().empty());
  ASSERT_EQ(queue.failed_jobs().size(), 1u);
  EXPECT_EQ(queue.failed_jobs()[0], id);
  const fs::path dir = fs::path{queue_root()} / "failed" / id;
  EXPECT_TRUE(fs::exists(dir / cancel_marker_name()));
  EXPECT_NE(read_file(dir / "error.txt").find("cancelled"), std::string::npos);
  // A second cancel (or a cancel of a never-submitted id) reports failure.
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel("job-999999"));
}

TEST_F(FarmTest, CancelActiveJobStopsWorkerAtCellBoundary) {
  JobQueue queue{queue_root()};
  const std::string id = queue.submit(kSpecText, "doomed");
  const std::optional<JobRef> job = queue.activate_next();
  ASSERT_TRUE(job.has_value());
  ASSERT_TRUE(queue.cancel(id));
  EXPECT_TRUE(JobQueue::cancel_requested(*job));

  FarmOptions options;
  options.queue_root = queue_root();
  options.drain = true;
  const FarmWorkerStats stats = run_farm_worker(options);
  EXPECT_EQ(stats.cells_run, 0u) << "cancel must win before the first cell";
  EXPECT_EQ(stats.jobs_failed, 1u);
  ASSERT_EQ(queue.failed_jobs().size(), 1u);
  const fs::path dir = fs::path{queue_root()} / "failed" / id;
  EXPECT_TRUE(fs::exists(dir / cancel_marker_name())) << "marker travels to failed/";
  EXPECT_NE(read_file(dir / "error.txt").find("cancelled"), std::string::npos);
}

TEST_F(FarmTest, RelativeSpecPathsResolveIntoTheJobDirectory) {
  const ConfigMap config = ConfigMap::parse(kSpecText);
  SweepSpec spec = parse_sweep_spec(config);
  resolve_spec_paths(spec, "/jobs/job-42");
  EXPECT_EQ(spec.experiment.trace_out, "/jobs/job-42/run.trace");
  EXPECT_EQ(spec.out_json, "/jobs/job-42/results_points.json");
  // Absolute paths are left alone.
  SweepSpec abs = parse_sweep_spec(config);
  abs.out_json = "/tmp/elsewhere.json";
  resolve_spec_paths(abs, "/jobs/job-42");
  EXPECT_EQ(abs.out_json, "/tmp/elsewhere.json");
}

}  // namespace
}  // namespace mmv2v::farm
