// The farm's headline fault-tolerance contract, exercised with a real
// SIGKILL: a farm_runner worker process is killed mid-sweep (torn journal
// tails, orphaned cell claims and all), a fresh worker resumes the job, and
// the merged outputs are byte-identical to an uninterrupted farm run.
// Requires the farm_runner tool binary (FARM_RUNNER_BIN compile definition).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "farm/farm_worker.hpp"
#include "farm/job_queue.hpp"

namespace mmv2v::farm {
namespace {

namespace fs = std::filesystem;

// 9 cells x ~0.1 s keeps the worker busy long enough to be killed mid-sweep
// while the whole test stays in tier-1 time.
constexpr const char* kSpecText =
    "densities = 10,12,14\n"
    "reps = 3\n"
    "horizon_s = 0.4\n"
    "seed = 11\n"
    "trace_out = run.trace\n"
    "trace.format = binary\n"
    "out = results_points.json\n";

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Spawn `farm_runner queue=<root> mode=work drain=true` with stdout/stderr
/// silenced; returns the child pid.
pid_t spawn_worker(const std::string& queue_root) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::close(devnull);
  }
  const std::string queue_flag = "queue=" + queue_root;
  ::execl(FARM_RUNNER_BIN, "farm_runner", queue_flag.c_str(), "mode=work",
          "drain=true", "poll_ms=20", static_cast<char*>(nullptr));
  ::_exit(127);  // exec failed
}

TEST(FarmKill, SigkilledWorkerResumesBitIdentical) {
  const fs::path root = fs::path{::testing::TempDir()} / "mmv2v_farm_kill";
  fs::remove_all(root);
  fs::create_directories(root);

  // Reference: the same job drained by an uninterrupted in-process worker.
  const std::string ref_root = (root / "ref").string();
  {
    JobQueue queue{ref_root};
    (void)queue.submit(kSpecText, "sweep");
    FarmOptions options;
    options.queue_root = ref_root;
    options.drain = true;
    const FarmWorkerStats stats = run_farm_worker(options);
    ASSERT_EQ(stats.jobs_finalized, 1u);
  }
  JobQueue ref_queue{ref_root};
  ASSERT_EQ(ref_queue.done_jobs().size(), 1u);
  const fs::path ref_done = fs::path{ref_root} / "done" / ref_queue.done_jobs()[0];

  // Victim run: a real farm_runner subprocess, SIGKILLed once its journal
  // shows the first completed cell.
  const std::string kill_root = (root / "kill").string();
  JobQueue queue{kill_root};
  (void)queue.submit(kSpecText, "sweep");
  const pid_t worker = spawn_worker(kill_root);
  ASSERT_GT(worker, 0) << "fork failed";

  std::size_t journaled_at_kill = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{120};
  while (std::chrono::steady_clock::now() < deadline) {
    const auto active = queue.active_jobs();
    if (!active.empty()) {
      journaled_at_kill = replay_job_journals(active[0].dir, false).cells.size();
      if (journaled_at_kill >= 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  ASSERT_GE(journaled_at_kill, 1u) << "worker never journaled a cell";
  ASSERT_EQ(::kill(worker, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(worker, &status, 0), worker);
  ASSERT_TRUE(WIFSIGNALED(status)) << "worker was not killed by the signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The job must still be in flight with partial state on disk.
  ASSERT_EQ(queue.done_jobs().size(), 0u) << "worker finished before the kill landed; "
                                             "the spec needs more cells";
  ASSERT_EQ(queue.active_jobs().size(), 1u);
  const JobRef job = queue.active_jobs()[0];
  const std::size_t journaled = replay_job_journals(job.dir, false).cells.size();
  ASSERT_LT(journaled, 9u) << "nothing left to resume";
  // The dead worker's claims outnumber its journal records whenever the kill
  // landed mid-cell; either way they name a pid that no longer runs, so the
  // resuming worker must steal them rather than wait forever.
  std::size_t claims = 0;
  for (const auto& entry : fs::directory_iterator{job.dir / "claims"}) {
    ++claims;
    std::ifstream in{entry.path()};
    long pid = 0;
    ASSERT_TRUE(in >> pid) << entry.path() << " holds no owner pid";
    EXPECT_FALSE(pid_alive(static_cast<pid_t>(pid)))
        << "claim " << entry.path() << " owned by a live process";
  }
  EXPECT_GE(claims, journaled);

  // Resume in-process and drain to completion.
  FarmOptions resume;
  resume.queue_root = kill_root;
  resume.drain = true;
  const FarmWorkerStats stats = run_farm_worker(resume);
  EXPECT_EQ(stats.jobs_finalized, 1u);
  EXPECT_EQ(stats.cells_run, 9u - journaled)
      << "resume must run exactly the cells the dead worker did not journal";

  // Byte-identical outputs, interrupted or not.
  ASSERT_EQ(queue.done_jobs().size(), 1u);
  const fs::path done = fs::path{kill_root} / "done" / queue.done_jobs()[0];
  EXPECT_EQ(read_file(done / "run.trace"), read_file(ref_done / "run.trace"));
  EXPECT_EQ(read_file(done / "run.trace.manifest.json"),
            read_file(ref_done / "run.trace.manifest.json"));
  EXPECT_EQ(read_file(done / "results_points.json"),
            read_file(ref_done / "results_points.json"));
  EXPECT_EQ(read_file(done / "results.json"), read_file(ref_done / "results.json"));

  fs::remove_all(root);
}

}  // namespace
}  // namespace mmv2v::farm
