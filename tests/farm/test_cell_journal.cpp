// Cell-journal format tests (DESIGN.md Section 15): bit-exact round-trips of
// CellResult records, torn-tail truncation losing only the damaged record,
// mid-file corruption recovery via magic resync, and duplicate handling.
#include "farm/cell_journal.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace mmv2v::farm {
namespace {

core::CellResult sample_cell(std::size_t index) {
  core::CellResult cell;
  cell.index = index;
  cell.seed = 0x9e3779b97f4a7c15ull + index;
  cell.degree = 4.25 + static_cast<double>(index);
  cell.ocr = 0.75;
  cell.atp = 0.5;
  cell.dtp = 0.1 * static_cast<double>(index);
  cell.fairness = 0.999999999999;
  cell.protocol_name = "mmV2V";
  cell.ocr_samples = {0.1, 0.2, 0.3};
  cell.atp_samples = {1.0, 0.0, -0.0, 2.5};
  cell.trace_jsonl = "{\"ev\":\"cell_begin\"}\n{\"ev\":\"cell_end\"}\n";
  cell.trace_binary = std::string{"\x00\x01MMCJ\xff binary-ish", 18};
  obs::ChunkInfo info;
  info.offset = 40;
  info.bytes = 123;
  info.records = 7;
  cell.trace_chunks = {info, info};
  return cell;
}

void expect_cells_equal(const core::CellResult& a, const core::CellResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.degree, b.degree);
  EXPECT_DOUBLE_EQ(a.ocr, b.ocr);
  EXPECT_DOUBLE_EQ(a.atp, b.atp);
  EXPECT_DOUBLE_EQ(a.dtp, b.dtp);
  EXPECT_DOUBLE_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.protocol_name, b.protocol_name);
  EXPECT_EQ(a.ocr_samples, b.ocr_samples);
  EXPECT_EQ(a.atp_samples, b.atp_samples);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.trace_binary, b.trace_binary);
  ASSERT_EQ(a.trace_chunks.size(), b.trace_chunks.size());
  for (std::size_t i = 0; i < a.trace_chunks.size(); ++i) {
    EXPECT_EQ(a.trace_chunks[i].offset, b.trace_chunks[i].offset);
    EXPECT_EQ(a.trace_chunks[i].bytes, b.trace_chunks[i].bytes);
    EXPECT_EQ(a.trace_chunks[i].records, b.trace_chunks[i].records);
  }
}

TEST(CellJournal, RoundTripsEveryField) {
  std::string journal;
  journal += encode_cell_record(sample_cell(0));
  journal += encode_cell_record(sample_cell(3));

  JournalReplay replay;
  replay_cell_journal(journal, replay, /*with_payloads=*/true);
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.skipped, 0u);
  EXPECT_EQ(replay.duplicates, 0u);
  ASSERT_EQ(replay.cells.size(), 2u);
  expect_cells_equal(replay.cells.at(0), sample_cell(0));
  expect_cells_equal(replay.cells.at(3), sample_cell(3));
}

TEST(CellJournal, SummaryReplaySkipsBulkFields) {
  std::string journal = encode_cell_record(sample_cell(5));
  JournalReplay replay;
  replay_cell_journal(journal, replay, /*with_payloads=*/false);
  ASSERT_EQ(replay.cells.size(), 1u);
  const core::CellResult& cell = replay.cells.at(5);
  EXPECT_DOUBLE_EQ(cell.ocr, 0.75);
  EXPECT_EQ(cell.protocol_name, "mmV2V");
  EXPECT_TRUE(cell.ocr_samples.empty());
  EXPECT_TRUE(cell.trace_jsonl.empty());
  EXPECT_TRUE(cell.trace_binary.empty());
  EXPECT_TRUE(cell.trace_chunks.empty());
}

TEST(CellJournal, TruncatedTailLosesOnlyTheLastRecord) {
  // A worker killed mid-append leaves a torn final frame. Every earlier
  // record must survive, at every possible truncation point.
  const std::string full =
      encode_cell_record(sample_cell(0)) + encode_cell_record(sample_cell(1));
  const std::size_t first_bytes = encode_cell_record(sample_cell(0)).size();
  for (std::size_t cut = first_bytes + 1; cut < full.size(); ++cut) {
    JournalReplay replay;
    replay_cell_journal(std::string_view{full}.substr(0, cut), replay, true);
    ASSERT_EQ(replay.cells.size(), 1u) << "cut at " << cut;
    EXPECT_TRUE(replay.cells.contains(0)) << "cut at " << cut;
    EXPECT_EQ(replay.skipped, 1u) << "cut at " << cut;
  }
}

TEST(CellJournal, CorruptMiddleRecordResyncsToLaterRecords) {
  std::string journal;
  journal += encode_cell_record(sample_cell(0));
  const std::size_t middle = journal.size();
  journal += encode_cell_record(sample_cell(1));
  journal += encode_cell_record(sample_cell(2));
  // Flip a payload byte of the middle record: its CRC fails, records 0 and 2
  // must still replay.
  journal[middle + 20] = static_cast<char>(journal[middle + 20] ^ 0x5a);

  JournalReplay replay;
  replay_cell_journal(journal, replay, true);
  EXPECT_EQ(replay.cells.size(), 2u);
  EXPECT_TRUE(replay.cells.contains(0));
  EXPECT_TRUE(replay.cells.contains(2));
  EXPECT_GE(replay.skipped, 1u);
  expect_cells_equal(replay.cells.at(2), sample_cell(2));
}

TEST(CellJournal, GarbagePrefixResyncsToFirstRecord) {
  const std::string journal =
      "not a journal at all\n" + encode_cell_record(sample_cell(4));
  JournalReplay replay;
  replay_cell_journal(journal, replay, true);
  ASSERT_EQ(replay.cells.size(), 1u);
  expect_cells_equal(replay.cells.at(4), sample_cell(4));
  EXPECT_EQ(replay.skipped, 1u);
}

TEST(CellJournal, DuplicateIndicesKeepFirstRecord) {
  // A stale-claim takeover can journal a cell twice (in different files).
  // Determinism makes both copies identical, but the replay contract is
  // explicit: first one wins, duplicates are counted.
  core::CellResult first = sample_cell(7);
  core::CellResult second = sample_cell(7);
  second.ocr = 0.123;  // divergent copy, to observe which one wins
  std::string journal = encode_cell_record(first) + encode_cell_record(second);
  JournalReplay replay;
  replay_cell_journal(journal, replay, true);
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.duplicates, 1u);
  ASSERT_EQ(replay.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(replay.cells.at(7).ocr, 0.75);
}

TEST(CellJournal, WriterAppendsAcrossReopens) {
  const std::string path = ::testing::TempDir() + "mmv2v_cell_journal.mmcj";
  std::remove(path.c_str());
  {
    CellJournalWriter writer{path};
    writer.append(sample_cell(0));
  }
  {
    // Re-opening (a restarted worker with the same pid) must append, not
    // truncate.
    CellJournalWriter writer{path};
    writer.append(sample_cell(1));
  }
  std::ifstream in{path, std::ios::binary};
  std::string bytes{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  JournalReplay replay;
  replay_cell_journal(bytes, replay, true);
  EXPECT_EQ(replay.cells.size(), 2u);
  EXPECT_EQ(replay.skipped, 0u);
}

TEST(CellJournal, WriterThrowsOnUnopenablePath) {
  EXPECT_THROW(CellJournalWriter{::testing::TempDir() + "mmv2v-no-such-dir/j.mmcj"},
               std::runtime_error);
}

}  // namespace
}  // namespace mmv2v::farm
