#include "geom/vec2.hpp"

#include <gtest/gtest.h>

namespace mmv2v::geom {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -2.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 2.0;
  EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 x{1.0, 0.0};
  const Vec2 y{0.0, 1.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
  EXPECT_DOUBLE_EQ(x.cross(y), 1.0) << "y is CCW of x";
  EXPECT_DOUBLE_EQ(y.cross(x), -1.0);
}

TEST(Vec2, NormAndDistance) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, v), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{0.0, 0.0}));
  const Vec2 n = Vec2{10.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 1.0);
}

TEST(Vec2, PerpIsCcwRotation) {
  const Vec2 v{2.0, 1.0};
  const Vec2 p = v.perp();
  EXPECT_DOUBLE_EQ(v.dot(p), 0.0);
  EXPECT_GT(v.cross(p), 0.0) << "perp must be +90 deg (CCW)";
}

}  // namespace
}  // namespace mmv2v::geom
