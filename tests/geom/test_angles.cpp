#include "geom/angles.hpp"

#include <gtest/gtest.h>

namespace mmv2v::geom {
namespace {

TEST(Angles, DegRadRoundTrip) {
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-12);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
}

TEST(Angles, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-kPi / 2.0), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_two_pi(5.0 * kTwoPi + 1.0), 1.0, 1e-9);
}

TEST(Angles, WrapTwoPiHonorsTheHalfOpenContract) {
  // Regression: fmod of a tiny negative angle returns a tiny negative
  // remainder, and adding 2*pi to it rounds to exactly 2*pi — which would
  // escape the documented [0, 2*pi) range. The fold must return exactly 0,
  // not approximately 0: sector_of() and the batched sector kernels divide
  // by the sector width and index arrays with the result.
  EXPECT_EQ(wrap_two_pi(kTwoPi), 0.0);
  EXPECT_EQ(wrap_two_pi(-1e-20), 0.0);
  EXPECT_EQ(wrap_two_pi(-1e-300), 0.0);
  EXPECT_EQ(wrap_two_pi(2.0 * kTwoPi), 0.0);
  for (double a = -40.0; a < 40.0; a += 0.0917) {
    const double w = wrap_two_pi(a);
    ASSERT_GE(w, 0.0) << "a = " << a;
    ASSERT_LT(w, kTwoPi) << "a = " << a;
  }
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-0.1), -0.1, 1e-12);
}

TEST(Angles, AngularDistanceSymmetricAndBounded) {
  EXPECT_NEAR(angular_distance(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angular_distance(0.0, kPi), kPi, 1e-12);
  for (double a = 0.0; a < kTwoPi; a += 0.37) {
    for (double b = 0.0; b < kTwoPi; b += 0.53) {
      EXPECT_NEAR(angular_distance(a, b), angular_distance(b, a), 1e-12);
      EXPECT_LE(angular_distance(a, b), kPi + 1e-12);
      EXPECT_GE(angular_distance(a, b), 0.0);
    }
  }
}

TEST(Bearing, CompassConvention) {
  const Vec2 origin{0.0, 0.0};
  EXPECT_NEAR(bearing(origin, {0.0, 1.0}), 0.0, 1e-12) << "north";
  EXPECT_NEAR(bearing(origin, {1.0, 0.0}), kPi / 2.0, 1e-12) << "east";
  EXPECT_NEAR(bearing(origin, {0.0, -1.0}), kPi, 1e-12) << "south";
  EXPECT_NEAR(bearing(origin, {-1.0, 0.0}), 1.5 * kPi, 1e-12) << "west";
}

TEST(Bearing, ReverseBearingIsPlusPi) {
  const Vec2 a{3.0, 7.0};
  const Vec2 b{-2.0, 1.0};
  EXPECT_NEAR(wrap_two_pi(bearing(a, b) + kPi), bearing(b, a), 1e-12);
}

TEST(Bearing, UnitVectorRoundTrip) {
  for (double br = 0.05; br < kTwoPi; br += 0.31) {
    const Vec2 u = bearing_to_unit(br);
    EXPECT_NEAR(u.norm(), 1.0, 1e-12);
    EXPECT_NEAR(bearing({0.0, 0.0}, u), br, 1e-9);
  }
}

TEST(SectorGrid, WidthAndCenters) {
  const SectorGrid grid{24};
  EXPECT_EQ(grid.count(), 24);
  EXPECT_NEAR(grid.width(), deg_to_rad(15.0), 1e-12);
  EXPECT_NEAR(grid.center(0), deg_to_rad(7.5), 1e-12);
  EXPECT_NEAR(grid.center(23), deg_to_rad(352.5), 1e-12);
}

TEST(SectorGrid, SectorOfCoversAllBearings) {
  const SectorGrid grid{24};
  EXPECT_EQ(grid.sector_of(0.0), 0);
  EXPECT_EQ(grid.sector_of(deg_to_rad(14.999)), 0);
  EXPECT_EQ(grid.sector_of(deg_to_rad(15.001)), 1);
  EXPECT_EQ(grid.sector_of(deg_to_rad(359.999)), 23);
  // fp guard: exactly 2*pi wraps to sector 0
  EXPECT_EQ(grid.sector_of(kTwoPi), 0);
}

TEST(SectorGrid, OppositeSector) {
  const SectorGrid grid{24};
  EXPECT_EQ(grid.opposite(0), 12);
  EXPECT_EQ(grid.opposite(12), 0);
  EXPECT_EQ(grid.opposite(23), 11);
  for (int s = 0; s < 24; ++s) {
    EXPECT_EQ(grid.opposite(grid.opposite(s)), s);
  }
}

TEST(SectorGrid, OppositeSectorFacesReverseBearing) {
  // The SND rendezvous invariant: if the bearing from A to B lies in sector
  // s, then the bearing from B to A lies in opposite(s).
  const SectorGrid grid{24};
  const Vec2 a{0.0, 0.0};
  for (double angle = 0.01; angle < kTwoPi; angle += 0.05) {
    const Vec2 b = a + bearing_to_unit(angle) * 50.0;
    const int s_ab = grid.sector_of(bearing(a, b));
    const int s_ba = grid.sector_of(bearing(b, a));
    EXPECT_EQ(s_ba, grid.opposite(s_ab)) << "angle " << angle;
  }
}

}  // namespace
}  // namespace mmv2v::geom
