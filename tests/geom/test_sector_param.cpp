// Parameterized sector-grid properties over the even sector counts the
// protocol stack supports.
#include <gtest/gtest.h>

#include "geom/angles.hpp"

namespace mmv2v::geom {
namespace {

class SectorGridProperties : public ::testing::TestWithParam<int> {
 protected:
  SectorGrid grid_{GetParam()};
};

TEST_P(SectorGridProperties, SectorsPartitionTheCircle) {
  // Every bearing maps to exactly one sector, and centers map to themselves.
  const int s = GetParam();
  for (int i = 0; i < s; ++i) {
    EXPECT_EQ(grid_.sector_of(grid_.center(i)), i);
  }
  // Dense scan: sector index is non-decreasing then wraps once.
  int wraps = 0;
  int prev = grid_.sector_of(0.0);
  for (double b = 0.001; b < kTwoPi; b += 0.001) {
    const int cur = grid_.sector_of(b);
    if (cur != prev) {
      EXPECT_TRUE(cur == prev + 1 || (prev == s - 1 && cur == 0));
      if (prev == s - 1 && cur == 0) ++wraps;
      prev = cur;
    }
  }
  EXPECT_LE(wraps, 1);
}

TEST_P(SectorGridProperties, OppositeIsInvolutionWithHalfTurn) {
  const int s = GetParam();
  for (int i = 0; i < s; ++i) {
    const int opp = grid_.opposite(i);
    EXPECT_EQ(grid_.opposite(opp), i);
    EXPECT_NEAR(angular_distance(grid_.center(i), grid_.center(opp)), kPi, 1e-9);
  }
}

TEST_P(SectorGridProperties, RendezvousInvariantHoldsEverywhere) {
  // If bearing(a->b) is in sector t, bearing(b->a) is in opposite(t): the
  // geometric foundation of SND for any even S.
  const Vec2 a{0.0, 0.0};
  for (double angle = 0.0005; angle < kTwoPi; angle += 0.01) {
    const Vec2 b = a + bearing_to_unit(angle) * 42.0;
    EXPECT_EQ(grid_.sector_of(bearing(b, a)),
              grid_.opposite(grid_.sector_of(bearing(a, b))))
        << "angle " << angle << " S " << GetParam();
  }
}

TEST_P(SectorGridProperties, WidthTimesCountIsFullCircle) {
  EXPECT_NEAR(grid_.width() * GetParam(), kTwoPi, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(EvenCounts, SectorGridProperties,
                         ::testing::Values(2, 4, 8, 12, 16, 24, 36, 64),
                         [](const auto& info) { return "S" + std::to_string(info.param); });

}  // namespace
}  // namespace mmv2v::geom
