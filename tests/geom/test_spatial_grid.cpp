// Brute-force equivalence suite for the spatial grid and the grid-backed
// LosEvaluator: every query must report a superset of the exact answer, and
// after applying the exact predicate the sets must match exactly.
#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "geom/los.hpp"

namespace mmv2v::geom {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed) {
  Xoshiro256pp rng{seed};
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Highway-shaped domain: long in x, narrow in y.
    out.push_back({rng.uniform(0.0, 1000.0), rng.uniform(-20.0, 20.0)});
  }
  return out;
}

std::vector<std::uint32_t> sorted(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SpatialGrid, RadiusQueryMatchesBruteForce) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto points = random_points(120, seed);
    for (const double cell : {5.0, 17.3, 55.0}) {
      SpatialGrid grid;
      grid.rebuild(points, cell);
      ASSERT_EQ(grid.size(), points.size());
      Xoshiro256pp rng{seed ^ 0x5eed};
      for (int q = 0; q < 40; ++q) {
        const Vec2 center{rng.uniform(-50.0, 1050.0), rng.uniform(-30.0, 30.0)};
        const double radius = rng.uniform(1.0, 240.0);
        const double radius_sq = radius * radius;

        std::vector<std::uint32_t> exact;
        std::vector<std::uint32_t> candidates;
        grid.for_each_in_radius(center, radius, [&](std::uint32_t i) {
          candidates.push_back(i);
          if (distance_sq(points[i], center) <= radius_sq) exact.push_back(i);
        });
        // Each indexed point is visited at most once.
        auto unique_candidates = sorted(candidates);
        EXPECT_EQ(std::adjacent_find(unique_candidates.begin(), unique_candidates.end()),
                  unique_candidates.end());

        std::vector<std::uint32_t> brute;
        for (std::uint32_t i = 0; i < points.size(); ++i) {
          if (distance_sq(points[i], center) <= radius_sq) brute.push_back(i);
        }
        EXPECT_EQ(sorted(exact), brute) << "cell=" << cell << " r=" << radius;
      }
    }
  }
}

TEST(SpatialGrid, SegmentQueryMatchesBruteForce) {
  for (const std::uint64_t seed : {7ULL, 8ULL}) {
    const auto points = random_points(150, seed);
    for (const double cell : {8.0, 13.0, 40.0}) {
      SpatialGrid grid;
      grid.rebuild(points, cell);
      Xoshiro256pp rng{seed ^ 0xcafe};
      for (int q = 0; q < 40; ++q) {
        const Vec2 a{rng.uniform(0.0, 1000.0), rng.uniform(-25.0, 25.0)};
        const Vec2 b{rng.uniform(0.0, 1000.0), rng.uniform(-25.0, 25.0)};
        const double radius = rng.uniform(0.5, 12.0);
        const double radius_sq = radius * radius;

        std::vector<std::uint32_t> exact;
        grid.for_each_near_segment(a, b, radius, [&](std::uint32_t i) {
          if (segment_distance_sq(a, b, points[i]) <= radius_sq) exact.push_back(i);
        });

        std::vector<std::uint32_t> brute;
        for (std::uint32_t i = 0; i < points.size(); ++i) {
          if (segment_distance_sq(a, b, points[i]) <= radius_sq) brute.push_back(i);
        }
        EXPECT_EQ(sorted(exact), brute) << "cell=" << cell << " r=" << radius;
      }
    }
  }
}

TEST(SpatialGrid, DegenerateSegmentBehavesAsDisc) {
  const auto points = random_points(60, 11);
  SpatialGrid grid;
  grid.rebuild(points, 10.0);
  const Vec2 p{500.0, 0.0};
  std::vector<std::uint32_t> via_segment;
  grid.for_each_near_segment(p, p, 30.0, [&](std::uint32_t i) {
    if (distance_sq(points[i], p) <= 30.0 * 30.0) via_segment.push_back(i);
  });
  std::vector<std::uint32_t> via_radius;
  grid.for_each_in_radius(p, 30.0, [&](std::uint32_t i) {
    if (distance_sq(points[i], p) <= 30.0 * 30.0) via_radius.push_back(i);
  });
  EXPECT_EQ(sorted(via_segment), sorted(via_radius));
}

TEST(SpatialGrid, EmptyAndDefaultGridsVisitNothing) {
  SpatialGrid grid;  // never rebuilt
  int visits = 0;
  grid.for_each_in_radius({0, 0}, 1e6, [&](std::uint32_t) { ++visits; });
  grid.for_each_near_segment({0, 0}, {100, 0}, 1e6, [&](std::uint32_t) { ++visits; });
  EXPECT_EQ(visits, 0);
  EXPECT_TRUE(grid.empty());

  grid.rebuild({}, 10.0);
  grid.for_each_in_radius({0, 0}, 1e6, [&](std::uint32_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(SpatialGrid, CoincidentPointsAllReported) {
  std::vector<Vec2> points(17, Vec2{42.0, 7.0});
  SpatialGrid grid;
  grid.rebuild(points, 5.0);
  std::vector<std::uint32_t> found;
  grid.for_each_in_radius({42.0, 7.0}, 1.0, [&](std::uint32_t i) { found.push_back(i); });
  ASSERT_EQ(found.size(), points.size());
  auto s = sorted(found);
  for (std::uint32_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], i);
}

TEST(SpatialGrid, NegativeCoordinatesWork) {
  std::vector<Vec2> points{{-512.3, -7.0}, {-511.0, -6.5}, {300.0, 4.0}};
  SpatialGrid grid;
  grid.rebuild(points, 9.0);
  std::vector<std::uint32_t> found;
  grid.for_each_in_radius({-511.5, -6.7}, 3.0, [&](std::uint32_t i) {
    if (distance_sq(points[i], {-511.5, -6.7}) <= 9.0) found.push_back(i);
  });
  EXPECT_EQ(sorted(found), (std::vector<std::uint32_t>{0, 1}));
}

/// Reference blocker count: the old O(B) scan, kept here as the oracle.
int brute_blocker_count(const std::vector<Blocker>& blockers, Vec2 a, Vec2 b,
                        std::size_t owner_a, std::size_t owner_b) {
  int count = 0;
  for (const Blocker& blocker : blockers) {
    if (blocker.owner_id == owner_a || blocker.owner_id == owner_b) continue;
    if (blocker.body.intersects_segment(a, b)) ++count;
  }
  return count;
}

TEST(LosEvaluatorGrid, BlockerCountMatchesBruteForce) {
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    Xoshiro256pp rng{seed};
    std::vector<Blocker> blockers;
    for (std::size_t i = 0; i < 90; ++i) {
      const Vec2 center{rng.uniform(0.0, 800.0), rng.uniform(-15.0, 15.0)};
      const Vec2 heading = rng.bernoulli(0.5) ? Vec2{1.0, 0.0} : Vec2{-1.0, 0.0};
      blockers.push_back(Blocker{OrientedRect{center, heading, 2.3, 0.9}, i});
    }
    const LosEvaluator los{blockers};
    for (int q = 0; q < 120; ++q) {
      const std::size_t oa = rng.uniform_int(std::uint64_t{90});
      const std::size_t ob = rng.uniform_int(std::uint64_t{90});
      const Vec2 a = blockers[oa].body.center();
      const Vec2 b = blockers[ob].body.center();
      EXPECT_EQ(los.blocker_count(a, b, oa, ob), brute_blocker_count(blockers, a, b, oa, ob))
          << "seed=" << seed << " q=" << q;
    }
    // Long diagonal links crossing many cells.
    for (int q = 0; q < 20; ++q) {
      const Vec2 a{rng.uniform(0.0, 800.0), rng.uniform(-25.0, 25.0)};
      const Vec2 b{rng.uniform(0.0, 800.0), rng.uniform(-25.0, 25.0)};
      EXPECT_EQ(los.blocker_count(a, b, 1000, 1001),
                brute_blocker_count(blockers, a, b, 1000, 1001));
    }
  }
}

TEST(LosEvaluatorGrid, AddAndClearKeepIndexFresh) {
  LosEvaluator los;
  EXPECT_EQ(los.blocker_count({0, 0}, {100, 0}, 50, 51), 0);
  los.add(Blocker{OrientedRect{{40, 0}, {1, 0}, 2.3, 0.9}, 1});
  EXPECT_EQ(los.blocker_count({0, 0}, {100, 0}, 50, 51), 1);
  los.add(Blocker{OrientedRect{{60, 0}, {1, 0}, 2.3, 0.9}, 2});
  EXPECT_EQ(los.blocker_count({0, 0}, {100, 0}, 50, 51), 2);
  los.clear();
  EXPECT_EQ(los.blocker_count({0, 0}, {100, 0}, 50, 51), 0);
  EXPECT_EQ(los.size(), 0u);
}

}  // namespace
}  // namespace mmv2v::geom
