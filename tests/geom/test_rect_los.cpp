#include <gtest/gtest.h>

#include "geom/los.hpp"
#include "geom/rect.hpp"

namespace mmv2v::geom {
namespace {

TEST(Segments, BasicIntersection) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Segments, TouchingEndpointsCount) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {1, 5}));
}

TEST(Segments, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {3, 0}, {1, 0}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(OrientedRect, ContainsAxisAligned) {
  const OrientedRect r{{0, 0}, {1, 0}, 2.0, 1.0};  // 4 x 2 box
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({1.9, 0.9}));
  EXPECT_TRUE(r.contains({2.0, 1.0}));  // boundary
  EXPECT_FALSE(r.contains({2.1, 0.0}));
  EXPECT_FALSE(r.contains({0.0, 1.1}));
}

TEST(OrientedRect, ContainsRotated) {
  // Heading 45 degrees: the rect's long axis runs along (1,1)/sqrt(2).
  const Vec2 axis = Vec2{1.0, 1.0}.normalized();
  const OrientedRect r{{0, 0}, axis, 2.0, 0.5};
  EXPECT_TRUE(r.contains(axis * 1.9));
  EXPECT_FALSE(r.contains(axis * 2.1));
  EXPECT_FALSE(r.contains({1.9, 0.0}));  // outside the rotated footprint
}

TEST(OrientedRect, CornersFormTheFootprint) {
  const OrientedRect r{{1, 1}, {1, 0}, 2.0, 0.5};
  const auto c = r.corners();
  for (const Vec2 p : c) {
    EXPECT_TRUE(r.contains(p));
  }
  EXPECT_NEAR(distance(c[0], c[2]), 2.0 * std::hypot(2.0, 0.5), 1e-12);
}

TEST(OrientedRect, SegmentIntersection) {
  const OrientedRect r{{5, 0}, {1, 0}, 2.0, 1.0};  // x in [3,7], y in [-1,1]
  EXPECT_TRUE(r.intersects_segment({0, 0}, {10, 0})) << "straight through";
  EXPECT_TRUE(r.intersects_segment({0, 0}, {5, 0})) << "endpoint inside";
  EXPECT_FALSE(r.intersects_segment({0, 2}, {10, 2})) << "passes above";
  EXPECT_TRUE(r.intersects_segment({0, -2}, {10, 2})) << "diagonal crossing";
  EXPECT_FALSE(r.intersects_segment({0, 0}, {2, 0})) << "stops short";
}

TEST(LosEvaluator, CountsBlockersOnPath) {
  LosEvaluator los;
  // Vehicles at x = 10, 20, 30 on the segment from (0,0) to (40,0).
  for (std::size_t k = 0; k < 3; ++k) {
    los.add(Blocker{OrientedRect{{10.0 * (k + 1), 0.0}, {1, 0}, 2.3, 0.9}, 100 + k});
  }
  EXPECT_EQ(los.blocker_count({0, 0}, {40, 0}, 1, 2), 3);
  EXPECT_FALSE(los.has_los({0, 0}, {40, 0}, 1, 2));
  EXPECT_TRUE(los.has_los({0, 5}, {40, 5}, 1, 2)) << "one lane over is clear";
}

TEST(LosEvaluator, ExcludesEndpointOwners) {
  LosEvaluator los;
  los.add(Blocker{OrientedRect{{10, 0}, {1, 0}, 2.3, 0.9}, 7});
  los.add(Blocker{OrientedRect{{20, 0}, {1, 0}, 2.3, 0.9}, 8});
  // Link between vehicles 7 and 8: their own bodies do not block.
  EXPECT_EQ(los.blocker_count({10, 0}, {20, 0}, 7, 8), 0);
  // A third party sees both as blockers.
  EXPECT_EQ(los.blocker_count({0, 0}, {30, 0}, 1, 2), 2);
}

TEST(LosEvaluator, AdjacentLaneGeometry) {
  // A car 66 m ahead in the adjacent lane is NOT blocked by the car halfway
  // in between in either lane (the classic highway visibility case).
  LosEvaluator los;
  los.add(Blocker{OrientedRect{{33, 0}, {1, 0}, 2.3, 0.9}, 50});   // own lane
  los.add(Blocker{OrientedRect{{33, 5}, {1, 0}, 2.3, 0.9}, 51});   // adjacent
  EXPECT_TRUE(los.has_los({0, 0}, {66, 5}, 1, 2));
  // But straight ahead in the own lane it IS blocked.
  EXPECT_FALSE(los.has_los({0, 0}, {66, 0}, 1, 2));
}

TEST(LosEvaluator, EmptyIsAlwaysClear) {
  const LosEvaluator los;
  EXPECT_TRUE(los.has_los({0, 0}, {100, 100}, 0, 1));
  EXPECT_EQ(los.size(), 0u);
}

TEST(LosEvaluator, BoundingBoxPrefilterDoesNotMissDiagonals) {
  LosEvaluator los;
  los.add(Blocker{OrientedRect{{50, 50}, {1, 0}, 2.3, 0.9}, 9});
  EXPECT_FALSE(los.has_los({0, 0}, {100, 100}, 1, 2));
  // A segment whose bounding box contains the car but whose line passes ~7 m
  // away must stay clear (prefilter must not produce false positives).
  EXPECT_TRUE(los.has_los({0, 90}, {100, -10}, 1, 2));
}

}  // namespace
}  // namespace mmv2v::geom
