#include <gtest/gtest.h>

#include "common/units.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::traffic {
namespace {

TrafficConfig zoned_config() {
  TrafficConfig c;
  c.density_vpl = 20.0;
  c.bidirectional = false;
  c.speed_zones.push_back(SpeedZone{400.0, 600.0, 30.0});
  return c;
}

TEST(SpeedZone, ContainsIsHalfOpen) {
  const SpeedZone zone{100.0, 200.0, 50.0};
  EXPECT_TRUE(zone.contains(100.0));
  EXPECT_TRUE(zone.contains(199.9));
  EXPECT_FALSE(zone.contains(200.0));
  EXPECT_FALSE(zone.contains(99.9));
}

TEST(SpeedZone, VehiclesSlowDownInside) {
  TrafficSimulator sim{zoned_config(), 3};
  for (int i = 0; i < 6000; ++i) sim.step(0.005);  // 30 s to reach steady state

  double inside_speed = 0.0, outside_speed = 0.0;
  int inside_n = 0, outside_n = 0;
  for (const VehicleState& v : sim.vehicles()) {
    const double x = v.position(sim.road()).x;
    if (x >= 420.0 && x < 600.0) {  // interior, past the deceleration edge
      inside_speed += v.speed_mps;
      ++inside_n;
    } else if (x < 300.0 || x >= 700.0) {
      outside_speed += v.speed_mps;
      ++outside_n;
    }
  }
  ASSERT_GT(inside_n, 0);
  ASSERT_GT(outside_n, 0);
  inside_speed /= inside_n;
  outside_speed /= outside_n;
  EXPECT_LT(inside_speed, units::kmh_to_mps(36.0)) << "zone limit is 30 km/h";
  EXPECT_GT(outside_speed, inside_speed + 2.0);
}

TEST(SpeedZone, CausesUpstreamDensification) {
  TrafficSimulator sim{zoned_config(), 5};
  for (int i = 0; i < 6000; ++i) sim.step(0.005);
  // Count vehicles in the 200 m upstream of the zone vs 200 m far downstream.
  int upstream = 0, downstream = 0;
  for (const VehicleState& v : sim.vehicles()) {
    const double x = v.position(sim.road()).x;
    if (x >= 200.0 && x < 400.0) ++upstream;
    if (x >= 700.0 && x < 900.0) ++downstream;
  }
  EXPECT_GT(upstream, downstream)
      << "traffic must pile up before the bottleneck and thin out after";
}

TEST(SpeedZone, NoZoneMeansNoEffect) {
  TrafficConfig plain = zoned_config();
  plain.speed_zones.clear();
  TrafficSimulator sim{plain, 3};
  for (int i = 0; i < 2000; ++i) sim.step(0.005);
  for (const VehicleState& v : sim.vehicles()) {
    EXPECT_DOUBLE_EQ(sim.effective_desired_speed(v), v.desired_speed_mps);
  }
}

TEST(SpeedZone, StillCollisionFreeUnderCongestion) {
  TrafficSimulator sim{zoned_config(), 7};
  for (int i = 0; i < 6000; ++i) sim.step(0.005);
  for (const VehicleState& a : sim.vehicles()) {
    for (const VehicleState& b : sim.vehicles()) {
      if (a.id >= b.id || a.direction != b.direction || a.lane != b.lane) continue;
      EXPECT_GT(std::abs(sim.road().signed_separation(a.s, b.s)), a.dims.length_m * 0.9);
    }
  }
}

}  // namespace
}  // namespace mmv2v::traffic
