// Parameterized traffic-safety sweep: across densities and seeds the
// microsimulator must stay collision-free, conserve vehicles, and keep
// speeds physical.
#include <gtest/gtest.h>

#include <tuple>

#include "common/units.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::traffic {
namespace {

class TrafficSafetySweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {
 protected:
  TrafficConfig config() const {
    TrafficConfig c;
    c.density_vpl = std::get<0>(GetParam());
    return c;
  }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(TrafficSafetySweep, TenSecondsWithoutCollisionOrLoss) {
  TrafficSimulator sim{config(), seed()};
  const std::size_t n0 = sim.size();
  for (int i = 0; i < 2000; ++i) sim.step(0.005);  // 10 s
  EXPECT_EQ(sim.size(), n0);
  for (const VehicleState& a : sim.vehicles()) {
    EXPECT_GE(a.speed_mps, 0.0);
    EXPECT_LE(a.speed_mps, units::kmh_to_mps(90.0));
    for (const VehicleState& b : sim.vehicles()) {
      if (a.id >= b.id || a.direction != b.direction || a.lane != b.lane) continue;
      EXPECT_GT(std::abs(sim.road().signed_separation(a.s, b.s)), a.dims.length_m * 0.9)
          << "overlap between " << a.id << " and " << b.id << " at density "
          << config().density_vpl;
    }
  }
}

TEST_P(TrafficSafetySweep, MeanSpeedStaysInBandEnvelope) {
  TrafficSimulator sim{config(), seed()};
  for (int i = 0; i < 1000; ++i) sim.step(0.005);
  double mean = 0.0;
  for (const VehicleState& v : sim.vehicles()) mean += v.speed_mps;
  mean /= static_cast<double>(sim.size());
  // Free-flow bands span 40-80 km/h; congestion may slow traffic but a
  // functioning model keeps the fleet moving.
  EXPECT_GT(mean, units::kmh_to_mps(10.0));
  EXPECT_LT(mean, units::kmh_to_mps(82.0));
}

INSTANTIATE_TEST_SUITE_P(
    DensityBySeed, TrafficSafetySweep,
    ::testing::Combine(::testing::Values(5.0, 15.0, 30.0, 45.0),
                       ::testing::Values(1ull, 1234ull)),
    [](const auto& info) {
      return "vpl" + std::to_string(static_cast<int>(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mmv2v::traffic
