#include "traffic/road.hpp"

#include <gtest/gtest.h>

namespace mmv2v::traffic {
namespace {

TEST(RoadGeometry, RejectsBadDimensions) {
  EXPECT_THROW((RoadGeometry{0.0, 3, 5.0}), std::invalid_argument);
  EXPECT_THROW((RoadGeometry{1000.0, 0, 5.0}), std::invalid_argument);
  EXPECT_THROW((RoadGeometry{1000.0, 3, -1.0}), std::invalid_argument);
}

TEST(RoadGeometry, WrapIsPeriodic) {
  const RoadGeometry road{1000.0, 3, 5.0};
  EXPECT_DOUBLE_EQ(road.wrap(0.0), 0.0);
  EXPECT_DOUBLE_EQ(road.wrap(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(road.wrap(1250.0), 250.0);
  EXPECT_DOUBLE_EQ(road.wrap(-10.0), 990.0);
}

TEST(RoadGeometry, ForwardGapOnRing) {
  const RoadGeometry road{1000.0, 3, 5.0};
  EXPECT_DOUBLE_EQ(road.forward_gap(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(road.forward_gap(950.0, 30.0), 80.0) << "wraps the seam";
  EXPECT_DOUBLE_EQ(road.forward_gap(100.0, 100.0), 0.0);
}

TEST(RoadGeometry, SignedSeparationShortestPath) {
  const RoadGeometry road{1000.0, 3, 5.0};
  EXPECT_DOUBLE_EQ(road.signed_separation(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(road.signed_separation(150.0, 100.0), -50.0);
  EXPECT_DOUBLE_EQ(road.signed_separation(990.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(road.signed_separation(10.0, 990.0), -20.0);
}

TEST(RoadGeometry, LaneCentersMirrorAcrossMedian) {
  const RoadGeometry road{1000.0, 3, 5.0};
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kForward, 0), -2.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kForward, 2), -12.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kBackward, 0), 2.5);
  EXPECT_DOUBLE_EQ(road.lane_center_y(Direction::kBackward, 2), 12.5);
  EXPECT_THROW((void)road.lane_center_y(Direction::kForward, 3), std::out_of_range);
}

TEST(RoadGeometry, PositionMapsTravelCoordinates) {
  const RoadGeometry road{1000.0, 3, 5.0};
  // Forward vehicles move toward +x.
  const auto pf = road.position(Direction::kForward, 100.0, -2.5);
  EXPECT_DOUBLE_EQ(pf.x, 100.0);
  EXPECT_DOUBLE_EQ(pf.y, -2.5);
  // Backward vehicles at travel coordinate s sit at world x = L - s and move
  // toward -x as s grows.
  const auto pb0 = road.position(Direction::kBackward, 100.0, 2.5);
  const auto pb1 = road.position(Direction::kBackward, 110.0, 2.5);
  EXPECT_DOUBLE_EQ(pb0.x, 900.0);
  EXPECT_LT(pb1.x, pb0.x);
}

TEST(RoadGeometry, HeadingMatchesDirection) {
  const RoadGeometry road{1000.0, 3, 5.0};
  EXPECT_DOUBLE_EQ(road.heading(Direction::kForward).x, 1.0);
  EXPECT_DOUBLE_EQ(road.heading(Direction::kBackward).x, -1.0);
  EXPECT_DOUBLE_EQ(direction_sign(Direction::kForward), 1.0);
  EXPECT_DOUBLE_EQ(direction_sign(Direction::kBackward), -1.0);
}

}  // namespace
}  // namespace mmv2v::traffic
