#include <gtest/gtest.h>

#include <limits>

#include "traffic/idm.hpp"
#include "traffic/mobil.hpp"

namespace mmv2v::traffic {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Idm, FreeRoadAcceleratesTowardDesiredSpeed) {
  const IdmParams p;
  EXPECT_NEAR(idm_acceleration(p, 0.0, 30.0, kInf, 0.0), p.a_max, 1e-9)
      << "standing start on a free road accelerates at a_max";
  EXPECT_NEAR(idm_acceleration(p, 30.0, 30.0, kInf, 0.0), 0.0, 1e-9)
      << "at desired speed acceleration vanishes";
  EXPECT_LT(idm_acceleration(p, 35.0, 30.0, kInf, 0.0), 0.0)
      << "above desired speed the driver brakes";
}

TEST(Idm, CloseGapTriggersBraking) {
  const IdmParams p;
  // 20 m/s with only 5 m to a stopped leader: hard braking.
  EXPECT_LT(idm_acceleration(p, 20.0, 30.0, 5.0, 20.0), -4.0);
}

TEST(Idm, EquilibriumGapIsSteady) {
  const IdmParams p;
  const double v = 25.0;
  // At gap s* with zero closing speed, acceleration is a_max*(1 - (v/v0)^4 - 1)
  // evaluated with v0 -> infinity-like (choose v0 so the free term is tiny).
  const double v0 = 1000.0;
  const double eq_gap = idm_desired_gap(p, v, 0.0);
  EXPECT_NEAR(idm_acceleration(p, v, v0, eq_gap, 0.0), 0.0, 0.01);
}

TEST(Idm, DesiredGapGrowsWithSpeedAndClosingRate) {
  const IdmParams p;
  EXPECT_GT(idm_desired_gap(p, 20.0, 0.0), idm_desired_gap(p, 10.0, 0.0));
  EXPECT_GT(idm_desired_gap(p, 20.0, 5.0), idm_desired_gap(p, 20.0, 0.0));
  EXPECT_GE(idm_desired_gap(p, 0.0, 0.0), p.min_gap_m);
}

TEST(Idm, NegativeApproachRateNeverShrinksGapBelowMin) {
  const IdmParams p;
  // Receding leader: dynamic term clamps at zero, never below s0.
  EXPECT_DOUBLE_EQ(idm_desired_gap(p, 10.0, -50.0), p.min_gap_m);
}

TEST(Idm, ContactGapDoesNotExplode) {
  const IdmParams p;
  const double a = idm_acceleration(p, 10.0, 30.0, 0.0, 0.0);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_LT(a, -p.b_comfort);
}

TEST(Mobil, SafetyVetoOnHardBraking) {
  const MobilParams p;
  MobilAccelerations a;
  a.self_after = 1.0;
  a.self_before = -1.0;
  a.new_follower_after = -p.b_safe - 0.1;  // would brake too hard
  EXPECT_FALSE(mobil_safe(p, a));
  EXPECT_FALSE(mobil_should_change(p, a));
}

TEST(Mobil, IncentiveRequiresNetGain) {
  const MobilParams p;
  MobilAccelerations a;
  a.self_after = 0.5;
  a.self_before = 0.0;  // own gain 0.5 > threshold + bias (0.3)
  EXPECT_TRUE(mobil_incentive(p, a));
  a.self_after = 0.2;  // gain 0.2 < 0.3
  EXPECT_FALSE(mobil_incentive(p, a));
}

TEST(Mobil, PolitenessWeighsOthersHarm) {
  const MobilParams p;  // politeness 0.3
  MobilAccelerations a;
  a.self_after = 1.0;
  a.self_before = 0.0;
  // New follower loses 3 m/s^2 of acceleration: 1.0 + 0.3*(-3) = 0.1 < 0.3.
  a.new_follower_before = 0.0;
  a.new_follower_after = -3.0;
  EXPECT_FALSE(mobil_incentive(p, a));
  // A selfish driver (politeness 0) would go.
  MobilParams selfish = p;
  selfish.politeness = 0.0;
  EXPECT_TRUE(mobil_incentive(selfish, a));
}

TEST(Mobil, OldFollowerReliefCounts) {
  const MobilParams p;
  MobilAccelerations a;
  a.self_after = 0.25;
  a.self_before = 0.0;  // own gain alone just below threshold+bias
  a.old_follower_before = -1.0;
  a.old_follower_after = 0.0;  // leaving relieves the old follower by 1
  EXPECT_TRUE(mobil_incentive(p, a)) << "0.25 + 0.3*1.0 = 0.55 > 0.3";
}

}  // namespace
}  // namespace mmv2v::traffic
