#include "traffic/traffic_sim.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/units.hpp"

namespace mmv2v::traffic {
namespace {

TrafficConfig small_config(double density = 15.0, bool bidir = true) {
  TrafficConfig c;
  c.density_vpl = density;
  c.bidirectional = bidir;
  return c;
}

TEST(TrafficSim, SpawnsExpectedVehicleCount) {
  const TrafficSimulator sim{small_config(15.0, true), 1};
  EXPECT_EQ(sim.size(), 15u * 3u * 2u);
  const TrafficSimulator one_dir{small_config(10.0, false), 1};
  EXPECT_EQ(one_dir.size(), 10u * 3u);
}

TEST(TrafficSim, ZeroDensityIsEmpty) {
  const TrafficSimulator sim{small_config(0.0), 1};
  EXPECT_EQ(sim.size(), 0u);
  EXPECT_DOUBLE_EQ(sim.mean_degree(100.0), 0.0);
}

TEST(TrafficSim, RejectsBadConfig) {
  TrafficConfig c = small_config();
  c.density_vpl = -1.0;
  EXPECT_THROW((TrafficSimulator{c, 1}), std::invalid_argument);
  c = small_config();
  c.lane_speed_bands.resize(1);
  EXPECT_THROW((TrafficSimulator{c, 1}), std::invalid_argument);
}

TEST(TrafficSim, DeterministicForSameSeed) {
  TrafficSimulator a{small_config(), 42};
  TrafficSimulator b{small_config(), 42};
  for (int i = 0; i < 200; ++i) {
    a.step(0.005);
    b.step(0.005);
  }
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_DOUBLE_EQ(a.vehicle(v).s, b.vehicle(v).s);
    EXPECT_DOUBLE_EQ(a.vehicle(v).speed_mps, b.vehicle(v).speed_mps);
    EXPECT_EQ(a.vehicle(v).lane, b.vehicle(v).lane);
  }
}

TEST(TrafficSim, SpeedsStayInPhysicalBounds) {
  TrafficSimulator sim{small_config(25.0), 7};
  for (int i = 0; i < 2000; ++i) sim.step(0.005);
  for (const VehicleState& v : sim.vehicles()) {
    EXPECT_GE(v.speed_mps, 0.0);
    // Desired speeds top out at 80 km/h; allow a small overshoot margin.
    EXPECT_LE(v.speed_mps, units::kmh_to_mps(85.0));
  }
}

TEST(TrafficSim, NoCollisionsAfterLongRun) {
  TrafficSimulator sim{small_config(30.0), 11};
  for (int i = 0; i < 4000; ++i) sim.step(0.005);  // 20 s
  // Same-lane same-direction vehicles must keep positive bumper gaps.
  for (const VehicleState& a : sim.vehicles()) {
    for (const VehicleState& b : sim.vehicles()) {
      if (a.id >= b.id || a.direction != b.direction || a.lane != b.lane) continue;
      const double gap = std::abs(sim.road().signed_separation(a.s, b.s));
      EXPECT_GT(gap, a.dims.length_m * 0.9)
          << "vehicles " << a.id << " and " << b.id << " overlap";
    }
  }
}

TEST(TrafficSim, StepRejectsNonPositiveDt) {
  TrafficSimulator sim{small_config(), 1};
  EXPECT_THROW(sim.step(0.0), std::invalid_argument);
  EXPECT_THROW(sim.step(-0.1), std::invalid_argument);
}

TEST(TrafficSim, LaneChangesHappenButLanesStayValid) {
  TrafficConfig c = small_config(20.0);
  TrafficSimulator sim{c, 3};
  for (int i = 0; i < 6000; ++i) sim.step(0.005);  // 30 s
  for (const VehicleState& v : sim.vehicles()) {
    EXPECT_GE(v.lane, 0);
    EXPECT_LT(v.lane, c.lanes_per_direction);
    EXPECT_LE(std::abs(v.lateral_y), c.lanes_per_direction * c.lane_width_m);
  }
  // With mixed speed bands some drivers should change lanes within 30 s.
  EXPECT_GT(sim.completed_lane_changes(), 0u);
}

TEST(TrafficSim, DisablingLaneChangesFreezesLanes) {
  TrafficConfig c = small_config(20.0);
  c.enable_lane_changes = false;
  TrafficSimulator sim{c, 3};
  std::vector<int> lanes_before;
  for (const VehicleState& v : sim.vehicles()) lanes_before.push_back(v.lane);
  for (int i = 0; i < 2000; ++i) sim.step(0.005);
  for (const VehicleState& v : sim.vehicles()) {
    EXPECT_EQ(v.lane, lanes_before[v.id]);
  }
  EXPECT_EQ(sim.completed_lane_changes(), 0u);
}

TEST(TrafficSim, DensityIsConservedOnRing) {
  TrafficSimulator sim{small_config(20.0), 5};
  const std::size_t n0 = sim.size();
  for (int i = 0; i < 2000; ++i) sim.step(0.005);
  EXPECT_EQ(sim.size(), n0) << "periodic boundary must not lose vehicles";
  for (const VehicleState& v : sim.vehicles()) {
    EXPECT_GE(v.s, 0.0);
    EXPECT_LT(v.s, sim.road().length());
  }
}

TEST(TrafficSim, MeanDegreeGrowsWithDensity) {
  const TrafficSimulator sparse{small_config(10.0), 9};
  const TrafficSimulator dense{small_config(30.0), 9};
  EXPECT_GT(dense.mean_degree(80.0), sparse.mean_degree(80.0));
}

TEST(TrafficSim, LosNeighborsAreSymmetric) {
  const TrafficSimulator sim{small_config(15.0), 13};
  const auto los = sim.make_los_evaluator();
  for (VehicleId i = 0; i < sim.size(); ++i) {
    for (VehicleId j : sim.los_neighbors(i, 80.0, los)) {
      const auto back = sim.los_neighbors(j, 80.0, los);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end())
          << "LOS neighborhood must be symmetric (" << i << "," << j << ")";
    }
  }
}

TEST(TrafficSim, FasterLanesCarryFasterDesiredSpeeds) {
  const TrafficSimulator sim{small_config(20.0), 17};
  // Lane 2's band (60-80) must dominate lane 0's (40-60) on average.
  double lane0 = 0.0, lane2 = 0.0;
  int n0 = 0, n2 = 0;
  for (const VehicleState& v : sim.vehicles()) {
    if (v.lane == 0) { lane0 += v.desired_speed_mps; ++n0; }
    if (v.lane == 2) { lane2 += v.desired_speed_mps; ++n2; }
  }
  ASSERT_GT(n0, 0);
  ASSERT_GT(n2, 0);
  EXPECT_GT(lane2 / n2, lane0 / n0);
}

TEST(TrafficSim, BodiesMatchPositions) {
  const TrafficSimulator sim{small_config(10.0), 21};
  for (const VehicleState& v : sim.vehicles()) {
    const auto body = v.body(sim.road());
    EXPECT_TRUE(body.contains(v.position(sim.road())));
  }
}

}  // namespace
}  // namespace mmv2v::traffic
