// RoadNetwork graph geometry and the network traffic simulator. The load-
// bearing test is the bit-exact ring equivalence: the degenerate ring
// network must reproduce the legacy TrafficSimulator's world positions
// bit-for-bit (the golden digest depends on it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "traffic/network_traffic_sim.hpp"
#include "traffic/road_network.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::traffic {
namespace {

RoadNetwork ring_of(const TrafficConfig& c) {
  return RoadNetwork::ring(c.road_length_m, c.lanes_per_direction, c.lane_width_m,
                           c.bidirectional, c.lane_speed_bands);
}

RoadNetwork small_grid(double green_s = 12.0) {
  return RoadNetwork::city_grid(3, 3, 200.0, 2, 3.5,
                                {{40.0, 60.0}, {50.0, 70.0}}, green_s);
}

TEST(RoadNetwork, RingGeometryMatchesLegacyRoadBitExact) {
  TrafficConfig c;  // 1 km, 3 lanes of 5 m per direction, bidirectional
  const RoadGeometry road{c.road_length_m, c.lanes_per_direction, c.lane_width_m};
  const RoadNetwork net = ring_of(c);
  ASSERT_EQ(net.segment_count(), 2u);
  EXPECT_EQ(net.segment(0).length(), road.length());
  EXPECT_EQ(net.segment(1).length(), road.length());

  for (int lane = 0; lane < c.lanes_per_direction; ++lane) {
    // Forward world y = lane offset, backward world y = -lane offset.
    for (const double s : {0.0, 1.5, 250.25, 999.75}) {
      const geom::Vec2 fwd = net.position(0, s, net.lane_offset(0, lane));
      const geom::Vec2 legacy_fwd =
          road.position(Direction::kForward, s, road.lane_center_y(Direction::kForward, lane));
      EXPECT_EQ(fwd.x, legacy_fwd.x);
      EXPECT_EQ(fwd.y, legacy_fwd.y);

      const geom::Vec2 bwd = net.position(1, s, net.lane_offset(1, lane));
      const geom::Vec2 legacy_bwd = road.position(Direction::kBackward, s,
                                                  road.lane_center_y(Direction::kBackward, lane));
      EXPECT_EQ(bwd.x, legacy_bwd.x);
      EXPECT_EQ(bwd.y, legacy_bwd.y);
    }
    EXPECT_EQ(net.heading(0, 10.0), (geom::Vec2{1.0, 0.0}));
    EXPECT_EQ(net.heading(1, 10.0), (geom::Vec2{-1.0, 0.0}));
  }
}

TEST(RoadNetwork, RingSimulatorMatchesLegacySimulatorBitExact) {
  TrafficConfig c;
  c.density_vpl = 12.0;
  const std::uint64_t seed = 42;
  TrafficSimulator legacy{c, seed};
  NetworkTrafficSimulator net{ring_of(c), c, seed};
  ASSERT_EQ(net.size(), legacy.size());
  ASSERT_GT(net.size(), 0u);

  const auto expect_identical = [&] {
    for (VehicleId id = 0; id < legacy.size(); ++id) {
      const geom::Vec2 a = legacy.position_of(id);
      const geom::Vec2 b = net.position_of(id);
      ASSERT_EQ(a.x, b.x) << "vehicle " << id;
      ASSERT_EQ(a.y, b.y) << "vehicle " << id;
      ASSERT_EQ(legacy.speed_of(id), net.speed_of(id)) << "vehicle " << id;
    }
  };
  expect_identical();
  for (int i = 0; i < 400; ++i) {
    legacy.step(0.05);
    net.step(0.05);
  }
  expect_identical();
  EXPECT_EQ(net.completed_lane_changes(), legacy.completed_lane_changes());
}

TEST(RoadNetwork, RingCrossMedianMatchesDirections) {
  TrafficConfig c;
  c.density_vpl = 6.0;
  const std::uint64_t seed = 7;
  TrafficSimulator legacy{c, seed};
  NetworkTrafficSimulator net{ring_of(c), c, seed};
  for (VehicleId a = 0; a < net.size(); ++a) {
    for (VehicleId b = a + 1; b < net.size(); ++b) {
      EXPECT_EQ(net.cross_median(a, b), legacy.cross_median(a, b));
    }
  }
}

TEST(RoadNetwork, CityGridTopology) {
  const RoadNetwork net = small_grid();
  EXPECT_EQ(net.node_count(), 9u);
  // 12 undirected block edges, one segment per direction.
  EXPECT_EQ(net.segment_count(), 24u);
  int signals = 0;
  for (NetNodeId n = 0; n < net.node_count(); ++n) {
    if (net.node(n).kind == NodeKind::kSignal) ++signals;
  }
  EXPECT_EQ(signals, 1);  // only the center node of a 3x3 grid is interior

  for (SegmentId s = 0; s < net.segment_count(); ++s) {
    // Every grid segment has a reverse twin and at least one successor.
    EXPECT_NE(net.reverse_of(s), kInvalidSegment);
    EXPECT_FALSE(net.successors(s).empty());
    EXPECT_EQ(net.segment(s).length(), 200.0);
  }
}

TEST(RoadNetwork, SignalAlternatesAxesOverTime) {
  const double green = 5.0;
  const RoadNetwork net = small_grid(green);
  // Find segments entering the center (signalized) node from each axis.
  const NetNodeId center = 4;
  ASSERT_EQ(net.node(center).kind, NodeKind::kSignal);
  SegmentId ew = kInvalidSegment;
  SegmentId ns = kInvalidSegment;
  for (const SegmentId s : net.node(center).incoming) {
    (net.approach_axis(s) == 0 ? ew : ns) = s;
  }
  ASSERT_NE(ew, kInvalidSegment);
  ASSERT_NE(ns, kInvalidSegment);

  for (double t = 0.25; t < 4.0 * green; t += green) {
    // Exactly one axis is green at any time, and the axes swap each cycle.
    EXPECT_NE(net.entry_open(ew, t), net.entry_open(ns, t)) << "t=" << t;
    EXPECT_NE(net.entry_open(ew, t), net.entry_open(ew, t + green)) << "t=" << t;
  }
  // Merge (boundary) nodes never gate entry.
  for (SegmentId s = 0; s < net.segment_count(); ++s) {
    if (net.node(net.segment(s).to).kind != NodeKind::kSignal) {
      EXPECT_TRUE(net.entry_open(s, 1.0));
    }
  }
}

TEST(RoadNetwork, CityGridConservesVehiclesInBounds) {
  TrafficConfig c;
  c.lanes_per_direction = 2;
  c.lane_width_m = 3.5;
  c.density_vpl = 10.0;
  NetworkTrafficSimulator sim{small_grid(), c, 99};
  const std::size_t n = sim.size();
  ASSERT_GT(n, 0u);
  for (int i = 0; i < 1200; ++i) sim.step(0.05);
  EXPECT_EQ(sim.size(), n);
  for (const NetVehicleState& v : sim.vehicles()) {
    const RoadSegment& seg = sim.network().segment(v.segment);
    EXPECT_GE(v.s, 0.0);
    EXPECT_LT(v.s, seg.length());
    EXPECT_GE(v.lane, 0);
    EXPECT_LT(v.lane, seg.lanes);
    EXPECT_GE(v.speed_mps, 0.0);
    // Desired speed stays within some lane band of the segment.
    const double kmh = units::mps_to_kmh(v.desired_speed_mps);
    bool in_band = false;
    for (const LaneSpeedBand& band : seg.speed_bands) {
      in_band = in_band || (kmh >= band.min_kmh - 1e-9 && kmh <= band.max_kmh + 1e-9);
    }
    EXPECT_TRUE(in_band) << "desired speed " << kmh << " km/h outside all bands";
  }
}

TEST(RoadNetwork, CityGridVehiclesActuallyTurn) {
  TrafficConfig c;
  c.lanes_per_direction = 2;
  c.lane_width_m = 3.5;
  c.density_vpl = 8.0;
  NetworkTrafficSimulator sim{small_grid(), c, 3};
  for (int i = 0; i < 2400; ++i) sim.step(0.05);
  std::size_t crossed = 0;
  for (const NetVehicleState& v : sim.vehicles()) crossed += v.crossings > 0 ? 1 : 0;
  // Two minutes of driving on 200 m blocks: most vehicles passed a junction.
  EXPECT_GT(crossed, sim.size() / 2);
}

TEST(RoadNetwork, CityGridIsSeedDeterministic) {
  TrafficConfig c;
  c.lanes_per_direction = 2;
  c.lane_width_m = 3.5;
  c.density_vpl = 8.0;
  NetworkTrafficSimulator a{small_grid(), c, 11};
  NetworkTrafficSimulator b{small_grid(), c, 11};
  NetworkTrafficSimulator other{small_grid(), c, 12};
  for (int i = 0; i < 600; ++i) {
    a.step(0.05);
    b.step(0.05);
    other.step(0.05);
  }
  bool diverged = false;
  for (VehicleId id = 0; id < a.size(); ++id) {
    const geom::Vec2 pa = a.position_of(id);
    const geom::Vec2 pb = b.position_of(id);
    ASSERT_EQ(pa.x, pb.x);
    ASSERT_EQ(pa.y, pb.y);
    const geom::Vec2 po = other.position_of(id);
    diverged = diverged || pa.x != po.x || pa.y != po.y;
  }
  EXPECT_TRUE(diverged) << "different seeds should produce different traffic";
}

TEST(RoadNetwork, RejectsMalformedInput) {
  EXPECT_THROW(RoadNetwork({}, {}), std::invalid_argument);
  EXPECT_THROW(RoadNetwork::ring(0.0, 3, 5.0, true, {{40, 60}, {50, 70}, {60, 80}}),
               std::invalid_argument);
  EXPECT_THROW(RoadNetwork::ring(1000.0, 3, 5.0, true, {{40, 60}}), std::invalid_argument);
  EXPECT_THROW(RoadNetwork::city_grid(1, 3, 200.0, 2, 3.5, {{40, 60}, {50, 70}}, 12.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmv2v::traffic
