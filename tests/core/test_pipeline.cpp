// Staged frame pipeline (DESIGN.md Section 11): the engine knobs control
// HOW a frame is computed, never WHAT it computes. These tests pin the
// three load-bearing contracts:
//
//   1. the golden digest is bit-identical at engine.threads in {1, 4, 8}
//      (intra-frame worker lanes, distinct from the sweep-cell workers
//      test_golden_trace.cpp already covers),
//   2. the worker pool's chunk grid and chunk-order merge depend only on
//      (n, grain) — never on the lane count or claim timing, and
//   3. steady-state frames run with zero heap allocations (Release only,
//      via the operator-new counting hook).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/alloc_hook.hpp"
#include "core/experiment.hpp"
#include "core/frame_resources.hpp"
#include "core/golden_scenario.hpp"
#include "core/ledger.hpp"
#include "core/protocol.hpp"
#include "core/world.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "sim/worker_pool.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::hex64;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

SweepTrace run_golden_with_engine_threads(int engine_threads) {
  ScenarioConfig base = golden_scenario();
  base.engine.threads = engine_threads;
  SweepTrace trace;
  const auto points =
      run_density_sweep(golden_experiment(/*threads=*/1), base, mmv2v_factory(), &trace);
  EXPECT_EQ(points.size(), 1u);
  return trace;
}

TEST(Pipeline, GoldenDigestBitIdenticalAcrossEngineThreads) {
  for (const int threads : {1, 4, 8}) {
    const SweepTrace trace = run_golden_with_engine_threads(threads);
    ASSERT_FALSE(trace.events_jsonl.empty());
    EXPECT_EQ(trace.digest, kGoldenDigest)
        << "engine.threads=" << threads
        << " perturbed the event stream; digest is now " << hex64(trace.digest);
  }
}

TEST(Pipeline, WorkerPoolChunkGridIsLaneInvariant) {
  // 103 items at grain 8 -> 13 chunks with a 7-item tail, regardless of how
  // many lanes claim them.
  constexpr std::size_t kItems = 103;
  constexpr std::size_t kGrain = 8;
  const std::size_t chunks = sim::WorkerPool::chunk_count(kItems, kGrain);
  ASSERT_EQ(chunks, 13u);

  std::vector<std::vector<std::uint64_t>> merged_per_lane_count;
  for (const int threads : {1, 3, 8}) {
    sim::WorkerPool pool{threads};
    std::vector<int> visits(kItems, 0);
    std::vector<std::uint64_t> partial(chunks, 0);
    pool.for_chunks(kItems, kGrain, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        ++visits[i];  // distinct index per chunk: no write overlap
        partial[chunk] += (i + 1) * 2654435761ULL;
      }
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(visits[i], 1) << "item " << i << " at " << threads << " lanes";
    }
    merged_per_lane_count.push_back(std::move(partial));
  }
  // The chunk-indexed partials are the merge units; identical per-chunk
  // content means chunk-order merges are bit-identical at any lane count.
  EXPECT_EQ(merged_per_lane_count[0], merged_per_lane_count[1]);
  EXPECT_EQ(merged_per_lane_count[0], merged_per_lane_count[2]);
}

TEST(Pipeline, WorkerPoolEdgeGrids) {
  EXPECT_EQ(sim::WorkerPool::chunk_count(0, 8), 0u);
  EXPECT_EQ(sim::WorkerPool::chunk_count(5, 100), 1u);
  EXPECT_EQ(sim::WorkerPool::chunk_count(5, 0), 5u);  // grain 0 clamps to 1

  sim::WorkerPool pool{4};
  int calls = 0;
  pool.for_chunks(0, 8, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_chunks(5, 100, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Pipeline, FrameResourcesRewindKeepsStorage) {
  EngineParams params;
  params.threads = 2;
  params.arena_bytes = 4096;
  FrameResources resources{params};
  EXPECT_EQ(resources.lanes(), 2);

  void* first = resources.arena(0).allocate(512, 16);
  resources.stats().snd_rounds.resize(3);
  resources.stats().refine.pairs = 7;

  resources.begin_frame();
  EXPECT_EQ(resources.arena(0).used(), 0u);
  EXPECT_EQ(resources.arena(1).used(), 0u);
  EXPECT_TRUE(resources.stats().snd_rounds.empty());
  EXPECT_EQ(resources.stats().refine.pairs, 0u);
  // Rewind, not reallocate: the next frame's scratch reuses the same bytes.
  EXPECT_EQ(resources.arena(0).allocate(512, 16), first);
}

TEST(Pipeline, ZeroAllocationsInSteadyStateFrames) {
#if !defined(NDEBUG)
  GTEST_SKIP() << "steady-state allocation contract is asserted in Release builds only";
#else
  if (!alloc_hook::active()) {
    GTEST_SKIP() << "operator-new hook disabled (sanitizer build)";
  }
  // A frozen mid-density world driven through whole protocol frames, the
  // same way bench_runner's sim.frame case drives it (minus mobility, which
  // belongs to the traffic layer). After warmup every lazily-grown buffer —
  // lane arenas, thread_local lane scratch, pooled per-frame vectors — has
  // reached capacity, so additional frames must not touch the heap.
  //
  // Neighbor age-out is disabled for the probe: expiring a table entry frees
  // a map node that re-discovery later re-allocates, which is protocol churn
  // by design, not pipeline scratch. With a static world and no expiry the
  // neighbor/ledger state converges and the frame loop itself must be clean.
  ScenarioConfig scenario = golden_scenario();
  scenario.traffic.density_vpl = 20.0;
  scenario.seed = 99;
  World world{scenario, 99};
  TransferLedger ledger{1e12};
  // Pre-touch every directed pair: the ledger inserts a map node on a pair's
  // first delivery, and with random matching that first contact can land
  // arbitrarily late. An epsilon credit (1e-9 of a 1e12-bit task) makes the
  // key set complete without affecting progress.
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (net::NodeId j = 0; j < world.size(); ++j) {
      if (i != j) ledger.record(i, j, 1e-9);
    }
  }
  protocols::MmV2VParams params;
  params.neighbor_max_age_frames = 1u << 30;
  protocols::MmV2VProtocol protocol{params};

  std::uint64_t frame = 0;
  const auto run_frame = [&] {
    FrameContext ctx{world, ledger, frame, static_cast<double>(frame) * 0.02};
    protocol.begin_frame(ctx);
    const double udt_start = protocol.udt_start_offset_s();
    double prev = 0.0;
    for (double b = 0.005; b <= 0.020 + 1e-12; b += 0.005) {
      const double t0 = std::max(prev, udt_start);
      if (b > t0) protocol.udt_step(ctx, t0, b);
      prev = b;
    }
    protocol.end_frame(ctx);
    ++frame;
  };

  constexpr int kWarmupFrames = 150;
  constexpr int kMeasuredFrames = 40;
  for (int i = 0; i < kWarmupFrames; ++i) run_frame();

  const std::uint64_t before = alloc_hook::allocations();
  for (int i = 0; i < kMeasuredFrames; ++i) run_frame();
  const std::uint64_t after = alloc_hook::allocations();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across " << kMeasuredFrames
      << " steady-state frames; a per-frame scratch buffer lost its capacity";
#endif
}

}  // namespace
}  // namespace mmv2v::core
