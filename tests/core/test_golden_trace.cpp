// Golden-trace regression harness (DESIGN.md Section 8): a fixed-seed
// ~20-vehicle scenario is swept with instrumentation on, and the serialized
// JSONL event stream is fingerprinted. The digest below is the checked-in
// golden value; any change to discovery, matching, refinement, the data
// plane, the RNG streams or the serialization shows up here first.
//
// The trace is required to be bit-identical for any worker count: cells are
// instrumented independently and merged in canonical (density, repetition)
// order, and the manifest (which names the thread count) stays out of the
// digest.
#include <gtest/gtest.h>

#include <string>

#include "common/profiler.hpp"
#include "core/experiment.hpp"
#include "core/golden_scenario.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::hex64;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

SweepTrace run_golden(int threads) {
  SweepTrace trace;
  const auto points =
      run_density_sweep(golden_experiment(threads), golden_scenario(), mmv2v_factory(), &trace);
  EXPECT_EQ(points.size(), 1u);
  return trace;
}

TEST(GoldenTrace, MatchesCheckedInDigest) {
  const SweepTrace trace = run_golden(/*threads=*/1);
  ASSERT_FALSE(trace.events_jsonl.empty());
  EXPECT_EQ(trace.digest, kGoldenDigest)
      << "event stream diverged from the golden trace; if the behavior change "
         "is intentional, update kGoldenDigest to " << hex64(trace.digest);
}

TEST(GoldenTrace, BitIdenticalAcrossThreadCounts) {
  const SweepTrace serial = run_golden(/*threads=*/1);
  const SweepTrace parallel = run_golden(/*threads=*/4);
  EXPECT_EQ(serial.digest, parallel.digest);
  EXPECT_EQ(serial.events_jsonl, parallel.events_jsonl);
}

TEST(GoldenTrace, DigestUnchangedWithProfilingEnabled) {
  // The wall-clock profiler only reads clocks — it must not touch any RNG
  // stream or reorder work, so the golden digest is identical with it on.
  prof::reset();
  prof::set_enabled(true);
  const SweepTrace trace = run_golden(/*threads=*/2);
  prof::set_enabled(false);
  EXPECT_EQ(trace.digest, kGoldenDigest)
      << "profiling perturbed the event stream; digest is now " << hex64(trace.digest);
#if !defined(MMV2V_PROFILER_DISABLED)
  // And it actually profiled the sweep: the wired scopes show up.
  EXPECT_GT(prof::total_records(), 0u);
  const std::string report = prof::report_text();
  EXPECT_NE(report.find("sweep.cell"), std::string::npos);
  EXPECT_NE(report.find("snd.run"), std::string::npos);
  EXPECT_NE(report.find("dcm.run"), std::string::npos);
#endif
  prof::reset();
}

TEST(GoldenTrace, StreamHasExpectedShape) {
  const SweepTrace trace = run_golden(/*threads=*/2);
  // One cell_begin/cell_end bracket per (density, repetition) cell, in
  // canonical order; the manifest is a separate artifact, not an event.
  EXPECT_NE(trace.events_jsonl.find("{\"ev\":\"cell_begin\",\"density_vpl\":10,\"rep\":0,"),
            std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("{\"ev\":\"cell_begin\",\"density_vpl\":10,\"rep\":1,"),
            std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"cell_end\",\"metrics\":{"), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"snd_round\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"matching\""), std::string::npos);
  EXPECT_NE(trace.events_jsonl.find("\"ev\":\"frame_end\""), std::string::npos);
  EXPECT_EQ(trace.events_jsonl.find("\"ev\":\"manifest\""), std::string::npos);

  EXPECT_NE(trace.manifest_json.find("\"ev\":\"manifest\""), std::string::npos);
  EXPECT_NE(trace.manifest_json.find("\"protocol\":\"mmV2V\""), std::string::npos);
  EXPECT_NE(trace.manifest_json.find("\"git_describe\":"), std::string::npos);
  EXPECT_NE(trace.manifest_json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(trace.manifest_json.find("\"seed\":20260806"), std::string::npos);
}

}  // namespace
}  // namespace mmv2v::core
