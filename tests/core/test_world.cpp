#include "core/world.hpp"

#include <gtest/gtest.h>

#include "geom/angles.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

TEST(World, PairGeometryIsConsistent) {
  const World world{testing::small_scenario(), 1};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (const PairGeom& p : world.nearby(i)) {
      const PairGeom* back = world.pair(p.other, i);
      ASSERT_NE(back, nullptr) << "nearby lists must be symmetric";
      EXPECT_DOUBLE_EQ(back->distance_m, p.distance_m);
      EXPECT_EQ(back->blockers, p.blockers);
      EXPECT_NEAR(geom::wrap_two_pi(back->bearing_rad + geom::kPi), p.bearing_rad, 1e-9);
    }
  }
}

TEST(World, NearbyRespectsInterferenceRange) {
  const World world{testing::small_scenario(), 2};
  const double radius = world.config().interference_range_m;
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (const PairGeom& p : world.nearby(i)) {
      EXPECT_LE(p.distance_m, radius + 1e-9);
      EXPECT_GT(p.distance_m, 0.0);
    }
  }
}

TEST(World, PairLookupMissesOutOfRange) {
  const World world{testing::small_scenario(), 3};
  EXPECT_EQ(world.pair(0, 99999), nullptr);
  EXPECT_EQ(world.pair(99999, 0), nullptr);
}

TEST(World, GroundTruthNeighborsWithinCommRange) {
  const World world{testing::small_scenario(), 4};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (net::NodeId j : world.ground_truth_neighbors(i)) {
      const PairGeom* p = world.pair(i, j);
      ASSERT_NE(p, nullptr);
      EXPECT_LE(p->distance_m, world.config().comm_range_m);
      EXPECT_EQ(p->blockers, 0);
    }
  }
}

TEST(World, GroundTruthIsSymmetric) {
  const World world{testing::small_scenario(), 5};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (net::NodeId j : world.ground_truth_neighbors(i)) {
      const auto back = world.ground_truth_neighbors(j);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(World, CrossMedianLinksAreBlocked) {
  const World world{testing::small_scenario(20.0), 6};
  const auto& vehicles = world.traffic().vehicles();
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (net::NodeId j : world.ground_truth_neighbors(i)) {
      EXPECT_EQ(vehicles[i].direction, vehicles[j].direction)
          << "median must radio-isolate the carriageways";
    }
  }
}

TEST(World, OpenMedianConnectsCarriageways) {
  core::ScenarioConfig s = testing::small_scenario(20.0);
  s.cross_median_blockers = 0;
  const World world{s, 6};
  const auto& vehicles = world.traffic().vehicles();
  bool any_cross = false;
  for (net::NodeId i = 0; i < world.size() && !any_cross; ++i) {
    for (net::NodeId j : world.ground_truth_neighbors(i)) {
      if (vehicles[i].direction != vehicles[j].direction) any_cross = true;
    }
  }
  EXPECT_TRUE(any_cross);
}

TEST(World, AdvanceMovesVehiclesAndRefreshes) {
  World world{testing::small_scenario(), 7};
  const auto p0 = world.position(0);
  world.advance(0.5);
  const auto p1 = world.position(0);
  EXPECT_GT(geom::distance(p0, p1), 1.0) << "highway speeds move >1 m in 0.5 s";
}

TEST(World, MeanDegreeInPaperRegime) {
  // The paper's Fig. 6 scenarios have mean degree ~5-8 at 13-22 vpl; check
  // the default calibration lands in that band at 15 vpl on the full road.
  core::ScenarioConfig s;
  s.traffic.density_vpl = 15.0;
  s.traffic_warmup_s = 2.0;
  const World world{s, 8};
  EXPECT_GT(world.mean_degree(), 3.5);
  EXPECT_LT(world.mean_degree(), 9.0);
}

TEST(World, MacsAreUniquePerVehicle) {
  const World world{testing::small_scenario(), 9};
  for (net::NodeId i = 1; i < world.size(); ++i) {
    EXPECT_NE(world.mac(i), world.mac(i - 1));
  }
}

}  // namespace
}  // namespace mmv2v::core
