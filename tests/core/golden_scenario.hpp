// The shared golden-trace fixture: a fixed-seed ~20-vehicle scenario swept
// with instrumentation on. Used by the golden-digest regression test and by
// the fault-layer determinism suite (which must reproduce the exact same
// digest when every fault knob is zero).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

namespace mmv2v::core::golden {

/// FNV-1a 64 of the golden scenario's event stream. On an intentional
/// behavior change, run test_golden once: the failure message prints the new
/// digest to check in here. Last re-pin: NeighborTable moved to a sorted slab
/// (ascending-NodeId iteration is now the defined order), which changed
/// which DCM candidate wins reservoir ties.
constexpr std::uint64_t kGoldenDigest = 0x93df0b8b3b343617ULL;

inline ExperimentConfig golden_experiment(int threads) {
  ExperimentConfig config;
  config.densities_vpl = {10.0};
  config.repetitions = 2;
  config.horizon_s = 0.2;  // 10 frames
  config.seed = 20260806;
  config.threads = threads;
  return config;
}

inline ScenarioConfig golden_scenario() {
  ScenarioConfig s;
  s.traffic.road_length_m = 500.0;
  s.traffic.lanes_per_direction = 2;
  s.traffic_warmup_s = 2.0;
  return s;  // 10 vpl x 0.5 km x 4 lanes ~= 20 vehicles
}

inline ProtocolFactory mmv2v_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<OhmProtocol> {
    protocols::MmV2VParams p;
    p.seed = seed;
    return std::make_unique<protocols::MmV2VProtocol>(p);
  };
}

inline std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace mmv2v::core::golden
