#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig e;
  e.densities_vpl = {10.0, 20.0};
  e.repetitions = 2;
  e.horizon_s = 0.2;
  e.seed = 3;
  return e;
}

ScenarioConfig tiny_base() {
  ScenarioConfig s = mmv2v::testing::small_scenario();
  return s;
}

ProtocolFactory mmv2v_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<OhmProtocol> {
    protocols::MmV2VParams p;
    p.seed = seed;
    return std::make_unique<protocols::MmV2VProtocol>(p);
  };
}

TEST(Experiment, RunsAllPointsAndReps) {
  const auto points = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  ASSERT_EQ(points.size(), 2u);
  for (const SweepPoint& p : points) {
    EXPECT_EQ(p.ocr.count(), 2u);
    EXPECT_EQ(p.degree.count(), 2u);
    EXPECT_GT(p.ocr_samples.size(), 0u);
    EXPECT_GE(p.fairness.mean(), 0.0);
    EXPECT_LE(p.fairness.mean(), 1.0);
  }
  EXPECT_GT(points[1].degree.mean(), points[0].degree.mean())
      << "denser traffic has more neighbors";
}

TEST(Experiment, ValidatesInput) {
  ExperimentConfig bad = tiny_experiment();
  bad.repetitions = 0;
  EXPECT_THROW(run_density_sweep(bad, tiny_base(), mmv2v_factory()),
               std::invalid_argument);
  EXPECT_THROW(run_density_sweep(tiny_experiment(), tiny_base(), nullptr),
               std::invalid_argument);
}

TEST(Experiment, IsDeterministic) {
  const auto a = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  const auto b = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ocr.mean(), b[i].ocr.mean());
    EXPECT_DOUBLE_EQ(a[i].atp.mean(), b[i].atp.mean());
  }
}

TEST(Experiment, PrintSweepRendersTable) {
  const auto points = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  std::ostringstream out;
  print_sweep(out, "test sweep", points);
  const std::string table = out.str();
  EXPECT_NE(table.find("test sweep"), std::string::npos);
  EXPECT_NE(table.find("Jain"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'),
            static_cast<std::ptrdiff_t>(points.size()) + 2);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0}), 1.0);
  // One user hogging everything among n: index = 1/n.
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Classic example: {1,2,3} -> 36 / (3*14).
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> x{1.0, 4.0, 2.0, 7.0};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(v * 123.0);
  EXPECT_NEAR(jain_fairness(x), jain_fairness(scaled), 1e-12);
}

TEST(JainFairness, NetworkAtpFairnessFromMetrics) {
  NetworkMetrics m;
  for (double atp : {0.5, 0.5, 0.5}) {
    VehicleMetrics v;
    v.atp = atp;
    m.per_vehicle.push_back(v);
  }
  EXPECT_DOUBLE_EQ(network_atp_fairness(m), 1.0);
}

}  // namespace
}  // namespace mmv2v::core
