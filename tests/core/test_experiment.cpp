#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.hpp"
#include "core/metrics.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

ExperimentConfig tiny_experiment() {
  ExperimentConfig e;
  e.densities_vpl = {10.0, 20.0};
  e.repetitions = 2;
  e.horizon_s = 0.2;
  e.seed = 3;
  return e;
}

ScenarioConfig tiny_base() {
  ScenarioConfig s = mmv2v::testing::small_scenario();
  return s;
}

ProtocolFactory mmv2v_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<OhmProtocol> {
    protocols::MmV2VParams p;
    p.seed = seed;
    return std::make_unique<protocols::MmV2VProtocol>(p);
  };
}

TEST(Experiment, RunsAllPointsAndReps) {
  const auto points = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  ASSERT_EQ(points.size(), 2u);
  for (const SweepPoint& p : points) {
    EXPECT_EQ(p.ocr.count(), 2u);
    EXPECT_EQ(p.degree.count(), 2u);
    EXPECT_GT(p.ocr_samples.size(), 0u);
    EXPECT_GE(p.fairness.mean(), 0.0);
    EXPECT_LE(p.fairness.mean(), 1.0);
  }
  EXPECT_GT(points[1].degree.mean(), points[0].degree.mean())
      << "denser traffic has more neighbors";
}

TEST(Experiment, ValidatesInput) {
  ExperimentConfig bad = tiny_experiment();
  bad.repetitions = 0;
  EXPECT_THROW(run_density_sweep(bad, tiny_base(), mmv2v_factory()),
               std::invalid_argument);
  EXPECT_THROW(run_density_sweep(tiny_experiment(), tiny_base(), nullptr),
               std::invalid_argument);
}

TEST(Experiment, ThreadCountDoesNotChangeResults) {
  // The parallel runner's contract: (density, repetition) cells are
  // self-contained and merged in canonical order, so any worker count yields
  // bit-identical SweepPoints.
  ExperimentConfig e = tiny_experiment();
  e.repetitions = 3;
  std::vector<std::vector<SweepPoint>> runs;
  for (const int threads : {1, 2, 8}) {
    e.threads = threads;
    runs.push_back(run_density_sweep(e, tiny_base(), mmv2v_factory()));
  }
  const auto& ref = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const SweepPoint& a = ref[i];
      const SweepPoint& b = runs[r][i];
      EXPECT_DOUBLE_EQ(b.density_vpl, a.density_vpl);
      EXPECT_EQ(b.degree.count(), a.degree.count());
      EXPECT_DOUBLE_EQ(b.degree.mean(), a.degree.mean());
      EXPECT_DOUBLE_EQ(b.ocr.mean(), a.ocr.mean());
      EXPECT_DOUBLE_EQ(b.ocr.stddev(), a.ocr.stddev());
      EXPECT_DOUBLE_EQ(b.atp.mean(), a.atp.mean());
      EXPECT_DOUBLE_EQ(b.dtp.mean(), a.dtp.mean());
      EXPECT_DOUBLE_EQ(b.fairness.mean(), a.fairness.mean());
      ASSERT_EQ(b.ocr_samples.raw().size(), a.ocr_samples.raw().size());
      for (std::size_t k = 0; k < a.ocr_samples.raw().size(); ++k) {
        EXPECT_DOUBLE_EQ(b.ocr_samples.raw()[k], a.ocr_samples.raw()[k]);
        EXPECT_DOUBLE_EQ(b.atp_samples.raw()[k], a.atp_samples.raw()[k]);
      }
    }
  }
}

TEST(Experiment, PerCellSeedsDoNotCollide) {
  // The old additive scheme (seed + rep*7919 + density*131) aliased cells;
  // mixed derivation must give every (density index, rep) cell its own seed.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t di = 0; di < 40; ++di) {
    for (std::uint64_t rep = 0; rep < 40; ++rep) {
      seeds.push_back(derive_seed(7, di, rep));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Experiment, IsDeterministic) {
  const auto a = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  const auto b = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].ocr.mean(), b[i].ocr.mean());
    EXPECT_DOUBLE_EQ(a[i].atp.mean(), b[i].atp.mean());
  }
}

TEST(Experiment, PrintSweepRendersTable) {
  const auto points = run_density_sweep(tiny_experiment(), tiny_base(), mmv2v_factory());
  std::ostringstream out;
  print_sweep(out, "test sweep", points);
  const std::string table = out.str();
  EXPECT_NE(table.find("test sweep"), std::string::npos);
  EXPECT_NE(table.find("Jain"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'),
            static_cast<std::ptrdiff_t>(points.size()) + 2);
}

TEST(Experiment, BadTraceOutFailsBeforeAnyCellRuns) {
  // Regression: a typo'd trace_out directory used to surface only after the
  // whole sweep had run (and then threw the results away). The probe must
  // reject the path before the first cell starts.
  ExperimentConfig e = tiny_experiment();
  e.trace_out = (std::filesystem::temp_directory_path() / "mmv2v-no-such-dir" /
                 "trace.jsonl")
                    .string();
  std::atomic<int> factory_calls{0};
  const ProtocolFactory counting = [&](std::uint64_t seed) {
    ++factory_calls;
    return mmv2v_factory()(seed);
  };
  EXPECT_THROW(run_density_sweep(e, tiny_base(), counting), std::runtime_error);
  EXPECT_EQ(factory_calls.load(), 0) << "cells ran despite an unwritable trace_out";
}

TEST(Experiment, ProbeOutputPathContract) {
  EXPECT_NO_THROW(probe_output_path("", "out"));  // empty = unset
  const auto dir = std::filesystem::temp_directory_path() / "mmv2v_probe_test";
  std::filesystem::create_directories(dir);
  const std::string ok = (dir / "probe.json").string();
  EXPECT_NO_THROW(probe_output_path(ok, "out"));
  // Probing must not truncate existing content.
  {
    std::ofstream out{ok, std::ios::binary};
    out << "keep me";
  }
  EXPECT_NO_THROW(probe_output_path(ok, "out"));
  std::ifstream in{ok};
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "keep me");
  // A directory is not a writable file.
  try {
    probe_output_path(dir.string(), "out");
    FAIL() << "probe accepted a directory";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("out"), std::string::npos)
        << "diagnostic must name which output was bad";
  }
  std::filesystem::remove_all(dir);
}

TEST(Experiment, WriteSweepTraceThrowsWhenManifestWriteFails) {
  // Regression: the manifest write had no failure branch — a sweep could
  // "succeed" with a trace but no manifest. Force the manifest path to be a
  // directory so only that second write fails.
  const auto dir = std::filesystem::temp_directory_path() / "mmv2v_manifest_test";
  std::filesystem::create_directories(dir);
  ExperimentConfig e = tiny_experiment();
  e.trace_out = (dir / "trace.jsonl").string();
  std::filesystem::create_directories(dir / "trace.jsonl.manifest.json");
  SweepTrace trace;
  trace.events_jsonl = "{\"ev\":\"x\"}\n";
  trace.manifest_json = "{}";
  try {
    write_sweep_trace(e, trace);
    FAIL() << "manifest write failure was swallowed";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string{err.what()}.find("manifest"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(Experiment, FirstFailureCancelsRemainingCellsSerially) {
  // Serial sweep, every cell would fail: the first failure must cancel the
  // other cells (factory never called again) and the throw must carry the
  // formatted per-cell diagnostic.
  ExperimentConfig e = tiny_experiment();
  e.threads = 1;
  std::atomic<int> factory_calls{0};
  const ProtocolFactory exploding = [&](std::uint64_t) -> std::unique_ptr<OhmProtocol> {
    ++factory_calls;
    throw std::runtime_error{"boom"};
  };
  try {
    run_density_sweep(e, tiny_base(), exploding);
    FAIL() << "sweep succeeded with a throwing factory";
  } catch (const SweepFailure& failure) {
    EXPECT_EQ(factory_calls.load(), 1) << "cells kept starting after the first failure";
    ASSERT_EQ(failure.cell_errors().size(), 1u);
    EXPECT_NE(failure.cell_errors()[0].find("cell 0 (density 10, rep 0): boom"),
              std::string::npos)
        << failure.cell_errors()[0];
    EXPECT_NE(std::string{failure.what()}.find("cancelled"), std::string::npos);
  }
}

TEST(Experiment, ConcurrentFailuresAllAggregate) {
  // With two workers, cells already in flight when the first failure lands
  // still report their own outcome: every factory call that threw must
  // surface as its own entry in SweepFailure::cell_errors().
  ExperimentConfig e = tiny_experiment();
  e.repetitions = 4;
  e.threads = 2;
  std::atomic<int> factory_calls{0};
  const ProtocolFactory exploding = [&](std::uint64_t) -> std::unique_ptr<OhmProtocol> {
    const int n = ++factory_calls;
    throw std::runtime_error{"boom " + std::to_string(n)};
  };
  try {
    run_density_sweep(e, tiny_base(), exploding);
    FAIL() << "sweep succeeded with a throwing factory";
  } catch (const SweepFailure& failure) {
    EXPECT_EQ(failure.cell_errors().size(),
              static_cast<std::size_t>(factory_calls.load()))
        << "a failed cell's diagnostic was dropped";
    EXPECT_GE(failure.cell_errors().size(), 1u);
    EXPECT_LE(failure.cell_errors().size(), 2u)
        << "cancellation let more cells start than there are workers";
  }
}

TEST(Experiment, CellGranularRunAndMergeMatchesSweep) {
  // The farm's execution path: run every cell individually, merge once, and
  // get bit-identical points to run_density_sweep.
  const ExperimentConfig e = tiny_experiment();
  const ScenarioConfig base = tiny_base();
  const auto reference = run_density_sweep(e, base, mmv2v_factory());
  std::vector<CellResult> cells;
  for (std::size_t k = 0; k < e.cell_count(); ++k) {
    cells.push_back(run_sweep_cell(e, base, mmv2v_factory(), k, /*instrument=*/false));
    EXPECT_EQ(cells.back().index, k);
  }
  const SweepMerge merged =
      merge_sweep_cells(e, base, std::move(cells), /*tracing=*/false, /*workers=*/0);
  ASSERT_EQ(merged.points.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.points[i].ocr.mean(), reference[i].ocr.mean());
    EXPECT_DOUBLE_EQ(merged.points[i].atp.mean(), reference[i].atp.mean());
    EXPECT_DOUBLE_EQ(merged.points[i].fairness.mean(), reference[i].fairness.mean());
  }
  EXPECT_EQ(sweep_points_json("mmv2v", e, merged.points),
            sweep_points_json("mmv2v", e, reference));
}

TEST(Experiment, MergeRequiresEveryCell) {
  const ExperimentConfig e = tiny_experiment();
  const ScenarioConfig base = tiny_base();
  std::vector<CellResult> cells;
  cells.push_back(run_sweep_cell(e, base, mmv2v_factory(), 0, false));
  EXPECT_THROW(merge_sweep_cells(e, base, std::move(cells), false, 0),
               std::invalid_argument);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0}), 1.0);
  // One user hogging everything among n: index = 1/n.
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Classic example: {1,2,3} -> 36 / (3*14).
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> x{1.0, 4.0, 2.0, 7.0};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(v * 123.0);
  EXPECT_NEAR(jain_fairness(x), jain_fairness(scaled), 1e-12);
}

TEST(JainFairness, NetworkAtpFairnessFromMetrics) {
  NetworkMetrics m;
  for (double atp : {0.5, 0.5, 0.5}) {
    VehicleMetrics v;
    v.atp = atp;
    m.per_vehicle.push_back(v);
  }
  EXPECT_DOUBLE_EQ(network_atp_fairness(m), 1.0);
}

}  // namespace
}  // namespace mmv2v::core
