#include <gtest/gtest.h>

#include "core/ledger.hpp"
#include "core/metrics.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

TEST(TransferLedger, RejectsNonPositiveUnit) {
  EXPECT_THROW((TransferLedger{0.0}), std::invalid_argument);
  EXPECT_THROW((TransferLedger{-1.0}), std::invalid_argument);
}

TEST(TransferLedger, RecordAccumulatesPerDirection) {
  TransferLedger ledger{100.0};
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(ledger.delivered(1, 2), 30.0);
  EXPECT_DOUBLE_EQ(ledger.delivered(2, 1), 0.0) << "directions are independent";
  EXPECT_DOUBLE_EQ(ledger.remaining(1, 2), 70.0);
}

TEST(TransferLedger, RecordClampsAtUnit) {
  TransferLedger ledger{100.0};
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, 80.0), 80.0);
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, 50.0), 20.0) << "only 20 remained";
  EXPECT_DOUBLE_EQ(ledger.delivered(1, 2), 100.0);
  EXPECT_TRUE(ledger.direction_complete(1, 2));
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, 10.0), 0.0);
}

TEST(TransferLedger, NegativeOrZeroBitsIgnored) {
  TransferLedger ledger{100.0};
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.record(1, 2, -5.0), 0.0);
  EXPECT_EQ(ledger.tracked_directions(), 0u);
}

TEST(TransferLedger, EtaCombinesBothDirections) {
  TransferLedger ledger{100.0};
  ledger.record(1, 2, 100.0);
  EXPECT_DOUBLE_EQ(ledger.eta(1, 2), 0.5) << "one direction done = 50% progress";
  EXPECT_DOUBLE_EQ(ledger.eta(2, 1), 0.5) << "eta is symmetric";
  ledger.record(2, 1, 100.0);
  EXPECT_DOUBLE_EQ(ledger.eta(1, 2), 1.0);
  EXPECT_TRUE(ledger.pair_complete(1, 2));
  EXPECT_TRUE(ledger.pair_complete(2, 1));
}

TEST(TransferLedger, PairCompleteNeedsBothDirections) {
  TransferLedger ledger{100.0};
  ledger.record(1, 2, 100.0);
  EXPECT_FALSE(ledger.pair_complete(1, 2));
}

TEST(TransferLedger, ResetClears) {
  TransferLedger ledger{100.0};
  ledger.record(1, 2, 50.0);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.delivered(1, 2), 0.0);
  EXPECT_EQ(ledger.tracked_directions(), 0u);
}

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : world_(testing::small_scenario(15.0, 31), 31), ledger_(100.0) {}

  core::World world_;
  TransferLedger ledger_;
};

TEST_F(MetricsTest, EmptyLedgerGivesZeroMetrics) {
  const NetworkMetrics m = evaluate_network(world_, ledger_);
  EXPECT_DOUBLE_EQ(m.mean_ocr(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_atp(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_dtp(), 0.0);
  EXPECT_FALSE(m.per_vehicle.empty());
}

TEST_F(MetricsTest, FullLedgerGivesPerfectMetrics) {
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    for (net::NodeId j : world_.ground_truth_neighbors(i)) {
      ledger_.record(i, j, 100.0);
    }
  }
  const NetworkMetrics m = evaluate_network(world_, ledger_);
  EXPECT_DOUBLE_EQ(m.mean_ocr(), 1.0);
  EXPECT_DOUBLE_EQ(m.mean_atp(), 1.0);
  EXPECT_NEAR(m.mean_dtp(), 0.0, 1e-12);
}

TEST_F(MetricsTest, PartialProgressMatchesPaperDefinitions) {
  // Pick any vehicle with >= 2 neighbors; complete one pair fully,
  // half-complete another, leave the rest untouched, and verify OCR/ATP/DTP
  // against the paper's formulas computed by hand.
  net::NodeId v = world_.size();
  std::vector<net::NodeId> nbrs;
  for (net::NodeId i = 0; i < world_.size(); ++i) {
    nbrs = world_.ground_truth_neighbors(i);
    if (nbrs.size() >= 2) {
      v = i;
      break;
    }
  }
  ASSERT_NE(v, world_.size()) << "test world must contain a connected vehicle";

  ledger_.record(v, nbrs[0], 100.0);
  ledger_.record(nbrs[0], v, 100.0);   // eta = 1, complete
  ledger_.record(v, nbrs[1], 50.0);    // eta = 0.25
  const auto m = evaluate_vehicle(world_, ledger_, v);
  ASSERT_TRUE(m.has_value());

  const double n = static_cast<double>(nbrs.size());
  EXPECT_DOUBLE_EQ(m->ocr, 1.0 / n);
  const double mean_eta = (1.0 + 0.25) / n;
  EXPECT_DOUBLE_EQ(m->atp, mean_eta);
  double var = (1.0 - mean_eta) * (1.0 - mean_eta) + (0.25 - mean_eta) * (0.25 - mean_eta) +
               (n - 2.0) * mean_eta * mean_eta;
  EXPECT_NEAR(m->dtp, std::sqrt(var / n), 1e-12);
}

TEST_F(MetricsTest, VehicleWithoutNeighborsIsSkipped) {
  // Fabricate: vehicle id beyond range has no neighbors -> nullopt.
  core::ScenarioConfig s = testing::small_scenario(0.0);
  s.traffic.density_vpl = 1.0;  // 1 per lane on 500 m: all isolated beyond 80 m?
  s.traffic.bidirectional = false;
  const core::World sparse{s, 1};
  bool any_isolated = false;
  for (net::NodeId i = 0; i < sparse.size(); ++i) {
    if (!evaluate_vehicle(sparse, ledger_, i).has_value()) any_isolated = true;
  }
  // With 3 vehicles on 500 m they are usually isolated; tolerate either, but
  // the network evaluation must not crash and must skip isolated vehicles.
  const NetworkMetrics m = evaluate_network(sparse, ledger_);
  EXPECT_LE(m.per_vehicle.size(), sparse.size());
  (void)any_isolated;
}

}  // namespace
}  // namespace mmv2v::core
