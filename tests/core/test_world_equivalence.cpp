// Brute-force equivalence for the grid-driven snapshot engine: the flat-arena
// snapshot must contain exactly the PairGeom entries the old O(N^2 * B) path
// produced — same pairs, distances, bearings, blocker counts and fading — on
// randomized scenarios, including after mobility ticks.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/world.hpp"
#include "geom/angles.hpp"
#include "phy/fading.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

struct RefPair {
  net::NodeId other = 0;
  double distance_m = 0.0;
  double bearing_rad = 0.0;
  int blockers = 0;
  double extra_loss_db = 0.0;
};

/// Reference blocker count: plain scan over every body, no grid, no prefilter.
int brute_blockers(const std::vector<geom::Blocker>& bodies, geom::Vec2 a, geom::Vec2 b,
                   std::size_t owner_a, std::size_t owner_b) {
  int count = 0;
  for (const geom::Blocker& blocker : bodies) {
    if (blocker.owner_id == owner_a || blocker.owner_id == owner_b) continue;
    if (blocker.body.intersects_segment(a, b)) ++count;
  }
  return count;
}

/// The old World::refresh_snapshot, reimplemented from first principles.
std::vector<std::vector<RefPair>> reference_snapshot(const World& world, std::uint64_t tick) {
  const auto& traffic = world.traffic();
  const std::size_t n = traffic.size();
  const ScenarioConfig& config = world.config();
  const phy::FadingModel fading{config.fading};

  std::vector<geom::Vec2> pos(n);
  std::vector<geom::Blocker> bodies;
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = traffic.position_of(i);
    bodies.push_back(geom::Blocker{traffic.vehicles()[i].body(traffic.road()), i});
  }

  const double radius_sq = config.interference_range_m * config.interference_range_m;
  std::vector<std::vector<RefPair>> nearby(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geom::distance_sq(pos[i], pos[j]) > radius_sq) continue;
      const double d = geom::distance(pos[i], pos[j]);
      int blockers = brute_blockers(bodies, pos[i], pos[j], i, j);
      if (traffic.vehicles()[i].direction != traffic.vehicles()[j].direction) {
        blockers += config.cross_median_blockers;
      }
      const double fade = fading.enabled() ? fading.loss_db(i, j, tick) : 0.0;
      nearby[i].push_back({j, d, geom::bearing(pos[i], pos[j]), blockers, fade});
      nearby[j].push_back({i, d, geom::bearing(pos[j], pos[i]), blockers, fade});
    }
  }
  return nearby;
}

void expect_snapshot_equals_reference(const World& world, std::uint64_t tick) {
  const auto reference = reference_snapshot(world, tick);
  ASSERT_EQ(world.size(), reference.size());
  std::size_t total_pairs = 0;
  for (net::NodeId i = 0; i < world.size(); ++i) {
    const auto actual = world.nearby(i);
    const auto& expected = reference[i];
    ASSERT_EQ(actual.size(), expected.size()) << "node " << i;
    // The old path appended partners in ascending order; the arena must too.
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k].other, expected[k].other) << "node " << i << " entry " << k;
      EXPECT_DOUBLE_EQ(actual[k].distance_m, expected[k].distance_m);
      EXPECT_DOUBLE_EQ(actual[k].bearing_rad, expected[k].bearing_rad);
      EXPECT_EQ(actual[k].blockers, expected[k].blockers);
      EXPECT_DOUBLE_EQ(actual[k].extra_loss_db, expected[k].extra_loss_db);
    }
    total_pairs += expected.size();

    // pair() binary search agrees with the reference list, in both hit and
    // miss directions.
    for (const RefPair& e : expected) {
      const PairGeom* p = world.pair(i, e.other);
      ASSERT_NE(p, nullptr);
      EXPECT_DOUBLE_EQ(p->distance_m, e.distance_m);
    }
    for (net::NodeId j : {net::NodeId{0}, world.size() / 2, world.size() - 1}) {
      const bool in_ref = std::any_of(expected.begin(), expected.end(),
                                      [&](const RefPair& e) { return e.other == j; });
      EXPECT_EQ(world.pair(i, j) != nullptr, in_ref) << i << "," << j;
    }
  }

  // mean_degree must equal the reference count of LOS-in-comm-range edges.
  std::size_t ref_degree_total = 0;
  for (const auto& list : reference) {
    for (const RefPair& e : list) {
      if (e.distance_m <= world.config().comm_range_m && e.blockers == 0) ++ref_degree_total;
    }
  }
  const double ref_mean = world.size() == 0
                              ? 0.0
                              : static_cast<double>(ref_degree_total) /
                                    static_cast<double>(world.size());
  EXPECT_DOUBLE_EQ(world.mean_degree(), ref_mean);
  SUCCEED() << total_pairs;
}

TEST(WorldEquivalence, RandomizedScenariosMatchBruteForce) {
  for (const double density : {8.0, 15.0, 25.0}) {
    for (const std::uint64_t seed : {1ULL, 42ULL}) {
      const World world{mmv2v::testing::small_scenario(density, seed), seed};
      expect_snapshot_equals_reference(world, /*tick=*/0);
    }
  }
}

TEST(WorldEquivalence, HoldsAcrossMobilityTicks) {
  World world{mmv2v::testing::small_scenario(18.0, 9), 9};
  std::uint64_t tick = 0;
  expect_snapshot_equals_reference(world, tick);
  for (int step = 0; step < 4; ++step) {
    world.advance(0.1);
    ++tick;
    expect_snapshot_equals_reference(world, tick);
  }
}

TEST(WorldEquivalence, WithFadingEnabled) {
  ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 5);
  s.fading.shadowing_sigma_db = 4.0;
  s.fading.nakagami_m = 3.0;
  World world{s, 5};
  expect_snapshot_equals_reference(world, 0);
  world.advance(0.05);
  expect_snapshot_equals_reference(world, 1);
}

TEST(WorldEquivalence, OpenMedianAndLongRange) {
  ScenarioConfig s = mmv2v::testing::small_scenario(20.0, 3);
  s.cross_median_blockers = 0;
  s.interference_range_m = 400.0;  // grid window larger than the road width
  World world{s, 3};
  expect_snapshot_equals_reference(world, 0);
}

TEST(WorldEquivalence, NearbyListsSortedByOther) {
  const World world{mmv2v::testing::small_scenario(15.0, 2), 2};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    const auto span = world.nearby(i);
    EXPECT_TRUE(std::is_sorted(span.begin(), span.end(),
                               [](const PairGeom& x, const PairGeom& y) {
                                 return x.other < y.other;
                               }));
  }
}

}  // namespace
}  // namespace mmv2v::core
