#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

TEST(TraceRecorder, EmptyRecorder) {
  const TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.mean_throughput_bps(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 0.0);
}

TEST(TraceRecorder, AggregatesFromRecords) {
  TraceRecorder trace;
  trace.add_frame({0, 0.00, 2, 10e6, 10e6});
  trace.add_frame({1, 0.02, 4, 30e6, 40e6});
  trace.add_frame({2, 0.04, 3, 20e6, 60e6});
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 3.0);
  // 60 Mb over 3 frames of 20 ms = 1 Gb/s.
  EXPECT_NEAR(trace.mean_throughput_bps(), 1e9, 1e3);
}

TEST(TraceRecorder, CsvRoundTripStructure) {
  TraceRecorder trace;
  trace.add_frame({0, 0.0, 1, 5.0, 5.0});
  trace.add_frame({1, 0.02, 2, 7.0, 12.0});
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("frame,time_s,active_links,bits_delivered,bits_total"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("1,0.02,2,7,12"), std::string::npos);
}

TEST(TraceRecorder, SimulationFillsTrace) {
  protocols::MmV2VParams params;
  protocols::MmV2VProtocol protocol{params};
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 71);
  s.horizon_s = 0.2;
  OhmSimulation sim{s, protocol};
  sim.run(0.0);

  const TraceRecorder& trace = sim.trace();
  ASSERT_EQ(trace.frames().size(), sim.frames_run());
  EXPECT_GT(trace.mean_active_links(), 0.0);
  EXPECT_GT(trace.mean_throughput_bps(), 0.0);
  // Cumulative totals must be non-decreasing and consistent with deltas.
  double running = 0.0;
  for (const FrameRecord& f : trace.frames()) {
    running += f.bits_delivered;
    EXPECT_NEAR(f.bits_total, running, 1.0);
  }
  EXPECT_NEAR(running, sim.ledger().total_delivered(), 1.0);
}

TEST(TraceRecorder, MetricsCsvWritesSamples) {
  protocols::MmV2VParams params;
  protocols::MmV2VProtocol protocol{params};
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 73);
  s.horizon_s = 0.2;
  OhmSimulation sim{s, protocol};
  sim.run(0.1);

  std::ostringstream metrics_csv;
  TraceRecorder::write_metrics_csv(metrics_csv, sim.samples());
  const std::string metrics = metrics_csv.str();
  EXPECT_EQ(std::count(metrics.begin(), metrics.end(), '\n'),
            static_cast<std::ptrdiff_t>(sim.samples().size()) + 1);

  std::ostringstream vehicle_csv;
  TraceRecorder::write_per_vehicle_csv(vehicle_csv, sim.final_metrics());
  const std::string vehicles = vehicle_csv.str();
  EXPECT_EQ(std::count(vehicles.begin(), vehicles.end(), '\n'),
            static_cast<std::ptrdiff_t>(sim.final_metrics().per_vehicle.size()) + 1);
}

TEST(Ledger, TotalDeliveredSumsDirections) {
  TransferLedger ledger{100.0};
  ledger.record(1, 2, 30.0);
  ledger.record(2, 1, 20.0);
  ledger.record(3, 4, 50.0);
  EXPECT_DOUBLE_EQ(ledger.total_delivered(), 100.0);
}

}  // namespace
}  // namespace mmv2v::core
