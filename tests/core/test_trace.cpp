#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <sstream>

#include "core/simulation.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

TEST(TraceRecorder, EmptyRecorder) {
  const TraceRecorder trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.mean_throughput_bps(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 0.0);
}

TEST(TraceRecorder, SingleFrameThroughputGuard) {
  // One frame gives no window length — the mean must be a clean 0, not a
  // division by zero.
  TraceRecorder trace;
  trace.add_frame({0, 0.0, 3, 10e6, 10e6});
  EXPECT_DOUBLE_EQ(trace.mean_throughput_bps(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 3.0);
}

TEST(TraceRecorder, EventsOnlyRecorderIsNotEmpty) {
  TraceRecorder trace;
  trace.record_event(TraceEvent{"matching"});
  EXPECT_FALSE(trace.empty());
  // Frame aggregates still guard against the missing frame series.
  EXPECT_DOUBLE_EQ(trace.mean_throughput_bps(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 0.0);
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

TEST(TraceEvent, SerializesFieldsInInsertionOrder) {
  TraceEvent e{"snd_round"};
  e.frame = 3;
  e.time_s = 0.06;
  e.u64("round", 2).f64("ratio", 0.875).str("note", "a\"b\\c");
  std::string out;
  e.append_json(out);
  EXPECT_EQ(out,
            "{\"frame\":3,\"t\":0.06,\"ev\":\"snd_round\","
            "\"round\":2,\"ratio\":0.875,\"note\":\"a\\\"b\\\\c\"}");
}

TEST(TraceRecorder, EventsJsonlAndDigestAreStable) {
  const auto fill = [](TraceRecorder& t) {
    TraceEvent a{"frame_begin"};
    a.frame = 0;
    a.u64("vehicles", 20);
    t.record_event(a);
    TraceEvent b{"link"};
    b.frame = 0;
    b.u64("tx", 1).u64("rx", 2).f64("bits", 1.5e6);
    t.record_event(b);
  };
  TraceRecorder t1, t2;
  fill(t1);
  fill(t2);

  std::string jsonl;
  t1.append_events_jsonl(jsonl);
  EXPECT_EQ(jsonl,
            "{\"frame\":0,\"t\":0,\"ev\":\"frame_begin\",\"vehicles\":20}\n"
            "{\"frame\":0,\"t\":0,\"ev\":\"link\",\"tx\":1,\"rx\":2,\"bits\":1500000}\n");

  // Identical streams hash identically; any change perturbs the digest.
  EXPECT_EQ(t1.events_digest(), t2.events_digest());
  TraceEvent extra{"link"};
  extra.u64("tx", 9);
  t2.record_event(extra);
  EXPECT_NE(t1.events_digest(), t2.events_digest());

  std::ostringstream stream;
  t1.write_events_jsonl(stream);
  EXPECT_EQ(stream.str(), jsonl);
}

/// A locale whose numeric formatting would corrupt CSV/JSONL if any writer
/// went through locale-aware formatting: ',' decimal point, '.' grouping.
struct GermanishPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(TraceRecorder, OutputIsLocaleIndependent) {
  TraceRecorder trace;
  trace.add_frame({0, 0.0, 1, 5.0, 5.0});
  trace.add_frame({1, 0.02, 2, 1234567.5, 1234572.5});
  TraceEvent e{"link"};
  e.time_s = 0.02;
  e.f64("bits", 1234567.5);
  trace.record_event(e);

  std::ostringstream ref_csv, ref_jsonl;
  trace.write_csv(ref_csv);
  trace.write_events_jsonl(ref_jsonl);
  const std::uint64_t ref_digest = trace.events_digest();

  const std::locale old =
      std::locale::global(std::locale(std::locale::classic(), new GermanishPunct));
  std::ostringstream csv, jsonl;
  trace.write_csv(csv);
  trace.write_events_jsonl(jsonl);
  const std::uint64_t digest = trace.events_digest();
  std::locale::global(old);

  EXPECT_EQ(csv.str(), ref_csv.str());
  EXPECT_EQ(jsonl.str(), ref_jsonl.str());
  EXPECT_EQ(digest, ref_digest);
  // Sanity: the hostile locale really would have produced "1.234.567,5".
  EXPECT_NE(csv.str().find("1234567.5"), std::string::npos);
}

TEST(TraceRecorder, AggregatesFromRecords) {
  TraceRecorder trace;
  trace.add_frame({0, 0.00, 2, 10e6, 10e6});
  trace.add_frame({1, 0.02, 4, 30e6, 40e6});
  trace.add_frame({2, 0.04, 3, 20e6, 60e6});
  EXPECT_DOUBLE_EQ(trace.mean_active_links(), 3.0);
  // 60 Mb over 3 frames of 20 ms = 1 Gb/s.
  EXPECT_NEAR(trace.mean_throughput_bps(), 1e9, 1e3);
}

TEST(TraceRecorder, CsvRoundTripStructure) {
  TraceRecorder trace;
  trace.add_frame({0, 0.0, 1, 5.0, 5.0});
  trace.add_frame({1, 0.02, 2, 7.0, 12.0});
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("frame,time_s,active_links,bits_delivered,bits_total"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("1,0.02,2,7,12"), std::string::npos);
}

TEST(TraceRecorder, SimulationFillsTrace) {
  protocols::MmV2VParams params;
  protocols::MmV2VProtocol protocol{params};
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 71);
  s.horizon_s = 0.2;
  OhmSimulation sim{s, protocol};
  sim.run(0.0);

  const TraceRecorder& trace = sim.trace();
  ASSERT_EQ(trace.frames().size(), sim.frames_run());
  EXPECT_GT(trace.mean_active_links(), 0.0);
  EXPECT_GT(trace.mean_throughput_bps(), 0.0);
  // Cumulative totals must be non-decreasing and consistent with deltas.
  double running = 0.0;
  for (const FrameRecord& f : trace.frames()) {
    running += f.bits_delivered;
    EXPECT_NEAR(f.bits_total, running, 1.0);
  }
  EXPECT_NEAR(running, sim.ledger().total_delivered(), 1.0);
}

TEST(TraceRecorder, MetricsCsvWritesSamples) {
  protocols::MmV2VParams params;
  protocols::MmV2VProtocol protocol{params};
  core::ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 73);
  s.horizon_s = 0.2;
  OhmSimulation sim{s, protocol};
  sim.run(0.1);

  std::ostringstream metrics_csv;
  TraceRecorder::write_metrics_csv(metrics_csv, sim.samples());
  const std::string metrics = metrics_csv.str();
  EXPECT_EQ(std::count(metrics.begin(), metrics.end(), '\n'),
            static_cast<std::ptrdiff_t>(sim.samples().size()) + 1);

  std::ostringstream vehicle_csv;
  TraceRecorder::write_per_vehicle_csv(vehicle_csv, sim.final_metrics());
  const std::string vehicles = vehicle_csv.str();
  EXPECT_EQ(std::count(vehicles.begin(), vehicles.end(), '\n'),
            static_cast<std::ptrdiff_t>(sim.final_metrics().per_vehicle.size()) + 1);
}

TEST(Ledger, TotalDeliveredSumsDirections) {
  TransferLedger ledger{100.0};
  ledger.record(1, 2, 30.0);
  ledger.record(2, 1, 20.0);
  ledger.record(3, 4, 50.0);
  EXPECT_DOUBLE_EQ(ledger.total_delivered(), 100.0);
}

}  // namespace
}  // namespace mmv2v::core
