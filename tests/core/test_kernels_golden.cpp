// End-to-end pins for the batched-kernel engine knob (DESIGN.md Section 13):
// `engine.batched_kernels` — like every EngineParams field — controls HOW a
// frame is computed, never WHAT. The golden scenario's event-stream digest
// must therefore be bit-identical with the kernels on or off, at any worker
// lane count, any world shard count, and any arena size (including one small
// enough to force every allocation onto the heap-overflow path).
//
// The arena tests pin the other half of the contract: with the default
// sizing, steady-state frames of a dense (60 vpl) scenario never fall back
// to the heap — `MonotonicArena::overflow_count()` stays zero — while an
// undersized `engine.arena_bytes` makes the counter fire without changing
// behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/experiment.hpp"
#include "core/frame_resources.hpp"
#include "core/golden_scenario.hpp"
#include "core/ledger.hpp"
#include "core/world.hpp"
#include "protocols/mmv2v/mmv2v.hpp"

namespace mmv2v::core {
namespace {

using golden::golden_experiment;
using golden::golden_scenario;
using golden::hex64;
using golden::kGoldenDigest;
using golden::mmv2v_factory;

std::uint64_t golden_digest_with(bool batched, int engine_threads, int shards,
                                 std::size_t arena_bytes = 1 << 20) {
  ScenarioConfig s = golden_scenario();
  s.engine.batched_kernels = batched;
  s.engine.threads = engine_threads;
  s.engine.world_shards = shards;
  s.engine.arena_bytes = arena_bytes;
  SweepTrace trace;
  const auto points =
      run_density_sweep(golden_experiment(/*threads=*/1), s, mmv2v_factory(), &trace);
  EXPECT_EQ(points.size(), 1u);
  return trace.digest;
}

TEST(KernelsGolden, DigestInvariantAcrossBatchedAndThreads) {
  for (const bool batched : {false, true}) {
    for (const int threads : {1, 4, 8}) {
      EXPECT_EQ(golden_digest_with(batched, threads, /*shards=*/1), kGoldenDigest)
          << "batched_kernels=" << batched << " threads=" << threads
          << " diverged; digest "
          << hex64(golden_digest_with(batched, threads, 1));
    }
  }
}

TEST(KernelsGolden, DigestInvariantAcrossBatchedAndShards) {
  for (const bool batched : {false, true}) {
    for (const int shards : {1, 2, 4}) {
      EXPECT_EQ(golden_digest_with(batched, /*engine_threads=*/2, shards), kGoldenDigest)
          << "batched_kernels=" << batched << " world_shards=" << shards
          << " diverged";
    }
  }
}

TEST(KernelsGolden, DigestInvariantUnderArenaOverflow) {
  // 256 bytes cannot hold a single sweep workspace, so every per-frame
  // carve takes the heap-fallback path — the digest must not notice.
  EXPECT_EQ(golden_digest_with(/*batched=*/true, /*threads=*/2, /*shards=*/1,
                               /*arena_bytes=*/256),
            kGoldenDigest);
}

// ---------------------------------------------------------------------------
// Arena budget: drive whole protocol frames of a dense world through an
// explicitly owned FrameResources, the way Simulation does, and watch the
// lane arenas' overflow counters.

std::uint64_t drive_frames(const EngineParams& engine, int frames,
                           FrameResources& resources) {
  ScenarioConfig scenario = golden_scenario();
  scenario.traffic.density_vpl = 60.0;
  scenario.seed = 7;
  scenario.engine = engine;
  World world{scenario, 7};
  TransferLedger ledger{1e12};
  protocols::MmV2VParams params;
  protocols::MmV2VProtocol protocol{params};

  std::uint64_t overflow_after_first = 0;
  for (int f = 0; f < frames; ++f) {
    resources.begin_frame();
    FrameContext ctx{world, ledger, static_cast<std::uint64_t>(f),
                     static_cast<double>(f) * 0.02};
    ctx.resources = &resources;
    protocol.begin_frame(ctx);
    const double udt_start = protocol.udt_start_offset_s();
    if (udt_start < 0.020) protocol.udt_step(ctx, udt_start, 0.020);
    protocol.end_frame(ctx);
    if (f == 0) {
      for (int l = 0; l < resources.lanes(); ++l) {
        overflow_after_first += resources.arena(l).overflow_count();
      }
    }
  }
  return overflow_after_first;
}

std::uint64_t total_overflows(FrameResources& resources) {
  std::uint64_t total = 0;
  for (int l = 0; l < resources.lanes(); ++l) {
    total += resources.arena(l).overflow_count();
  }
  return total;
}

TEST(ArenaBudget, DefaultSizingNeverOverflowsAtSixtyVpl) {
  EngineParams engine;
  engine.threads = 2;
  engine.batched_kernels = true;  // the batched path is the heavy arena user
  FrameResources resources{engine};
  drive_frames(engine, /*frames=*/8, resources);
  EXPECT_EQ(total_overflows(resources), 0u)
      << "a per-frame workspace outgrew engine.arena_bytes at 60 vpl; either "
         "shrink the carve or raise the default arena size";
}

TEST(ArenaBudget, UndersizedArenaFallsBackToHeapAndCounts) {
  EngineParams engine;
  engine.threads = 2;
  engine.batched_kernels = true;
  engine.arena_bytes = 256;  // far below one lane's sweep workspace
  FrameResources resources{engine};
  const std::uint64_t first_frame = drive_frames(engine, /*frames=*/3, resources);
  EXPECT_GT(first_frame, 0u)
      << "the undersized arena never reported a heap fallback; overflow "
         "accounting is broken";
  // The counter is monotonic across rewinds by design (common/test_arena.cpp
  // pins the per-arena semantics); here it must keep climbing because every
  // frame re-carves the workspaces.
  EXPECT_GT(total_overflows(resources), first_frame);
}

}  // namespace
}  // namespace mmv2v::core
