// Fading integration at the World level: per-pair extra loss must be
// symmetric, stable for quasi-static shadowing, tick-varying for small-scale
// fading, and reflected in the pair channel gain.
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "test_util.hpp"

namespace mmv2v::core {
namespace {

ScenarioConfig fading_scenario(double sigma_db, double nakagami_m) {
  ScenarioConfig s = mmv2v::testing::small_scenario(15.0, 777);
  s.fading.shadowing_sigma_db = sigma_db;
  s.fading.nakagami_m = nakagami_m;
  return s;
}

TEST(WorldFading, DisabledMeansZeroExtraLoss) {
  const World world{mmv2v::testing::small_scenario(15.0, 777), 777};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (const PairGeom& p : world.nearby(i)) {
      EXPECT_DOUBLE_EQ(p.extra_loss_db, 0.0);
    }
  }
}

TEST(WorldFading, ExtraLossIsSymmetric) {
  const World world{fading_scenario(4.0, 3.0), 777};
  for (net::NodeId i = 0; i < world.size(); ++i) {
    for (const PairGeom& p : world.nearby(i)) {
      const PairGeom* back = world.pair(p.other, i);
      ASSERT_NE(back, nullptr);
      EXPECT_DOUBLE_EQ(back->extra_loss_db, p.extra_loss_db);
    }
  }
}

TEST(WorldFading, ShadowingOnlyIsStableAcrossTicks) {
  World world{fading_scenario(4.0, 0.0), 777};
  // Capture one pair's loss, advance, and confirm it did not change (the
  // same pair must still be in range over 5 ms).
  ASSERT_FALSE(world.nearby(0).empty());
  const net::NodeId other = world.nearby(0).front().other;
  const double before = world.nearby(0).front().extra_loss_db;
  world.advance(0.005);
  const PairGeom* after = world.pair(0, other);
  ASSERT_NE(after, nullptr);
  EXPECT_DOUBLE_EQ(after->extra_loss_db, before);
}

TEST(WorldFading, SmallScaleVariesAcrossTicks) {
  World world{fading_scenario(0.0, 2.0), 777};
  ASSERT_FALSE(world.nearby(0).empty());
  const net::NodeId other = world.nearby(0).front().other;
  const double before = world.nearby(0).front().extra_loss_db;
  world.advance(0.005);
  const PairGeom* after = world.pair(0, other);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->extra_loss_db, before);
}

TEST(WorldFading, PairChannelGainAppliesLoss) {
  PairGeom g;
  g.distance_m = 50.0;
  g.blockers = 0;
  g.extra_loss_db = 0.0;
  const phy::ChannelParams params;
  const double clear = pair_channel_gain(params, g);
  g.extra_loss_db = 10.0;
  const double faded = pair_channel_gain(params, g);
  EXPECT_NEAR(10.0 * std::log10(clear / faded), 10.0, 1e-9);
  g.extra_loss_db = -3.0;  // constructive multipath
  EXPECT_GT(pair_channel_gain(params, g), clear);
}

}  // namespace
}  // namespace mmv2v::core
