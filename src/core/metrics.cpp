#include "core/metrics.hpp"

#include <cmath>

namespace mmv2v::core {

std::optional<VehicleMetrics> evaluate_vehicle(const World& world, const TransferLedger& ledger,
                                               net::NodeId id) {
  const std::vector<net::NodeId> neighbors = world.ground_truth_neighbors(id);
  if (neighbors.empty()) return std::nullopt;

  VehicleMetrics m;
  m.id = id;
  m.neighbor_count = neighbors.size();

  std::size_t completed = 0;
  double eta_sum = 0.0;
  std::vector<double> etas;
  etas.reserve(neighbors.size());
  for (net::NodeId j : neighbors) {
    const double eta = ledger.eta(id, j);
    etas.push_back(eta);
    eta_sum += eta;
    if (ledger.pair_complete(id, j)) ++completed;
  }
  const double n = static_cast<double>(neighbors.size());
  m.ocr = static_cast<double>(completed) / n;
  m.atp = eta_sum / n;

  double var = 0.0;
  for (double eta : etas) var += (eta - m.atp) * (eta - m.atp);
  m.dtp = std::sqrt(var / n);
  return m;
}

double jain_fairness(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

double network_atp_fairness(const NetworkMetrics& metrics) {
  std::vector<double> atps;
  atps.reserve(metrics.per_vehicle.size());
  for (const VehicleMetrics& v : metrics.per_vehicle) atps.push_back(v.atp);
  return jain_fairness(atps);
}

NetworkMetrics evaluate_network(const World& world, const TransferLedger& ledger) {
  NetworkMetrics net;
  for (net::NodeId id = 0; id < world.size(); ++id) {
    if (const auto m = evaluate_vehicle(world, ledger, id)) {
      net.per_vehicle.push_back(*m);
      net.ocr.add(m->ocr);
      net.atp.add(m->atp);
      net.dtp.add(m->dtp);
    }
  }
  return net;
}

}  // namespace mmv2v::core
