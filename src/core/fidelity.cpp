#include "core/fidelity.hpp"

#include <limits>

namespace mmv2v::core {

namespace {

using traffic::FidelityTier;

/// One tier step from `from` toward `to` (tiers are ordered kFull=0 <
/// kKinematic=1 < kOnRails=2, so "promote" decreases the value).
FidelityTier step_toward(FidelityTier from, FidelityTier to) noexcept {
  const auto f = static_cast<int>(from);
  const auto t = static_cast<int>(to);
  if (t < f) return static_cast<FidelityTier>(f - 1);
  if (t > f) return static_cast<FidelityTier>(f + 1);
  return from;
}

}  // namespace

double FidelityTiering::edge_distance(geom::Vec2 p) const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (const FocusRegion& r : config_.focus) {
    const double d = geom::distance(p, r.center) - r.radius_m;
    if (d < best) best = d;
  }
  return best;
}

FidelityTier FidelityTiering::desired_tier(double d) const noexcept {
  if (d <= 0.0) return FidelityTier::kFull;
  if (d <= config_.kinematic_radius_m) return FidelityTier::kKinematic;
  return FidelityTier::kOnRails;
}

void FidelityTiering::reset(std::span<const geom::Vec2> positions,
                            std::vector<FidelityTier>& tiers) const {
  tiers.assign(positions.size(), FidelityTier::kFull);
  if (!active()) return;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    tiers[i] = desired_tier(edge_distance(positions[i]));
  }
}

void FidelityTiering::update(std::span<const geom::Vec2> positions,
                             std::vector<FidelityTier>& tiers) const {
  if (!active()) {
    tiers.assign(positions.size(), FidelityTier::kFull);
    return;
  }
  tiers.resize(positions.size(), FidelityTier::kFull);
  int promotions = 0;
  int demotions = 0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const FidelityTier current = tiers[i];
    const double d = edge_distance(positions[i]);
    const FidelityTier target = desired_tier(d);
    if (target == current) continue;
    if (static_cast<int>(target) < static_cast<int>(current)) {
      // Promotion (toward kFull): enter radii apply directly, no hysteresis
      // — desired_tier() already said the vehicle is inside the enter radius.
      if (promotions >= config_.promote_budget) continue;
      tiers[i] = step_toward(current, target);
      ++promotions;
    } else {
      // Demotion: only past the exit radius (enter radius + hysteresis).
      const double exit_edge =
          (current == FidelityTier::kFull) ? 0.0 : config_.kinematic_radius_m;
      if (d <= exit_edge + config_.hysteresis_m) continue;
      if (demotions >= config_.demote_budget) continue;
      tiers[i] = step_toward(current, target);
      ++demotions;
    }
  }
}

}  // namespace mmv2v::core
