// World: the radio-relevant snapshot of the simulated environment. Couples
// the traffic microsimulator with the channel model and caches, per mobility
// tick, the pairwise geometry (distance, bearing, blocker count) every
// protocol component consumes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/scenario.hpp"
#include "geom/los.hpp"
#include "geom/spatial_grid.hpp"
#include "net/mac_address.hpp"
#include "phy/channel.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::core {

/// Cached geometry of an (ordered) nearby pair, valid for one snapshot.
struct PairGeom {
  net::NodeId other = 0;
  double distance_m = 0.0;
  /// Compass bearing from the owning vehicle toward `other`.
  double bearing_rad = 0.0;
  int blockers = 0;
  /// Fading loss for this snapshot [dB] (0 when fading is disabled).
  double extra_loss_db = 0.0;
};

/// Linear channel power gain for a cached pair, including path loss, blocker
/// penalties and this snapshot's fading.
[[nodiscard]] inline double pair_channel_gain(const phy::ChannelParams& channel,
                                              const PairGeom& g) noexcept {
  double gain = phy::channel_gain(channel.pathloss, g.distance_m, g.blockers);
  if (g.extra_loss_db != 0.0) gain *= units::db_to_linear(-g.extra_loss_db);
  return gain;
}

class World {
 public:
  World(ScenarioConfig config, std::uint64_t seed);

  /// Advance traffic by dt and refresh the geometry snapshot.
  void advance(double dt);
  /// Rebuild the snapshot from current vehicle positions.
  void refresh_snapshot();

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const traffic::TrafficSimulator& traffic() const noexcept { return traffic_; }
  [[nodiscard]] const phy::ChannelModel& channel() const noexcept { return channel_; }
  [[nodiscard]] const geom::LosEvaluator& los() const noexcept { return los_; }

  [[nodiscard]] std::size_t size() const noexcept { return traffic_.size(); }
  [[nodiscard]] net::MacAddress mac(net::NodeId id) const {
    return net::MacAddress::for_vehicle(id);
  }
  [[nodiscard]] geom::Vec2 position(net::NodeId id) const { return traffic_.position_of(id); }

  /// All cached pairs within interference range of `id`, sorted ascending by
  /// `other`. The span points into the snapshot arena and is invalidated by
  /// the next refresh.
  [[nodiscard]] std::span<const PairGeom> nearby(net::NodeId id) const {
    const std::uint32_t begin = pair_offsets_.at(id);
    const std::uint32_t end = pair_offsets_.at(id + 1);
    return {pair_arena_.data() + begin, end - begin};
  }

  /// Cached geometry from a toward b, if within interference range.
  [[nodiscard]] const PairGeom* pair(net::NodeId a, net::NodeId b) const noexcept;

  /// Ground-truth one-hop neighborhood N_i: LOS vehicles within comm range.
  [[nodiscard]] std::vector<net::NodeId> ground_truth_neighbors(net::NodeId id) const;

  /// Mean |N_i| over all vehicles.
  [[nodiscard]] double mean_degree() const;

 private:
  ScenarioConfig config_;
  traffic::TrafficSimulator traffic_;
  phy::ChannelModel channel_;
  phy::FadingModel fading_;
  geom::LosEvaluator los_;
  /// Uniform grid over antenna positions; pair enumeration queries it instead
  /// of testing all N^2 pairs.
  geom::SpatialGrid grid_;
  /// Flat snapshot arena: all directed PairGeom entries, grouped by owning
  /// node (pair_offsets_[id] .. pair_offsets_[id+1]) and sorted by `other`
  /// within each group so pair() is a binary search.
  std::vector<PairGeom> pair_arena_;
  std::vector<std::uint32_t> pair_offsets_;
  // Scratch buffers reused across refreshes (no steady-state allocation).
  std::vector<geom::Vec2> positions_;
  std::vector<std::uint32_t> candidates_;
  std::uint64_t tick_ = 0;
};

}  // namespace mmv2v::core
