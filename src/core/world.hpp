// World: the radio-relevant snapshot of the simulated environment. Couples
// the traffic microsimulator with the channel model and caches, per mobility
// tick, the pairwise geometry (distance, bearing, blocker count) every
// protocol component consumes.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/fidelity.hpp"
#include "core/scenario.hpp"
#include "geom/los.hpp"
#include "geom/spatial_grid.hpp"
#include "net/mac_address.hpp"
#include "phy/channel.hpp"
#include "traffic/mobility_model.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::sim {
class WorkerPool;
}  // namespace mmv2v::sim

namespace mmv2v::core {

/// Cached geometry of an (ordered) nearby pair, valid for one snapshot.
struct PairGeom {
  net::NodeId other = 0;
  double distance_m = 0.0;
  /// Compass bearing from the owning vehicle toward `other`.
  double bearing_rad = 0.0;
  int blockers = 0;
  /// Fading loss for this snapshot [dB] (0 when fading is disabled).
  double extra_loss_db = 0.0;
};

/// Linear channel power gain for a cached pair, including path loss, blocker
/// penalties and this snapshot's fading.
[[nodiscard]] inline double pair_channel_gain(const phy::ChannelParams& channel,
                                              const PairGeom& g) noexcept {
  double gain = phy::channel_gain(channel.pathloss, g.distance_m, g.blockers);
  if (g.extra_loss_db != 0.0) gain *= units::db_to_linear(-g.extra_loss_db);
  return gain;
}

/// One rectangular world shard: an x-strip of owned vehicles plus the halo
/// of bodies within interference reach of the strip. Pair enumeration and
/// LOS queries for owned vehicles only touch the shard's local evaluator —
/// the halo is what makes cross-shard links exact (DESIGN.md Section 12).
struct WorldShard {
  double x_min = 0.0;
  double x_max = 0.0;
  /// Owned vehicle ids, ascending.
  std::vector<std::uint32_t> owned;
  /// Non-owned vehicle ids whose bodies can block or link to owned ones.
  std::vector<std::uint32_t> halo;
};

class World {
 public:
  World(ScenarioConfig config, std::uint64_t seed);

  /// Advance traffic by dt and refresh the geometry snapshot.
  void advance(double dt);
  /// Rebuild the snapshot from current vehicle positions.
  void refresh_snapshot();

  /// Shard layout of the last snapshot (empty when world.shards == 1).
  [[nodiscard]] const std::vector<WorldShard>& shards() const noexcept { return shards_; }

  /// Fidelity tier of vehicle `id` for the current snapshot (kFull whenever
  /// tiering is disabled).
  [[nodiscard]] traffic::FidelityTier tier_of(net::NodeId id) const {
    return tiers_.empty() ? traffic::FidelityTier::kFull : tiers_.at(id);
  }
  /// Number of vehicles currently in tier `t`.
  [[nodiscard]] std::size_t tier_count(traffic::FidelityTier t) const noexcept;
  /// Number of OnRails vehicles within interference range of `id`. OnRails
  /// traffic never gets cached pair geometry; this count is its statistical
  /// footprint.
  [[nodiscard]] std::size_t onrails_near(net::NodeId id) const;
  /// Background channel-occupancy probability from OnRails traffic around
  /// `id`: 1 - (1 - duty)^count, i.e. the chance at least one background
  /// transmitter is on the air, assuming independent duty cycles.
  [[nodiscard]] double onrails_occupancy(net::NodeId id) const;

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  /// The mobility model driving this world (ring or road network).
  [[nodiscard]] const traffic::MobilityModel& mobility() const noexcept { return *mobility_; }
  /// The legacy ring simulator; throws std::logic_error when the scenario
  /// runs on a road network (NetworkTopology != kLegacyRing).
  [[nodiscard]] const traffic::TrafficSimulator& traffic() const;
  [[nodiscard]] const phy::ChannelModel& channel() const noexcept { return channel_; }
  [[nodiscard]] const geom::LosEvaluator& los() const noexcept { return los_; }

  [[nodiscard]] std::size_t size() const noexcept { return mobility_->size(); }
  [[nodiscard]] net::MacAddress mac(net::NodeId id) const {
    return net::MacAddress::for_vehicle(id);
  }
  [[nodiscard]] geom::Vec2 position(net::NodeId id) const { return mobility_->position_of(id); }

  /// All cached pairs within interference range of `id`, sorted ascending by
  /// `other`. The span points into the snapshot arena and is invalidated by
  /// the next refresh.
  [[nodiscard]] std::span<const PairGeom> nearby(net::NodeId id) const {
    const std::uint32_t begin = pair_offsets_.at(id);
    const std::uint32_t end = pair_offsets_.at(id + 1);
    return {pair_arena_.data() + begin, end - begin};
  }

  /// Cached geometry from a toward b, if within interference range.
  [[nodiscard]] const PairGeom* pair(net::NodeId a, net::NodeId b) const noexcept;

  /// Linear channel gain of an arena entry (the span from nearby() or the
  /// pointer from pair()). With engine.batched_kernels the whole arena's
  /// gains are computed once per snapshot; off, this evaluates on demand —
  /// bit-identical either way, since the cache stores the same expression.
  [[nodiscard]] double cached_gain(const PairGeom& g) const noexcept {
    if (gains_.empty()) return pair_channel_gain(channel_.params(), g);
    return gains_[static_cast<std::size_t>(&g - pair_arena_.data())];
  }

  /// Cached gains aligned index-for-index with nearby(id); empty span when
  /// the cache is off (engine.batched_kernels = false).
  [[nodiscard]] std::span<const double> nearby_gains(net::NodeId id) const {
    if (gains_.empty()) return {};
    const std::uint32_t begin = pair_offsets_.at(id);
    const std::uint32_t end = pair_offsets_.at(id + 1);
    return {gains_.data() + begin, end - begin};
  }

  /// Ground-truth one-hop neighborhood N_i: LOS vehicles within comm range.
  [[nodiscard]] std::vector<net::NodeId> ground_truth_neighbors(net::NodeId id) const;

  /// Mean |N_i| over all vehicles.
  [[nodiscard]] double mean_degree() const;

 private:
  /// One unordered in-range pair discovered during the snapshot pass.
  struct UndirectedPair {
    std::uint32_t i;
    std::uint32_t j;
    double distance_m;
    int blockers;
    double fade_db;
  };

  /// Partition vehicles into x-strips and collect halos (world.shards > 1).
  /// The per-shard halo scan and local-evaluator build run on `pool` when it
  /// is non-null (each shard writes only its own state), serially otherwise.
  void build_shards(std::size_t shard_count, sim::WorkerPool* pool);
  /// Enumerate pairs owned by one shard into `out` using evaluator `los`.
  void enumerate_pairs(std::span<const std::uint32_t> owners, const geom::LosEvaluator& los,
                       std::vector<UndirectedPair>& out) const;
  /// Scatter discovered pairs into the per-owner arena groups.
  void scatter_pairs(bool sort_groups);

  /// Refresh tiers_ from the freshly computed positions (see fidelity.hpp).
  void update_tiers();

  ScenarioConfig config_;
  std::unique_ptr<traffic::MobilityModel> mobility_;
  FidelityTiering tiering_;
  /// Per-vehicle tiers; empty when tiering is inactive. The mobility model
  /// holds a pointer to this vector (set_tiers), so it lives on the World.
  std::vector<traffic::FidelityTier> tiers_;
  /// Non-null only for NetworkTopology::kLegacyRing (aliases mobility_).
  traffic::TrafficSimulator* ring_traffic_ = nullptr;
  phy::ChannelModel channel_;
  phy::FadingModel fading_;
  geom::LosEvaluator los_;
  std::vector<WorldShard> shards_;
  /// Per-shard local evaluators (owned + halo bodies).
  std::vector<geom::LosEvaluator> shard_los_;
  /// Per-shard discovered pairs, merged in shard order after the parallel pass.
  std::vector<std::vector<UndirectedPair>> shard_pairs_;
  /// Uniform grid over antenna positions; pair enumeration queries it instead
  /// of testing all N^2 pairs.
  geom::SpatialGrid grid_;
  /// Flat snapshot arena: all directed PairGeom entries, grouped by owning
  /// node (pair_offsets_[id] .. pair_offsets_[id+1]) and sorted by `other`
  /// within each group so pair() is a binary search.
  std::vector<PairGeom> pair_arena_;
  std::vector<std::uint32_t> pair_offsets_;
  /// Pair-gain cache, aligned with pair_arena_ (empty when
  /// engine.batched_kernels is off). pair_channel_gain is consumed several
  /// times per directed entry per frame (six SND sweeps, negotiation, UDT);
  /// computing it once per snapshot amortizes the pow() calls.
  std::vector<double> gains_;
  // Scratch buffers reused across refreshes (no steady-state allocation).
  std::vector<geom::Vec2> positions_;
  std::vector<std::uint32_t> all_ids_;
  std::uint64_t tick_ = 0;
};

}  // namespace mmv2v::core
