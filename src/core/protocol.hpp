// OHM protocol interface. A protocol is driven frame by frame by the
// Simulation: control phases run at the frame start (topology is treated as
// stationary during them — paper Section IV-B3 notes they take < 5 ms), and
// data transmission is integrated over sub-intervals delimited by the 5 ms
// mobility ticks so link quality follows vehicle motion within the frame.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/ledger.hpp"
#include "core/world.hpp"

namespace mmv2v::core {

class Instrumentation;

struct FrameContext {
  World& world;
  TransferLedger& ledger;
  /// Frame index since protocol start.
  std::uint64_t frame = 0;
  /// Absolute simulation time of the frame start [s].
  double frame_start_s = 0.0;
};

class OhmProtocol {
 public:
  virtual ~OhmProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Run the control phases (discovery, matching, beam refinement) on the
  /// frame-start snapshot and set up this frame's data sessions.
  virtual void begin_frame(FrameContext& ctx) = 0;

  /// Offset within the frame at which data transmission begins [s].
  [[nodiscard]] virtual double udt_start_offset_s() const = 0;

  /// Transfer data over the in-frame interval [t0, t1) (both offsets within
  /// the frame, t0 >= udt_start_offset_s). Called once per mobility
  /// sub-interval with the World refreshed to the sub-interval start.
  virtual void udt_step(FrameContext& ctx, double t0, double t1) = 0;

  /// Frame teardown hook.
  virtual void end_frame(FrameContext& /*ctx*/) {}

  /// Number of links (matched pairs / scheduled service periods) this frame
  /// activated; feeds the trace recorder.
  [[nodiscard]] virtual std::size_t active_link_count() const { return 0; }

  /// Attach (or detach, with nullptr) an observability sink. The protocol
  /// does not own it; the simulation keeps it alive for the run and detaches
  /// before destroying it. Protocols must tolerate a null sink — it is the
  /// default and the zero-overhead configuration.
  void set_instrumentation(Instrumentation* instr) noexcept { instr_ = instr; }
  [[nodiscard]] Instrumentation* instrumentation() const noexcept { return instr_; }

 protected:
  Instrumentation* instr_ = nullptr;
};

}  // namespace mmv2v::core
