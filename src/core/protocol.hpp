// OHM protocol interface. A protocol is driven frame by frame by the
// Simulation: control phases run at the frame start (topology is treated as
// stationary during them — paper Section IV-B3 notes they take < 5 ms), and
// data transmission is integrated over sub-intervals delimited by the 5 ms
// mobility ticks so link quality follows vehicle motion within the frame.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/ledger.hpp"
#include "core/world.hpp"

namespace mmv2v::core {

class Instrumentation;
class FrameResources;
struct PhaseStats;

struct FrameContext {
  World& world;
  TransferLedger& ledger;
  /// Frame index since protocol start.
  std::uint64_t frame = 0;
  /// Absolute simulation time of the frame start [s].
  double frame_start_s = 0.0;
  /// Shared execution resources (worker pool, per-lane arenas). Null is
  /// valid and means "run serially with protocol-owned scratch".
  FrameResources* resources = nullptr;
  /// Unified per-frame stats sink. Null disables stats collection — the
  /// zero-overhead configuration, matching a null Instrumentation.
  PhaseStats* stats = nullptr;
};

/// The canonical OHM frame stages, in execution order. Every protocol stack
/// maps its control pipeline onto these three: neighbor discovery (SND /
/// random-order probing / BTI sweeps), matching (DCM negotiation / random
/// matching / PBSS election + A-BFT), and data-transfer setup (beam
/// refinement + TDD session scheduling).
enum class Phase {
  kSnd,
  kDcm,
  kUdt,
};

/// Staged frame pipeline interface: a frame is begin_frame (which by default
/// runs the three phases in order), the mobility-driven udt_step calls made
/// by the simulation loop, then end_frame. Implementations may override
/// run_phase to expose individual stages, or begin_frame wholesale.
class PhaseEngine {
 public:
  virtual ~PhaseEngine() = default;

  virtual void begin_frame(FrameContext& ctx) = 0;
  virtual void run_phase(FrameContext& ctx, Phase phase) = 0;
  virtual void end_frame(FrameContext& ctx) = 0;
};

class OhmProtocol : public PhaseEngine {
 public:
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Run the control phases (discovery, matching, beam refinement) on the
  /// frame-start snapshot and set up this frame's data sessions. The default
  /// simply runs the three stages in canonical order.
  void begin_frame(FrameContext& ctx) override {
    run_phase(ctx, Phase::kSnd);
    run_phase(ctx, Phase::kDcm);
    run_phase(ctx, Phase::kUdt);
  }

  /// Run one control stage. Protocols that override begin_frame directly
  /// (the pre-pipeline style) may leave this empty.
  void run_phase(FrameContext& /*ctx*/, Phase /*phase*/) override {}

  /// Offset within the frame at which data transmission begins [s].
  [[nodiscard]] virtual double udt_start_offset_s() const = 0;

  /// Transfer data over the in-frame interval [t0, t1) (both offsets within
  /// the frame, t0 >= udt_start_offset_s). Called once per mobility
  /// sub-interval with the World refreshed to the sub-interval start.
  virtual void udt_step(FrameContext& ctx, double t0, double t1) = 0;

  /// Frame teardown hook.
  void end_frame(FrameContext& /*ctx*/) override {}

  /// Number of links (matched pairs / scheduled service periods) this frame
  /// activated; feeds the trace recorder.
  [[nodiscard]] virtual std::size_t active_link_count() const { return 0; }

  /// Attach (or detach, with nullptr) an observability sink. The protocol
  /// does not own it; the simulation keeps it alive for the run and detaches
  /// before destroying it. Protocols must tolerate a null sink — it is the
  /// default and the zero-overhead configuration.
  void set_instrumentation(Instrumentation* instr) noexcept { instr_ = instr; }
  [[nodiscard]] Instrumentation* instrumentation() const noexcept { return instr_; }

 protected:
  Instrumentation* instr_ = nullptr;
};

}  // namespace mmv2v::core
