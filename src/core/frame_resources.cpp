#include "core/frame_resources.hpp"

namespace mmv2v::core {

namespace {

/// Apply the scenario's budget knob (if any) before leasing, then lease
/// `threads` lanes (0 = the flexible remainder) from the process budgeter.
sim::LaneBudgeter::Lease lease_lanes(const EngineParams& params) {
  if (params.lane_budget > 0) {
    sim::LaneBudgeter::instance().set_budget(params.lane_budget);
  }
  return sim::LaneBudgeter::instance().acquire(params.threads);
}

}  // namespace

FrameResources::FrameResources(const EngineParams& params)
    : params_(params), lease_(lease_lanes(params)), pool_(lease_.lanes()) {
  arenas_.reserve(static_cast<std::size_t>(pool_.lanes()));
  for (int lane = 0; lane < pool_.lanes(); ++lane) {
    arenas_.emplace_back(params_.arena_bytes);
  }
}

void FrameResources::begin_frame() {
  for (MonotonicArena& arena : arenas_) arena.reset();
  stats_.reset();
}

}  // namespace mmv2v::core
