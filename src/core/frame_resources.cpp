#include "core/frame_resources.hpp"

#include <string>

#include "common/profiler.hpp"

namespace mmv2v::core {

namespace {

/// Apply the scenario's budget knob (if any) before leasing, then lease
/// `threads` lanes (0 = the flexible remainder) from the process budgeter.
sim::LaneBudgeter::Lease lease_lanes(const EngineParams& params) {
  if (params.lane_budget > 0) {
    sim::LaneBudgeter::instance().set_budget(params.lane_budget);
  }
  return sim::LaneBudgeter::instance().acquire(params.threads);
}

}  // namespace

FrameResources::FrameResources(const EngineParams& params)
    : params_(params), lease_(lease_lanes(params)), pool_(lease_.lanes()) {
  arenas_.reserve(static_cast<std::size_t>(pool_.lanes()));
  used_tracks_.reserve(static_cast<std::size_t>(pool_.lanes()));
  overflow_tracks_.reserve(static_cast<std::size_t>(pool_.lanes()));
  for (int lane = 0; lane < pool_.lanes(); ++lane) {
    arenas_.emplace_back(params_.arena_bytes);
    const std::string prefix = "arena.lane" + std::to_string(lane);
    used_tracks_.push_back(prefix + ".used_bytes");
    overflow_tracks_.push_back(prefix + ".overflows");
  }
}

void FrameResources::begin_frame() {
  // Arenas grow monotonically within a frame, so sampling just before the
  // rewind captures the previous frame's high-water mark per lane.
  if (prof::enabled()) {
    for (std::size_t lane = 0; lane < arenas_.size(); ++lane) {
      prof::record_counter(used_tracks_[lane], static_cast<double>(arenas_[lane].used()));
      prof::record_counter(overflow_tracks_[lane],
                           static_cast<double>(arenas_[lane].overflow_count()));
    }
  }
  for (MonotonicArena& arena : arenas_) arena.reset();
  stats_.reset();
}

}  // namespace mmv2v::core
