#include "core/frame_resources.hpp"

namespace mmv2v::core {

FrameResources::FrameResources(const EngineParams& params)
    : params_(params), pool_(params.threads) {
  arenas_.reserve(static_cast<std::size_t>(pool_.lanes()));
  for (int lane = 0; lane < pool_.lanes(); ++lane) {
    arenas_.emplace_back(params_.arena_bytes);
  }
}

void FrameResources::begin_frame() {
  for (MonotonicArena& arena : arenas_) arena.reset();
  stats_.reset();
}

}  // namespace mmv2v::core
