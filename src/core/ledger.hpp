// TransferLedger: tracks, per directed vehicle pair, how many bits of the
// OHM task have been delivered. The paper's metrics (OCR / ATP / DTP,
// Section IV-A) are all derived from these counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/mac_address.hpp"

namespace mmv2v::core {

class TransferLedger {
 public:
  /// `unit_bits` is the per-direction task size D: a pair (a, b) is complete
  /// when both a->b and b->a have delivered D bits.
  explicit TransferLedger(double unit_bits);

  [[nodiscard]] double unit_bits() const noexcept { return unit_bits_; }

  /// Record delivered bits; clamps at the per-direction unit. Returns the
  /// bits actually credited.
  double record(net::NodeId from, net::NodeId to, double bits);

  [[nodiscard]] double delivered(net::NodeId from, net::NodeId to) const noexcept;
  [[nodiscard]] double remaining(net::NodeId from, net::NodeId to) const noexcept {
    return unit_bits_ - delivered(from, to);
  }
  [[nodiscard]] bool direction_complete(net::NodeId from, net::NodeId to) const noexcept {
    return remaining(from, to) <= 0.0;
  }

  /// Transmission progress eta_{a,b} = D_{a,b} / D where D_{a,b} counts both
  /// directions against a both-direction unit of 2D.
  [[nodiscard]] double eta(net::NodeId a, net::NodeId b) const noexcept;
  [[nodiscard]] bool pair_complete(net::NodeId a, net::NodeId b) const noexcept {
    return direction_complete(a, b) && direction_complete(b, a);
  }

  void reset() { directed_.clear(); }
  [[nodiscard]] std::size_t tracked_directions() const noexcept { return directed_.size(); }

  /// Total bits delivered across all directed pairs.
  [[nodiscard]] double total_delivered() const noexcept;

  /// One directed delivery counter.
  struct DirectedDelivery {
    net::NodeId from = 0;
    net::NodeId to = 0;
    double bits = 0.0;
  };
  /// All nonzero directed counters (unordered); for application-layer
  /// analyzers that need per-link deltas between frames.
  [[nodiscard]] std::vector<DirectedDelivery> snapshot() const;

 private:
  static std::uint64_t key(net::NodeId from, net::NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  }

  double unit_bits_;
  std::unordered_map<std::uint64_t, double> directed_;
};

}  // namespace mmv2v::core
