#include "core/world.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/profiler.hpp"
#include "geom/angles.hpp"
#include "geom/batch.hpp"
#include "sim/lane_budgeter.hpp"
#include "sim/pool_registry.hpp"
#include "sim/worker_pool.hpp"
#include "traffic/network_traffic_sim.hpp"
#include "traffic/road_network.hpp"

namespace mmv2v::core {

namespace {

std::unique_ptr<traffic::MobilityModel> make_mobility(const ScenarioConfig& config,
                                                      std::uint64_t seed) {
  const traffic::TrafficConfig& t = config.traffic;
  switch (config.network.topology) {
    case traffic::NetworkTopology::kLegacyRing:
      return std::make_unique<traffic::TrafficSimulator>(t, seed);
    case traffic::NetworkTopology::kRingNetwork:
      return std::make_unique<traffic::NetworkTrafficSimulator>(
          traffic::RoadNetwork::ring(t.road_length_m, t.lanes_per_direction, t.lane_width_m,
                                     t.bidirectional, t.lane_speed_bands),
          t, seed);
    case traffic::NetworkTopology::kCityGrid:
      return std::make_unique<traffic::NetworkTrafficSimulator>(
          traffic::RoadNetwork::city_grid(config.network.grid_rows, config.network.grid_cols,
                                          config.network.block_m, t.lanes_per_direction,
                                          t.lane_width_m, t.lane_speed_bands,
                                          config.network.signal_green_s),
          t, seed);
  }
  throw std::logic_error{"unknown network topology"};
}

}  // namespace

World::World(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      mobility_(make_mobility(config_, seed)),
      tiering_(config_.tier),
      channel_(config_.channel),
      fading_(config_.fading) {
  if (config_.network.topology == traffic::NetworkTopology::kLegacyRing) {
    ring_traffic_ = static_cast<traffic::TrafficSimulator*>(mobility_.get());
  }
  // Let the traffic model relax from its synthetic initial placement so the
  // radio protocol sees realistic headways and speeds. Warmup always runs at
  // full fidelity — tiers are installed with the first snapshot below.
  const double warmup_dt = 0.1;
  for (double t = 0.0; t < config_.traffic_warmup_s; t += warmup_dt) {
    mobility_->step(warmup_dt);
  }
  refresh_snapshot();
}

const traffic::TrafficSimulator& World::traffic() const {
  if (ring_traffic_ == nullptr) {
    throw std::logic_error{
        "World::traffic(): scenario runs on a road network; use mobility()"};
  }
  return *ring_traffic_;
}

void World::advance(double dt) {
  PROF_SCOPE("world.advance");
  mobility_->step(dt);
  ++tick_;
  refresh_snapshot();
}

void World::refresh_snapshot() {
  PROF_SCOPE("world.refresh");
  {
    PROF_SCOPE("world.los_build");
    los_ = mobility_->make_los_evaluator();
  }
  const std::size_t n = mobility_->size();

  positions_.resize(n);
  for (std::size_t i = 0; i < n; ++i) positions_[i] = mobility_->position_of(i);

  // Index positions so candidate pairs come from nearby cells only. A cell of
  // radius/4 keeps the per-query window tight (±25% overshoot per axis)
  // without exploding the number of cells visited.
  grid_.rebuild(positions_, std::max(1.0, config_.interference_range_m / 4.0));

  update_tiers();

  const std::size_t shard_count = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, config_.engine.world_shards)),
      std::max<std::size_t>(1, n));

  if (shard_count <= 1) {
    // Unsharded reference path: one owner list, the global evaluator,
    // sequential placement leaves every group sorted (no group sort needed).
    shards_.clear();
    shard_los_.clear();
    if (shard_pairs_.size() != 1) shard_pairs_.resize(1);
    all_ids_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) all_ids_[i] = i;
    enumerate_pairs(all_ids_, los_, shard_pairs_[0]);
    scatter_pairs(/*sort_groups=*/false);
    return;
  }

  if (shard_pairs_.size() != shard_count) shard_pairs_.resize(shard_count);

  // Shards run on whatever is left of the process lane budget; each shard
  // writes only its own state (halo, local evaluator, pair list), and the
  // merge below is in fixed shard order, so the arena is bit-identical for
  // any lane or shard count. The pool itself is checked out of the
  // process-wide registry: its threads (and their thread_local scratch)
  // persist across refreshes instead of respawning per mobility tick.
  sim::LaneBudgeter::Lease lease = sim::LaneBudgeter::instance().acquire(0);
  const std::size_t workers = std::min(static_cast<std::size_t>(lease.lanes()), shard_count);
  sim::PoolRegistry::Checkout checkout;
  sim::WorkerPool* pool = nullptr;
  if (workers > 1) {
    checkout = sim::PoolRegistry::instance().checkout(static_cast<int>(workers));
    pool = checkout.pool();
  }
  build_shards(shard_count, pool);
  if (pool == nullptr) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      enumerate_pairs(shards_[s].owned, shard_los_[s], shard_pairs_[s]);
    }
  } else {
    pool->for_chunks(shard_count, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        enumerate_pairs(shards_[s].owned, shard_los_[s], shard_pairs_[s]);
      }
    });
  }
  checkout.release();
  lease.release();
  scatter_pairs(/*sort_groups=*/true);
}

void World::update_tiers() {
  if (!tiering_.active()) {
    if (!tiers_.empty()) {
      tiers_.clear();
      mobility_->set_tiers(nullptr);
    }
    return;
  }
  if (tiers_.empty()) {
    tiering_.reset(positions_, tiers_);
    mobility_->set_tiers(&tiers_);
  } else {
    tiering_.update(positions_, tiers_);
  }
}

void World::enumerate_pairs(std::span<const std::uint32_t> owners,
                            const geom::LosEvaluator& los,
                            std::vector<UndirectedPair>& out) const {
  PROF_SCOPE("world.enumerate");
  const double radius = config_.interference_range_m;
  const double radius_sq = radius * radius;
  // OnRails vehicles get no cached pair geometry at all — their radio
  // footprint is the statistical onrails_occupancy() estimate instead.
  const bool tiered = !tiers_.empty();
  const bool batched = config_.engine.batched_kernels;
  std::vector<std::uint32_t> candidates;  // per-call scratch: lane-safe
  // LOS corridor (engine.batched_kernels): one sorted SoA mirror of the
  // evaluator per call, then every blocker count scans a contiguous
  // x-window with the identical predicate chain instead of walking the
  // spatial grid per segment. thread_local so sharded refreshes keep one
  // retained corridor per lane.
  thread_local geom::LosCorridor corridor;
  if (batched) corridor.gather(los);
  out.clear();

  for (const std::uint32_t i : owners) {
    if (tiered && tiers_[i] == traffic::FidelityTier::kOnRails) continue;
    candidates.clear();
    grid_.for_each_in_radius(positions_[i], radius, [&](std::uint32_t j) {
      if (j > i && geom::distance_sq(positions_[i], positions_[j]) <= radius_sq &&
          !(tiered && tiers_[j] == traffic::FidelityTier::kOnRails)) {
        candidates.push_back(j);
      }
    });
    std::sort(candidates.begin(), candidates.end());
    for (const std::uint32_t j : candidates) {
      const double d = geom::distance(positions_[i], positions_[j]);
      int blockers = batched ? corridor.count(positions_[i], positions_[j], i, j)
                             : los.blocker_count(positions_[i], positions_[j], i, j);
      if (mobility_->cross_median(i, j)) {
        blockers += config_.cross_median_blockers;
      }
      const double fade = fading_.enabled() ? fading_.loss_db(i, j, tick_) : 0.0;
      out.push_back(UndirectedPair{i, j, d, blockers, fade});
    }
  }
}

void World::build_shards(std::size_t shard_count, sim::WorkerPool* pool) {
  const std::size_t n = positions_.size();
  double x_min = positions_[0].x;
  double x_max = positions_[0].x;
  for (const geom::Vec2& p : positions_) {
    x_min = std::min(x_min, p.x);
    x_max = std::max(x_max, p.x);
  }
  const double width = std::max(1e-6, (x_max - x_min) / static_cast<double>(shard_count));

  shards_.assign(shard_count, {});
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].x_min = x_min + static_cast<double>(s) * width;
    shards_[s].x_max = (s + 1 == shard_count) ? x_max : x_min + static_cast<double>(s + 1) * width;
  }
  std::vector<std::uint32_t> owner_of(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto s = std::min(shard_count - 1,
                            static_cast<std::size_t>(
                                std::max(0.0, (positions_[i].x - x_min) / width)));
    shards_[s].owned.push_back(i);
    owner_of[i] = static_cast<std::uint32_t>(s);
  }

  // Halo margin: a body can affect an owned vehicle's links only if its
  // center lies within interference range of the strip plus the largest
  // body circumradius (blockers hang over the segment by at most that).
  const auto& bodies = los_.blockers();
  double max_body = 0.0;
  for (const geom::Blocker& b : bodies) {
    max_body = std::max(max_body, b.body.half_length() + b.body.half_width());
  }
  const double margin = config_.interference_range_m + max_body;

  shard_los_.assign(shard_count, geom::LosEvaluator{});
  // Each shard writes only its own halo and evaluator, so the per-shard loop
  // runs on pool lanes when granted; the halo scan order (i ascending) and
  // the evaluator's body order are identical either way.
  auto build_one = [&](std::size_t s, std::vector<geom::Blocker>& local) {
    WorldShard& shard = shards_[s];
    for (std::uint32_t i = 0; i < n; ++i) {
      if (owner_of[i] != s && positions_[i].x >= shard.x_min - margin &&
          positions_[i].x <= shard.x_max + margin) {
        shard.halo.push_back(i);
      }
    }
    local.clear();
    local.reserve(shard.owned.size() + shard.halo.size());
    for (const std::uint32_t i : shard.owned) local.push_back(bodies[i]);
    for (const std::uint32_t i : shard.halo) local.push_back(bodies[i]);
    shard_los_[s] = geom::LosEvaluator{local};
  };
  if (pool == nullptr) {
    std::vector<geom::Blocker> local;
    for (std::size_t s = 0; s < shard_count; ++s) build_one(s, local);
  } else {
    pool->for_chunks(shard_count, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
      // Per-lane body scratch retains capacity across refreshes (the pool's
      // threads persist via the registry).
      thread_local std::vector<geom::Blocker> local;
      for (std::size_t s = begin; s < end; ++s) build_one(s, local);
    });
  }
}

void World::scatter_pairs(bool sort_groups) {
  PROF_SCOPE("world.scatter");
  const std::size_t n = positions_.size();
  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& pairs : shard_pairs_) {
    for (const UndirectedPair& p : pairs) {
      ++degree[p.i];
      ++degree[p.j];
    }
  }

  // Scatter both directed views of each pair into one flat arena, grouped by
  // owner. In the unsharded pass pairs arrive with i and j ascending, so
  // sequential placement leaves every group sorted; shard-interleaved
  // discovery needs the explicit group sort to restore the canonical order.
  pair_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) pair_offsets_[i + 1] = pair_offsets_[i] + degree[i];
  pair_arena_.resize(pair_offsets_[n]);
  std::vector<std::uint32_t> cursor(pair_offsets_.begin(), pair_offsets_.end() - 1);
  for (const auto& pairs : shard_pairs_) {
    for (const UndirectedPair& p : pairs) {
      const double bearing_ij = geom::bearing(positions_[p.i], positions_[p.j]);
      const double bearing_ji = geom::bearing(positions_[p.j], positions_[p.i]);
      pair_arena_[cursor[p.i]++] =
          PairGeom{p.j, p.distance_m, bearing_ij, p.blockers, p.fade_db};
      pair_arena_[cursor[p.j]++] =
          PairGeom{p.i, p.distance_m, bearing_ji, p.blockers, p.fade_db};
    }
  }
  if (sort_groups) {
    for (std::size_t i = 0; i < n; ++i) {
      std::sort(pair_arena_.begin() + pair_offsets_[i],
                pair_arena_.begin() + pair_offsets_[i + 1],
                [](const PairGeom& a, const PairGeom& b) { return a.other < b.other; });
    }
  }

  if (config_.engine.batched_kernels) {
    gains_.resize(pair_arena_.size());
    const phy::ChannelParams& ch = channel_.params();
    for (std::size_t k = 0; k < pair_arena_.size(); ++k) {
      gains_[k] = pair_channel_gain(ch, pair_arena_[k]);
    }
  } else {
    gains_.clear();
  }
}

std::size_t World::tier_count(traffic::FidelityTier t) const noexcept {
  if (tiers_.empty()) {
    return t == traffic::FidelityTier::kFull ? size() : 0;
  }
  std::size_t n = 0;
  for (const traffic::FidelityTier tier : tiers_) n += (tier == t) ? 1 : 0;
  return n;
}

std::size_t World::onrails_near(net::NodeId id) const {
  if (tiers_.empty()) return 0;
  const double radius = config_.interference_range_m;
  const double radius_sq = radius * radius;
  const geom::Vec2 p = positions_.at(id);
  std::size_t count = 0;
  grid_.for_each_in_radius(p, radius, [&](std::uint32_t j) {
    if (j != id && tiers_[j] == traffic::FidelityTier::kOnRails &&
        geom::distance_sq(p, positions_[j]) <= radius_sq) {
      ++count;
    }
  });
  return count;
}

double World::onrails_occupancy(net::NodeId id) const {
  const double duty = std::clamp(config_.tier.onrails_duty_cycle, 0.0, 1.0);
  const auto count = static_cast<double>(onrails_near(id));
  return 1.0 - std::pow(1.0 - duty, count);
}

const PairGeom* World::pair(net::NodeId a, net::NodeId b) const noexcept {
  if (a >= size() || pair_offsets_.size() <= a + 1) return nullptr;
  const PairGeom* first = pair_arena_.data() + pair_offsets_[a];
  const PairGeom* last = pair_arena_.data() + pair_offsets_[a + 1];
  const PairGeom* it = std::lower_bound(
      first, last, b, [](const PairGeom& p, net::NodeId id) { return p.other < id; });
  return (it != last && it->other == b) ? it : nullptr;
}

std::vector<net::NodeId> World::ground_truth_neighbors(net::NodeId id) const {
  std::vector<net::NodeId> out;
  for (const PairGeom& p : nearby(id)) {
    if (p.distance_m <= config_.comm_range_m && p.blockers == 0) out.push_back(p.other);
  }
  return out;
}

double World::mean_degree() const {
  if (size() == 0) return 0.0;
  // Every qualifying directed arena entry is one (vehicle, neighbor) edge, so
  // one linear pass over the arena counts all neighborhoods at once.
  std::size_t total = 0;
  for (const PairGeom& p : pair_arena_) {
    if (p.distance_m <= config_.comm_range_m && p.blockers == 0) ++total;
  }
  return static_cast<double>(total) / static_cast<double>(size());
}

}  // namespace mmv2v::core
