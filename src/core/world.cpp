#include "core/world.hpp"

#include "geom/angles.hpp"

namespace mmv2v::core {

World::World(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      traffic_(config_.traffic, seed),
      channel_(config_.channel),
      fading_(config_.fading) {
  // Let the traffic model relax from its synthetic initial placement so the
  // radio protocol sees realistic headways and speeds.
  const double warmup_dt = 0.1;
  for (double t = 0.0; t < config_.traffic_warmup_s; t += warmup_dt) {
    traffic_.step(warmup_dt);
  }
  refresh_snapshot();
}

void World::advance(double dt) {
  traffic_.step(dt);
  ++tick_;
  refresh_snapshot();
}

void World::refresh_snapshot() {
  los_ = traffic_.make_los_evaluator();
  const std::size_t n = traffic_.size();
  nearby_.assign(n, {});
  const double radius = config_.interference_range_m;
  const double radius_sq = radius * radius;

  std::vector<geom::Vec2> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = traffic_.position_of(i);

  const auto& vehicles = traffic_.vehicles();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geom::distance_sq(pos[i], pos[j]) > radius_sq) continue;
      const double d = geom::distance(pos[i], pos[j]);
      int blockers = los_.blocker_count(pos[i], pos[j], i, j);
      if (vehicles[i].direction != vehicles[j].direction) {
        blockers += config_.cross_median_blockers;
      }
      const double fade = fading_.enabled() ? fading_.loss_db(i, j, tick_) : 0.0;
      nearby_[i].push_back(PairGeom{j, d, geom::bearing(pos[i], pos[j]), blockers, fade});
      nearby_[j].push_back(PairGeom{i, d, geom::bearing(pos[j], pos[i]), blockers, fade});
    }
  }
}

const PairGeom* World::pair(net::NodeId a, net::NodeId b) const noexcept {
  if (a >= nearby_.size()) return nullptr;
  for (const PairGeom& p : nearby_[a]) {
    if (p.other == b) return &p;
  }
  return nullptr;
}

std::vector<net::NodeId> World::ground_truth_neighbors(net::NodeId id) const {
  std::vector<net::NodeId> out;
  for (const PairGeom& p : nearby_.at(id)) {
    if (p.distance_m <= config_.comm_range_m && p.blockers == 0) out.push_back(p.other);
  }
  return out;
}

double World::mean_degree() const {
  if (size() == 0) return 0.0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < size(); ++i) total += ground_truth_neighbors(i).size();
  return static_cast<double>(total) / static_cast<double>(size());
}

}  // namespace mmv2v::core
