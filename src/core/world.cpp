#include "core/world.hpp"

#include <algorithm>

#include "common/profiler.hpp"
#include "geom/angles.hpp"

namespace mmv2v::core {

World::World(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      traffic_(config_.traffic, seed),
      channel_(config_.channel),
      fading_(config_.fading) {
  // Let the traffic model relax from its synthetic initial placement so the
  // radio protocol sees realistic headways and speeds.
  const double warmup_dt = 0.1;
  for (double t = 0.0; t < config_.traffic_warmup_s; t += warmup_dt) {
    traffic_.step(warmup_dt);
  }
  refresh_snapshot();
}

void World::advance(double dt) {
  PROF_SCOPE("world.advance");
  traffic_.step(dt);
  ++tick_;
  refresh_snapshot();
}

void World::refresh_snapshot() {
  PROF_SCOPE("world.refresh");
  los_ = traffic_.make_los_evaluator();
  const std::size_t n = traffic_.size();
  const double radius = config_.interference_range_m;
  const double radius_sq = radius * radius;

  positions_.resize(n);
  for (std::size_t i = 0; i < n; ++i) positions_[i] = traffic_.position_of(i);

  // Index positions so candidate pairs come from nearby cells only. A cell of
  // radius/4 keeps the per-query window tight (±25% overshoot per axis)
  // without exploding the number of cells visited.
  grid_.rebuild(positions_, std::max(1.0, radius / 4.0));

  // Pass 1: enumerate unordered in-range pairs (i < j, ascending in both
  // coordinates — the same discovery order as the old N^2 double loop) and
  // compute their geometry once per pair.
  struct UndirectedPair {
    std::uint32_t i;
    std::uint32_t j;
    double distance_m;
    int blockers;
    double fade_db;
  };
  std::vector<UndirectedPair> pairs;
  pairs.reserve(pair_arena_.size() / 2 + 16);
  std::vector<std::uint32_t> degree(n, 0);

  const auto& vehicles = traffic_.vehicles();
  for (std::uint32_t i = 0; i < n; ++i) {
    candidates_.clear();
    grid_.for_each_in_radius(positions_[i], radius, [&](std::uint32_t j) {
      if (j > i && geom::distance_sq(positions_[i], positions_[j]) <= radius_sq) {
        candidates_.push_back(j);
      }
    });
    std::sort(candidates_.begin(), candidates_.end());
    for (const std::uint32_t j : candidates_) {
      const double d = geom::distance(positions_[i], positions_[j]);
      int blockers = los_.blocker_count(positions_[i], positions_[j], i, j);
      if (vehicles[i].direction != vehicles[j].direction) {
        blockers += config_.cross_median_blockers;
      }
      const double fade = fading_.enabled() ? fading_.loss_db(i, j, tick_) : 0.0;
      pairs.push_back(UndirectedPair{i, j, d, blockers, fade});
      ++degree[i];
      ++degree[j];
    }
  }

  // Pass 2: scatter both directed views of each pair into one flat arena,
  // grouped by owner. Because pairs were discovered with i and j ascending,
  // sequential placement leaves every per-node group sorted by `other`.
  pair_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) pair_offsets_[i + 1] = pair_offsets_[i] + degree[i];
  pair_arena_.resize(pair_offsets_[n]);
  std::vector<std::uint32_t> cursor(pair_offsets_.begin(), pair_offsets_.end() - 1);
  for (const UndirectedPair& p : pairs) {
    const double bearing_ij = geom::bearing(positions_[p.i], positions_[p.j]);
    const double bearing_ji = geom::bearing(positions_[p.j], positions_[p.i]);
    pair_arena_[cursor[p.i]++] =
        PairGeom{p.j, p.distance_m, bearing_ij, p.blockers, p.fade_db};
    pair_arena_[cursor[p.j]++] =
        PairGeom{p.i, p.distance_m, bearing_ji, p.blockers, p.fade_db};
  }
}

const PairGeom* World::pair(net::NodeId a, net::NodeId b) const noexcept {
  if (a >= size() || pair_offsets_.size() <= a + 1) return nullptr;
  const PairGeom* first = pair_arena_.data() + pair_offsets_[a];
  const PairGeom* last = pair_arena_.data() + pair_offsets_[a + 1];
  const PairGeom* it = std::lower_bound(
      first, last, b, [](const PairGeom& p, net::NodeId id) { return p.other < id; });
  return (it != last && it->other == b) ? it : nullptr;
}

std::vector<net::NodeId> World::ground_truth_neighbors(net::NodeId id) const {
  std::vector<net::NodeId> out;
  for (const PairGeom& p : nearby(id)) {
    if (p.distance_m <= config_.comm_range_m && p.blockers == 0) out.push_back(p.other);
  }
  return out;
}

double World::mean_degree() const {
  if (size() == 0) return 0.0;
  // Every qualifying directed arena entry is one (vehicle, neighbor) edge, so
  // one linear pass over the arena counts all neighborhoods at once.
  std::size_t total = 0;
  for (const PairGeom& p : pair_arena_) {
    if (p.distance_m <= config_.comm_range_m && p.blockers == 0) ++total;
  }
  return static_cast<double>(total) / static_cast<double>(size());
}

}  // namespace mmv2v::core
