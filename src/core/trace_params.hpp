// Trace/observability knob group (`trace.*`). Kept in its own dependency-free
// header so ScenarioConfig, the CLI knob parser and the obs layer can all
// include it without pulling in the trace machinery itself.
//
// None of these knobs change simulation results — only how (and how much)
// observability data is recorded. The defaults reproduce the legacy
// behavior bit-for-bit: full in-memory JSONL event buffering, no span
// events, golden digest untouched (DESIGN.md Sections 8 and 14).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mmv2v::core {

enum class TraceFormat : std::uint8_t {
  /// One canonical JSON object per line (the legacy format; golden-pinned).
  kJsonl = 0,
  /// Chunked binary flight-recorder format (.mmtrace): string-interned,
  /// varint/delta-encoded, CRC-protected, with a trailing chunk index. A
  /// JSONL export of an .mmtrace file is byte-identical to what kJsonl
  /// would have written (DESIGN.md Section 14).
  kBinary = 1,
};

struct TraceParams {
  /// On-disk format of the merged sweep trace (trace.format = jsonl | binary).
  TraceFormat format = TraceFormat::kJsonl;
  /// Flush the recorder's in-memory event buffer to the attached sink every
  /// N events, bounding trace memory for long runs (trace.flush_events).
  /// 0 (default) keeps every event buffered for the whole run — the legacy
  /// behavior, required by consumers that read trace().events() post-hoc.
  /// Ignored when no sink is attached. The serialized byte stream is
  /// identical for every setting.
  std::size_t flush_events = 0;
  /// Emit per-pair link-lifecycle span events (span_truth / span_disc /
  /// span_match / span_sched / span_churn / span_udt) and publish span
  /// outcome rollups into the metrics registry (trace.spans). Off by
  /// default: span events extend the event stream, so enabling them
  /// intentionally changes the trace digest.
  bool spans = false;
};

}  // namespace mmv2v::core
