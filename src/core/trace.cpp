#include "core/trace.hpp"

#include <ostream>

namespace mmv2v::core {

double TraceRecorder::mean_throughput_bps() const {
  if (frames_.size() < 2) return 0.0;
  // Frame starts are uniformly spaced; infer the frame duration from the
  // spacing so the window covers the last frame fully.
  const double n = static_cast<double>(frames_.size());
  const double frame_dur = (frames_.back().time_s - frames_.front().time_s) / (n - 1.0);
  const double window = n * frame_dur;
  return window > 0.0 ? frames_.back().bits_total / window : 0.0;
}

double TraceRecorder::mean_active_links() const {
  if (frames_.empty()) return 0.0;
  double acc = 0.0;
  for (const FrameRecord& f : frames_) acc += static_cast<double>(f.active_links);
  return acc / static_cast<double>(frames_.size());
}

void TraceRecorder::write_csv(std::ostream& out) const {
  out << "frame,time_s,active_links,bits_delivered,bits_total\n";
  for (const FrameRecord& f : frames_) {
    out << f.frame << ',' << f.time_s << ',' << f.active_links << ',' << f.bits_delivered
        << ',' << f.bits_total << '\n';
  }
}

void TraceRecorder::write_metrics_csv(std::ostream& out,
                                      const std::vector<MetricsSample>& samples) {
  out << "time_s,mean_ocr,mean_atp,mean_dtp,vehicles\n";
  for (const MetricsSample& s : samples) {
    out << s.time_s << ',' << s.metrics.mean_ocr() << ',' << s.metrics.mean_atp() << ','
        << s.metrics.mean_dtp() << ',' << s.metrics.per_vehicle.size() << '\n';
  }
}

void TraceRecorder::write_per_vehicle_csv(std::ostream& out, const NetworkMetrics& metrics) {
  out << "vehicle,neighbors,ocr,atp,dtp\n";
  for (const VehicleMetrics& v : metrics.per_vehicle) {
    out << v.id << ',' << v.neighbor_count << ',' << v.ocr << ',' << v.atp << ',' << v.dtp
        << '\n';
  }
}

}  // namespace mmv2v::core
