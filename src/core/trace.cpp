#include "core/trace.hpp"

#include <ostream>

#include "common/hash.hpp"
#include "common/textio.hpp"

namespace mmv2v::core {

void TraceEvent::append_json(std::string& out) const {
  out += "{\"frame\":";
  io::append_number(out, frame);
  out += ",\"t\":";
  io::append_number(out, time_s);
  out += ",\"ev\":";
  io::append_json_string(out, type);
  for (const TraceField& f : fields) {
    out += ',';
    io::append_json_string(out, f.key);
    out += ':';
    switch (f.kind) {
      case TraceField::Kind::kU64:
        io::append_number(out, f.u64);
        break;
      case TraceField::Kind::kF64:
        io::append_number(out, f.f64);
        break;
      case TraceField::Kind::kStr:
        io::append_json_string(out, f.str);
        break;
    }
  }
  out += '}';
}

double TraceRecorder::mean_throughput_bps() const {
  if (frames_.size() < 2) return 0.0;
  // Frame starts are uniformly spaced; infer the frame duration from the
  // spacing so the window covers the last frame fully.
  const double n = static_cast<double>(frames_.size());
  const double frame_dur = (frames_.back().time_s - frames_.front().time_s) / (n - 1.0);
  const double window = n * frame_dur;
  return window > 0.0 ? frames_.back().bits_total / window : 0.0;
}

double TraceRecorder::mean_active_links() const {
  if (frames_.empty()) return 0.0;
  double acc = 0.0;
  for (const FrameRecord& f : frames_) acc += static_cast<double>(f.active_links);
  return acc / static_cast<double>(frames_.size());
}

void TraceRecorder::append_events_jsonl(std::string& out) const {
  for (const TraceEvent& e : events_) {
    e.append_json(out);
    out += '\n';
  }
}

void TraceRecorder::write_events_jsonl(std::ostream& out) const {
  std::string buf;
  append_events_jsonl(buf);
  out << buf;
}

std::uint64_t TraceRecorder::events_digest() const {
  std::string buf;
  append_events_jsonl(buf);
  return fnv1a64(buf);
}

void TraceRecorder::write_csv(std::ostream& out) const {
  std::string buf = "frame,time_s,active_links,bits_delivered,bits_total\n";
  for (const FrameRecord& f : frames_) {
    io::append_number(buf, f.frame);
    buf += ',';
    io::append_number(buf, f.time_s);
    buf += ',';
    io::append_number(buf, static_cast<std::uint64_t>(f.active_links));
    buf += ',';
    io::append_number(buf, f.bits_delivered);
    buf += ',';
    io::append_number(buf, f.bits_total);
    buf += '\n';
  }
  out << buf;
}

void TraceRecorder::write_metrics_csv(std::ostream& out,
                                      const std::vector<MetricsSample>& samples) {
  std::string buf = "time_s,mean_ocr,mean_atp,mean_dtp,vehicles\n";
  for (const MetricsSample& s : samples) {
    io::append_number(buf, s.time_s);
    buf += ',';
    io::append_number(buf, s.metrics.mean_ocr());
    buf += ',';
    io::append_number(buf, s.metrics.mean_atp());
    buf += ',';
    io::append_number(buf, s.metrics.mean_dtp());
    buf += ',';
    io::append_number(buf, static_cast<std::uint64_t>(s.metrics.per_vehicle.size()));
    buf += '\n';
  }
  out << buf;
}

void TraceRecorder::write_per_vehicle_csv(std::ostream& out, const NetworkMetrics& metrics) {
  std::string buf = "vehicle,neighbors,ocr,atp,dtp\n";
  for (const VehicleMetrics& v : metrics.per_vehicle) {
    io::append_number(buf, static_cast<std::uint64_t>(v.id));
    buf += ',';
    io::append_number(buf, static_cast<std::uint64_t>(v.neighbor_count));
    buf += ',';
    io::append_number(buf, v.ocr);
    buf += ',';
    io::append_number(buf, v.atp);
    buf += ',';
    io::append_number(buf, v.dtp);
    buf += '\n';
  }
  out << buf;
}

}  // namespace mmv2v::core
