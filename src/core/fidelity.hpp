// Fidelity tiering: assigns every vehicle one of three simulation tiers
// (Full / Kinematic / OnRails) from its distance to the nearest focus
// region. Focus regions are circles the experimenter cares about — inside
// them the full StagedOhmProtocol runs over full-fidelity vehicles and the
// golden digest stays pinned; far away, vehicles degrade to cheap on-rails
// kinematics and a statistical channel-occupancy contribution.
//
// Two properties the tests pin down:
//   * Hysteresis — a tier is entered at its radius but only exited at
//     radius + hysteresis_m, so a vehicle oscillating across a boundary by
//     less than the hysteresis band never flaps.
//   * Budgets — at most promote_budget tier raises and demote_budget tier
//     drops are applied per update (ascending vehicle id, one tier step per
//     vehicle per update), bounding the per-tick cost of vehicles streaming
//     into a focus region.
//
// The update is a pure serial function of (positions, previous tiers), so
// tier assignment — and therefore the digest — is invariant across
// engine.threads and world.shards.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "traffic/mobility_model.hpp"

namespace mmv2v::core {

/// One circular region of interest. Vehicles within `radius_m` of `center`
/// are Full-fidelity candidates.
struct FocusRegion {
  geom::Vec2 center{0.0, 0.0};
  double radius_m = 150.0;
};

struct TierConfig {
  /// Master switch; false (default) keeps every vehicle at kFull and the
  /// tiering engine completely out of the snapshot path.
  bool enabled = false;
  /// Regions of interest. Enabled tiering with no regions also degrades to
  /// all-kFull (there is nothing to focus on).
  std::vector<FocusRegion> focus;
  /// Vehicles farther than this beyond the nearest region edge drop from
  /// kKinematic to kOnRails [m].
  double kinematic_radius_m = 400.0;
  /// Hysteresis band: a tier entered at radius r is exited at r + this [m].
  double hysteresis_m = 25.0;
  /// Max tier raises (toward kFull) applied per snapshot update.
  int promote_budget = 32;
  /// Max tier drops (toward kOnRails) applied per snapshot update.
  int demote_budget = 32;
  /// Average airtime duty cycle assumed per OnRails vehicle when estimating
  /// background channel occupancy (World::onrails_occupancy).
  double onrails_duty_cycle = 0.02;
};

class FidelityTiering {
 public:
  explicit FidelityTiering(TierConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const TierConfig& config() const noexcept { return config_; }
  /// True when tiering can actually demote anybody.
  [[nodiscard]] bool active() const noexcept {
    return config_.enabled && !config_.focus.empty();
  }

  /// Assign every vehicle its desired tier directly — no hysteresis, no
  /// budgets. Used for the first snapshot after spawn.
  void reset(std::span<const geom::Vec2> positions,
             std::vector<traffic::FidelityTier>& tiers) const;

  /// One hysteresis- and budget-limited update step (ascending vehicle id,
  /// at most one tier step per vehicle).
  void update(std::span<const geom::Vec2> positions,
              std::vector<traffic::FidelityTier>& tiers) const;

  /// Signed distance beyond the nearest focus-region edge [m]: <= 0 inside
  /// a region, > 0 outside all of them.
  [[nodiscard]] double edge_distance(geom::Vec2 p) const noexcept;

  /// Tier a vehicle at edge-distance `d` would settle to with no history.
  [[nodiscard]] traffic::FidelityTier desired_tier(double d) const noexcept;

 private:
  TierConfig config_;
};

}  // namespace mmv2v::core
