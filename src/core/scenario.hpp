// Scenario configuration: everything that defines one simulated deployment,
// independent of the OHM protocol under test. Defaults follow the paper's
// evaluation setup (Section IV-A).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "core/engine_params.hpp"
#include "core/fidelity.hpp"
#include "core/trace_params.hpp"
#include "fault/fault_params.hpp"
#include "net/net_params.hpp"
#include "phy/channel.hpp"
#include "phy/fading.hpp"
#include "sim/frame.hpp"
#include "traffic/road_network.hpp"
#include "traffic/traffic_sim.hpp"

namespace mmv2v::core {

/// The HRIE data-exchange task (paper Section IV-A): each vehicle must
/// exchange `rate_mbps` worth of sensory data per second with each one-hop
/// neighbor, in both directions. Over a horizon T the per-direction unit is
/// rate * T bits.
struct TaskParams {
  double rate_mbps = 200.0;
};

struct ScenarioConfig {
  traffic::TrafficConfig traffic;
  /// World topology: the legacy ring (default, golden-pinned) or a road
  /// network (ring-as-network, signalized city grid). See traffic/road_network.hpp.
  traffic::NetworkConfig network;
  phy::ChannelParams channel;
  /// Optional shadowing / small-scale fading (defaults off; see phy/fading.hpp).
  phy::FadingParams fading;
  sim::TimingConfig timing;
  TaskParams task;
  /// Deterministic impairment knobs (all zero = ideal conditions; see
  /// fault/fault_params.hpp and DESIGN.md Section 10).
  fault::FaultParams fault;
  /// Control-plane transport knobs: sub-6 GHz failover side channel and
  /// one-hop relay recovery (defaults off — single mmWave transport, golden
  /// pinned; see net/net_params.hpp and DESIGN.md Section 16).
  net::NetParams net;
  /// Execution-engine knobs (worker lanes, arena sizing). Results are
  /// bit-identical across settings; see DESIGN.md Section 11.
  EngineParams engine;
  /// Fidelity tiering around focus regions (defaults off — every vehicle at
  /// full fidelity; see core/fidelity.hpp and DESIGN.md Section 12).
  TierConfig tier;
  /// Observability knobs (trace format, bounded flushing, span events).
  /// Never affect simulation results; defaults are golden-pinned (see
  /// core/trace_params.hpp and DESIGN.md Section 14).
  TraceParams trace;

  /// One-hop neighborhood radius defining the ground-truth N_i [m].
  double comm_range_m = 80.0;
  /// Extra blocker count charged to links crossing the median between the
  /// two carriageways (a guardrail/divider blocks grazing 60 GHz paths), so
  /// opposite-direction traffic contributes load realism but not links.
  /// Set to 0 for an open median.
  int cross_median_blockers = 3;
  /// Radius within which pair geometry is cached and interference is summed
  /// [m]; beyond this, received power is far below the noise floor.
  double interference_range_m = 220.0;
  /// Total simulated time [s].
  double horizon_s = 2.0;
  /// Warm-up time for the traffic model before the radio protocol starts [s].
  double traffic_warmup_s = 5.0;

  std::uint64_t seed = 1;

  /// Per-direction task unit in bits for this scenario's horizon.
  [[nodiscard]] double unit_bits() const noexcept {
    return units::mbps_to_bps(task.rate_mbps) * horizon_s;
  }
};

}  // namespace mmv2v::core
