// Per-frame phase observability counters, unified across protocol stacks.
// PhaseStats hangs off core::FrameContext so phase implementations write to
// one shared sink instead of threading per-struct out-params through every
// signature. The component structs live here (rather than in the protocol
// headers that originally defined them) so core can own the aggregate;
// protocol headers keep compatibility aliases.
#pragma once

#include <cstdint>
#include <vector>

#include "net/mac_address.hpp"

namespace mmv2v::core {

/// Per-round discovery counters (SND rounds; also reused by the ROP and
/// 802.11ad discovery loops where the semantics line up).
struct SndRoundStats {
  /// Observations admitted into a neighbor table.
  std::uint64_t decodes = 0;
  /// Arrivals that failed the control-PHY decode (capture SINR or, under
  /// ideal_capture, interference-free SNR below threshold).
  std::uint64_t decode_failures = 0;
  /// Decoded arrivals rejected by the admission SNR / range filters.
  std::uint64_t admission_rejects = 0;
  /// Tx/Rx pairs skipped because their relative clock offset exceeded half
  /// the sector dwell (sync-error model).
  std::uint64_t sync_skips = 0;
};

/// One adoption recorded during a DCM slot, with enough context to check the
/// improvement invariant: at adoption time the new link must strictly
/// improve each side's candidate (or establish a first one).
struct DcmAdoption {
  net::NodeId a = 0;
  net::NodeId b = 0;
  /// New link quality as measured by each side [dB].
  double q_a = 0.0;
  double q_b = 0.0;
  /// Quality of the candidate each side held immediately before adopting.
  double prev_q_a = 0.0;
  double prev_q_b = 0.0;
  bool had_prev_a = false;
  bool had_prev_b = false;
  /// True when that side's previous candidate was the partner itself: a
  /// re-adoption that re-synchronizes state left stale by a lost drop-inform.
  /// Relinks carry equal (not strictly improving) quality by construction.
  bool relink_a = false;
  bool relink_b = false;
};

/// Matching-phase counters, accumulated over all negotiation slots.
struct DcmSlotStats {
  /// Vehicles that picked a CNS-scheduled neighbor this slot.
  std::uint64_t proposals = 0;
  /// Mutual picks (pairs that attempted a negotiation exchange).
  std::uint64_t mutual_pairs = 0;
  /// Exchanges lost to the negotiation channel.
  std::uint64_t exchange_failures = 0;
  /// Exchanges adopted by both sides.
  std::uint64_t adoptions = 0;
  /// Exchanges declined because at least one side would not improve.
  std::uint64_t conflicts = 0;
  /// Previous candidates displaced by adoptions.
  std::uint64_t drops = 0;
  std::vector<DcmAdoption> adoptions_detail;
};

/// Negotiation link-layer counters, accumulated across every slot of a frame.
struct NegotiationStats {
  /// Half-slot transmissions evaluated (two per pair per slot).
  std::uint64_t half_attempts = 0;
  /// Half-slot transmissions that failed to decode (geometry miss or SINR
  /// below the control threshold).
  std::uint64_t half_failures = 0;
};

/// Beam-refinement counters (one frame's worth).
struct RefineStats {
  /// Matched pairs refined.
  std::uint64_t pairs = 0;
  /// Narrow-beam probes evaluated (2 * beams_per_side per refined pair).
  std::uint64_t probes = 0;
  /// Pairs out of cached range that fell back to sector centers.
  std::uint64_t fallbacks = 0;
};

/// The per-frame aggregate: one sink for every phase of every protocol
/// stack. reset() clears counters while keeping vector capacity, so a
/// steady-state frame records stats without heap traffic.
struct PhaseStats {
  std::vector<SndRoundStats> snd_rounds;
  DcmSlotStats dcm;
  NegotiationStats negotiation;
  RefineStats refine;

  void reset() {
    snd_rounds.clear();
    dcm.proposals = 0;
    dcm.mutual_pairs = 0;
    dcm.exchange_failures = 0;
    dcm.adoptions = 0;
    dcm.conflicts = 0;
    dcm.drops = 0;
    dcm.adoptions_detail.clear();
    negotiation = NegotiationStats{};
    refine = RefineStats{};
  }
};

}  // namespace mmv2v::core
