#include "core/simulation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/profiler.hpp"
#include "obs/span_builder.hpp"
#include "obs/span_events.hpp"

namespace mmv2v::core {

/// Online span machinery: the builder consumes every recorded event via the
/// recorder's observer hook; the once-filter dedups span_truth emission.
struct OhmSimulation::SpanState {
  obs::SpanBuilder builder;
  obs::SpanOnce truth_once;
};

OhmSimulation::OhmSimulation(ScenarioConfig config, OhmProtocol& protocol,
                             SimulationOptions options)
    : config_(std::move(config)),
      world_(config_, config_.seed),
      ledger_(config_.unit_bits()),
      resources_(config_.engine),
      protocol_(protocol) {
  const double frame = config_.timing.frame_s;
  const double tick = config_.timing.mobility_tick_s;
  if (std::fmod(frame + 1e-12, tick) > 1e-9) {
    throw std::invalid_argument{"frame duration must be a multiple of the mobility tick"};
  }
  if (options.instrument) {
    instrumentation_ = std::make_unique<Instrumentation>(metrics_, trace_);
    protocol_.set_instrumentation(instrumentation_.get());
    if (config_.trace.spans) {
      spans_ = std::make_unique<SpanState>();
      trace_.set_event_observer(
          [state = spans_.get()](const TraceEvent& e) { state->builder.on_event(e); });
    }
  }
  if (options.trace_sink != nullptr) {
    trace_.set_sink(options.trace_sink, config_.trace.flush_events);
  }
}

OhmSimulation::~OhmSimulation() {
  // The protocol outlives the simulation; never leave it with a dangling
  // sink pointer.
  if (instrumentation_ != nullptr) protocol_.set_instrumentation(nullptr);
}

void OhmSimulation::run_one_frame(std::uint64_t frame_index, double frame_start) {
  PROF_SCOPE("sim.frame");
  // Staged frame pipeline: the control phases run on the frame-start
  // snapshot (via begin_frame), then the loop below moves data over each
  // mobility sub-interval and advances the traffic world — the same schedule
  // the discrete-event engine used to produce, but with the per-frame
  // resources (arenas, worker pool, stats sink) rewound up front.
  resources_.begin_frame();
  FrameContext ctx{world_, ledger_, frame_index, frame_start};
  ctx.resources = &resources_;
  ctx.stats = instrumentation_ != nullptr ? &resources_.stats() : nullptr;
  const double frame = config_.timing.frame_s;
  const double tick = config_.timing.mobility_tick_s;

  if (instrumentation_ != nullptr) {
    instrumentation_->set_frame(frame_index, frame_start);
    instrumentation_->emit(TraceEvent{"frame_begin"}.u64("vehicles", world_.size()));
    if (spans_ != nullptr) {
      // Ground-truth span openers: one span_truth per pair, the first frame
      // the pair is LOS within comm range (the denominator of outcome
      // attribution — pairs the protocol *should* have served).
      for (std::size_t i = 0; i < world_.size(); ++i) {
        for (const net::NodeId n : world_.ground_truth_neighbors(i)) {
          if (n <= i || !spans_->truth_once.first(i, n)) continue;
          instrumentation_->emit(TraceEvent{obs::kSpanTruth}.u64("a", i).u64("b", n));
        }
      }
    }
  }

  protocol_.begin_frame(ctx);
  const double udt_start = protocol_.udt_start_offset_s();
  if (udt_start < 0.0 || udt_start >= frame) {
    throw std::logic_error{"protocol UDT start offset outside the frame"};
  }
  double prev = 0.0;
  for (double boundary = tick; boundary <= frame + 1e-12; boundary += tick) {
    const double t0 = std::max(prev, udt_start);
    const double t1 = std::min(boundary, frame);
    if (t1 > t0) protocol_.udt_step(ctx, t0, t1);
    world_.advance(tick);
    prev = boundary;
  }
  protocol_.end_frame(ctx);
  if (observer_) observer_(ctx);

  const double total = ledger_.total_delivered();
  const double prev_total = trace_.frames().empty() ? 0.0 : trace_.frames().back().bits_total;
  trace_.add_frame(FrameRecord{frame_index, frame_start, protocol_.active_link_count(),
                               total - prev_total, total});
  if (instrumentation_ != nullptr) {
    instrumentation_->emit(TraceEvent{"frame_end"}
                               .u64("active_links", protocol_.active_link_count())
                               .f64("bits_delivered", total - prev_total)
                               .f64("bits_total", total));
  }
  ++frames_run_;
}

void OhmSimulation::run(double sample_interval_s) {
  const double frame = config_.timing.frame_s;
  const auto total_frames =
      static_cast<std::uint64_t>(std::llround(config_.horizon_s / frame));
  double next_sample = sample_interval_s > 0.0 ? sample_interval_s
                                               : std::numeric_limits<double>::infinity();

  for (std::uint64_t f = 0; f < total_frames; ++f) {
    const double t = static_cast<double>(f) * frame;
    run_one_frame(f, t);
    const double t_end = t + frame;
    if (t_end + 1e-9 >= next_sample) {
      samples_.push_back(MetricsSample{t_end, evaluate_network(world_, ledger_)});
      next_sample += sample_interval_s;
    }
  }
  // Always sample at the horizon.
  if (samples_.empty() || samples_.back().time_s + 1e-9 < config_.horizon_s) {
    samples_.push_back(
        MetricsSample{config_.horizon_s, evaluate_network(world_, ledger_)});
  }
  // Publish span outcome rollups (only registers span.* metrics when spans
  // were enabled), then drain any unflushed trace tail to the sink.
  if (spans_ != nullptr) spans_->builder.publish(metrics_);
  trace_.flush();
  MMV2V_LOG(kInfo) << protocol_.name() << ": ran " << frames_run_ << " frames, final OCR "
                   << final_metrics().mean_ocr();
}

const NetworkMetrics& OhmSimulation::final_metrics() const {
  if (samples_.empty()) throw std::logic_error{"simulation has not run"};
  return samples_.back().metrics;
}

}  // namespace mmv2v::core
