// Experiment runner: repeatable parameter sweeps over scenarios with
// aggregation across seeds. The figure benches and the generic sweep tool
// are built on this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"

namespace mmv2v::core {

/// Builds a fresh protocol instance for one repetition. The seed is derived
/// from the experiment seed and the repetition index.
using ProtocolFactory = std::function<std::unique_ptr<OhmProtocol>(std::uint64_t seed)>;

/// Summary of one finished (density, repetition) cell, delivered to
/// ExperimentConfig::on_cell_done as the sweep progresses.
struct CellProgress {
  /// Canonical cell index: density_index * repetitions + rep.
  std::size_t index = 0;
  /// Cells finished so far, including this one (completion order, not
  /// canonical order).
  std::size_t completed = 0;
  std::size_t total = 0;
  double density_vpl = 0.0;
  int rep = 0;
  std::uint64_t seed = 0;
  std::string protocol;
  double degree = 0.0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
  double fairness = 0.0;
};

struct ExperimentConfig {
  std::vector<double> densities_vpl{10.0, 15.0, 20.0, 25.0, 30.0};
  int repetitions = 3;
  double horizon_s = 1.5;
  std::uint64_t seed = 1;
  /// Worker threads for the sweep. Each (density, repetition) cell is an
  /// independent deterministic simulation, so results are bit-identical for
  /// any thread count. <= 0 selects std::thread::hardware_concurrency().
  int threads = 0;
  /// When non-empty, run every cell instrumented and write the merged event
  /// trace here plus a sibling `<trace_out>.manifest.json`. The scenario's
  /// trace.format selects the encoding: JSONL (first line = run manifest) or
  /// binary .mmtrace (manifest as a leading meta chunk). Empty (default) =
  /// no instrumentation.
  std::string trace_out;
  /// Optional per-cell completion hook (streaming aggregators, progress
  /// display). Invoked from sweep worker threads as cells finish — possibly
  /// concurrently; the callee must synchronize its own state. Never invoked
  /// for cells that threw.
  std::function<void(const CellProgress&)> on_cell_done;
};

/// In-memory capture of one sweep's observability output (see DESIGN.md
/// Section 8). Cells are instrumented independently and their JSONL chunks
/// merged in canonical (density, repetition) order, so `events_jsonl` and
/// `digest` are bit-identical for any thread count. The manifest is kept
/// out of the digest on purpose: it records environment facts (thread
/// count, build) that must not perturb golden-trace comparisons.
struct SweepTrace {
  /// Merged event stream: per cell a `cell_begin` line, the cell's events,
  /// then a `cell_end` line carrying the cell's metrics registry.
  std::string events_jsonl;
  /// Run manifest JSON object (scenario, seed, threads, build, per-cell
  /// summaries).
  std::string manifest_json;
  /// FNV-1a 64 over events_jsonl.
  std::uint64_t digest = 0;
  /// Complete .mmtrace file image (only when the scenario's trace.format is
  /// binary). `events_jsonl` and `digest` are then derived by replaying it,
  /// so they stay byte-identical to what the JSONL format would have
  /// produced.
  std::string binary;
};

/// Aggregated outcome of one sweep point.
struct SweepPoint {
  double density_vpl = 0.0;
  RunningStats degree;
  RunningStats ocr;
  RunningStats atp;
  RunningStats dtp;
  RunningStats fairness;  // Jain index of per-vehicle ATP
  /// Raw per-vehicle samples pooled over repetitions (for CDFs).
  SampleSet ocr_samples;
  SampleSet atp_samples;
};

/// Run a density sweep: for each density, `repetitions` independent worlds
/// and protocol instances. `base` provides every non-density scenario knob.
/// Cells run concurrently on `config.threads` workers; each cell derives a
/// self-contained seed from (config.seed, density index, repetition) and
/// results are merged in deterministic (density, repetition) order, so the
/// output does not depend on thread count or scheduling.
/// `trace` (optional) captures the run's observability output in memory;
/// passing it — or setting config.trace_out — turns instrumentation on for
/// every cell.
[[nodiscard]] std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                                        const ScenarioConfig& base,
                                                        const ProtocolFactory& factory,
                                                        SweepTrace* trace = nullptr);

/// Render a sweep as an aligned text table.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points);

}  // namespace mmv2v::core
