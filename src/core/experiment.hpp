// Experiment runner: repeatable parameter sweeps over scenarios with
// aggregation across seeds. The figure benches, the generic sweep tool and
// the sweep-farm service (src/farm, DESIGN.md Section 15) are built on this.
//
// The unit of execution is one (density, repetition) *cell*: a fully
// self-contained deterministic simulation whose seed derives from
// (experiment seed, density index, repetition). run_density_sweep runs every
// cell on a worker pool and merges in canonical order; the farm runs cells
// one at a time across *processes* (run_sweep_cell), journals the results,
// and performs the identical merge (merge_sweep_cells) at the end — so a
// resumed sweep is bit-identical to an uninterrupted one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"
#include "obs/mmtrace.hpp"

namespace mmv2v::core {

/// Builds a fresh protocol instance for one repetition. The seed is derived
/// from the experiment seed and the repetition index.
using ProtocolFactory = std::function<std::unique_ptr<OhmProtocol>(std::uint64_t seed)>;

/// Summary of one finished (density, repetition) cell, delivered to
/// ExperimentConfig::on_cell_done as the sweep progresses.
struct CellProgress {
  /// Canonical cell index: density_index * repetitions + rep.
  std::size_t index = 0;
  /// Cells finished so far, including this one (completion order, not
  /// canonical order).
  std::size_t completed = 0;
  std::size_t total = 0;
  double density_vpl = 0.0;
  int rep = 0;
  std::uint64_t seed = 0;
  std::string protocol;
  double degree = 0.0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
  double fairness = 0.0;
};

/// Everything one (density, repetition) cell contributes to its SweepPoint,
/// in the order the serial merge consumes it. This is the checkpoint unit:
/// the farm's cell journal (farm/cell_journal.hpp) persists these records so
/// a resumed sweep merges the exact bytes an uninterrupted run would have.
struct CellResult {
  /// Canonical cell index: density_index * repetitions + rep.
  std::size_t index = 0;
  double degree = 0.0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
  double fairness = 0.0;
  std::uint64_t seed = 0;
  std::vector<double> ocr_samples;
  std::vector<double> atp_samples;
  /// This cell's serialized observability chunk (empty when not tracing).
  /// JSONL format fills trace_jsonl; binary fills the chunk stream pair.
  std::string trace_jsonl;
  std::string trace_binary;
  std::vector<obs::ChunkInfo> trace_chunks;
  std::string protocol_name;
};

struct ExperimentConfig {
  std::vector<double> densities_vpl{10.0, 15.0, 20.0, 25.0, 30.0};
  int repetitions = 3;
  double horizon_s = 1.5;
  std::uint64_t seed = 1;
  /// Worker threads for the sweep. Each (density, repetition) cell is an
  /// independent deterministic simulation, so results are bit-identical for
  /// any thread count. <= 0 selects std::thread::hardware_concurrency().
  int threads = 0;
  /// When non-empty, run every cell instrumented and write the merged event
  /// trace here plus a sibling `<trace_out>.manifest.json`. The scenario's
  /// trace.format selects the encoding: JSONL (first line = run manifest) or
  /// binary .mmtrace (manifest as a leading meta chunk). Empty (default) =
  /// no instrumentation.
  std::string trace_out;
  /// Optional per-cell completion hook (streaming aggregators, progress
  /// display). Invoked from sweep worker threads as cells finish — possibly
  /// concurrently; the callee must synchronize its own state. Never invoked
  /// for cells that threw.
  std::function<void(const CellProgress&)> on_cell_done;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return repetitions > 0 ? densities_vpl.size() * static_cast<std::size_t>(repetitions) : 0;
  }
};

/// In-memory capture of one sweep's observability output (see DESIGN.md
/// Section 8). Cells are instrumented independently and their JSONL chunks
/// merged in canonical (density, repetition) order, so `events_jsonl` and
/// `digest` are bit-identical for any thread count. The manifest is kept
/// out of the digest on purpose: it records environment facts (thread
/// count, build) that must not perturb golden-trace comparisons.
struct SweepTrace {
  /// Merged event stream: per cell a `cell_begin` line, the cell's events,
  /// then a `cell_end` line carrying the cell's metrics registry.
  std::string events_jsonl;
  /// Run manifest JSON object (scenario, seed, threads, build, per-cell
  /// summaries).
  std::string manifest_json;
  /// FNV-1a 64 over events_jsonl.
  std::uint64_t digest = 0;
  /// Complete .mmtrace file image (only when the scenario's trace.format is
  /// binary). `events_jsonl` and `digest` are then derived by replaying it,
  /// so they stay byte-identical to what the JSONL format would have
  /// produced.
  std::string binary;
};

/// Aggregated outcome of one sweep point.
struct SweepPoint {
  double density_vpl = 0.0;
  RunningStats degree;
  RunningStats ocr;
  RunningStats atp;
  RunningStats dtp;
  RunningStats fairness;  // Jain index of per-vehicle ATP
  /// Raw per-vehicle samples pooled over repetitions (for CDFs).
  SampleSet ocr_samples;
  SampleSet atp_samples;
};

/// Thrown when one or more sweep cells fail. Cells that had not started when
/// the first failure was observed are cancelled (they contribute no error);
/// every cell that did fail contributes one formatted entry so a multi-cell
/// failure is diagnosed in one throw instead of dropping all but the first.
class SweepFailure : public std::runtime_error {
 public:
  SweepFailure(const std::string& summary, std::vector<std::string> cell_errors)
      : std::runtime_error(summary), cell_errors_(std::move(cell_errors)) {}

  /// One "cell K (density D, rep R): message" entry per failed cell, in
  /// canonical cell order.
  [[nodiscard]] const std::vector<std::string>& cell_errors() const noexcept {
    return cell_errors_;
  }

 private:
  std::vector<std::string> cell_errors_;
};

/// Probe an output path by opening it for append (creating it if absent,
/// never truncating existing content). Throws std::runtime_error naming
/// `what` when the path cannot be opened — call this *before* hours of
/// compute, not after (a typo'd trace_out directory used to throw away a
/// whole completed sweep). Empty paths are silently accepted.
void probe_output_path(const std::string& path, std::string_view what);

/// Run one (density, repetition) cell of the sweep: `index` in
/// [0, config.cell_count()), density index = index / repetitions, rep =
/// index % repetitions. Fully deterministic: the cell's seed mixes
/// (config.seed, density index, rep), so the same index always produces the
/// same CellResult bytes — this is what makes cells resumable and
/// work-stealable across processes. `instrument` turns tracing on (fills the
/// trace_* fields using base.trace.format).
[[nodiscard]] CellResult run_sweep_cell(const ExperimentConfig& config,
                                        const ScenarioConfig& base,
                                        const ProtocolFactory& factory, std::size_t index,
                                        bool instrument);

/// Canonical merge of a complete cell set. `cells` must hold every cell of
/// the sweep in canonical (density, repetition) order — exactly
/// config.cell_count() entries. Produces the same SweepPoints and SweepTrace
/// bytes no matter how (threads, processes, resumed runs) the cells were
/// computed. `workers` is recorded in the manifest only (it is excluded from
/// the event digest); the farm passes 0.
struct SweepMerge {
  std::vector<SweepPoint> points;
  SweepTrace trace;
  bool traced = false;
};
[[nodiscard]] SweepMerge merge_sweep_cells(const ExperimentConfig& config,
                                           const ScenarioConfig& base,
                                           std::vector<CellResult>&& cells, bool tracing,
                                           std::size_t workers);

/// Write the merged trace to config.trace_out plus the sibling
/// `<trace_out>.manifest.json`. Throws std::runtime_error if either write
/// fails — a sweep's output must never be silently dropped. No-op when
/// config.trace_out is empty.
void write_sweep_trace(const ExperimentConfig& config, const SweepTrace& trace);

/// Canonical machine-readable aggregate of a finished sweep (the `out=` file
/// of sweep_runner and the farm's results.json). Deliberately contains no
/// environment facts (threads, build, timing): the same sweep produces the
/// same bytes whether it ran single-process, farmed, or resumed.
[[nodiscard]] std::string sweep_points_json(std::string_view protocol,
                                            const ExperimentConfig& config,
                                            const std::vector<SweepPoint>& points);

/// Run a density sweep: for each density, `repetitions` independent worlds
/// and protocol instances. `base` provides every non-density scenario knob.
/// Cells run concurrently on `config.threads` workers; each cell derives a
/// self-contained seed from (config.seed, density index, repetition) and
/// results are merged in deterministic (density, repetition) order, so the
/// output does not depend on thread count or scheduling.
/// `trace` (optional) captures the run's observability output in memory;
/// passing it — or setting config.trace_out — turns instrumentation on for
/// every cell.
/// Output paths (trace_out and its manifest sibling) are probed before any
/// cell runs; a bad path throws immediately. On cell failure, cells that
/// have not started are cancelled and a SweepFailure aggregating every
/// failed cell's message is thrown.
[[nodiscard]] std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                                        const ScenarioConfig& base,
                                                        const ProtocolFactory& factory,
                                                        SweepTrace* trace = nullptr);

/// Render a sweep as an aligned text table.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points);

}  // namespace mmv2v::core
