// Experiment runner: repeatable parameter sweeps over scenarios with
// aggregation across seeds. The figure benches and the generic sweep tool
// are built on this.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"

namespace mmv2v::core {

/// Builds a fresh protocol instance for one repetition. The seed is derived
/// from the experiment seed and the repetition index.
using ProtocolFactory = std::function<std::unique_ptr<OhmProtocol>(std::uint64_t seed)>;

struct ExperimentConfig {
  std::vector<double> densities_vpl{10.0, 15.0, 20.0, 25.0, 30.0};
  int repetitions = 3;
  double horizon_s = 1.5;
  std::uint64_t seed = 1;
  /// Worker threads for the sweep. Each (density, repetition) cell is an
  /// independent deterministic simulation, so results are bit-identical for
  /// any thread count. <= 0 selects std::thread::hardware_concurrency().
  int threads = 0;
};

/// Aggregated outcome of one sweep point.
struct SweepPoint {
  double density_vpl = 0.0;
  RunningStats degree;
  RunningStats ocr;
  RunningStats atp;
  RunningStats dtp;
  RunningStats fairness;  // Jain index of per-vehicle ATP
  /// Raw per-vehicle samples pooled over repetitions (for CDFs).
  SampleSet ocr_samples;
  SampleSet atp_samples;
};

/// Run a density sweep: for each density, `repetitions` independent worlds
/// and protocol instances. `base` provides every non-density scenario knob.
/// Cells run concurrently on `config.threads` workers; each cell derives a
/// self-contained seed from (config.seed, density index, repetition) and
/// results are merged in deterministic (density, repetition) order, so the
/// output does not depend on thread count or scheduling.
[[nodiscard]] std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                                        const ScenarioConfig& base,
                                                        const ProtocolFactory& factory);

/// Render a sweep as an aligned text table.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points);

}  // namespace mmv2v::core
