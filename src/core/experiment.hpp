// Experiment runner: repeatable parameter sweeps over scenarios with
// aggregation across seeds. The figure benches and the generic sweep tool
// are built on this.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"

namespace mmv2v::core {

/// Builds a fresh protocol instance for one repetition. The seed is derived
/// from the experiment seed and the repetition index.
using ProtocolFactory = std::function<std::unique_ptr<OhmProtocol>(std::uint64_t seed)>;

struct ExperimentConfig {
  std::vector<double> densities_vpl{10.0, 15.0, 20.0, 25.0, 30.0};
  int repetitions = 3;
  double horizon_s = 1.5;
  std::uint64_t seed = 1;
};

/// Aggregated outcome of one sweep point.
struct SweepPoint {
  double density_vpl = 0.0;
  RunningStats degree;
  RunningStats ocr;
  RunningStats atp;
  RunningStats dtp;
  RunningStats fairness;  // Jain index of per-vehicle ATP
  /// Raw per-vehicle samples pooled over repetitions (for CDFs).
  SampleSet ocr_samples;
  SampleSet atp_samples;
};

/// Run a density sweep: for each density, `repetitions` independent worlds
/// and protocol instances. `base` provides every non-density scenario knob.
[[nodiscard]] std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                                        const ScenarioConfig& base,
                                                        const ProtocolFactory& factory);

/// Render a sweep as an aligned text table.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points);

}  // namespace mmv2v::core
