// Per-frame execution resources shared by every phase of the staged
// pipeline: one scratch arena per worker lane, the persistent worker pool,
// and the unified PhaseStats sink. A Simulation owns one FrameResources for
// its whole run and calls begin_frame() at each frame boundary, which
// rewinds the arenas (O(1)) and clears the stats — so steady-state frames
// reuse the same storage with no heap traffic.
#pragma once

#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/engine_params.hpp"
#include "core/phase_stats.hpp"
#include "sim/lane_budgeter.hpp"
#include "sim/worker_pool.hpp"

namespace mmv2v::core {

class FrameResources {
 public:
  explicit FrameResources(const EngineParams& params = {});

  FrameResources(const FrameResources&) = delete;
  FrameResources& operator=(const FrameResources&) = delete;

  /// Rewind all lane arenas and clear the stats sink. Call at each frame
  /// boundary before any phase runs; everything arena-allocated in the
  /// previous frame is invalidated. When the profiler is enabled, each
  /// lane's previous-frame arena high-water mark and cumulative overflow
  /// count are sampled onto "arena.laneN.*" counter tracks first.
  void begin_frame();

  [[nodiscard]] const EngineParams& params() const noexcept { return params_; }
  [[nodiscard]] sim::WorkerPool& pool() noexcept { return pool_; }
  /// Scratch arena for worker lane `lane` (0 = the dispatching thread).
  [[nodiscard]] MonotonicArena& arena(int lane = 0) { return arenas_[static_cast<std::size_t>(lane)]; }
  [[nodiscard]] int lanes() const noexcept { return pool_.lanes(); }
  [[nodiscard]] PhaseStats& stats() noexcept { return stats_; }

 private:
  EngineParams params_;
  /// Lane lease from the process-wide budgeter; sizes the pool below and is
  /// held for the resources' lifetime (declared first so the pool's threads
  /// are joined before the lanes are returned).
  sim::LaneBudgeter::Lease lease_;
  sim::WorkerPool pool_;
  std::vector<MonotonicArena> arenas_;
  /// Prebuilt per-lane counter-track names ("arena.laneN.used_bytes" /
  /// "arena.laneN.overflows"), so the per-frame sample allocates nothing
  /// beyond the profiler's own record.
  std::vector<std::string> used_tracks_;
  std::vector<std::string> overflow_tracks_;
  PhaseStats stats_;
};

}  // namespace mmv2v::core
