#include "core/experiment.hpp"

#include <atomic>
#include <exception>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/profiler.hpp"
#include "common/textio.hpp"
#include "common/version.hpp"
#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "obs/mmtrace.hpp"
#include "sim/lane_budgeter.hpp"
#include "sim/worker_pool.hpp"

namespace mmv2v::core {
namespace {

/// Everything one (density, repetition) cell contributes to its SweepPoint,
/// in the order the serial merge consumes it.
struct CellResult {
  double degree = 0.0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
  double fairness = 0.0;
  std::uint64_t seed = 0;
  std::vector<double> ocr_samples;
  std::vector<double> atp_samples;
  /// This cell's serialized observability chunk (empty when not tracing).
  /// JSONL format fills trace_jsonl; binary fills the chunk stream pair.
  std::string trace_jsonl;
  std::string trace_binary;
  std::vector<obs::ChunkInfo> trace_chunks;
  std::string protocol_name;
};

CellResult run_cell(const ExperimentConfig& config, const ScenarioConfig& base,
                    const ProtocolFactory& factory, std::mutex& factory_mutex,
                    std::size_t density_index, int rep, bool instrument) {
  PROF_SCOPE("sweep.cell");
  // Mixed (not additive) seed derivation: distinct cells cannot alias even
  // when densities are close or repetitions many.
  const std::uint64_t seed =
      derive_seed(config.seed, static_cast<std::uint64_t>(density_index),
                  static_cast<std::uint64_t>(rep));
  ScenarioConfig scenario = base;
  scenario.traffic.density_vpl = config.densities_vpl[density_index];
  scenario.horizon_s = config.horizon_s;
  scenario.seed = seed;

  std::unique_ptr<OhmProtocol> protocol;
  {
    // The factory is user code (often a capturing lambda); don't assume it
    // tolerates concurrent invocation.
    const std::lock_guard<std::mutex> lock{factory_mutex};
    protocol = factory(seed ^ 0xabcd);
  }

  CellResult out;
  out.seed = seed;
  // Tracing streams through a sink so the recorder's buffer can stay bounded
  // (trace.flush_events); the JSONL sink writes the exact bytes the old
  // buffered append_events_jsonl path produced.
  const bool binary = scenario.trace.format == TraceFormat::kBinary;
  std::string cell_begin = "{\"ev\":\"cell_begin\",\"density_vpl\":";
  io::append_number(cell_begin, scenario.traffic.density_vpl);
  cell_begin += ",\"rep\":";
  io::append_number(cell_begin, static_cast<std::uint64_t>(rep));
  cell_begin += ",\"seed\":";
  io::append_number(cell_begin, seed);
  cell_begin += '}';
  obs::MmtraceWriter writer;
  obs::BinaryTraceSink binary_sink{writer};
  JsonlTraceSink jsonl_sink{out.trace_jsonl};
  SimulationOptions options{instrument};
  if (instrument) {
    if (binary) {
      writer.add_line(cell_begin);
      options.trace_sink = &binary_sink;
    } else {
      out.trace_jsonl = cell_begin;
      out.trace_jsonl += '\n';
      options.trace_sink = &jsonl_sink;
    }
  }

  OhmSimulation sim{scenario, *protocol, options};
  sim.run(0.0);

  const NetworkMetrics& m = sim.final_metrics();
  out.protocol_name = std::string{protocol->name()};
  if (instrument) {
    std::string cell_end = "{\"ev\":\"cell_end\",\"metrics\":";
    sim.metrics().append_json(cell_end);
    cell_end += '}';
    if (binary) {
      writer.add_line(cell_end);
      obs::MmtraceWriter::ChunkStream cs = writer.take();
      out.trace_binary = std::move(cs.bytes);
      out.trace_chunks = std::move(cs.chunks);
    } else {
      out.trace_jsonl += cell_end;
      out.trace_jsonl += '\n';
    }
  }
  out.degree = sim.world().mean_degree();
  out.ocr = m.mean_ocr();
  out.atp = m.mean_atp();
  out.dtp = m.mean_dtp();
  out.fairness = network_atp_fairness(m);
  out.ocr_samples.reserve(m.per_vehicle.size());
  out.atp_samples.reserve(m.per_vehicle.size());
  for (const VehicleMetrics& v : m.per_vehicle) {
    out.ocr_samples.push_back(v.ocr);
    out.atp_samples.push_back(v.atp);
  }
  return out;
}

/// Run manifest: environment facts identifying what produced a trace. Kept
/// out of the event digest (it names the thread count and build), which also
/// makes it the safe carrier for the per-cell summary table report tooling
/// renders (obs/report.hpp).
std::string build_manifest(const ExperimentConfig& config, const ScenarioConfig& base,
                           const std::vector<CellResult>& cells, std::size_t workers) {
  const std::string& protocol_name = cells.front().protocol_name;
  std::string out = "{\"ev\":\"manifest\",\"protocol\":";
  io::append_json_string(out, protocol_name);
  out += ",\"git_describe\":";
  io::append_json_string(out, git_describe());
  out += ",\"seed\":";
  io::append_number(out, config.seed);
  out += ",\"threads\":";
  io::append_number(out, static_cast<std::uint64_t>(workers));
  out += ",\"repetitions\":";
  io::append_number(out, static_cast<std::int64_t>(config.repetitions));
  out += ",\"horizon_s\":";
  io::append_number(out, config.horizon_s);
  out += ",\"densities_vpl\":[";
  for (std::size_t i = 0; i < config.densities_vpl.size(); ++i) {
    if (i != 0) out += ',';
    io::append_number(out, config.densities_vpl[i]);
  }
  out += "],\"scenario\":{\"road_length_m\":";
  io::append_number(out, base.traffic.road_length_m);
  out += ",\"lanes_per_direction\":";
  io::append_number(out, static_cast<std::int64_t>(base.traffic.lanes_per_direction));
  out += ",\"bidirectional\":";
  out += base.traffic.bidirectional ? "true" : "false";
  out += ",\"comm_range_m\":";
  io::append_number(out, base.comm_range_m);
  out += ",\"frame_s\":";
  io::append_number(out, base.timing.frame_s);
  out += ",\"task_rate_mbps\":";
  io::append_number(out, base.task.rate_mbps);
  out += "},\"cells\":[";
  const auto reps = static_cast<std::size_t>(config.repetitions);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const CellResult& cell = cells[k];
    if (k != 0) out += ',';
    out += "{\"density_vpl\":";
    io::append_number(out, config.densities_vpl[k / reps]);
    out += ",\"rep\":";
    io::append_number(out, static_cast<std::uint64_t>(k % reps));
    out += ",\"seed\":";
    io::append_number(out, cell.seed);
    out += ",\"degree\":";
    io::append_number(out, cell.degree);
    out += ",\"ocr\":";
    io::append_number(out, cell.ocr);
    out += ",\"atp\":";
    io::append_number(out, cell.atp);
    out += ",\"dtp\":";
    io::append_number(out, cell.dtp);
    out += ",\"fairness\":";
    io::append_number(out, cell.fairness);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace

std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                          const ScenarioConfig& base,
                                          const ProtocolFactory& factory,
                                          SweepTrace* trace) {
  if (config.repetitions <= 0) {
    throw std::invalid_argument{"experiment: repetitions must be >= 1"};
  }
  if (!factory) throw std::invalid_argument{"experiment: null protocol factory"};
  const bool tracing = trace != nullptr || !config.trace_out.empty();

  const std::size_t reps = static_cast<std::size_t>(config.repetitions);
  const std::size_t n_cells = config.densities_vpl.size() * reps;
  std::vector<CellResult> cells(n_cells);
  std::vector<std::exception_ptr> errors(n_cells);
  std::mutex factory_mutex;

  std::atomic<std::size_t> completed{0};
  const auto run_cell_at = [&](std::size_t k) {
    try {
      cells[k] = run_cell(config, base, factory, factory_mutex, k / reps,
                          static_cast<int>(k % reps), tracing);
      if (config.on_cell_done) {
        const CellResult& cell = cells[k];
        CellProgress progress;
        progress.index = k;
        progress.completed = completed.fetch_add(1, std::memory_order_relaxed) + 1;
        progress.total = n_cells;
        progress.density_vpl = config.densities_vpl[k / reps];
        progress.rep = static_cast<int>(k % reps);
        progress.seed = cell.seed;
        progress.protocol = cell.protocol_name;
        progress.degree = cell.degree;
        progress.ocr = cell.ocr;
        progress.atp = cell.atp;
        progress.dtp = cell.dtp;
        progress.fairness = cell.fairness;
        config.on_cell_done(progress);
      }
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };

  // Sweep-cell lanes come from the process-wide budgeter, like every other
  // fan-out point (frame phases, world shards): an explicit thread count is
  // the user's choice, 0 takes the budget's flexible remainder. While the
  // sweep holds its lease, each cell's FrameResources leases from what is
  // left — so sweep x frame parallelism composes additively, never
  // multiplicatively.
  sim::LaneBudgeter::Lease lease =
      sim::LaneBudgeter::instance().acquire(config.threads);
  const std::size_t workers =
      std::min(static_cast<std::size_t>(lease.lanes()), n_cells);

  if (workers <= 1) {
    for (std::size_t k = 0; k < n_cells; ++k) run_cell_at(k);
  } else {
    // One chunk per cell, claimed dynamically — the same unified WorkerPool
    // that runs intra-frame phase loops.
    sim::WorkerPool pool{static_cast<int>(workers)};
    pool.for_chunks(n_cells, 1,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t k = begin; k < end; ++k) run_cell_at(k);
                    });
  }
  lease.release();

  // Surface the first failure in deterministic cell order.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Merge in canonical (density, repetition) order: the exact `add` sequence
  // the old serial runner performed, so aggregates are bit-identical no
  // matter how the cells were scheduled.
  std::vector<SweepPoint> points;
  points.reserve(config.densities_vpl.size());
  for (std::size_t di = 0; di < config.densities_vpl.size(); ++di) {
    SweepPoint point;
    point.density_vpl = config.densities_vpl[di];
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const CellResult& cell = cells[di * reps + rep];
      point.degree.add(cell.degree);
      point.ocr.add(cell.ocr);
      point.atp.add(cell.atp);
      point.dtp.add(cell.dtp);
      point.fairness.add(cell.fairness);
      for (double v : cell.ocr_samples) point.ocr_samples.add(v);
      for (double v : cell.atp_samples) point.atp_samples.add(v);
    }
    points.push_back(std::move(point));
  }

  if (tracing && !cells.empty()) {
    SweepTrace merged;
    merged.manifest_json = build_manifest(config, base, cells, workers);
    if (base.trace.format == TraceFormat::kBinary) {
      // Assemble the .mmtrace image: header, one meta chunk carrying the
      // manifest, each cell's (self-contained) chunk stream in canonical
      // (density, repetition) order, then the index + footer. events_jsonl
      // and the digest are derived by replay so every downstream consumer
      // sees the same bytes the JSONL format would have produced.
      std::string file = obs::mmtrace_file_header();
      std::vector<obs::ChunkInfo> all_chunks;
      obs::MmtraceWriter meta;
      meta.add_line(merged.manifest_json, /*meta=*/true);
      obs::append_mmtrace_chunks(file, all_chunks, meta.take());
      for (CellResult& cell : cells) {
        obs::append_mmtrace_chunks(
            file, all_chunks,
            obs::MmtraceWriter::ChunkStream{std::move(cell.trace_binary),
                                            std::move(cell.trace_chunks)});
      }
      obs::append_mmtrace_index(file, all_chunks);
      merged.events_jsonl = obs::mmtrace_to_jsonl(file, /*include_meta=*/false);
      merged.binary = std::move(file);
    } else {
      // Canonical (density, repetition) order — identical for any thread
      // count.
      for (const CellResult& cell : cells) merged.events_jsonl += cell.trace_jsonl;
    }
    merged.digest = fnv1a64(merged.events_jsonl);

    if (!config.trace_out.empty()) {
      std::ofstream events_file{config.trace_out, std::ios::binary};
      if (!events_file) {
        throw std::runtime_error{"experiment: cannot open trace_out file " + config.trace_out};
      }
      if (!merged.binary.empty()) {
        events_file << merged.binary;
      } else {
        events_file << merged.manifest_json << '\n' << merged.events_jsonl;
      }

      std::ofstream manifest_file{config.trace_out + ".manifest.json", std::ios::binary};
      if (manifest_file) manifest_file << merged.manifest_json << '\n';
    }
    if (trace != nullptr) *trace = std::move(merged);
  }
  return points;
}

void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points) {
  out << "== " << title << " ==\n";
  out << std::fixed << std::setprecision(3);
  out << std::setw(6) << "vpl" << std::setw(9) << "degree" << std::setw(8) << "OCR"
      << std::setw(8) << "+-" << std::setw(8) << "ATP" << std::setw(8) << "DTP"
      << std::setw(9) << "Jain" << '\n';
  for (const SweepPoint& p : points) {
    out << std::setw(6) << std::setprecision(0) << p.density_vpl << std::setprecision(2)
        << std::setw(9) << p.degree.mean() << std::setprecision(3) << std::setw(8)
        << p.ocr.mean() << std::setw(8) << p.ocr.stddev() << std::setw(8) << p.atp.mean()
        << std::setw(8) << p.dtp.mean() << std::setw(9) << p.fairness.mean() << '\n';
  }
}

}  // namespace mmv2v::core
