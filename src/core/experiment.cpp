#include "core/experiment.hpp"

#include <atomic>
#include <exception>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/profiler.hpp"
#include "common/textio.hpp"
#include "common/version.hpp"
#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "obs/mmtrace.hpp"
#include "sim/lane_budgeter.hpp"
#include "sim/worker_pool.hpp"

namespace mmv2v::core {
namespace {

CellResult run_cell(const ExperimentConfig& config, const ScenarioConfig& base,
                    const ProtocolFactory& factory, std::mutex& factory_mutex,
                    std::size_t index, bool instrument) {
  PROF_SCOPE("sweep.cell");
  const std::size_t reps = static_cast<std::size_t>(config.repetitions);
  const std::size_t density_index = index / reps;
  const int rep = static_cast<int>(index % reps);
  // Mixed (not additive) seed derivation: distinct cells cannot alias even
  // when densities are close or repetitions many.
  const std::uint64_t seed =
      derive_seed(config.seed, static_cast<std::uint64_t>(density_index),
                  static_cast<std::uint64_t>(rep));
  ScenarioConfig scenario = base;
  scenario.traffic.density_vpl = config.densities_vpl[density_index];
  scenario.horizon_s = config.horizon_s;
  scenario.seed = seed;

  std::unique_ptr<OhmProtocol> protocol;
  {
    // The factory is user code (often a capturing lambda); don't assume it
    // tolerates concurrent invocation.
    const std::lock_guard<std::mutex> lock{factory_mutex};
    protocol = factory(seed ^ 0xabcd);
  }

  CellResult out;
  out.index = index;
  out.seed = seed;
  // Tracing streams through a sink so the recorder's buffer can stay bounded
  // (trace.flush_events); the JSONL sink writes the exact bytes the old
  // buffered append_events_jsonl path produced.
  const bool binary = scenario.trace.format == TraceFormat::kBinary;
  std::string cell_begin = "{\"ev\":\"cell_begin\",\"density_vpl\":";
  io::append_number(cell_begin, scenario.traffic.density_vpl);
  cell_begin += ",\"rep\":";
  io::append_number(cell_begin, static_cast<std::uint64_t>(rep));
  cell_begin += ",\"seed\":";
  io::append_number(cell_begin, seed);
  cell_begin += '}';
  obs::MmtraceWriter writer;
  obs::BinaryTraceSink binary_sink{writer};
  JsonlTraceSink jsonl_sink{out.trace_jsonl};
  SimulationOptions options{instrument};
  if (instrument) {
    if (binary) {
      writer.add_line(cell_begin);
      options.trace_sink = &binary_sink;
    } else {
      out.trace_jsonl = cell_begin;
      out.trace_jsonl += '\n';
      options.trace_sink = &jsonl_sink;
    }
  }

  OhmSimulation sim{scenario, *protocol, options};
  sim.run(0.0);

  const NetworkMetrics& m = sim.final_metrics();
  out.protocol_name = std::string{protocol->name()};
  if (instrument) {
    std::string cell_end = "{\"ev\":\"cell_end\",\"metrics\":";
    sim.metrics().append_json(cell_end);
    cell_end += '}';
    if (binary) {
      writer.add_line(cell_end);
      obs::MmtraceWriter::ChunkStream cs = writer.take();
      out.trace_binary = std::move(cs.bytes);
      out.trace_chunks = std::move(cs.chunks);
    } else {
      out.trace_jsonl += cell_end;
      out.trace_jsonl += '\n';
    }
  }
  out.degree = sim.world().mean_degree();
  out.ocr = m.mean_ocr();
  out.atp = m.mean_atp();
  out.dtp = m.mean_dtp();
  out.fairness = network_atp_fairness(m);
  out.ocr_samples.reserve(m.per_vehicle.size());
  out.atp_samples.reserve(m.per_vehicle.size());
  for (const VehicleMetrics& v : m.per_vehicle) {
    out.ocr_samples.push_back(v.ocr);
    out.atp_samples.push_back(v.atp);
  }
  return out;
}

void validate_experiment(const ExperimentConfig& config, const ProtocolFactory& factory) {
  if (config.repetitions <= 0) {
    throw std::invalid_argument{"experiment: repetitions must be >= 1"};
  }
  if (!factory) throw std::invalid_argument{"experiment: null protocol factory"};
}

/// Run manifest: environment facts identifying what produced a trace. Kept
/// out of the event digest (it names the thread count and build), which also
/// makes it the safe carrier for the per-cell summary table report tooling
/// renders (obs/report.hpp).
std::string build_manifest(const ExperimentConfig& config, const ScenarioConfig& base,
                           const std::vector<CellResult>& cells, std::size_t workers) {
  const std::string& protocol_name = cells.front().protocol_name;
  std::string out = "{\"ev\":\"manifest\",\"protocol\":";
  io::append_json_string(out, protocol_name);
  out += ",\"git_describe\":";
  io::append_json_string(out, git_describe());
  out += ",\"seed\":";
  io::append_number(out, config.seed);
  out += ",\"threads\":";
  io::append_number(out, static_cast<std::uint64_t>(workers));
  out += ",\"repetitions\":";
  io::append_number(out, static_cast<std::int64_t>(config.repetitions));
  out += ",\"horizon_s\":";
  io::append_number(out, config.horizon_s);
  out += ",\"densities_vpl\":[";
  for (std::size_t i = 0; i < config.densities_vpl.size(); ++i) {
    if (i != 0) out += ',';
    io::append_number(out, config.densities_vpl[i]);
  }
  out += "],\"scenario\":{\"road_length_m\":";
  io::append_number(out, base.traffic.road_length_m);
  out += ",\"lanes_per_direction\":";
  io::append_number(out, static_cast<std::int64_t>(base.traffic.lanes_per_direction));
  out += ",\"bidirectional\":";
  out += base.traffic.bidirectional ? "true" : "false";
  out += ",\"comm_range_m\":";
  io::append_number(out, base.comm_range_m);
  out += ",\"frame_s\":";
  io::append_number(out, base.timing.frame_s);
  out += ",\"task_rate_mbps\":";
  io::append_number(out, base.task.rate_mbps);
  out += "},\"cells\":[";
  const auto reps = static_cast<std::size_t>(config.repetitions);
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const CellResult& cell = cells[k];
    if (k != 0) out += ',';
    out += "{\"density_vpl\":";
    io::append_number(out, config.densities_vpl[k / reps]);
    out += ",\"rep\":";
    io::append_number(out, static_cast<std::uint64_t>(k % reps));
    out += ",\"seed\":";
    io::append_number(out, cell.seed);
    out += ",\"degree\":";
    io::append_number(out, cell.degree);
    out += ",\"ocr\":";
    io::append_number(out, cell.ocr);
    out += ",\"atp\":";
    io::append_number(out, cell.atp);
    out += ",\"dtp\":";
    io::append_number(out, cell.dtp);
    out += ",\"fairness\":";
    io::append_number(out, cell.fairness);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string describe_cell_error(const ExperimentConfig& config, std::size_t index,
                                const std::exception_ptr& error) {
  const auto reps = static_cast<std::size_t>(config.repetitions);
  std::string out = "cell ";
  io::append_number(out, static_cast<std::uint64_t>(index));
  out += " (density ";
  io::append_number(out, config.densities_vpl[index / reps]);
  out += ", rep ";
  io::append_number(out, static_cast<std::uint64_t>(index % reps));
  out += "): ";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    out += e.what();
  } catch (...) {
    out += "unknown error";
  }
  return out;
}

}  // namespace

void probe_output_path(const std::string& path, std::string_view what) {
  if (path.empty()) return;
  // Append mode creates the file when missing but never truncates existing
  // bytes, so probing cannot destroy a previous run's output.
  std::ofstream probe{path, std::ios::binary | std::ios::app};
  if (!probe) {
    std::string message{"experiment: cannot open "};
    message += what;
    message += " path ";
    message += path;
    throw std::runtime_error{message};
  }
}

CellResult run_sweep_cell(const ExperimentConfig& config, const ScenarioConfig& base,
                          const ProtocolFactory& factory, std::size_t index,
                          bool instrument) {
  validate_experiment(config, factory);
  if (index >= config.cell_count()) {
    throw std::invalid_argument{"experiment: cell index out of range"};
  }
  std::mutex factory_mutex;
  return run_cell(config, base, factory, factory_mutex, index, instrument);
}

SweepMerge merge_sweep_cells(const ExperimentConfig& config, const ScenarioConfig& base,
                             std::vector<CellResult>&& cells, bool tracing,
                             std::size_t workers) {
  if (config.repetitions <= 0) {
    throw std::invalid_argument{"experiment: repetitions must be >= 1"};
  }
  if (cells.size() != config.cell_count()) {
    throw std::invalid_argument{"experiment: merge requires every sweep cell"};
  }

  SweepMerge merged;
  // Merge in canonical (density, repetition) order: the exact `add` sequence
  // the old serial runner performed, so aggregates are bit-identical no
  // matter how the cells were scheduled — across threads, processes, or a
  // checkpoint/resume boundary.
  const auto reps = static_cast<std::size_t>(config.repetitions);
  merged.points.reserve(config.densities_vpl.size());
  for (std::size_t di = 0; di < config.densities_vpl.size(); ++di) {
    SweepPoint point;
    point.density_vpl = config.densities_vpl[di];
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const CellResult& cell = cells[di * reps + rep];
      point.degree.add(cell.degree);
      point.ocr.add(cell.ocr);
      point.atp.add(cell.atp);
      point.dtp.add(cell.dtp);
      point.fairness.add(cell.fairness);
      for (double v : cell.ocr_samples) point.ocr_samples.add(v);
      for (double v : cell.atp_samples) point.atp_samples.add(v);
    }
    merged.points.push_back(std::move(point));
  }

  if (tracing && !cells.empty()) {
    merged.traced = true;
    merged.trace.manifest_json = build_manifest(config, base, cells, workers);
    if (base.trace.format == TraceFormat::kBinary) {
      // Assemble the .mmtrace image: header, one meta chunk carrying the
      // manifest, each cell's (self-contained) chunk stream in canonical
      // (density, repetition) order, then the index + footer. events_jsonl
      // and the digest are derived by replay so every downstream consumer
      // sees the same bytes the JSONL format would have produced.
      std::string file = obs::mmtrace_file_header();
      std::vector<obs::ChunkInfo> all_chunks;
      obs::MmtraceWriter meta;
      meta.add_line(merged.trace.manifest_json, /*meta=*/true);
      obs::append_mmtrace_chunks(file, all_chunks, meta.take());
      for (CellResult& cell : cells) {
        obs::append_mmtrace_chunks(
            file, all_chunks,
            obs::MmtraceWriter::ChunkStream{std::move(cell.trace_binary),
                                            std::move(cell.trace_chunks)});
      }
      obs::append_mmtrace_index(file, all_chunks);
      merged.trace.events_jsonl = obs::mmtrace_to_jsonl(file, /*include_meta=*/false);
      merged.trace.binary = std::move(file);
    } else {
      // Canonical (density, repetition) order — identical for any thread
      // count.
      for (const CellResult& cell : cells) merged.trace.events_jsonl += cell.trace_jsonl;
    }
    merged.trace.digest = fnv1a64(merged.trace.events_jsonl);
  }
  return merged;
}

void write_sweep_trace(const ExperimentConfig& config, const SweepTrace& trace) {
  if (config.trace_out.empty()) return;
  {
    std::ofstream events_file{config.trace_out, std::ios::binary};
    if (!events_file) {
      throw std::runtime_error{"experiment: cannot open trace_out file " + config.trace_out};
    }
    if (!trace.binary.empty()) {
      events_file << trace.binary;
    } else {
      events_file << trace.manifest_json << '\n' << trace.events_jsonl;
    }
    events_file.flush();
    if (!events_file) {
      throw std::runtime_error{"experiment: failed writing trace_out file " +
                               config.trace_out};
    }
  }

  const std::string manifest_path = config.trace_out + ".manifest.json";
  std::ofstream manifest_file{manifest_path, std::ios::binary};
  if (manifest_file) manifest_file << trace.manifest_json << '\n';
  manifest_file.flush();
  if (!manifest_file) {
    // A missing manifest used to be swallowed; report tooling then failed
    // hours later on a file nobody knew was absent.
    throw std::runtime_error{"experiment: failed writing manifest file " + manifest_path};
  }
}

std::string sweep_points_json(std::string_view protocol, const ExperimentConfig& config,
                              const std::vector<SweepPoint>& points) {
  std::string out = "{\"ev\":\"sweep_results\",\"protocol\":";
  io::append_json_string(out, protocol);
  out += ",\"seed\":";
  io::append_number(out, config.seed);
  out += ",\"repetitions\":";
  io::append_number(out, static_cast<std::int64_t>(config.repetitions));
  out += ",\"horizon_s\":";
  io::append_number(out, config.horizon_s);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (i != 0) out += ',';
    out += "{\"density_vpl\":";
    io::append_number(out, p.density_vpl);
    out += ",\"cells\":";
    io::append_number(out, static_cast<std::uint64_t>(p.ocr.count()));
    out += ",\"degree_mean\":";
    io::append_number(out, p.degree.mean());
    out += ",\"ocr_mean\":";
    io::append_number(out, p.ocr.mean());
    out += ",\"ocr_stddev\":";
    io::append_number(out, p.ocr.stddev());
    out += ",\"atp_mean\":";
    io::append_number(out, p.atp.mean());
    out += ",\"dtp_mean\":";
    io::append_number(out, p.dtp.mean());
    out += ",\"fairness_mean\":";
    io::append_number(out, p.fairness.mean());
    out += ",\"ocr_p10\":";
    io::append_number(out, p.ocr_samples.percentile(10));
    out += ",\"ocr_p50\":";
    io::append_number(out, p.ocr_samples.percentile(50));
    out += ",\"ocr_p90\":";
    io::append_number(out, p.ocr_samples.percentile(90));
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                          const ScenarioConfig& base,
                                          const ProtocolFactory& factory,
                                          SweepTrace* trace) {
  validate_experiment(config, factory);
  const bool tracing = trace != nullptr || !config.trace_out.empty();

  // Fail fast on unwritable output destinations: a typo'd trace_out
  // directory must surface now, not after every cell has run.
  probe_output_path(config.trace_out, "trace_out");
  if (!config.trace_out.empty()) {
    probe_output_path(config.trace_out + ".manifest.json", "trace manifest");
  }

  const std::size_t n_cells = config.cell_count();
  std::vector<CellResult> cells(n_cells);
  std::vector<std::exception_ptr> errors(n_cells);
  std::mutex factory_mutex;

  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  const std::size_t reps = static_cast<std::size_t>(config.repetitions);
  const auto run_cell_at = [&](std::size_t k) {
    // First-failure cancellation: cells not yet started are skipped once any
    // cell fails (cells already in flight run to completion and report their
    // own outcome).
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      cells[k] = run_cell(config, base, factory, factory_mutex, k, tracing);
      if (config.on_cell_done) {
        const CellResult& cell = cells[k];
        CellProgress progress;
        progress.index = k;
        progress.completed = completed.fetch_add(1, std::memory_order_relaxed) + 1;
        progress.total = n_cells;
        progress.density_vpl = config.densities_vpl[k / reps];
        progress.rep = static_cast<int>(k % reps);
        progress.seed = cell.seed;
        progress.protocol = cell.protocol_name;
        progress.degree = cell.degree;
        progress.ocr = cell.ocr;
        progress.atp = cell.atp;
        progress.dtp = cell.dtp;
        progress.fairness = cell.fairness;
        config.on_cell_done(progress);
      }
    } catch (...) {
      errors[k] = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  // Sweep-cell lanes come from the process-wide budgeter, like every other
  // fan-out point (frame phases, world shards): an explicit thread count is
  // the user's choice, 0 takes the budget's flexible remainder. While the
  // sweep holds its lease, each cell's FrameResources leases from what is
  // left — so sweep x frame parallelism composes additively, never
  // multiplicatively.
  sim::LaneBudgeter::Lease lease =
      sim::LaneBudgeter::instance().acquire(config.threads);
  const std::size_t workers =
      std::min(static_cast<std::size_t>(lease.lanes()), n_cells);

  if (workers <= 1) {
    for (std::size_t k = 0; k < n_cells; ++k) run_cell_at(k);
  } else {
    // One chunk per cell, claimed dynamically — the same unified WorkerPool
    // that runs intra-frame phase loops.
    sim::WorkerPool pool{static_cast<int>(workers)};
    pool.for_chunks(n_cells, 1,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t k = begin; k < end; ++k) run_cell_at(k);
                    });
  }
  lease.release();

  if (failed.load(std::memory_order_relaxed)) {
    // Aggregate every failed cell's message (in deterministic cell order)
    // into one diagnostic instead of dropping all but the first.
    std::vector<std::string> cell_errors;
    for (std::size_t k = 0; k < n_cells; ++k) {
      if (errors[k]) cell_errors.push_back(describe_cell_error(config, k, errors[k]));
    }
    std::string summary = "experiment: ";
    io::append_number(summary, static_cast<std::uint64_t>(cell_errors.size()));
    summary += cell_errors.size() == 1 ? " sweep cell failed" : " sweep cells failed";
    summary += " (remaining cells cancelled): ";
    for (std::size_t i = 0; i < cell_errors.size(); ++i) {
      if (i != 0) summary += "; ";
      summary += cell_errors[i];
    }
    throw SweepFailure{summary, std::move(cell_errors)};
  }

  SweepMerge merged = merge_sweep_cells(config, base, std::move(cells), tracing, workers);
  if (merged.traced) write_sweep_trace(config, merged.trace);
  if (trace != nullptr && merged.traced) *trace = std::move(merged.trace);
  return merged.points;
}

void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points) {
  out << "== " << title << " ==\n";
  out << std::fixed << std::setprecision(3);
  out << std::setw(6) << "vpl" << std::setw(9) << "degree" << std::setw(8) << "OCR"
      << std::setw(8) << "+-" << std::setw(8) << "ATP" << std::setw(8) << "DTP"
      << std::setw(9) << "Jain" << '\n';
  for (const SweepPoint& p : points) {
    out << std::setw(6) << std::setprecision(0) << p.density_vpl << std::setprecision(2)
        << std::setw(9) << p.degree.mean() << std::setprecision(3) << std::setw(8)
        << p.ocr.mean() << std::setw(8) << p.ocr.stddev() << std::setw(8) << p.atp.mean()
        << std::setw(8) << p.dtp.mean() << std::setw(9) << p.fairness.mean() << '\n';
  }
}

}  // namespace mmv2v::core
