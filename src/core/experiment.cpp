#include "core/experiment.hpp"

#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/simulation.hpp"

namespace mmv2v::core {

std::vector<SweepPoint> run_density_sweep(const ExperimentConfig& config,
                                          const ScenarioConfig& base,
                                          const ProtocolFactory& factory) {
  if (config.repetitions <= 0) {
    throw std::invalid_argument{"experiment: repetitions must be >= 1"};
  }
  if (!factory) throw std::invalid_argument{"experiment: null protocol factory"};

  std::vector<SweepPoint> points;
  points.reserve(config.densities_vpl.size());
  for (const double density : config.densities_vpl) {
    SweepPoint point;
    point.density_vpl = density;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      const std::uint64_t seed =
          config.seed + static_cast<std::uint64_t>(rep) * 7919 +
          static_cast<std::uint64_t>(density * 131.0);
      ScenarioConfig scenario = base;
      scenario.traffic.density_vpl = density;
      scenario.horizon_s = config.horizon_s;
      scenario.seed = seed;

      const std::unique_ptr<OhmProtocol> protocol = factory(seed ^ 0xabcd);
      OhmSimulation sim{scenario, *protocol};
      sim.run(0.0);

      const NetworkMetrics& m = sim.final_metrics();
      point.degree.add(sim.world().mean_degree());
      point.ocr.add(m.mean_ocr());
      point.atp.add(m.mean_atp());
      point.dtp.add(m.mean_dtp());
      point.fairness.add(network_atp_fairness(m));
      for (const VehicleMetrics& v : m.per_vehicle) {
        point.ocr_samples.add(v.ocr);
        point.atp_samples.add(v.atp);
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points) {
  out << "== " << title << " ==\n";
  out << std::fixed << std::setprecision(3);
  out << std::setw(6) << "vpl" << std::setw(9) << "degree" << std::setw(8) << "OCR"
      << std::setw(8) << "+-" << std::setw(8) << "ATP" << std::setw(8) << "DTP"
      << std::setw(9) << "Jain" << '\n';
  for (const SweepPoint& p : points) {
    out << std::setw(6) << std::setprecision(0) << p.density_vpl << std::setprecision(2)
        << std::setw(9) << p.degree.mean() << std::setprecision(3) << std::setw(8)
        << p.ocr.mean() << std::setw(8) << p.ocr.stddev() << std::setw(8) << p.atp.mean()
        << std::setw(8) << p.dtp.mean() << std::setw(9) << p.fairness.mean() << '\n';
  }
}

}  // namespace mmv2v::core
