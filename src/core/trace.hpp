// Per-frame trace recording and CSV export. OhmSimulation records one
// FrameRecord per protocol frame; downstream tooling (plots, regression
// dashboards) consumes the CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace mmv2v::core {

struct FrameRecord {
  std::uint64_t frame = 0;
  /// Frame start time [s].
  double time_s = 0.0;
  /// Links (matched pairs / service periods) the protocol activated.
  std::size_t active_links = 0;
  /// Bits delivered network-wide during this frame.
  double bits_delivered = 0.0;
  /// Cumulative bits delivered since simulation start.
  double bits_total = 0.0;
};

class TraceRecorder {
 public:
  void add_frame(FrameRecord record) { frames_.push_back(record); }
  void clear() { frames_.clear(); }

  [[nodiscard]] const std::vector<FrameRecord>& frames() const noexcept { return frames_; }
  [[nodiscard]] bool empty() const noexcept { return frames_.empty(); }

  /// Aggregate network throughput over the recorded window [bit/s].
  [[nodiscard]] double mean_throughput_bps() const;
  /// Mean number of concurrently active links per frame.
  [[nodiscard]] double mean_active_links() const;

  /// Write the frame series as CSV (header + one row per frame).
  void write_csv(std::ostream& out) const;
  /// Write metric samples (time, OCR, ATP, DTP aggregates) as CSV.
  static void write_metrics_csv(std::ostream& out, const std::vector<MetricsSample>& samples);
  /// Write final per-vehicle metrics as CSV.
  static void write_per_vehicle_csv(std::ostream& out, const NetworkMetrics& metrics);

 private:
  std::vector<FrameRecord> frames_;
};

}  // namespace mmv2v::core
