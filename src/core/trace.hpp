// Per-frame trace recording, structured JSONL event tracing and CSV export.
// OhmSimulation records one FrameRecord per protocol frame; instrumented
// protocol phases additionally emit TraceEvents (DESIGN.md Section 8).
// Downstream tooling (plots, regression dashboards, the golden-trace test)
// consumes the CSV / JSONL.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"

namespace mmv2v::core {

struct FrameRecord {
  std::uint64_t frame = 0;
  /// Frame start time [s].
  double time_s = 0.0;
  /// Links (matched pairs / service periods) the protocol activated.
  std::size_t active_links = 0;
  /// Bits delivered network-wide during this frame.
  double bits_delivered = 0.0;
  /// Cumulative bits delivered since simulation start.
  double bits_total = 0.0;
};

/// One typed key/value attribute of a TraceEvent. A tiny closed sum type
/// beats a JSON library dependency: every field serializes deterministically
/// (locale-free, canonical number formatting) so event streams can be hashed.
struct TraceField {
  enum class Kind : std::uint8_t { kU64, kF64, kStr };

  std::string key;
  Kind kind = Kind::kU64;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  std::string str;
};

/// A structured event emitted by an instrumented protocol phase. Fields keep
/// insertion order in the serialized line; `frame`/`time_s` are stamped by
/// the Instrumentation sink, not by the emitter.
struct TraceEvent {
  std::uint64_t frame = 0;
  double time_s = 0.0;
  std::string type;

  std::vector<TraceField> fields;

  explicit TraceEvent(std::string_view event_type) : type(event_type) {}

  TraceEvent& u64(std::string_view key, std::uint64_t value) {
    fields.push_back({std::string{key}, TraceField::Kind::kU64, value, 0.0, {}});
    return *this;
  }
  TraceEvent& f64(std::string_view key, double value) {
    fields.push_back({std::string{key}, TraceField::Kind::kF64, 0, value, {}});
    return *this;
  }
  TraceEvent& str(std::string_view key, std::string_view value) {
    fields.push_back({std::string{key}, TraceField::Kind::kStr, 0, 0.0, std::string{value}});
    return *this;
  }

  /// Serialize as one JSON object (no trailing newline):
  /// {"frame":3,"t":0.06,"ev":"snd_round","round":2,...}
  void append_json(std::string& out) const;
};

/// Streaming consumer of flushed trace events. A TraceRecorder with a sink
/// attached hands batches of events over in record order and forgets them,
/// bounding recorder memory for arbitrarily long runs. Implementations:
/// JsonlTraceSink (below) and obs::BinaryTraceSink (obs/mmtrace.hpp).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Receive one batch of events in record order. A batch is delivered
  /// exactly once; the events are destroyed after the call returns.
  virtual void on_events(std::span<const TraceEvent> events) = 0;
};

/// TraceSink that appends each event's canonical JSONL line to a caller-owned
/// string. Streaming through this sink produces bytes identical to a single
/// append_events_jsonl() call over the same events.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::string& out) : out_(&out) {}
  void on_events(std::span<const TraceEvent> events) override {
    for (const TraceEvent& e : events) {
      e.append_json(*out_);
      *out_ += '\n';
    }
  }

 private:
  std::string* out_;
};

class TraceRecorder {
 public:
  /// Observes every event as it is recorded (before any flush). Used by the
  /// online span builder; unset (the default) costs one branch per event.
  using EventObserver = std::function<void(const TraceEvent&)>;

  void add_frame(FrameRecord record) { frames_.push_back(record); }
  void record_event(TraceEvent event) {
    events_.push_back(std::move(event));
    ++events_recorded_;
    if (observer_) observer_(events_.back());
    if (sink_ != nullptr && flush_every_ > 0 && events_.size() >= flush_every_) flush();
  }
  void clear() {
    frames_.clear();
    events_.clear();
    events_recorded_ = 0;
  }

  /// Attach a streaming sink. With `flush_every` > 0 the in-memory buffer is
  /// bounded: every `flush_every` events are pushed to the sink and dropped
  /// from the buffer (the legacy keep-everything behavior needs
  /// `flush_every` == 0 or no sink). Call flush() after the last event to
  /// drain the tail. Pass nullptr to detach.
  void set_sink(TraceSink* sink, std::size_t flush_every) {
    sink_ = sink;
    flush_every_ = sink == nullptr ? 0 : flush_every;
  }
  /// Push all buffered events to the attached sink and drop them. No-op
  /// without a sink.
  void flush() {
    if (sink_ == nullptr || events_.empty()) return;
    sink_->on_events(events_);
    events_.clear();
  }

  void set_event_observer(EventObserver observer) { observer_ = std::move(observer); }

  [[nodiscard]] const std::vector<FrameRecord>& frames() const noexcept { return frames_; }
  /// Events still buffered. With a flushing sink attached this is only the
  /// unflushed tail; use events_recorded() for the run total.
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  /// Total events recorded since construction / clear(), flushed or not.
  [[nodiscard]] std::uint64_t events_recorded() const noexcept { return events_recorded_; }
  [[nodiscard]] bool empty() const noexcept { return frames_.empty() && events_recorded_ == 0; }

  /// Aggregate network throughput over the recorded window [bit/s]. Needs at
  /// least two frames to infer the frame duration; with fewer it returns 0
  /// rather than dividing by a zero-length window.
  [[nodiscard]] double mean_throughput_bps() const;
  /// Mean number of concurrently active links per frame (0 when no frames
  /// were recorded).
  [[nodiscard]] double mean_active_links() const;

  /// Append the *buffered* event stream as JSONL (one canonical JSON object
  /// per line, '\n'-terminated). Byte-stable across machines and locales.
  /// With a flushing sink attached, flushed events are no longer here — the
  /// sink received their serialization instead.
  void append_events_jsonl(std::string& out) const;
  void write_events_jsonl(std::ostream& out) const;

  /// FNV-1a 64-bit digest of the serialized event stream — the golden-trace
  /// regression fingerprint. Identical event streams hash identically
  /// regardless of thread count because serialization is canonical.
  [[nodiscard]] std::uint64_t events_digest() const;

  /// Write the frame series as CSV (header + one row per frame).
  void write_csv(std::ostream& out) const;
  /// Write metric samples (time, OCR, ATP, DTP aggregates) as CSV.
  static void write_metrics_csv(std::ostream& out, const std::vector<MetricsSample>& samples);
  /// Write final per-vehicle metrics as CSV.
  static void write_per_vehicle_csv(std::ostream& out, const NetworkMetrics& metrics);

 private:
  std::vector<FrameRecord> frames_;
  std::vector<TraceEvent> events_;
  std::uint64_t events_recorded_ = 0;
  TraceSink* sink_ = nullptr;
  std::size_t flush_every_ = 0;
  EventObserver observer_;
};

}  // namespace mmv2v::core
