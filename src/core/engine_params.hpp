// Execution-engine knobs for the staged frame pipeline. These control HOW a
// frame is computed (worker lanes, scratch arena sizing), never WHAT it
// computes: any setting must produce bit-identical results, a property the
// pipeline tests check by comparing golden digests across thread counts.
#pragma once

#include <cstddef>

namespace mmv2v::core {

struct EngineParams {
  /// Worker lanes for intra-frame parallel phase loops (including the
  /// caller). 1 = fully serial (the default, and the reference behavior);
  /// 0 = a flexible request: take whatever is left of the process-wide lane
  /// budget (sim::LaneBudgeter). All lane counts go through the budgeter,
  /// which prevents sweep-level and frame-level parallelism from
  /// multiplying.
  int threads = 1;
  /// Process-wide lane budget (sim::LaneBudgeter::set_budget), applied when
  /// the FrameResources is built. 0 (default) leaves the budget unchanged;
  /// > 0 caps the total lanes of every subsystem — sweep cells, world
  /// shards, frame phases — at this count.
  int lane_budget = 0;
  /// Capacity of each per-lane frame arena [bytes]. Undersizing is safe —
  /// allocations overflow to the heap — but costs the zero-allocation
  /// steady state.
  std::size_t arena_bytes = 1 << 20;
  /// Route the hot per-frame loops (pair enumeration LOS, sweep gain/SINR
  /// evaluation, admission filtering) through the batched SoA kernels in
  /// phy/kernels and geom/batch instead of the scalar reference paths
  /// (config key `engine.batched_kernels`). Bit-identical either way — the
  /// kernels differential suite and the golden digest pin it.
  bool batched_kernels = true;
  /// Rectangular world shards the snapshot pair enumeration is split into
  /// (config key `world.shards`). Each shard owns an x-strip of vehicles and
  /// receives a halo of bodies within interference range of its boundary;
  /// shards run on budgeted lanes. 1 = unsharded. Results are bit-identical
  /// for any value.
  int world_shards = 1;
};

}  // namespace mmv2v::core
