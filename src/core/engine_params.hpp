// Execution-engine knobs for the staged frame pipeline. These control HOW a
// frame is computed (worker lanes, scratch arena sizing), never WHAT it
// computes: any setting must produce bit-identical results, a property the
// pipeline tests check by comparing golden digests across thread counts.
#pragma once

#include <cstddef>

namespace mmv2v::core {

struct EngineParams {
  /// Worker lanes for intra-frame parallel phase loops (including the
  /// caller). 1 = fully serial (the default, and the reference behavior);
  /// 0 = one lane per hardware thread.
  int threads = 1;
  /// Capacity of each per-lane frame arena [bytes]. Undersizing is safe —
  /// allocations overflow to the heap — but costs the zero-allocation
  /// steady state.
  std::size_t arena_bytes = 1 << 20;
};

}  // namespace mmv2v::core
