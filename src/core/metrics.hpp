// Evaluation metrics (paper Section IV-A):
//   * OCR — OHM completion ratio: |N_i^C| / |N_i|
//   * ATP — average transmission progress: mean over neighbors of eta_{i,j}
//   * DTP — deviation of transmission progress: population std-dev of eta
// computed per vehicle against the ground-truth neighborhood, then
// aggregated over the network.
#pragma once

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "core/ledger.hpp"
#include "core/world.hpp"

namespace mmv2v::core {

struct VehicleMetrics {
  net::NodeId id = 0;
  std::size_t neighbor_count = 0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
};

struct NetworkMetrics {
  std::vector<VehicleMetrics> per_vehicle;
  SampleSet ocr;
  SampleSet atp;
  SampleSet dtp;

  [[nodiscard]] double mean_ocr() const { return ocr.mean(); }
  [[nodiscard]] double mean_atp() const { return atp.mean(); }
  [[nodiscard]] double mean_dtp() const { return dtp.mean(); }
};

/// A network-metrics snapshot taken at a simulation time.
struct MetricsSample {
  double time_s = 0.0;
  NetworkMetrics metrics;
};

/// Metrics for one vehicle, or nullopt if it currently has no neighbors.
[[nodiscard]] std::optional<VehicleMetrics> evaluate_vehicle(const World& world,
                                                             const TransferLedger& ledger,
                                                             net::NodeId id);

/// Metrics over the whole network (vehicles without neighbors are skipped).
[[nodiscard]] NetworkMetrics evaluate_network(const World& world, const TransferLedger& ledger);

/// Jain's fairness index over a set of non-negative allocations:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly fair. Empty or
/// all-zero input returns 0.
[[nodiscard]] double jain_fairness(const std::vector<double>& values);

/// Jain fairness of per-vehicle ATP — a complementary fairness view to the
/// paper's per-vehicle DTP (which measures fairness *within* one vehicle's
/// neighborhood, while this measures fairness *across* vehicles).
[[nodiscard]] double network_atp_fairness(const NetworkMetrics& metrics);

}  // namespace mmv2v::core
