// OhmSimulation: the top-level facade. Owns the World, the TransferLedger
// and the frame/mobility event loop; drives one OhmProtocol and samples
// network metrics on a fixed schedule.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/metrics_registry.hpp"
#include "core/frame_resources.hpp"
#include "core/instrument.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "core/scenario.hpp"
#include "core/trace.hpp"
#include "core/world.hpp"

namespace mmv2v::core {

struct SimulationOptions {
  /// Attach the observability layer (phase metrics + JSONL events) to the
  /// protocol for this run. Off by default: protocols then see a null
  /// Instrumentation pointer and pay only a branch per phase.
  bool instrument = false;
  /// Optional streaming consumer for recorded trace events (must outlive the
  /// simulation). With ScenarioConfig::trace.flush_events > 0 the recorder's
  /// buffer is flushed to the sink every N events (bounded memory);
  /// otherwise the sink receives the whole stream once at the end of run().
  TraceSink* trace_sink = nullptr;
};

class OhmSimulation {
 public:
  /// Called at the end of every frame (after UDT completes); used by
  /// application-layer analyzers (see apps/) and custom instrumentation.
  using FrameObserver = std::function<void(const FrameContext&)>;

  /// The protocol must outlive the simulation.
  OhmSimulation(ScenarioConfig config, OhmProtocol& protocol,
                SimulationOptions options = {});
  ~OhmSimulation();

  OhmSimulation(const OhmSimulation&) = delete;
  OhmSimulation& operator=(const OhmSimulation&) = delete;

  void set_frame_observer(FrameObserver observer) { observer_ = std::move(observer); }

  /// Run the full horizon. Metrics are sampled every `sample_interval_s`
  /// (<= 0 samples only at the end) and at the horizon.
  void run(double sample_interval_s = 1.0);

  [[nodiscard]] const World& world() const noexcept { return world_; }
  [[nodiscard]] World& world() noexcept { return world_; }
  [[nodiscard]] const TransferLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const std::vector<MetricsSample>& samples() const noexcept { return samples_; }
  [[nodiscard]] const NetworkMetrics& final_metrics() const;
  [[nodiscard]] std::uint64_t frames_run() const noexcept { return frames_run_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }
  /// Phase metrics accumulated over the run (empty unless
  /// SimulationOptions::instrument was set).
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] bool instrumented() const noexcept { return instrumentation_ != nullptr; }

 private:
  /// Online link-lifecycle span machinery (obs/span_builder.hpp), allocated
  /// only when instrumented with ScenarioConfig::trace.spans set.
  struct SpanState;

  void run_one_frame(std::uint64_t frame_index, double frame_start);

  ScenarioConfig config_;
  World world_;
  TransferLedger ledger_;
  FrameResources resources_;
  OhmProtocol& protocol_;
  FrameObserver observer_;
  std::vector<MetricsSample> samples_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  std::unique_ptr<Instrumentation> instrumentation_;
  std::unique_ptr<SpanState> spans_;
  std::uint64_t frames_run_ = 0;
};

}  // namespace mmv2v::core
