// Instrumentation: the thin sink protocols write observability data through.
// It bundles a MetricsRegistry (named counters/gauges/histograms) and a
// TraceRecorder (structured JSONL events) and stamps every emitted event
// with the current frame number and simulation time.
//
// Protocols hold a nullable `Instrumentation*` (see OhmProtocol); when it is
// null — the default — no metric or event call is ever made, so the disabled
// cost is one predictable branch per phase. OhmSimulation owns one
// Instrumentation per cell, keeping the hot path single-threaded.
#pragma once

#include <cstdint>
#include <utility>

#include "common/metrics_registry.hpp"
#include "core/trace.hpp"

namespace mmv2v::core {

class Instrumentation {
 public:
  Instrumentation(MetricsRegistry& metrics, TraceRecorder& trace)
      : metrics_(&metrics), trace_(&trace) {}

  /// Stamp subsequent events with this frame/time (called by the simulation
  /// loop at each frame boundary).
  void set_frame(std::uint64_t frame, double time_s) noexcept {
    frame_ = frame;
    time_s_ = time_s;
  }

  [[nodiscard]] std::uint64_t frame() const noexcept { return frame_; }
  [[nodiscard]] double time_s() const noexcept { return time_s_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] TraceRecorder& trace() noexcept { return *trace_; }

  /// Record `event`, stamping it with the current frame and time.
  void emit(TraceEvent event) {
    event.frame = frame_;
    event.time_s = time_s_;
    trace_->record_event(std::move(event));
  }

 private:
  MetricsRegistry* metrics_;
  TraceRecorder* trace_;
  std::uint64_t frame_ = 0;
  double time_s_ = 0.0;
};

}  // namespace mmv2v::core
