#include "core/ledger.hpp"

#include <stdexcept>

namespace mmv2v::core {

TransferLedger::TransferLedger(double unit_bits) : unit_bits_(unit_bits) {
  if (unit_bits <= 0.0) throw std::invalid_argument{"TransferLedger: unit_bits must be > 0"};
}

double TransferLedger::record(net::NodeId from, net::NodeId to, double bits) {
  if (bits <= 0.0) return 0.0;
  double& acc = directed_[key(from, to)];
  const double credited = std::min(bits, unit_bits_ - acc);
  acc += credited;
  return credited;
}

double TransferLedger::delivered(net::NodeId from, net::NodeId to) const noexcept {
  const auto it = directed_.find(key(from, to));
  return it == directed_.end() ? 0.0 : it->second;
}

double TransferLedger::eta(net::NodeId a, net::NodeId b) const noexcept {
  return (delivered(a, b) + delivered(b, a)) / (2.0 * unit_bits_);
}

double TransferLedger::total_delivered() const noexcept {
  double acc = 0.0;
  for (const auto& [key, bits] : directed_) acc += bits;
  return acc;
}

std::vector<TransferLedger::DirectedDelivery> TransferLedger::snapshot() const {
  std::vector<DirectedDelivery> out;
  out.reserve(directed_.size());
  for (const auto& [key, bits] : directed_) {
    out.push_back(DirectedDelivery{static_cast<net::NodeId>(key >> 32),
                                   static_cast<net::NodeId>(key & 0xffffffffULL), bits});
  }
  return out;
}

}  // namespace mmv2v::core
