// Fault-injection knobs (DESIGN.md Section 10). Part of the scenario — the
// fault model describes the deployment's impairments, not a protocol choice,
// so every protocol under test faces the same plan. All knobs default to
// zero/off; `enabled()` false guarantees the fault layer draws no random
// number, registers no metric and emits no event, keeping the golden trace
// bit-identical to a build without faults.
#pragma once

namespace mmv2v::fault {

struct FaultParams {
  /// Per-vehicle clock-synchronization drift sigma [us]. Each vehicle holds
  /// a stable Gaussian offset; a pair whose relative offset exceeds half the
  /// relevant dwell window (SND sector dwell, DCM negotiation slot) misses
  /// its rendezvous. 0 disables.
  double clock_drift_us = 0.0;
  /// Stationary control-message loss rate in [0, 1): SSW frames, DMG
  /// beacons, negotiation halves, drop-informs and refinement probes are
  /// erased with this long-run probability. 0 disables.
  double ctrl_loss = 0.0;
  /// Mean loss-burst length [messages] for the Gilbert-Elliott chain behind
  /// `ctrl_loss`. <= 1 degenerates to independent Bernoulli losses.
  double burst_len = 1.0;
  /// Probability a delivered control message is corrupted (fails its CRC and
  /// is discarded like a loss, but counted separately). 0 disables.
  double ctrl_corrupt = 0.0;
  /// GPS position-noise sigma per axis [m], redrawn each frame. Feeds the
  /// neighborhood-admission range check (SSW frames carry the sender's
  /// reported position). 0 disables.
  double gps_sigma_m = 0.0;
  /// Per-vehicle per-frame probability of a radio dropout (churn). The
  /// radio dies at a uniform time inside the dropout frame and stays down
  /// for a geometric number of frames before rejoining. 0 disables.
  double churn_rate = 0.0;
  /// Mean outage length [frames] once a dropout starts (>= 1).
  double churn_outage_frames = 5.0;

  [[nodiscard]] constexpr bool enabled() const noexcept {
    return clock_drift_us > 0.0 || ctrl_loss > 0.0 || ctrl_corrupt > 0.0 ||
           gps_sigma_m > 0.0 || churn_rate > 0.0;
  }
};

}  // namespace mmv2v::fault
