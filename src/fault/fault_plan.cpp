#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/hash.hpp"
#include "geom/angles.hpp"

namespace mmv2v::fault {

namespace {

/// Counter-based standard normal: Box-Muller on two hashed uniforms derived
/// from `key`. No generator state is consumed, so the value is a pure
/// function of the key and call order cannot perturb other streams.
double hashed_normal(std::uint64_t key) {
  const double u1 =
      static_cast<double>((key | 1ULL) >> 11) * 0x1.0p-53 + 0x1.0p-54;
  const double u2 =
      static_cast<double>((mix64(key) | 1ULL) >> 11) * 0x1.0p-53 + 0x1.0p-54;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * geom::kPi * u2);
}

constexpr std::uint64_t kClockTag = 0xc10cdULL;
constexpr std::uint64_t kGpsTag = 0x69e5ULL;
constexpr std::uint64_t kCtrlTag = 0xc7a1ULL;
constexpr std::uint64_t kChurnTag = 0xcca0ULL;

// Per-step stream tags inside one loss chain.
constexpr std::uint64_t kGeStepTag = 0x6e57ULL;
constexpr std::uint64_t kLossTag = 0x1055ULL;
constexpr std::uint64_t kCorruptTag = 0xc0bbULL;
constexpr std::uint64_t kStationaryTag = 0x57a7ULL;

/// Backward-scan horizon for resolving the burst state. The scan ends at the
/// first regeneration point, reached with probability p_enter + p_leave per
/// step; the residual probability of an unresolved scan is
/// (1 - p_enter - p_leave)^kMaxScan — negligible for any realistic knobs.
constexpr std::uint64_t kMaxScan = 4096;

/// Uniform in [0, 1) from a hashed 64-bit key.
double to_unit(std::uint64_t key) {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(const FaultParams& params, std::uint64_t seed)
    : params_{params},
      clock_key_{derive_seed(seed, kClockTag, 0)},
      gps_key_{derive_seed(seed, kGpsTag, 0)},
      ctrl_key_{derive_seed(seed, kCtrlTag, 0)},
      rng_churn_{derive_seed(seed, kChurnTag, 0)} {
  // Gilbert-Elliott parameterization from the user-facing (stationary loss,
  // mean burst length) pair. With leave rate r = 1/L the stationary bad-state
  // probability pi_B = p / (p + r) equals ctrl_loss when
  // p = r * pi_B / (1 - pi_B). The regeneration coupling below needs
  // p + r <= 1 (disjoint enter/leave regions of the per-step uniform); that
  // fails only for burst_len < 1/(1 - loss), which is exactly where the GE
  // process degenerates to iid draws — so those knobs fall back to the
  // memoryless model at the same stationary rate.
  ge_memoryless_ = params_.burst_len <= 1.0;
  if (!ge_memoryless_ && params_.ctrl_loss > 0.0 && params_.ctrl_loss < 1.0) {
    const double r = 1.0 / params_.burst_len;
    ge_p_leave_bad_ = r;
    ge_p_enter_bad_ = r * params_.ctrl_loss / (1.0 - params_.ctrl_loss);
    if (ge_p_enter_bad_ + ge_p_leave_bad_ > 1.0) ge_memoryless_ = true;
  }
}

void FaultPlan::begin_frame(std::uint64_t frame, std::size_t vehicle_count,
                            double frame_s) {
  frame_ = frame;
  frame_stats_ = FaultFrameStats{};
  if (params_.churn_rate <= 0.0) return;

  if (churn_.size() != vehicle_count) churn_.assign(vehicle_count, ChurnState{});
  for (std::size_t i = 0; i < churn_.size(); ++i) {
    ChurnState& c = churn_[i];
    if (c.down) {
      if (frame >= c.down_until_frame) {
        c = ChurnState{};  // radio back up from the top of this frame
        ++frame_stats_.churn_rejoins;
      } else {
        // Outage continues: fully dark for this frame's control plane.
        c.down_from_s = 0.0;
        ++frame_stats_.churn_down;
        continue;
      }
    }
    if (rng_churn_.bernoulli(params_.churn_rate)) {
      c.down = true;
      // Death strikes a uniform time into this frame: the control phases at
      // the frame head still run, but the data window past this point is
      // lost. Outage length is 1 + geometric (mean churn_outage_frames).
      c.down_from_s = rng_churn_.uniform(0.0, frame_s);
      const double mean_extra = std::max(0.0, params_.churn_outage_frames - 1.0);
      std::uint64_t extra = 0;
      if (mean_extra > 0.0) {
        const double q = mean_extra / (1.0 + mean_extra);  // P(one more frame)
        while (extra < 1000 && rng_churn_.bernoulli(q)) ++extra;
      }
      c.down_until_frame = frame + 1 + extra;
      ++frame_stats_.churn_drops;
    }
  }
}

double FaultPlan::clock_offset_s(net::NodeId id) const {
  if (params_.clock_drift_us <= 0.0) return 0.0;
  const std::uint64_t key = mix64(static_cast<std::uint64_t>(id) ^ clock_key_);
  return params_.clock_drift_us * 1e-6 * hashed_normal(key);
}

bool FaultPlan::bad_at(std::uint64_t chain_key, std::uint64_t step) const {
  // Regeneration-scan coupling: the per-step uniform u_j decides
  //   u_j <  p_enter            -> bad at j  (regardless of history)
  //   u_j >= 1 - p_leave        -> good at j (regardless of history)
  //   otherwise                 -> hold the state of j - 1.
  // For the marginals this is exactly the two-state chain (given the good
  // state, P(bad next) = p_enter; given bad, P(good next) = p_leave), but
  // the state at any step resolves by scanning backward to the most recent
  // decisive step — a pure function of the step index, so queries commute.
  for (std::uint64_t d = 0; d <= kMaxScan; ++d) {
    const std::uint64_t j = step - d;
    const double u = to_unit(derive_seed(chain_key, j, kGeStepTag));
    if (u < ge_p_enter_bad_) return true;
    if (u >= 1.0 - ge_p_leave_bad_) return false;
    if (j == 0) return false;  // chains start in the good state
  }
  // Unresolved after the horizon (vanishing probability): stationary draw,
  // constant per scan-sized block so neighboring steps almost always agree.
  return to_unit(derive_seed(chain_key, step / (kMaxScan + 1), kStationaryTag)) <
         params_.ctrl_loss;
}

CtrlFate FaultPlan::ctrl_fate_at_step(net::NodeId sender, CtrlKind kind,
                                      std::uint64_t step) const {
  if (params_.ctrl_loss <= 0.0 && params_.ctrl_corrupt <= 0.0) {
    return CtrlFate::kDelivered;
  }
  const std::uint64_t chain_key = derive_seed(
      ctrl_key_, static_cast<std::uint64_t>(sender), static_cast<std::uint64_t>(kind));
  if (params_.ctrl_loss > 0.0) {
    const bool lost =
        ge_memoryless_
            ? to_unit(derive_seed(chain_key, step, kLossTag)) < params_.ctrl_loss
            : bad_at(chain_key, step);
    if (lost) return CtrlFate::kLost;
  }
  if (params_.ctrl_corrupt > 0.0 &&
      to_unit(derive_seed(chain_key, step, kCorruptTag)) < params_.ctrl_corrupt) {
    return CtrlFate::kCorrupted;
  }
  return CtrlFate::kDelivered;
}

CtrlFate FaultPlan::ctrl_fate(net::NodeId sender, CtrlKind kind, std::uint64_t slot,
                              std::uint64_t slots_per_frame) const {
  return ctrl_fate_at_step(sender, kind, frame_ * slots_per_frame + slot);
}

void FaultPlan::note_ctrl_fate(CtrlFate fate, CtrlKind kind) {
  if (fate == CtrlFate::kLost) {
    count_drop(kind);
  } else if (fate == CtrlFate::kCorrupted) {
    ++frame_stats_.corruptions;
  }
}

void FaultPlan::note_ctrl_outcomes(CtrlKind kind, std::uint64_t losses,
                                   std::uint64_t corruptions) {
  switch (kind) {
    case CtrlKind::kSsw: frame_stats_.ssw_drops += losses; break;
    case CtrlKind::kNegotiation: frame_stats_.negotiation_drops += losses; break;
    case CtrlKind::kInform: frame_stats_.inform_drops += losses; break;
    case CtrlKind::kRefine: frame_stats_.refine_drops += losses; break;
  }
  frame_stats_.corruptions += corruptions;
}

bool FaultPlan::ctrl_lost(net::NodeId sender, CtrlKind kind, std::uint64_t slot,
                          std::uint64_t slots_per_frame) {
  const CtrlFate fate = ctrl_fate(sender, kind, slot, slots_per_frame);
  note_ctrl_fate(fate, kind);
  return fate != CtrlFate::kDelivered;
}

geom::Vec2 FaultPlan::gps_offset(net::NodeId id) const {
  if (params_.gps_sigma_m <= 0.0) return geom::Vec2{0.0, 0.0};
  const std::uint64_t key =
      derive_seed(gps_key_, static_cast<std::uint64_t>(id), frame_);
  return geom::Vec2{params_.gps_sigma_m * hashed_normal(key),
                    params_.gps_sigma_m * hashed_normal(mix64(key ^ 0x5a5aULL))};
}

bool FaultPlan::control_down(net::NodeId id) const {
  if (id >= churn_.size()) return false;
  const ChurnState& c = churn_[id];
  return c.down && c.down_from_s <= 0.0;
}

double FaultPlan::udt_down_from_s(net::NodeId id) const {
  if (id >= churn_.size() || !churn_[id].down) {
    return std::numeric_limits<double>::infinity();
  }
  return churn_[id].down_from_s;
}

void FaultPlan::count_drop(CtrlKind kind) {
  switch (kind) {
    case CtrlKind::kSsw: ++frame_stats_.ssw_drops; break;
    case CtrlKind::kNegotiation: ++frame_stats_.negotiation_drops; break;
    case CtrlKind::kInform: ++frame_stats_.inform_drops; break;
    case CtrlKind::kRefine: ++frame_stats_.refine_drops; break;
  }
}

}  // namespace mmv2v::fault
