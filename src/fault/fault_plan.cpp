#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/hash.hpp"
#include "geom/angles.hpp"

namespace mmv2v::fault {

namespace {

/// Counter-based standard normal: Box-Muller on two hashed uniforms derived
/// from `key`. No generator state is consumed, so the value is a pure
/// function of the key and call order cannot perturb other streams.
double hashed_normal(std::uint64_t key) {
  const double u1 =
      static_cast<double>((key | 1ULL) >> 11) * 0x1.0p-53 + 0x1.0p-54;
  const double u2 =
      static_cast<double>((mix64(key) | 1ULL) >> 11) * 0x1.0p-53 + 0x1.0p-54;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * geom::kPi * u2);
}

constexpr std::uint64_t kClockTag = 0xc10cdULL;
constexpr std::uint64_t kGpsTag = 0x69e5ULL;
constexpr std::uint64_t kCtrlTag = 0xc7a1ULL;
constexpr std::uint64_t kChurnTag = 0xcca0ULL;

}  // namespace

FaultPlan::FaultPlan(const FaultParams& params, std::uint64_t seed)
    : params_{params},
      clock_key_{derive_seed(seed, kClockTag, 0)},
      gps_key_{derive_seed(seed, kGpsTag, 0)},
      rng_churn_{derive_seed(seed, kChurnTag, 0)},
      ctrl_chain_{params.ctrl_loss, params.ctrl_corrupt, params.burst_len,
                  derive_seed(seed, kCtrlTag, 0)} {}

void FaultPlan::begin_frame(std::uint64_t frame, std::size_t vehicle_count,
                            double frame_s) {
  frame_ = frame;
  frame_stats_ = FaultFrameStats{};
  if (params_.churn_rate <= 0.0) return;

  if (churn_.size() != vehicle_count) churn_.assign(vehicle_count, ChurnState{});
  for (std::size_t i = 0; i < churn_.size(); ++i) {
    ChurnState& c = churn_[i];
    if (c.down) {
      if (frame >= c.down_until_frame) {
        c = ChurnState{};  // radio back up from the top of this frame
        ++frame_stats_.churn_rejoins;
      } else {
        // Outage continues: fully dark for this frame's control plane.
        c.down_from_s = 0.0;
        ++frame_stats_.churn_down;
        continue;
      }
    }
    if (rng_churn_.bernoulli(params_.churn_rate)) {
      c.down = true;
      // Death strikes a uniform time into this frame: the control phases at
      // the frame head still run, but the data window past this point is
      // lost. Outage length is 1 + geometric (mean churn_outage_frames).
      c.down_from_s = rng_churn_.uniform(0.0, frame_s);
      const double mean_extra = std::max(0.0, params_.churn_outage_frames - 1.0);
      std::uint64_t extra = 0;
      if (mean_extra > 0.0) {
        const double q = mean_extra / (1.0 + mean_extra);  // P(one more frame)
        while (extra < 1000 && rng_churn_.bernoulli(q)) ++extra;
      }
      c.down_until_frame = frame + 1 + extra;
      ++frame_stats_.churn_drops;
    }
  }
}

double FaultPlan::clock_offset_s(net::NodeId id) const {
  if (params_.clock_drift_us <= 0.0) return 0.0;
  const std::uint64_t key = mix64(static_cast<std::uint64_t>(id) ^ clock_key_);
  return params_.clock_drift_us * 1e-6 * hashed_normal(key);
}

CtrlFate FaultPlan::ctrl_fate_at_step(net::NodeId sender, CtrlKind kind,
                                      std::uint64_t step) const {
  return ctrl_chain_.fate_at_step(static_cast<std::uint64_t>(sender), kind, step);
}

CtrlFate FaultPlan::ctrl_fate(net::NodeId sender, CtrlKind kind, std::uint64_t slot,
                              std::uint64_t slots_per_frame) const {
  return ctrl_fate_at_step(sender, kind, frame_ * slots_per_frame + slot);
}

void FaultPlan::note_ctrl_fate(CtrlFate fate, CtrlKind kind) {
  if (fate == CtrlFate::kLost) {
    count_drop(kind);
  } else if (fate == CtrlFate::kCorrupted) {
    ++frame_stats_.corruptions;
  }
}

void FaultPlan::note_ctrl_outcomes(CtrlKind kind, std::uint64_t losses,
                                   std::uint64_t corruptions) {
  switch (kind) {
    case CtrlKind::kSsw: frame_stats_.ssw_drops += losses; break;
    case CtrlKind::kNegotiation: frame_stats_.negotiation_drops += losses; break;
    case CtrlKind::kInform: frame_stats_.inform_drops += losses; break;
    case CtrlKind::kRefine: frame_stats_.refine_drops += losses; break;
  }
  frame_stats_.corruptions += corruptions;
}

bool FaultPlan::ctrl_lost(net::NodeId sender, CtrlKind kind, std::uint64_t slot,
                          std::uint64_t slots_per_frame) {
  const CtrlFate fate = ctrl_fate(sender, kind, slot, slots_per_frame);
  note_ctrl_fate(fate, kind);
  return fate != CtrlFate::kDelivered;
}

geom::Vec2 FaultPlan::gps_offset(net::NodeId id) const {
  if (params_.gps_sigma_m <= 0.0) return geom::Vec2{0.0, 0.0};
  const std::uint64_t key =
      derive_seed(gps_key_, static_cast<std::uint64_t>(id), frame_);
  return geom::Vec2{params_.gps_sigma_m * hashed_normal(key),
                    params_.gps_sigma_m * hashed_normal(mix64(key ^ 0x5a5aULL))};
}

bool FaultPlan::control_down(net::NodeId id) const {
  if (id >= churn_.size()) return false;
  const ChurnState& c = churn_[id];
  return c.down && c.down_from_s <= 0.0;
}

double FaultPlan::udt_down_from_s(net::NodeId id) const {
  if (id >= churn_.size() || !churn_[id].down) {
    return std::numeric_limits<double>::infinity();
  }
  return churn_[id].down_from_s;
}

void FaultPlan::count_drop(CtrlKind kind) {
  switch (kind) {
    case CtrlKind::kSsw: ++frame_stats_.ssw_drops; break;
    case CtrlKind::kNegotiation: ++frame_stats_.negotiation_drops; break;
    case CtrlKind::kInform: ++frame_stats_.inform_drops; break;
    case CtrlKind::kRefine: ++frame_stats_.refine_drops; break;
  }
}

}  // namespace mmv2v::fault
