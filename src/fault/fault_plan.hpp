// Deterministic per-run fault plan (DESIGN.md Section 10).
//
// A FaultPlan owns every random stream behind the injected impairments, all
// derived from one seed via `derive_seed` and fully independent of the
// protocol / traffic / channel RNGs: compiling the layer in and constructing
// no plan (or a plan with all knobs zero) leaves every other stream's draw
// sequence untouched, so the golden-trace digest is bit-identical.
//
// Protocols hold the plan as a nullable pointer and query it at the exact
// points where a real radio would fail: clock offsets at rendezvous windows,
// a Gilbert-Elliott loss process per (sender, message class), per-frame GPS
// noise at the admission check, and a churn state machine that takes radios
// down mid-frame and back up frames later.
//
// The loss process is counter-based: the burst state at chain step k is a
// pure function of (seed, sender, kind, k), resolved by scanning hashed
// per-step uniforms backward to the most recent regeneration point. No
// mutable chain state exists, so loss queries are order-independent and
// safe to evaluate concurrently from worker lanes — faulted frames run on
// the same pooled sweeps as fault-free ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_params.hpp"
#include "fault/loss_chain.hpp"
#include "geom/vec2.hpp"
#include "net/mac_address.hpp"

namespace mmv2v::fault {

/// Per-frame injection bookkeeping, reset by `begin_frame`. Protocols read
/// this after their control phases to publish `fault.*` counters and the
/// per-frame trace event.
struct FaultFrameStats {
  std::uint64_t ssw_drops = 0;
  std::uint64_t negotiation_drops = 0;
  std::uint64_t inform_drops = 0;
  std::uint64_t refine_drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t sync_misses = 0;
  std::uint64_t churn_drops = 0;
  std::uint64_t churn_rejoins = 0;
  std::uint64_t churn_down = 0;
  std::uint64_t udt_truncations = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return ssw_drops + negotiation_drops + inform_drops + refine_drops +
           corruptions + sync_misses + churn_drops + churn_rejoins +
           churn_down + udt_truncations;
  }
};

class FaultPlan {
 public:
  FaultPlan(const FaultParams& params, std::uint64_t seed);

  [[nodiscard]] const FaultParams& params() const noexcept { return params_; }
  [[nodiscard]] bool enabled() const noexcept { return params_.enabled(); }

  /// Advance the churn state machine into `frame` and reset frame stats.
  /// Must be called once per frame before any other query.
  void begin_frame(std::uint64_t frame, std::size_t vehicle_count,
                   double frame_s);

  /// Stable per-vehicle clock offset [s] (Gaussian, sigma = clock_drift_us).
  /// Counter-based: no RNG state is consumed, so call order is irrelevant.
  [[nodiscard]] double clock_offset_s(net::NodeId id) const;

  /// Record a rendezvous missed because of injected clock drift.
  void note_sync_miss() { ++frame_stats_.sync_misses; }

  /// Fate of the control message `sender` transmits in intra-frame slot
  /// `slot` (of `slots_per_frame` transmission opportunities this frame) for
  /// message class `kind`. Pure counter-based query on the chain step
  /// frame * slots_per_frame + slot: order-independent, const, and safe from
  /// worker lanes. Does not touch frame stats — pair with note_ctrl_fate /
  /// note_ctrl_outcomes. Chains are per (sender, kind) and step across
  /// frames, so bursts span frame boundaries.
  [[nodiscard]] CtrlFate ctrl_fate(net::NodeId sender, CtrlKind kind,
                                   std::uint64_t slot = 0,
                                   std::uint64_t slots_per_frame = 1) const;

  /// Fate at an absolute chain step (exposed for the statistical pins).
  [[nodiscard]] CtrlFate ctrl_fate_at_step(net::NodeId sender, CtrlKind kind,
                                           std::uint64_t step) const;

  /// Tally one ctrl_fate outcome into the per-frame stats.
  void note_ctrl_fate(CtrlFate fate, CtrlKind kind);
  /// Bulk tally for pooled sweeps: merge per-chunk loss/corruption counts.
  void note_ctrl_outcomes(CtrlKind kind, std::uint64_t losses,
                          std::uint64_t corruptions);
  /// Bulk tally of rendezvous misses from injected clock drift.
  void note_sync_misses(std::uint64_t count) { frame_stats_.sync_misses += count; }

  /// Convenience for serial call sites: ctrl_fate + note_ctrl_fate. Returns
  /// true when the message never decodes (lost or corrupted).
  bool ctrl_lost(net::NodeId sender, CtrlKind kind, std::uint64_t slot = 0,
                 std::uint64_t slots_per_frame = 1);

  /// Per-frame GPS error vector [m] for `id` (2-D Gaussian, sigma per axis =
  /// gps_sigma_m). Counter-based on (seed, id, frame): stable within a frame,
  /// redrawn across frames.
  [[nodiscard]] geom::Vec2 gps_offset(net::NodeId id) const;

  /// True when `id`'s radio is down for this frame's whole control plane
  /// (the outage started in an earlier frame). A vehicle whose dropout
  /// starts mid-frame still runs its control phases and only loses the tail
  /// of its data window.
  [[nodiscard]] bool control_down(net::NodeId id) const;

  /// Frame-relative time [s] at which `id`'s radio dies this frame, or
  /// +infinity when it stays up. Protocols clip scheduled UDT windows at
  /// this boundary.
  [[nodiscard]] double udt_down_from_s(net::NodeId id) const;

  /// Record a UDT window clipped or skipped because of churn.
  void note_udt_truncation() { ++frame_stats_.udt_truncations; }

  [[nodiscard]] const FaultFrameStats& frame_stats() const noexcept {
    return frame_stats_;
  }

 private:
  struct ChurnState {
    bool down = false;
    std::uint64_t down_until_frame = 0;  ///< first frame back up
    double down_from_s = 0.0;  ///< frame-relative death time in the frame the
                               ///< outage started; 0 on later outage frames
  };

  void count_drop(CtrlKind kind);

  FaultParams params_;
  std::uint64_t clock_key_ = 0;
  std::uint64_t gps_key_ = 0;
  Xoshiro256pp rng_churn_;
  /// In-band mmWave control-loss chain (fault/loss_chain.hpp). Failover
  /// transports own independent chains keyed off their own seeds, so the
  /// loss processes are per-transport.
  LossChain ctrl_chain_;
  std::vector<ChurnState> churn_;
  std::uint64_t frame_ = 0;
  FaultFrameStats frame_stats_{};
};

}  // namespace mmv2v::fault
