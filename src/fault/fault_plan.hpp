// Deterministic per-run fault plan (DESIGN.md Section 10).
//
// A FaultPlan owns every random stream behind the injected impairments, all
// derived from one seed via `derive_seed` and fully independent of the
// protocol / traffic / channel RNGs: compiling the layer in and constructing
// no plan (or a plan with all knobs zero) leaves every other stream's draw
// sequence untouched, so the golden-trace digest is bit-identical.
//
// Protocols hold the plan as a nullable pointer and query it at the exact
// points where a real radio would fail: clock offsets at rendezvous windows,
// a Gilbert-Elliott loss chain per control-message sender, per-frame GPS
// noise at the admission check, and a churn state machine that takes radios
// down mid-frame and back up frames later.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_params.hpp"
#include "geom/vec2.hpp"
#include "net/mac_address.hpp"

namespace mmv2v::fault {

/// Control-plane message classes subject to loss/corruption. 802.11ad DMG
/// beacons ride the kSsw class (they serve the same discovery role).
enum class CtrlKind : std::uint8_t {
  kSsw = 0,
  kNegotiation = 1,
  kInform = 2,
  kRefine = 3,
};

/// Per-frame injection bookkeeping, reset by `begin_frame`. Protocols read
/// this after their control phases to publish `fault.*` counters and the
/// per-frame trace event.
struct FaultFrameStats {
  std::uint64_t ssw_drops = 0;
  std::uint64_t negotiation_drops = 0;
  std::uint64_t inform_drops = 0;
  std::uint64_t refine_drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t sync_misses = 0;
  std::uint64_t churn_drops = 0;
  std::uint64_t churn_rejoins = 0;
  std::uint64_t churn_down = 0;
  std::uint64_t udt_truncations = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return ssw_drops + negotiation_drops + inform_drops + refine_drops +
           corruptions + sync_misses + churn_drops + churn_rejoins +
           churn_down + udt_truncations;
  }
};

class FaultPlan {
 public:
  FaultPlan(const FaultParams& params, std::uint64_t seed);

  [[nodiscard]] const FaultParams& params() const noexcept { return params_; }
  [[nodiscard]] bool enabled() const noexcept { return params_.enabled(); }

  /// Advance the churn state machine into `frame` and reset frame stats.
  /// Must be called once per frame before any other query.
  void begin_frame(std::uint64_t frame, std::size_t vehicle_count,
                   double frame_s);

  /// Stable per-vehicle clock offset [s] (Gaussian, sigma = clock_drift_us).
  /// Counter-based: no RNG state is consumed, so call order is irrelevant.
  [[nodiscard]] double clock_offset_s(net::NodeId id) const;

  /// Record a rendezvous missed because of injected clock drift.
  void note_sync_miss() { ++frame_stats_.sync_misses; }

  /// Evaluate the loss/corruption chain for one control message from
  /// `sender`. Returns true when the message never decodes (lost in a bad
  /// burst state, or delivered-but-corrupted). Advances `sender`'s
  /// Gilbert-Elliott chain exactly once per call; chains persist across
  /// frames so bursts span frame boundaries.
  bool ctrl_lost(net::NodeId sender, CtrlKind kind);

  /// Per-frame GPS error vector [m] for `id` (2-D Gaussian, sigma per axis =
  /// gps_sigma_m). Counter-based on (seed, id, frame): stable within a frame,
  /// redrawn across frames.
  [[nodiscard]] geom::Vec2 gps_offset(net::NodeId id) const;

  /// True when `id`'s radio is down for this frame's whole control plane
  /// (the outage started in an earlier frame). A vehicle whose dropout
  /// starts mid-frame still runs its control phases and only loses the tail
  /// of its data window.
  [[nodiscard]] bool control_down(net::NodeId id) const;

  /// Frame-relative time [s] at which `id`'s radio dies this frame, or
  /// +infinity when it stays up. Protocols clip scheduled UDT windows at
  /// this boundary.
  [[nodiscard]] double udt_down_from_s(net::NodeId id) const;

  /// Record a UDT window clipped or skipped because of churn.
  void note_udt_truncation() { ++frame_stats_.udt_truncations; }

  [[nodiscard]] const FaultFrameStats& frame_stats() const noexcept {
    return frame_stats_;
  }

 private:
  struct ChurnState {
    bool down = false;
    std::uint64_t down_until_frame = 0;  ///< first frame back up
    double down_from_s = 0.0;  ///< frame-relative death time in the frame the
                               ///< outage started; 0 on later outage frames
  };

  struct LossChain {
    bool bad = false;
  };

  void count_drop(CtrlKind kind);

  FaultParams params_;
  std::uint64_t clock_key_ = 0;
  std::uint64_t gps_key_ = 0;
  Xoshiro256pp rng_ctrl_;
  Xoshiro256pp rng_churn_;
  // Gilbert-Elliott transition probabilities derived from (ctrl_loss,
  // burst_len): r = 1/burst, p = r * loss / (1 - loss) (clamped to 1).
  double ge_p_enter_bad_ = 0.0;
  double ge_p_leave_bad_ = 1.0;
  bool ge_memoryless_ = true;
  std::unordered_map<net::NodeId, LossChain> chains_;
  std::vector<ChurnState> churn_;
  std::uint64_t frame_ = 0;
  FaultFrameStats frame_stats_{};
};

}  // namespace mmv2v::fault
