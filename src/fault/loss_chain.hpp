// Counter-based Gilbert-Elliott control-loss chain, reusable per transport
// (DESIGN.md Sections 10 and 16). A LossChain owns no mutable state: the
// burst state at chain step k is a pure function of (key, sender, kind, k),
// resolved by scanning hashed per-step uniforms backward to the most recent
// regeneration point. Queries therefore commute and are safe to evaluate
// concurrently from worker lanes.
//
// The FaultPlan's in-band mmWave chain and the ControlPlane's sub-6 GHz
// failover chain are both instances of this class with independent keys, so
// enabling one transport never perturbs the draw sequence of another.
#pragma once

#include <cstdint>

namespace mmv2v::fault {

/// Control-plane message classes subject to loss/corruption. 802.11ad DMG
/// beacons ride the kSsw class (they serve the same discovery role).
enum class CtrlKind : std::uint8_t {
  kSsw = 0,
  kNegotiation = 1,
  kInform = 2,
  kRefine = 3,
};

/// Outcome of one control transmission under a loss chain.
enum class CtrlFate : std::uint8_t {
  kDelivered = 0,
  kLost = 1,       ///< erased in a bad burst state
  kCorrupted = 2,  ///< delivered but undecodable
};

class LossChain {
 public:
  /// Default-constructed chains are inert: every message is delivered.
  LossChain() = default;

  /// `loss` is the stationary loss rate in [0, 1), `corrupt` the independent
  /// per-message corruption probability, `burst_len` the mean loss-burst
  /// length (<= 1 degenerates to independent Bernoulli losses), `key` the
  /// seed-derived root of this transport's chain family.
  LossChain(double loss, double corrupt, double burst_len, std::uint64_t key);

  [[nodiscard]] bool active() const noexcept { return loss_ > 0.0 || corrupt_ > 0.0; }
  [[nodiscard]] double loss() const noexcept { return loss_; }

  /// Fate of the message `sender` transmits for class `kind` at absolute
  /// chain step `step`. Chains are per (sender, kind) and step across
  /// frames, so bursts span frame boundaries.
  [[nodiscard]] CtrlFate fate_at_step(std::uint64_t sender, CtrlKind kind,
                                      std::uint64_t step) const;

 private:
  /// Burst (bad) state of chain `chain_key` at step `step`: backward scan to
  /// the most recent regeneration point among the hashed per-step uniforms.
  [[nodiscard]] bool bad_at(std::uint64_t chain_key, std::uint64_t step) const;

  double loss_ = 0.0;
  double corrupt_ = 0.0;
  std::uint64_t key_ = 0;
  // Gilbert-Elliott transition probabilities derived from (loss, burst_len):
  // r = 1/burst, p = r * loss / (1 - loss). The counter-based regeneration
  // coupling needs p + r <= 1; outside that (burst_len below 1/(1 - loss),
  // the iid limit) the process falls back to memoryless draws at the
  // stationary rate.
  double ge_p_enter_bad_ = 0.0;
  double ge_p_leave_bad_ = 1.0;
  bool ge_memoryless_ = true;
};

}  // namespace mmv2v::fault
