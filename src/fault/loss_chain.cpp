#include "fault/loss_chain.hpp"

#include "common/hash.hpp"

namespace mmv2v::fault {

namespace {

// Per-step stream tags inside one loss chain.
constexpr std::uint64_t kGeStepTag = 0x6e57ULL;
constexpr std::uint64_t kLossTag = 0x1055ULL;
constexpr std::uint64_t kCorruptTag = 0xc0bbULL;
constexpr std::uint64_t kStationaryTag = 0x57a7ULL;

/// Backward-scan horizon for resolving the burst state. The scan ends at the
/// first regeneration point, reached with probability p_enter + p_leave per
/// step; the residual probability of an unresolved scan is
/// (1 - p_enter - p_leave)^kMaxScan — negligible for any realistic knobs.
constexpr std::uint64_t kMaxScan = 4096;

/// Uniform in [0, 1) from a hashed 64-bit key.
double to_unit(std::uint64_t key) {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

}  // namespace

LossChain::LossChain(double loss, double corrupt, double burst_len, std::uint64_t key)
    : loss_{loss}, corrupt_{corrupt}, key_{key} {
  // Gilbert-Elliott parameterization from the user-facing (stationary loss,
  // mean burst length) pair. With leave rate r = 1/L the stationary bad-state
  // probability pi_B = p / (p + r) equals `loss` when
  // p = r * pi_B / (1 - pi_B). The regeneration coupling below needs
  // p + r <= 1 (disjoint enter/leave regions of the per-step uniform); that
  // fails only for burst_len < 1/(1 - loss), which is exactly where the GE
  // process degenerates to iid draws — so those knobs fall back to the
  // memoryless model at the same stationary rate.
  ge_memoryless_ = burst_len <= 1.0;
  if (!ge_memoryless_ && loss_ > 0.0 && loss_ < 1.0) {
    const double r = 1.0 / burst_len;
    ge_p_leave_bad_ = r;
    ge_p_enter_bad_ = r * loss_ / (1.0 - loss_);
    if (ge_p_enter_bad_ + ge_p_leave_bad_ > 1.0) ge_memoryless_ = true;
  }
}

bool LossChain::bad_at(std::uint64_t chain_key, std::uint64_t step) const {
  // Regeneration-scan coupling: the per-step uniform u_j decides
  //   u_j <  p_enter            -> bad at j  (regardless of history)
  //   u_j >= 1 - p_leave        -> good at j (regardless of history)
  //   otherwise                 -> hold the state of j - 1.
  // For the marginals this is exactly the two-state chain (given the good
  // state, P(bad next) = p_enter; given bad, P(good next) = p_leave), but
  // the state at any step resolves by scanning backward to the most recent
  // decisive step — a pure function of the step index, so queries commute.
  for (std::uint64_t d = 0; d <= kMaxScan; ++d) {
    const std::uint64_t j = step - d;
    const double u = to_unit(derive_seed(chain_key, j, kGeStepTag));
    if (u < ge_p_enter_bad_) return true;
    if (u >= 1.0 - ge_p_leave_bad_) return false;
    if (j == 0) return false;  // chains start in the good state
  }
  // Unresolved after the horizon (vanishing probability): stationary draw,
  // constant per scan-sized block so neighboring steps almost always agree.
  return to_unit(derive_seed(chain_key, step / (kMaxScan + 1), kStationaryTag)) < loss_;
}

CtrlFate LossChain::fate_at_step(std::uint64_t sender, CtrlKind kind,
                                 std::uint64_t step) const {
  if (loss_ <= 0.0 && corrupt_ <= 0.0) return CtrlFate::kDelivered;
  const std::uint64_t chain_key =
      derive_seed(key_, sender, static_cast<std::uint64_t>(kind));
  if (loss_ > 0.0) {
    const bool lost = ge_memoryless_
                          ? to_unit(derive_seed(chain_key, step, kLossTag)) < loss_
                          : bad_at(chain_key, step);
    if (lost) return CtrlFate::kLost;
  }
  if (corrupt_ > 0.0 &&
      to_unit(derive_seed(chain_key, step, kCorruptTag)) < corrupt_) {
    return CtrlFate::kCorrupted;
  }
  return CtrlFate::kDelivered;
}

}  // namespace mmv2v::fault
