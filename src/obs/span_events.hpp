// Link-lifecycle span event vocabulary (DESIGN.md Section 14).
//
// When `trace.spans` is on, the simulation and the protocol stacks emit one
// small event at each boundary of a pair's lifecycle:
//
//   span_truth {a,b}          first frame the pair is ground-truth in range
//                             (LOS within comm range) — emitted by the
//                             simulation loop, once per pair
//   span_disc  {a,b}          first frame with mutual discovery (each end in
//                             the other's neighbor table / candidate set)
//   span_match {a,b,carried[,rec]}  the pair enters the UDT matching
//                             (carried = 1 when adopted from a previous
//                             frame's matching rather than matched fresh this
//                             frame; rec, present only when the adoption
//                             survived via a control-plane failover, is the
//                             net::TransportId that rescued it: 1 = sub-6,
//                             2 = one-hop relay)
//   span_sched {a,b,fb}       a refined UDT window was scheduled (fb = 1 when
//                             refinement control was lost and the protocol
//                             fell back to sector centers)
//   span_churn {a,b,skip}     a fault clipped the pair's UDT window this
//                             frame (skip = 1 when the whole window was
//                             lost). Emitted at the same site as
//                             FaultEngine::note_udt_truncation, so span churn
//                             totals reconcile exactly with
//                             fault.udt_truncations.
//   span_udt   {tx,rx,bits,blk}  one directed transfer result at frame end;
//                             blk: 0 = LOS, 1 = blocked (NLOS), 2 = out of
//                             cached range. bits may be 0 for starved or
//                             blocked windows.
//
// All span events are gated off by default: they extend the event stream, so
// the golden digest only changes when `trace.spans` is explicitly enabled.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_set>

namespace mmv2v::obs {

inline constexpr std::string_view kSpanTruth = "span_truth";
inline constexpr std::string_view kSpanDisc = "span_disc";
inline constexpr std::string_view kSpanMatch = "span_match";
inline constexpr std::string_view kSpanSched = "span_sched";
inline constexpr std::string_view kSpanChurn = "span_churn";
inline constexpr std::string_view kSpanUdt = "span_udt";

/// Unordered pair key (ids are vehicle indexes, far below 2^32).
[[nodiscard]] inline std::uint64_t span_pair_key(std::uint64_t a, std::uint64_t b) noexcept {
  if (a > b) {
    const std::uint64_t t = a;
    a = b;
    b = t;
  }
  return (a << 32) | b;
}

/// Once-per-pair filter for "first occurrence" span events (span_truth,
/// span_disc). One instance per event type per run.
class SpanOnce {
 public:
  /// True exactly the first time the unordered pair (a, b) is seen.
  [[nodiscard]] bool first(std::uint64_t a, std::uint64_t b) {
    return seen_.insert(span_pair_key(a, b)).second;
  }
  void clear() { seen_.clear(); }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace mmv2v::obs
