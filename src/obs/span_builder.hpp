// Link-lifecycle span builder (DESIGN.md Section 14).
//
// Stitches the span events of obs/span_events.hpp into one causal span per
// vehicle pair — discovery round -> matching adoption -> refinement /
// scheduling -> UDT windows — and terminates each span with an attributed
// outcome. Works both online (as the TraceRecorder's event observer during a
// run) and post-hoc (replaying a recorded event stream, from memory, JSONL
// or .mmtrace); both paths produce identical rollups because attribution
// depends only on per-pair event totals, not on arrival batching.
//
// Reconciliation guarantees (tested in tests/obs/test_spans.cpp):
//   * churn event count        == fault.udt_truncations counter, exactly
//     (emitted at the same call site)
//   * sum of span_udt bits     == udt.delivered_bits gauge, bit-exact
//     (same addition order as the gauge's per-transfer adds)
// The refine fallback flag is intentionally NOT reconciled against
// refine.fallbacks: the refinement engine also counts out-of-cached-range
// pairs there, which is not a control-loss outcome.
//
// Header-only so core can drive it online without a core -> obs link edge.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics_registry.hpp"
#include "common/stats.hpp"
#include "core/trace.hpp"
#include "obs/span_events.hpp"

namespace mmv2v::obs {

/// Attributed terminal outcome of one pair span, in attribution priority
/// order (first matching condition wins; see span_outcome()).
enum class SpanOutcome : std::uint8_t {
  kDelivered = 0,        ///< at least one UDT window moved bits
  kChurned = 1,          ///< nothing delivered; a fault clipped its windows
  kLostCtrl = 2,         ///< nothing delivered; refinement control was lost
  kBlockedNlos = 3,      ///< nothing delivered; its windows were blocked
  kPreempted = 4,        ///< discovered or matched, but never given a usable window
  kNeverDiscovered = 5,  ///< in range per ground truth, never mutually discovered
  /// Delivered, and at least one matching adoption survived only through the
  /// control plane's sub-6 GHz failover transport (DESIGN.md Section 16).
  kRecoveredSub6 = 6,
  /// Delivered, and at least one adoption survived only through a one-hop
  /// relay; relay wins attribution over sub-6 (it is the deeper fallback).
  kRecoveredRelay = 7,
};

inline constexpr std::size_t kSpanOutcomeCount = 8;
/// Outcomes [0, kSpanOutcomeBaseCount) predate the control plane and are
/// always registered by publish(); the recovery outcomes register only when
/// nonzero, so span-enabled runs without failover keep their metrics JSON.
inline constexpr std::size_t kSpanOutcomeBaseCount = 6;

[[nodiscard]] constexpr std::string_view span_outcome_name(SpanOutcome o) noexcept {
  switch (o) {
    case SpanOutcome::kDelivered: return "delivered";
    case SpanOutcome::kChurned: return "churned";
    case SpanOutcome::kLostCtrl: return "lost_ctrl";
    case SpanOutcome::kBlockedNlos: return "blocked_nlos";
    case SpanOutcome::kPreempted: return "preempted";
    case SpanOutcome::kNeverDiscovered: return "never_discovered";
    case SpanOutcome::kRecoveredSub6: return "recovered_sub6";
    case SpanOutcome::kRecoveredRelay: return "recovered_relay";
  }
  return "?";
}

/// Everything known about one unordered vehicle pair's lifecycle.
struct LinkSpan {
  static constexpr std::uint64_t kNoFrame = ~std::uint64_t{0};

  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t truth_frame = kNoFrame;           ///< first ground-truth in-range frame
  std::uint64_t disc_frame = kNoFrame;            ///< first mutual-discovery frame
  std::uint64_t match_frame = kNoFrame;           ///< first matching adoption frame
  std::uint64_t sched_frame = kNoFrame;           ///< first scheduled-window frame
  std::uint64_t first_delivery_frame = kNoFrame;  ///< first frame with bits > 0
  bool carried = false;                           ///< ever adopted via carry-over
  std::uint64_t matches = 0;
  std::uint64_t windows = 0;          ///< span_udt events (directed transfers)
  std::uint64_t blocked_windows = 0;  ///< span_udt with blk != 0
  std::uint64_t truncations = 0;      ///< span_churn events
  std::uint64_t fallbacks = 0;        ///< span_sched with fb = 1
  std::uint64_t sub6_recoveries = 0;  ///< span_match with rec = sub-6
  std::uint64_t relay_recoveries = 0; ///< span_match with rec = relay
  double delivered_bits = 0.0;

  [[nodiscard]] bool discovered() const noexcept { return disc_frame != kNoFrame; }
  [[nodiscard]] bool matched() const noexcept { return match_frame != kNoFrame; }
};

/// Deterministic outcome attribution (priority order documented on
/// SpanOutcome): delivery beats churn beats control loss beats blockage.
[[nodiscard]] inline SpanOutcome span_outcome(const LinkSpan& s) noexcept {
  if (s.delivered_bits > 0.0) {
    if (s.relay_recoveries > 0) return SpanOutcome::kRecoveredRelay;
    if (s.sub6_recoveries > 0) return SpanOutcome::kRecoveredSub6;
    return SpanOutcome::kDelivered;
  }
  if (s.truncations > 0) return SpanOutcome::kChurned;
  if (s.fallbacks > 0) return SpanOutcome::kLostCtrl;
  if (s.blocked_windows > 0) return SpanOutcome::kBlockedNlos;
  if (s.discovered() || s.matched()) return SpanOutcome::kPreempted;
  return SpanOutcome::kNeverDiscovered;
}

/// Span rollup over one run (or one merged trace).
struct SpanRollup {
  std::array<std::uint64_t, kSpanOutcomeCount> outcomes{};
  std::uint64_t spans = 0;
  std::uint64_t truncations = 0;
  double delivered_bits = 0.0;
  /// Frames from first mutual discovery to first matching adoption.
  mmv2v::SampleSet disc_to_match_frames;
  /// Frames from first matching adoption to first delivered bits.
  mmv2v::SampleSet match_to_delivery_frames;
};

class SpanBuilder {
 public:
  /// Consume one trace event; ignores every non-span type, so the whole
  /// stream can be fed through unconditionally.
  void on_event(const core::TraceEvent& e) {
    if (e.type == kSpanUdt) {
      LinkSpan& s = span(field_u64(e, "tx"), field_u64(e, "rx"));
      ++s.windows;
      const double bits = field_f64(e, "bits");
      if (field_u64(e, "blk") != 0) ++s.blocked_windows;
      if (bits > 0.0) {
        // Same addition order as the udt.delivered_bits gauge: event order.
        s.delivered_bits += bits;
        if (s.first_delivery_frame == LinkSpan::kNoFrame) s.first_delivery_frame = e.frame;
      }
    } else if (e.type == kSpanTruth) {
      note_first(span(e), e.frame, &LinkSpan::truth_frame);
    } else if (e.type == kSpanDisc) {
      note_first(span(e), e.frame, &LinkSpan::disc_frame);
    } else if (e.type == kSpanMatch) {
      LinkSpan& s = span(e);
      note_first(s, e.frame, &LinkSpan::match_frame);
      ++s.matches;
      if (field_u64(e, "carried") != 0) s.carried = true;
      // "rec" is only present when the adoption survived via a failover
      // transport; its value is the net::TransportId that rescued it.
      const std::uint64_t rec = field_u64(e, "rec");
      if (rec == 1) {
        ++s.sub6_recoveries;
      } else if (rec == 2) {
        ++s.relay_recoveries;
      }
    } else if (e.type == kSpanSched) {
      LinkSpan& s = span(e);
      note_first(s, e.frame, &LinkSpan::sched_frame);
      if (field_u64(e, "fb") != 0) ++s.fallbacks;
    } else if (e.type == kSpanChurn) {
      ++span(e).truncations;
    }
  }

  [[nodiscard]] const std::unordered_map<std::uint64_t, LinkSpan>& spans() const noexcept {
    return spans_;
  }

  /// Aggregate every span into outcome counts, totals and latency samples.
  [[nodiscard]] SpanRollup rollup() const {
    SpanRollup r;
    // Deterministic iteration: collect keys, sort.
    std::vector<std::uint64_t> keys;
    keys.reserve(spans_.size());
    for (const auto& [key, span] : spans_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t key : keys) {
      const LinkSpan& s = spans_.at(key);
      ++r.spans;
      ++r.outcomes[static_cast<std::size_t>(span_outcome(s))];
      r.truncations += s.truncations;
      r.delivered_bits += s.delivered_bits;
      if (s.discovered() && s.matched()) {
        r.disc_to_match_frames.add(static_cast<double>(s.match_frame - s.disc_frame));
      }
      if (s.matched() && s.first_delivery_frame != LinkSpan::kNoFrame) {
        r.match_to_delivery_frames.add(
            static_cast<double>(s.first_delivery_frame - s.match_frame));
      }
    }
    return r;
  }

  /// Publish the rollup as span.* metrics. Only called when trace.spans is
  /// on — registering these names changes the canonical metrics JSON, which
  /// is part of the golden digest.
  void publish(mmv2v::MetricsRegistry& metrics) const {
    const SpanRollup r = rollup();
    metrics.counter("span.count").add(r.spans);
    for (std::size_t i = 0; i < kSpanOutcomeCount; ++i) {
      if (i >= kSpanOutcomeBaseCount && r.outcomes[i] == 0) continue;
      std::string name{"span.outcome."};
      name += span_outcome_name(static_cast<SpanOutcome>(i));
      metrics.counter(name).add(r.outcomes[i]);
    }
    metrics.counter("span.truncations").add(r.truncations);
    metrics.gauge("span.delivered_bits").add(r.delivered_bits);
    if (!r.disc_to_match_frames.empty()) {
      metrics.gauge("span.latency.disc_to_match_frames.p50")
          .set(r.disc_to_match_frames.percentile(50.0));
      metrics.gauge("span.latency.disc_to_match_frames.p95")
          .set(r.disc_to_match_frames.percentile(95.0));
    }
    if (!r.match_to_delivery_frames.empty()) {
      metrics.gauge("span.latency.match_to_delivery_frames.p50")
          .set(r.match_to_delivery_frames.percentile(50.0));
      metrics.gauge("span.latency.match_to_delivery_frames.p95")
          .set(r.match_to_delivery_frames.percentile(95.0));
    }
  }

  void clear() { spans_.clear(); }

 private:
  /// Tolerant field getters: events decoded from .mmtrace keep their original
  /// kinds, but events re-parsed from JSONL carry every number as f64.
  [[nodiscard]] static std::uint64_t field_u64(const core::TraceEvent& e, std::string_view key) {
    for (const core::TraceField& f : e.fields) {
      if (f.key == key) {
        return f.kind == core::TraceField::Kind::kF64
                   ? static_cast<std::uint64_t>(std::llround(f.f64))
                   : f.u64;
      }
    }
    return 0;
  }
  [[nodiscard]] static double field_f64(const core::TraceEvent& e, std::string_view key) {
    for (const core::TraceField& f : e.fields) {
      if (f.key == key) {
        return f.kind == core::TraceField::Kind::kU64 ? static_cast<double>(f.u64) : f.f64;
      }
    }
    return 0.0;
  }

  LinkSpan& span(std::uint64_t a, std::uint64_t b) {
    LinkSpan& s = spans_[span_pair_key(a, b)];
    if (s.a == 0 && s.b == 0) {
      s.a = static_cast<std::uint32_t>(a < b ? a : b);
      s.b = static_cast<std::uint32_t>(a < b ? b : a);
    }
    return s;
  }
  LinkSpan& span(const core::TraceEvent& e) {
    return span(field_u64(e, "a"), field_u64(e, "b"));
  }

  static void note_first(LinkSpan& s, std::uint64_t frame, std::uint64_t LinkSpan::*member) {
    if (s.*member == LinkSpan::kNoFrame) s.*member = frame;
  }

  std::unordered_map<std::uint64_t, LinkSpan> spans_;
};

}  // namespace mmv2v::obs
