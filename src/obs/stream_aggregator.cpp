#include "obs/stream_aggregator.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/textio.hpp"
#include "obs/atomic_file.hpp"

namespace mmv2v::obs {

StreamAggregator::StreamAggregator(std::string snapshot_path)
    : snapshot_path_(std::move(snapshot_path)) {}

void StreamAggregator::on_cell(const core::CellProgress& cell) {
  const std::lock_guard<std::mutex> lock{mutex_};
  ++seen_;
  total_ = cell.total;
  if (protocol_.empty()) protocol_ = cell.protocol;
  const auto it = std::find_if(rollups_.begin(), rollups_.end(), [&](const DensityRollup& r) {
    return r.density_vpl == cell.density_vpl;
  });
  DensityRollup& rollup = it != rollups_.end() ? *it : rollups_.emplace_back();
  rollup.density_vpl = cell.density_vpl;
  ++rollup.cells;
  rollup.degree.add(cell.degree);
  rollup.ocr.add(cell.ocr);
  rollup.atp.add(cell.atp);
  rollup.dtp.add(cell.dtp);
  rollup.fairness.add(cell.fairness);
  std::sort(rollups_.begin(), rollups_.end(),
            [](const DensityRollup& a, const DensityRollup& b) {
              return a.density_vpl < b.density_vpl;
            });
  if (!snapshot_path_.empty()) write_snapshot_locked();
}

std::function<void(const core::CellProgress&)> StreamAggregator::callback() {
  return [this](const core::CellProgress& cell) { on_cell(cell); };
}

std::size_t StreamAggregator::cells_seen() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return seen_;
}

std::size_t StreamAggregator::write_failures() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return write_failures_;
}

std::vector<DensityRollup> StreamAggregator::rollups() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return rollups_;
}

std::string StreamAggregator::snapshot_json() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return snapshot_json_locked();
}

std::string StreamAggregator::snapshot_json_locked() const {
  std::string out = "{\"completed\":";
  io::append_number(out, static_cast<std::uint64_t>(seen_));
  out += ",\"total\":";
  io::append_number(out, static_cast<std::uint64_t>(total_));
  out += ",\"protocol\":";
  io::append_json_string(out, protocol_);
  out += ",\"densities\":[";
  bool first = true;
  for (const DensityRollup& r : rollups_) {
    if (!first) out += ',';
    first = false;
    out += "{\"density_vpl\":";
    io::append_number(out, r.density_vpl);
    out += ",\"cells\":";
    io::append_number(out, r.cells);
    out += ",\"degree_mean\":";
    io::append_number(out, r.degree.mean());
    out += ",\"ocr_mean\":";
    io::append_number(out, r.ocr.mean());
    out += ",\"ocr_stddev\":";
    io::append_number(out, r.ocr.stddev());
    out += ",\"atp_mean\":";
    io::append_number(out, r.atp.mean());
    out += ",\"dtp_mean\":";
    io::append_number(out, r.dtp.mean());
    out += ",\"fairness_mean\":";
    io::append_number(out, r.fairness.mean());
    out += '}';
  }
  out += "]}\n";
  return out;
}

void StreamAggregator::write_snapshot_locked() {
  // Write-to-temp + rename: readers never observe a torn snapshot. The temp
  // name is unique per (pid, write), so concurrent farm worker processes
  // sharing one snapshot path cannot rename each other's half-written temp
  // files (see obs/atomic_file.hpp).
  if (atomic_write_file(snapshot_path_, snapshot_json_locked())) return;
  ++write_failures_;
  // A silently-bumped private counter hid dead dashboards for whole sweeps;
  // say it out loud (once per failure) and keep the count queryable.
  MMV2V_LOG(kWarn) << "StreamAggregator: snapshot write to '" << snapshot_path_
                   << "' failed (" << write_failures_ << " failure(s) so far)";
}

}  // namespace mmv2v::obs
