#include "obs/stream_aggregator.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/textio.hpp"

namespace mmv2v::obs {

StreamAggregator::StreamAggregator(std::string snapshot_path)
    : snapshot_path_(std::move(snapshot_path)) {}

void StreamAggregator::on_cell(const core::CellProgress& cell) {
  const std::lock_guard<std::mutex> lock{mutex_};
  ++seen_;
  total_ = cell.total;
  if (protocol_.empty()) protocol_ = cell.protocol;
  const auto it = std::find_if(rollups_.begin(), rollups_.end(), [&](const DensityRollup& r) {
    return r.density_vpl == cell.density_vpl;
  });
  DensityRollup& rollup = it != rollups_.end() ? *it : rollups_.emplace_back();
  rollup.density_vpl = cell.density_vpl;
  ++rollup.cells;
  rollup.degree.add(cell.degree);
  rollup.ocr.add(cell.ocr);
  rollup.atp.add(cell.atp);
  rollup.dtp.add(cell.dtp);
  rollup.fairness.add(cell.fairness);
  std::sort(rollups_.begin(), rollups_.end(),
            [](const DensityRollup& a, const DensityRollup& b) {
              return a.density_vpl < b.density_vpl;
            });
  if (!snapshot_path_.empty()) write_snapshot_locked();
}

std::function<void(const core::CellProgress&)> StreamAggregator::callback() {
  return [this](const core::CellProgress& cell) { on_cell(cell); };
}

std::size_t StreamAggregator::cells_seen() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return seen_;
}

std::size_t StreamAggregator::write_failures() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return write_failures_;
}

std::vector<DensityRollup> StreamAggregator::rollups() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return rollups_;
}

std::string StreamAggregator::snapshot_json() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return snapshot_json_locked();
}

std::string StreamAggregator::snapshot_json_locked() const {
  std::string out = "{\"completed\":";
  io::append_number(out, static_cast<std::uint64_t>(seen_));
  out += ",\"total\":";
  io::append_number(out, static_cast<std::uint64_t>(total_));
  out += ",\"protocol\":";
  io::append_json_string(out, protocol_);
  out += ",\"densities\":[";
  bool first = true;
  for (const DensityRollup& r : rollups_) {
    if (!first) out += ',';
    first = false;
    out += "{\"density_vpl\":";
    io::append_number(out, r.density_vpl);
    out += ",\"cells\":";
    io::append_number(out, r.cells);
    out += ",\"degree_mean\":";
    io::append_number(out, r.degree.mean());
    out += ",\"ocr_mean\":";
    io::append_number(out, r.ocr.mean());
    out += ",\"ocr_stddev\":";
    io::append_number(out, r.ocr.stddev());
    out += ",\"atp_mean\":";
    io::append_number(out, r.atp.mean());
    out += ",\"dtp_mean\":";
    io::append_number(out, r.dtp.mean());
    out += ",\"fairness_mean\":";
    io::append_number(out, r.fairness.mean());
    out += '}';
  }
  out += "]}\n";
  return out;
}

void StreamAggregator::write_snapshot_locked() {
  // Write-to-temp + rename: readers never observe a torn snapshot. rename(2)
  // is atomic within a filesystem, and the temp file lives next to the
  // target so they share one.
  const std::string tmp = snapshot_path_ + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      ++write_failures_;
      return;
    }
    out << snapshot_json_locked();
    if (!out.flush()) {
      ++write_failures_;
      return;
    }
  }
  if (std::rename(tmp.c_str(), snapshot_path_.c_str()) != 0) ++write_failures_;
}

}  // namespace mmv2v::obs
