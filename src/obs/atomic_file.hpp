// Atomic snapshot-file writes shared by the streaming aggregator and the
// sweep farm: write the full document to a uniquely-named temp file next to
// the target, then rename(2) it into place, so readers never observe a torn
// file. The temp name mixes the pid and a process-global counter — two farm
// worker processes (or two aggregators in one process) rewriting the same
// snapshot path can never rename each other's half-written temp files, which
// a fixed "<path>.tmp" name used to allow.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include <unistd.h>

namespace mmv2v::obs {

namespace detail {
inline std::atomic<std::uint64_t> g_tmp_counter{0};
}  // namespace detail

/// A temp-file name unique across processes (pid) and across call sites
/// within a process (monotonic counter): "<path>.tmp.<pid>.<n>". The temp
/// lives next to the target so rename(2) stays within one filesystem.
[[nodiscard]] inline std::string unique_tmp_path(const std::string& path) {
  std::string out = path;
  out += ".tmp.";
  out += std::to_string(static_cast<long>(::getpid()));
  out += '.';
  out += std::to_string(
      detail::g_tmp_counter.fetch_add(1, std::memory_order_relaxed));
  return out;
}

/// Atomically replace `path` with `bytes` (unique temp + rename). Returns
/// false — leaving no temp file behind — when the write or rename fails;
/// never throws.
[[nodiscard]] inline bool atomic_write_file(const std::string& path,
                                            std::string_view bytes) {
  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace mmv2v::obs
