// Streaming sweep aggregator (DESIGN.md Section 14, ROADMAP item 4
// primitive): folds finished (density, repetition) cells into per-density
// rollups *while a sweep is still running*, via the
// ExperimentConfig::on_cell_done hook. After every cell it can rewrite a
// snapshot JSON file atomically (tmp + rename), so external monitors always
// read a complete, consistent document even mid-sweep.
//
// Thread-safety: on_cell() is invoked from sweep worker threads, possibly
// concurrently; all state is guarded by one internal mutex. Snapshot writes
// use a per-(pid, write) unique temp name (obs/atomic_file.hpp), so multiple
// farm worker processes may share one snapshot path. Write failures never
// throw into the sweep — they are logged at warn level, counted, and
// surfaced via write_failures().
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/experiment.hpp"

namespace mmv2v::obs {

/// Rolling aggregate of every finished cell at one density.
struct DensityRollup {
  double density_vpl = 0.0;
  std::uint64_t cells = 0;
  RunningStats degree;
  RunningStats ocr;
  RunningStats atp;
  RunningStats dtp;
  RunningStats fairness;
};

class StreamAggregator {
 public:
  /// `snapshot_path` empty (the default) keeps the rollup in memory only;
  /// otherwise every on_cell() rewrites that file atomically.
  explicit StreamAggregator(std::string snapshot_path = {});

  StreamAggregator(const StreamAggregator&) = delete;
  StreamAggregator& operator=(const StreamAggregator&) = delete;

  /// Fold one finished cell into its density's rollup, then (when
  /// configured) rewrite the snapshot file. Thread-safe.
  void on_cell(const core::CellProgress& cell);

  /// Adapter bound to this aggregator for ExperimentConfig::on_cell_done.
  /// The aggregator must outlive the sweep.
  [[nodiscard]] std::function<void(const core::CellProgress&)> callback();

  [[nodiscard]] std::size_t cells_seen() const;
  [[nodiscard]] std::size_t write_failures() const;
  /// Per-density rollups sorted by density (copy; safe mid-sweep).
  [[nodiscard]] std::vector<DensityRollup> rollups() const;

  /// The snapshot document — exactly the bytes the snapshot file holds after
  /// the most recent on_cell():
  ///   {"completed":N,"total":T,"protocol":"...","densities":[
  ///     {"density_vpl":..,"cells":..,"degree_mean":..,"ocr_mean":..,
  ///      "ocr_stddev":..,"atp_mean":..,"dtp_mean":..,"fairness_mean":..},..]}
  [[nodiscard]] std::string snapshot_json() const;

 private:
  [[nodiscard]] std::string snapshot_json_locked() const;
  void write_snapshot_locked();

  mutable std::mutex mutex_;
  std::string snapshot_path_;
  std::string protocol_;
  std::size_t total_ = 0;
  std::size_t seen_ = 0;
  std::size_t write_failures_ = 0;
  std::vector<DensityRollup> rollups_;
};

}  // namespace mmv2v::obs
