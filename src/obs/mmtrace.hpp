// .mmtrace — the chunked binary flight-recorder trace format (DESIGN.md
// Section 14).
//
// Layout:
//   [8B "MMTRACE1"][u32 version]            file header
//   chunk*                                  length-prefixed, CRC-protected
//   index chunk                             chunk offsets/sizes/record counts
//   [u64 index_offset][8B "MMTRIDX1"]       footer (seekable tail)
//
// Every chunk is self-contained: its string-intern table and frame/time
// delta state reset at the chunk boundary, so a reader can skip a corrupted
// or truncated chunk and keep decoding (the reader counts what it skipped).
// Records inside a chunk payload:
//   tag 0  intern     — define the next sequential string id (names, keys,
//                       string field values share one per-chunk table)
//   tag 1  line       — a raw JSONL line (cell_begin / cell_end framing);
//                       included in the event-stream digest
//   tag 2  meta line  — a raw JSONL line excluded from the digest (manifest)
//   tag 3  event      — one TraceEvent: interned type id, flag byte
//                       (frame/time same-as-previous), zigzag varint frame
//                       delta, raw LE double time, varint field count, then
//                       per field varint(key_id * 4 + kind) and the value
//                       (varint u64 | raw LE double | interned string id)
//
// Replaying an .mmtrace file to JSONL reconstructs each TraceEvent and
// re-serializes it through TraceEvent::append_json — the exact code path the
// JSONL writer uses — so the export is byte-identical to a direct JSONL
// trace and the FNV-1a golden digest is preserved.
//
// Header-only on purpose: core/experiment.cpp consumes the encoder for its
// binary trace_out path, and the obs *library* depends on core — keeping
// this layer in headers avoids a dependency cycle between the two targets.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "obs/crc32.hpp"
#include "obs/varint.hpp"

namespace mmv2v::obs {

inline constexpr std::string_view kMmtraceMagic = "MMTRACE1";
inline constexpr std::string_view kMmtraceTailMagic = "MMTRIDX1";
inline constexpr std::uint32_t kMmtraceVersion = 1;
inline constexpr std::uint32_t kChunkMagic = 0x4b4e4843u;  // "CHNK" little-endian
inline constexpr std::uint32_t kIndexMagic = 0x58444e49u;  // "INDX" little-endian
inline constexpr std::size_t kChunkHeaderBytes = 16;
inline constexpr std::size_t kFileHeaderBytes = 12;
inline constexpr std::size_t kFileFooterBytes = 16;
/// Default soft chunk-payload limit: a chunk closes after the record that
/// crosses it. Small enough that a corrupted chunk loses little, large
/// enough that header + CRC overhead is negligible.
inline constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

/// Record tags inside a chunk payload.
enum class MmtraceTag : std::uint8_t { kIntern = 0, kLine = 1, kMetaLine = 2, kEvent = 3 };

/// Field kinds packed into the low 2 bits of the field key varint.
enum : std::uint8_t { kFieldU64 = 0, kFieldF64 = 1, kFieldStr = 2 };

/// One completed chunk's place in a chunk stream (offsets are relative to
/// the stream the chunk was written into; the file assembler re-bases them).
struct ChunkInfo {
  std::uint64_t offset = 0;  ///< chunk header start within the stream
  std::uint32_t bytes = 0;   ///< header + payload size
  std::uint32_t records = 0;
};

namespace detail {

inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

[[nodiscard]] inline std::uint32_t get_u32(std::string_view in, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(std::string_view in, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace detail

/// Streaming encoder producing a chunk stream (no file header/index — the
/// assembler below adds those, so per-cell streams can be concatenated in
/// canonical order exactly like the JSONL merge).
class MmtraceWriter {
 public:
  explicit MmtraceWriter(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  /// Append one trace event (interning its type, keys and string values).
  void add_event(const core::TraceEvent& e) {
    // Intern everything first: tag-0 records must precede the record that
    // references them.
    const std::uint64_t type_id = intern(e.type);
    scratch_ids_.clear();
    for (const core::TraceField& f : e.fields) {
      scratch_ids_.push_back(intern(f.key));
      if (f.kind == core::TraceField::Kind::kStr) scratch_ids_.push_back(intern(f.str));
    }

    put_varint(payload_, static_cast<std::uint64_t>(MmtraceTag::kEvent));
    put_varint(payload_, type_id);
    const bool same_frame = e.frame == prev_frame_;
    const bool same_time =
        std::bit_cast<std::uint64_t>(e.time_s) == std::bit_cast<std::uint64_t>(prev_time_);
    payload_.push_back(static_cast<char>((same_frame ? 1 : 0) | (same_time ? 2 : 0)));
    if (!same_frame) {
      put_varint(payload_, zigzag(static_cast<std::int64_t>(e.frame - prev_frame_)));
      prev_frame_ = e.frame;
    }
    if (!same_time) {
      detail::put_f64(payload_, e.time_s);
      prev_time_ = e.time_s;
    }
    put_varint(payload_, e.fields.size());
    std::size_t id_at = 0;
    for (const core::TraceField& f : e.fields) {
      const std::uint64_t key_id = scratch_ids_[id_at++];
      switch (f.kind) {
        case core::TraceField::Kind::kU64:
          put_varint(payload_, key_id * 4 + kFieldU64);
          put_varint(payload_, f.u64);
          break;
        case core::TraceField::Kind::kF64:
          put_varint(payload_, key_id * 4 + kFieldF64);
          detail::put_f64(payload_, f.f64);
          break;
        case core::TraceField::Kind::kStr:
          put_varint(payload_, key_id * 4 + kFieldStr);
          put_varint(payload_, scratch_ids_[id_at++]);
          break;
      }
    }
    ++records_;
    maybe_finish();
  }

  /// Append one raw JSONL line (without its trailing newline). Meta lines
  /// (the manifest) are excluded from a digest-oriented replay.
  void add_line(std::string_view line, bool meta = false) {
    put_varint(payload_,
               static_cast<std::uint64_t>(meta ? MmtraceTag::kMetaLine : MmtraceTag::kLine));
    put_varint(payload_, line.size());
    payload_.append(line);
    ++records_;
    maybe_finish();
  }

  /// Close the open chunk (if any), appending it to the stream. Idempotent.
  void finish_chunk() {
    if (payload_.empty()) return;
    ChunkInfo info;
    info.offset = stream_.size();
    info.bytes = static_cast<std::uint32_t>(kChunkHeaderBytes + payload_.size());
    info.records = records_;
    detail::put_u32(stream_, kChunkMagic);
    detail::put_u32(stream_, static_cast<std::uint32_t>(payload_.size()));
    detail::put_u32(stream_, records_);
    detail::put_u32(stream_, crc32(payload_));
    stream_ += payload_;
    chunks_.push_back(info);
    payload_.clear();
    records_ = 0;
    // Chunks are self-contained: reset the intern table and delta state.
    intern_.clear();
    next_id_ = 0;
    prev_frame_ = 0;
    prev_time_ = 0.0;
  }

  struct ChunkStream {
    std::string bytes;
    std::vector<ChunkInfo> chunks;
  };

  /// Finish the open chunk and move out the completed stream, leaving the
  /// writer empty and reusable.
  [[nodiscard]] ChunkStream take() {
    finish_chunk();
    ChunkStream out{std::move(stream_), std::move(chunks_)};
    stream_.clear();
    chunks_.clear();
    return out;
  }

  [[nodiscard]] std::size_t stream_bytes() const noexcept {
    return stream_.size() + (payload_.empty() ? 0 : kChunkHeaderBytes + payload_.size());
  }

 private:
  std::uint64_t intern(std::string_view s) {
    const auto it = intern_.find(s);
    if (it != intern_.end()) return it->second;
    const std::uint64_t id = next_id_++;
    intern_.emplace(std::string{s}, id);
    put_varint(payload_, static_cast<std::uint64_t>(MmtraceTag::kIntern));
    put_varint(payload_, s.size());
    payload_.append(s);
    ++records_;
    return id;
  }

  void maybe_finish() {
    if (payload_.size() >= chunk_bytes_) finish_chunk();
  }

  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::size_t chunk_bytes_;
  std::string payload_;
  std::uint32_t records_ = 0;
  std::string stream_;
  std::vector<ChunkInfo> chunks_;
  std::unordered_map<std::string, std::uint64_t, StringHash, std::equal_to<>> intern_;
  std::uint64_t next_id_ = 0;
  std::uint64_t prev_frame_ = 0;
  double prev_time_ = 0.0;
  std::vector<std::uint64_t> scratch_ids_;
};

/// core::TraceSink adapter: stream flushed TraceRecorder batches into an
/// MmtraceWriter. Attach with TraceRecorder::set_sink(&sink, flush_every) to
/// bound recorder memory; the serialized chunk stream is identical for any
/// flush cadence.
class BinaryTraceSink final : public core::TraceSink {
 public:
  explicit BinaryTraceSink(MmtraceWriter& writer) : writer_(&writer) {}
  void on_events(std::span<const core::TraceEvent> events) override {
    for (const core::TraceEvent& e : events) writer_->add_event(e);
  }

 private:
  MmtraceWriter* writer_;
};

// ---- file assembly ---------------------------------------------------------

[[nodiscard]] inline std::string mmtrace_file_header() {
  std::string out{kMmtraceMagic};
  detail::put_u32(out, kMmtraceVersion);
  return out;
}

/// Append one writer's chunk stream to a file image, re-basing its chunk
/// offsets into `all`.
inline void append_mmtrace_chunks(std::string& file, std::vector<ChunkInfo>& all,
                                  MmtraceWriter::ChunkStream&& cs) {
  const std::uint64_t base = file.size();
  for (ChunkInfo info : cs.chunks) {
    info.offset += base;
    all.push_back(info);
  }
  file += cs.bytes;
}

/// Append the trailing index chunk and footer. Call once, after the last
/// chunk stream.
inline void append_mmtrace_index(std::string& file, const std::vector<ChunkInfo>& all) {
  std::string payload;
  std::uint64_t prev_offset = 0;
  for (const ChunkInfo& info : all) {
    put_varint(payload, info.offset - prev_offset);
    put_varint(payload, info.bytes);
    put_varint(payload, info.records);
    prev_offset = info.offset;
  }
  const std::uint64_t index_offset = file.size();
  detail::put_u32(file, kIndexMagic);
  detail::put_u32(file, static_cast<std::uint32_t>(payload.size()));
  detail::put_u32(file, static_cast<std::uint32_t>(all.size()));
  detail::put_u32(file, crc32(payload));
  file += payload;
  detail::put_u64(file, index_offset);
  file += kMmtraceTailMagic;
}

[[nodiscard]] inline bool is_mmtrace(std::string_view bytes) {
  return bytes.size() >= kFileHeaderBytes && bytes.substr(0, kMmtraceMagic.size()) == kMmtraceMagic;
}

// ---- reading ---------------------------------------------------------------

/// One decoded record handed to the reader's visitor.
struct MmtraceRecord {
  MmtraceTag tag = MmtraceTag::kEvent;
  /// Raw line content for kLine / kMetaLine (view into the file buffer).
  std::string_view line;
  /// Reconstructed event for kEvent.
  core::TraceEvent event{""};
};

/// Scan statistics from one reader pass.
struct MmtraceStats {
  std::size_t chunks = 0;          ///< chunks decoded successfully
  std::size_t skipped_chunks = 0;  ///< corrupted / truncated chunks skipped
  std::size_t events = 0;
  std::size_t lines = 0;
  std::size_t meta_lines = 0;
  bool index_ok = false;  ///< trailing index present and CRC-valid
};

/// Sequential reader over a complete in-memory .mmtrace file. Tolerates
/// corruption: a chunk with a bad magic, length, CRC or payload is skipped
/// (and counted) without losing the rest of the stream. The trailing index
/// is validated but not required.
class MmtraceReader {
 public:
  explicit MmtraceReader(std::string_view file) : file_(file) {}

  [[nodiscard]] bool valid_header() const {
    return is_mmtrace(file_) && detail::get_u32(file_, kMmtraceMagic.size()) == kMmtraceVersion;
  }

  /// Visit every decodable record in stream order; returns scan statistics.
  /// `fn` is called as fn(const MmtraceRecord&).
  template <typename Fn>
  MmtraceStats for_each(Fn&& fn) const {
    MmtraceStats stats;
    if (!valid_header()) {
      stats.skipped_chunks = 1;
      return stats;
    }
    std::size_t limit = file_.size();
    // Footer: [u64 index_offset][8B tail magic]. When intact, chunks end at
    // the index chunk.
    if (file_.size() >= kFileHeaderBytes + kFileFooterBytes &&
        file_.substr(file_.size() - kMmtraceTailMagic.size()) == kMmtraceTailMagic) {
      const std::uint64_t index_offset = detail::get_u64(file_, file_.size() - kFileFooterBytes);
      if (index_offset >= kFileHeaderBytes && index_offset + kChunkHeaderBytes <= file_.size() &&
          detail::get_u32(file_, static_cast<std::size_t>(index_offset)) == kIndexMagic) {
        const std::uint32_t payload_bytes =
            detail::get_u32(file_, static_cast<std::size_t>(index_offset) + 4);
        const std::size_t payload_at = static_cast<std::size_t>(index_offset) + kChunkHeaderBytes;
        if (payload_at + payload_bytes <= file_.size() &&
            crc32(file_.substr(payload_at, payload_bytes)) ==
                detail::get_u32(file_, static_cast<std::size_t>(index_offset) + 12)) {
          stats.index_ok = true;
          limit = static_cast<std::size_t>(index_offset);
        }
      }
    }

    std::size_t pos = kFileHeaderBytes;
    std::vector<std::string_view> interns;
    std::vector<MmtraceRecord> records;
    while (pos + kChunkHeaderBytes <= limit) {
      const std::uint32_t magic = detail::get_u32(file_, pos);
      if (magic == kIndexMagic) break;  // index reached without a footer
      if (magic != kChunkMagic) {
        // Bad header: resynchronize on the next chunk magic.
        const std::size_t next = file_.find("CHNK", pos + 1);
        ++stats.skipped_chunks;
        if (next == std::string_view::npos || next >= limit) break;
        pos = next;
        continue;
      }
      const std::uint32_t payload_bytes = detail::get_u32(file_, pos + 4);
      const std::uint32_t crc = detail::get_u32(file_, pos + 12);
      if (pos + kChunkHeaderBytes + payload_bytes > limit) {
        ++stats.skipped_chunks;  // truncated
        break;
      }
      const std::string_view payload = file_.substr(pos + kChunkHeaderBytes, payload_bytes);
      pos += kChunkHeaderBytes + payload_bytes;
      if (crc32(payload) != crc) {
        ++stats.skipped_chunks;
        continue;
      }
      interns.clear();
      records.clear();
      if (!decode_chunk(payload, interns, records)) {
        ++stats.skipped_chunks;
        continue;
      }
      ++stats.chunks;
      for (const MmtraceRecord& r : records) {
        switch (r.tag) {
          case MmtraceTag::kLine:
            ++stats.lines;
            break;
          case MmtraceTag::kMetaLine:
            ++stats.meta_lines;
            break;
          case MmtraceTag::kEvent:
            ++stats.events;
            break;
          case MmtraceTag::kIntern:
            break;
        }
        fn(static_cast<const MmtraceRecord&>(r));
      }
    }
    return stats;
  }

 private:
  /// Decode one CRC-valid chunk payload into records (intern records are
  /// consumed, not emitted). Returns false on any malformed record.
  [[nodiscard]] bool decode_chunk(std::string_view payload, std::vector<std::string_view>& interns,
                                  std::vector<MmtraceRecord>& out) const {
    std::size_t pos = 0;
    std::uint64_t prev_frame = 0;
    double prev_time = 0.0;
    while (pos < payload.size()) {
      std::uint64_t tag = 0;
      if (!get_varint(payload, pos, tag)) return false;
      switch (static_cast<MmtraceTag>(tag)) {
        case MmtraceTag::kIntern: {
          std::uint64_t len = 0;
          if (!get_varint(payload, pos, len) || pos + len > payload.size()) return false;
          interns.push_back(payload.substr(pos, len));
          pos += len;
          break;
        }
        case MmtraceTag::kLine:
        case MmtraceTag::kMetaLine: {
          std::uint64_t len = 0;
          if (!get_varint(payload, pos, len) || pos + len > payload.size()) return false;
          MmtraceRecord r;
          r.tag = static_cast<MmtraceTag>(tag);
          r.line = payload.substr(pos, len);
          pos += len;
          out.push_back(std::move(r));
          break;
        }
        case MmtraceTag::kEvent: {
          std::uint64_t type_id = 0;
          if (!get_varint(payload, pos, type_id) || type_id >= interns.size()) return false;
          if (pos >= payload.size()) return false;
          const auto flags = static_cast<std::uint8_t>(payload[pos++]);
          if ((flags & 1) == 0) {
            std::uint64_t delta = 0;
            if (!get_varint(payload, pos, delta)) return false;
            prev_frame += static_cast<std::uint64_t>(unzigzag(delta));
          }
          if ((flags & 2) == 0) {
            if (pos + 8 > payload.size()) return false;
            prev_time = std::bit_cast<double>(detail::get_u64(payload, pos));
            pos += 8;
          }
          MmtraceRecord r;
          r.tag = MmtraceTag::kEvent;
          r.event = core::TraceEvent{interns[type_id]};
          r.event.frame = prev_frame;
          r.event.time_s = prev_time;
          std::uint64_t field_count = 0;
          if (!get_varint(payload, pos, field_count)) return false;
          for (std::uint64_t i = 0; i < field_count; ++i) {
            std::uint64_t packed = 0;
            if (!get_varint(payload, pos, packed)) return false;
            const std::uint64_t key_id = packed / 4;
            if (key_id >= interns.size()) return false;
            const std::string_view key = interns[key_id];
            switch (packed & 3) {
              case kFieldU64: {
                std::uint64_t v = 0;
                if (!get_varint(payload, pos, v)) return false;
                r.event.u64(key, v);
                break;
              }
              case kFieldF64: {
                if (pos + 8 > payload.size()) return false;
                r.event.f64(key, std::bit_cast<double>(detail::get_u64(payload, pos)));
                pos += 8;
                break;
              }
              case kFieldStr: {
                std::uint64_t sid = 0;
                if (!get_varint(payload, pos, sid) || sid >= interns.size()) return false;
                r.event.str(key, interns[sid]);
                break;
              }
              default:
                return false;
            }
          }
          out.push_back(std::move(r));
          break;
        }
        default:
          return false;
      }
    }
    return true;
  }

  std::string_view file_;
};

/// Replay a complete .mmtrace file to JSONL. With `include_meta` the output
/// is byte-identical to the direct JSONL trace file (manifest first line
/// included); without it, to the digest-covered event stream only.
[[nodiscard]] inline std::string mmtrace_to_jsonl(std::string_view file, bool include_meta = false,
                                                  MmtraceStats* stats = nullptr) {
  std::string out;
  out.reserve(file.size() * 4);
  const MmtraceReader reader{file};
  const MmtraceStats s = reader.for_each([&](const MmtraceRecord& r) {
    switch (r.tag) {
      case MmtraceTag::kMetaLine:
        if (!include_meta) return;
        [[fallthrough]];
      case MmtraceTag::kLine:
        out += r.line;
        out += '\n';
        break;
      case MmtraceTag::kEvent:
        r.event.append_json(out);
        out += '\n';
        break;
      case MmtraceTag::kIntern:
        break;
    }
  });
  if (stats != nullptr) *stats = s;
  return out;
}

}  // namespace mmv2v::obs
