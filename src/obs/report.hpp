// Run-report rendering (DESIGN.md Section 14): turns one recorded sweep
// trace — binary .mmtrace or JSONL, auto-detected — into a self-contained
// HTML document with inline SVG charts: OCR vs density, span outcome
// attribution stacked bars, span-latency percentile curves and an optional
// profiler summary table. No external assets; the file opens anywhere.
//
// The loader replays the trace post-hoc: manifest (run facts + per-cell
// summaries) from the meta line, span events through one SpanBuilder per
// cell so outcomes can be grouped by density. Missing pieces degrade
// gracefully — a trace without span events still yields the OCR chart, a
// bare event stream still yields the span charts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/mmtrace.hpp"
#include "obs/span_builder.hpp"

namespace mmv2v::obs {

/// Per-cell summary parsed from the run manifest's "cells" array.
struct ReportCell {
  double density_vpl = 0.0;
  int rep = 0;
  std::uint64_t seed = 0;
  double degree = 0.0;
  double ocr = 0.0;
  double atp = 0.0;
  double dtp = 0.0;
  double fairness = 0.0;
};

/// Span rollup over every cell at one density.
struct DensitySpans {
  double density_vpl = 0.0;
  SpanRollup rollup;
};

/// Everything the HTML renderer needs, parsed from one trace.
struct ReportData {
  bool binary = false;          ///< input was .mmtrace (vs JSONL)
  MmtraceStats stats;           ///< binary decode stats (zeros for JSONL)
  std::string protocol;         ///< from the manifest ("" when absent)
  std::string manifest_json;    ///< raw manifest line ("" when absent)
  std::vector<ReportCell> cells;
  SpanRollup spans;                       ///< whole-trace rollup
  std::vector<DensitySpans> density_spans;  ///< sorted by density
  std::uint64_t events = 0;     ///< trace events replayed
};

/// Parse a recorded trace into the report model. Accepts the bytes of a
/// .mmtrace file or a JSONL trace (manifest first line, then events).
[[nodiscard]] ReportData load_report_data(std::string_view trace_bytes);

/// Render the report as one self-contained HTML document. `profiler_json`
/// (optional) is a prof::report_json() document rendered as a per-scope
/// table; pass "" to omit the section.
[[nodiscard]] std::string render_report_html(const ReportData& data,
                                             std::string_view title = "mmv2v run report",
                                             std::string_view profiler_json = {});

/// Write render_report_html() to `path`. Throws std::runtime_error on I/O
/// failure.
void write_report_html(const std::string& path, const ReportData& data,
                       std::string_view title = "mmv2v run report",
                       std::string_view profiler_json = {});

}  // namespace mmv2v::obs
