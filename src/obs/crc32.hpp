// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte strings —
// the per-chunk integrity check of the .mmtrace format (DESIGN.md
// Section 14). Table-driven, table built at compile time; no zlib
// dependency.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mmv2v::obs {

namespace detail {

consteval std::array<std::uint32_t, 256> crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = crc32_table();

}  // namespace detail

/// CRC-32 of `data` (standard init/final inversion; crc32("123456789") ==
/// 0xCBF43926).
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xffffffffu;
  for (const char ch : data) {
    c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace mmv2v::obs
