// LEB128 varint and zigzag codecs for the .mmtrace flight-recorder format
// (DESIGN.md Section 14). Header-only: the encoder is on the trace hot path
// and the decoder runs in tools/tests; neither is worth a translation unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mmv2v::obs {

/// Append `v` as an unsigned LEB128 varint (7 bits per byte, high bit =
/// continuation). 1 byte for v < 128, at most 10 bytes for 64-bit values.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Zigzag-map a signed value so small magnitudes of either sign stay small:
/// 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Decode one varint from `in` at `pos`, advancing `pos`. Returns false on
/// truncated or over-long (> 10 byte) input, leaving `pos` unspecified.
[[nodiscard]] inline bool get_varint(std::string_view in, std::size_t& pos,
                                     std::uint64_t& out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= in.size()) return false;
    const auto byte = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      out = v;
      return true;
    }
  }
  return false;
}

}  // namespace mmv2v::obs
