#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/json_mini.hpp"
#include "common/svg_plot.hpp"
#include "core/trace.hpp"

namespace mmv2v::obs {

namespace {

/// Reconstruct a TraceEvent from its canonical JSONL object. Every number
/// comes back as f64 (JSON has one number type); the span builder's field
/// getters are tolerant of that.
core::TraceEvent event_from_json(const json::Value& v) {
  core::TraceEvent e{v.string_or("ev", "")};
  e.frame = static_cast<std::uint64_t>(v.number_or("frame", 0.0));
  e.time_s = v.number_or("t", 0.0);
  for (const auto& [key, field] : v.object()) {
    if (key == "ev" || key == "frame" || key == "t") continue;
    if (field.is_number()) {
      e.f64(key, field.number());
    } else if (field.is_string()) {
      e.str(key, field.str());
    }
  }
  return e;
}

void merge_rollup(SpanRollup& into, const SpanRollup& from) {
  for (std::size_t i = 0; i < kSpanOutcomeCount; ++i) into.outcomes[i] += from.outcomes[i];
  into.spans += from.spans;
  into.truncations += from.truncations;
  into.delivered_bits += from.delivered_bits;
  into.disc_to_match_frames.add_all(from.disc_to_match_frames.raw());
  into.match_to_delivery_frames.add_all(from.match_to_delivery_frames.raw());
}

/// One SpanBuilder per cell while walking the trace in record order, so
/// outcomes can later be grouped by the cell's density. Pair ids repeat
/// across cells (each cell is an independent world), which is exactly why
/// one global builder would conflate them.
struct SliceAccumulator {
  struct Slice {
    double density_vpl = 0.0;
    SpanBuilder builder;
  };
  std::vector<Slice> slices;

  SpanBuilder& current() {
    if (slices.empty()) slices.emplace_back();  // bare stream: one implicit cell
    return slices.back().builder;
  }
  void begin_cell(double density) {
    slices.emplace_back();
    slices.back().density_vpl = density;
  }
};

std::string escape_html(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

ReportData load_report_data(std::string_view trace_bytes) {
  ReportData data;
  SliceAccumulator acc;

  const auto on_marker_line = [&](std::string_view line) {
    if (line.rfind("{\"ev\":\"cell_begin\"", 0) != 0) return true;  // not a cell marker
    double density = 0.0;
    try {
      density = json::Value::parse(line).number_or("density_vpl", 0.0);
    } catch (const std::exception&) {
      // malformed marker: still open a slice so events stay cell-scoped
    }
    acc.begin_cell(density);
    return true;
  };

  if (is_mmtrace(trace_bytes)) {
    data.binary = true;
    const MmtraceReader reader{trace_bytes};
    data.stats = reader.for_each([&](const MmtraceRecord& r) {
      if (r.tag == MmtraceTag::kMetaLine) {
        if (data.manifest_json.empty()) data.manifest_json = std::string{r.line};
      } else if (r.tag == MmtraceTag::kLine) {
        on_marker_line(r.line);
      } else if (r.tag == MmtraceTag::kEvent) {
        ++data.events;
        acc.current().on_event(r.event);
      }
    });
  } else {
    // JSONL: optional manifest first line, then one JSON object per line
    // (cell markers and events both carry an "ev" key).
    std::size_t pos = 0;
    bool first = true;
    while (pos < trace_bytes.size()) {
      const std::size_t eol = std::min(trace_bytes.find('\n', pos), trace_bytes.size());
      const std::string_view line = trace_bytes.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (first && (line.rfind("{\"ev\":\"manifest\"", 0) == 0 ||
                    line.find("\"ev\":") == std::string_view::npos)) {
        data.manifest_json = std::string{line};
        first = false;
        continue;
      }
      first = false;
      if (line.rfind("{\"ev\":\"cell_begin\"", 0) == 0) {
        on_marker_line(line);
        continue;
      }
      if (line.rfind("{\"ev\":\"cell_end\"", 0) == 0) continue;
      try {
        ++data.events;
        acc.current().on_event(event_from_json(json::Value::parse(line)));
      } catch (const std::exception&) {
        --data.events;  // unparseable line: skip
      }
    }
  }

  for (const SliceAccumulator::Slice& slice : acc.slices) {
    const SpanRollup r = slice.builder.rollup();
    if (r.spans == 0) continue;
    merge_rollup(data.spans, r);
    const auto it = std::find_if(
        data.density_spans.begin(), data.density_spans.end(),
        [&](const DensitySpans& d) { return d.density_vpl == slice.density_vpl; });
    DensitySpans& bucket = it != data.density_spans.end() ? *it : data.density_spans.emplace_back();
    bucket.density_vpl = slice.density_vpl;
    merge_rollup(bucket.rollup, r);
  }
  std::sort(data.density_spans.begin(), data.density_spans.end(),
            [](const DensitySpans& a, const DensitySpans& b) {
              return a.density_vpl < b.density_vpl;
            });

  if (!data.manifest_json.empty()) {
    try {
      const json::Value m = json::Value::parse(data.manifest_json);
      data.protocol = m.string_or("protocol", "");
      if (const json::Value* cells = m.find("cells"); cells != nullptr && cells->is_array()) {
        for (const json::Value& c : cells->array()) {
          ReportCell cell;
          cell.density_vpl = c.number_or("density_vpl", 0.0);
          cell.rep = static_cast<int>(c.number_or("rep", 0.0));
          cell.seed = static_cast<std::uint64_t>(c.number_or("seed", 0.0));
          cell.degree = c.number_or("degree", 0.0);
          cell.ocr = c.number_or("ocr", 0.0);
          cell.atp = c.number_or("atp", 0.0);
          cell.dtp = c.number_or("dtp", 0.0);
          cell.fairness = c.number_or("fairness", 0.0);
          data.cells.push_back(cell);
        }
      }
    } catch (const std::exception&) {
      // report still renders without manifest facts
    }
  }
  return data;
}

namespace {

/// Mean OCR / ATP per density from the manifest cell summaries.
std::string render_ocr_chart(const std::vector<ReportCell>& cells) {
  struct Bucket {
    double density;
    RunningStats ocr;
    RunningStats atp;
  };
  std::vector<Bucket> buckets;
  for (const ReportCell& c : cells) {
    const auto it = std::find_if(buckets.begin(), buckets.end(),
                                 [&](const Bucket& b) { return b.density == c.density_vpl; });
    Bucket& b = it != buckets.end() ? *it : buckets.emplace_back();
    b.density = c.density_vpl;
    b.ocr.add(c.ocr);
    b.atp.add(c.atp);
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const Bucket& a, const Bucket& b) { return a.density < b.density; });
  SvgChart chart{760, 360, "One-hop Coverage Ratio vs density"};
  chart.set_x_label("density [vehicles/lane/km]");
  chart.set_y_label("OCR");
  std::vector<std::pair<double, double>> points;
  for (const Bucket& b : buckets) points.emplace_back(b.density, b.ocr.mean());
  chart.add_series("OCR (mean)", std::move(points));
  return chart.render();
}

std::string render_outcome_chart(const std::vector<DensitySpans>& density_spans) {
  SvgChart chart{760, 360, "Span outcome attribution by density"};
  chart.set_y_label("pair spans");
  chart.set_x_label("density [vehicles/lane/km]");
  std::vector<std::string> categories;
  for (const DensitySpans& d : density_spans) categories.push_back(fmt(d.density_vpl));
  chart.set_categories(std::move(categories));
  for (std::size_t i = 0; i < kSpanOutcomeCount; ++i) {
    std::vector<double> values;
    for (const DensitySpans& d : density_spans) {
      values.push_back(static_cast<double>(d.rollup.outcomes[i]));
    }
    chart.add_bar_layer(std::string{span_outcome_name(static_cast<SpanOutcome>(i))},
                        std::move(values));
  }
  return chart.render();
}

std::string render_latency_chart(const SpanRollup& spans) {
  SvgChart chart{760, 360, "Span latency percentiles"};
  chart.set_x_label("percentile");
  chart.set_y_label("frames");
  const double percentiles[] = {5, 10, 25, 50, 75, 90, 95, 99};
  const auto series = [&](const SampleSet& samples) {
    std::vector<std::pair<double, double>> points;
    for (const double p : percentiles) points.emplace_back(p, samples.percentile(p));
    return points;
  };
  if (!spans.disc_to_match_frames.empty()) {
    chart.add_series("discovery \xe2\x86\x92 match", series(spans.disc_to_match_frames));
  }
  if (!spans.match_to_delivery_frames.empty()) {
    chart.add_series("match \xe2\x86\x92 first delivery", series(spans.match_to_delivery_frames));
  }
  return chart.render();
}

void append_profiler_table(std::string& html, std::string_view profiler_json) {
  json::Value doc;
  try {
    doc = json::Value::parse(profiler_json);
  } catch (const std::exception&) {
    return;
  }
  const json::Value* scopes = doc.find("scopes");
  if (scopes == nullptr || !scopes->is_array() || scopes->array().empty()) return;
  html += "<h2>Profiler</h2>\n<table>\n<tr><th>scope</th><th>count</th>"
          "<th>total [ms]</th><th>self [ms]</th><th>p50 [&micro;s]</th>"
          "<th>p99 [&micro;s]</th></tr>\n";
  for (const json::Value& s : scopes->array()) {
    const int depth = static_cast<int>(s.number_or("depth", 0.0));
    std::string label(static_cast<std::size_t>(depth) * 2, ' ');
    label += s.string_or("name", "?");
    html += "<tr><td class=\"mono\">";
    html += escape_html(label);
    html += "</td><td>";
    html += fmt(s.number_or("count", 0.0));
    html += "</td><td>";
    html += fmt(s.number_or("total_ns", 0.0) / 1e6);
    html += "</td><td>";
    html += fmt(s.number_or("self_ns", 0.0) / 1e6);
    html += "</td><td>";
    html += fmt(s.number_or("p50_ns", 0.0) / 1e3);
    html += "</td><td>";
    html += fmt(s.number_or("p99_ns", 0.0) / 1e3);
    html += "</td></tr>\n";
  }
  html += "</table>\n";
}

}  // namespace

std::string render_report_html(const ReportData& data, std::string_view title,
                               std::string_view profiler_json) {
  std::string html =
      "<!doctype html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>";
  html += escape_html(title);
  html +=
      "</title>\n<style>\n"
      "body{font-family:sans-serif;margin:24px auto;max-width:860px;color:#222}\n"
      "table{border-collapse:collapse;margin:12px 0}\n"
      "td,th{border:1px solid #ccc;padding:4px 10px;font-size:14px;text-align:right}\n"
      "th{background:#f2f2f2}\n"
      "td.mono{font-family:monospace;text-align:left;white-space:pre}\n"
      "svg{margin:12px 0}\n"
      "</style>\n</head>\n<body>\n<h1>";
  html += escape_html(title);
  html += "</h1>\n";

  html += "<h2>Run</h2>\n<table>\n";
  const auto row = [&](std::string_view key, const std::string& value) {
    html += "<tr><td class=\"mono\">";
    html += escape_html(key);
    html += "</td><td>";
    html += escape_html(value);
    html += "</td></tr>\n";
  };
  if (!data.protocol.empty()) row("protocol", data.protocol);
  row("format", data.binary ? "binary (.mmtrace)" : "jsonl");
  row("cells", fmt(static_cast<double>(data.cells.size())));
  row("events", fmt(static_cast<double>(data.events)));
  if (data.binary) {
    row("chunks", fmt(static_cast<double>(data.stats.chunks)));
    if (data.stats.skipped_chunks > 0) {
      row("skipped chunks", fmt(static_cast<double>(data.stats.skipped_chunks)));
    }
    row("index", data.stats.index_ok ? "ok" : "missing/damaged");
  }
  if (data.spans.spans > 0) {
    row("pair spans", fmt(static_cast<double>(data.spans.spans)));
    row("delivered bits", fmt(data.spans.delivered_bits));
    row("truncations", fmt(static_cast<double>(data.spans.truncations)));
  }
  html += "</table>\n";

  if (!data.cells.empty()) {
    html += "<h2>Coverage</h2>\n";
    html += render_ocr_chart(data.cells);
  }
  if (!data.density_spans.empty()) {
    html += "<h2>Span outcomes</h2>\n";
    html += render_outcome_chart(data.density_spans);
  }
  if (!data.spans.disc_to_match_frames.empty() ||
      !data.spans.match_to_delivery_frames.empty()) {
    html += "<h2>Span latency</h2>\n";
    html += render_latency_chart(data.spans);
  }
  if (!profiler_json.empty()) append_profiler_table(html, profiler_json);

  html += "</body>\n</html>\n";
  return html;
}

void write_report_html(const std::string& path, const ReportData& data, std::string_view title,
                       std::string_view profiler_json) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"report: cannot open " + path};
  out << render_report_html(data, title, profiler_json);
  if (!out) throw std::runtime_error{"report: failed writing " + path};
}

}  // namespace mmv2v::obs
