// Kinematic state of one simulated vehicle.
#pragma once

#include <cstdint>

#include "geom/rect.hpp"
#include "geom/vec2.hpp"
#include "traffic/road.hpp"

namespace mmv2v::traffic {

using VehicleId = std::size_t;

struct VehicleDims {
  double length_m = 4.6;
  double width_m = 1.8;
};

struct VehicleState {
  VehicleId id = 0;
  Direction direction = Direction::kForward;
  int lane = 0;

  /// Longitudinal position along the travel direction, periodic in road length.
  double s = 0.0;
  /// Current lateral world-y (interpolates during a lane change).
  double lateral_y = 0.0;
  double speed_mps = 0.0;
  double accel_mps2 = 0.0;
  /// Driver's desired (free-flow) speed, sampled from the lane's speed band.
  double desired_speed_mps = 0.0;

  VehicleDims dims;

  // --- lane change bookkeeping -------------------------------------------
  bool changing_lane = false;
  int target_lane = 0;
  /// Progress of the current lane change in [0, 1].
  double lane_change_progress = 0.0;
  /// Cooldown before the next lane change is allowed [s].
  double lane_change_cooldown_s = 0.0;

  /// World position of the antenna (roof center).
  [[nodiscard]] geom::Vec2 position(const RoadGeometry& road) const noexcept {
    return road.position(direction, s, lateral_y);
  }

  /// Body rectangle for blockage computation.
  [[nodiscard]] geom::OrientedRect body(const RoadGeometry& road) const noexcept {
    return geom::OrientedRect{position(road), road.heading(direction), dims.length_m / 2.0,
                              dims.width_m / 2.0};
  }
};

}  // namespace mmv2v::traffic
