// Network traffic simulator: the IDM/MOBIL microsimulation generalized from
// the single ring road to a RoadNetwork graph. Car-following, lane changes
// and integration mirror TrafficSimulator phase-for-phase and draw-for-draw,
// so on the degenerate ring network (RoadNetwork::ring) vehicle trajectories
// are bit-identical to the legacy simulator — the golden digest holds.
//
// Graph-only behavior (turn choices at junctions, desired-speed resampling
// when entering a new segment) is counter-based: hashed from
// (seed, vehicle id, junction-crossing count) via derive_seed, never drawn
// from the sequential rng_ stream. The ring network crosses no junction, so
// its rng_ consumption is exactly the legacy sequence.
//
// Signals: a red phase at the end segment's node acts as a virtual stopped
// leader at the stop line; integration additionally clamps at the line so a
// coarse dt cannot jump a red light.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geom/los.hpp"
#include "traffic/idm.hpp"
#include "traffic/mobil.hpp"
#include "traffic/mobility_model.hpp"
#include "traffic/road_network.hpp"
#include "traffic/traffic_sim.hpp"
#include "traffic/vehicle_state.hpp"

namespace mmv2v::traffic {

/// Kinematic state of one vehicle addressed on the network.
struct NetVehicleState {
  VehicleId id = 0;
  SegmentId segment = 0;
  int lane = 0;
  /// Arc length along the segment's centerline [m].
  double s = 0.0;
  /// Signed lateral offset from the centerline (interpolates during a lane
  /// change); lane centers sit at RoadNetwork::lane_offset.
  double lateral = 0.0;
  double speed_mps = 0.0;
  double accel_mps2 = 0.0;
  double desired_speed_mps = 0.0;
  VehicleDims dims;

  bool changing_lane = false;
  int target_lane = 0;
  double lane_change_progress = 0.0;
  double lane_change_cooldown_s = 0.0;

  /// Junctions crossed since spawn; keys the counter-based turn and
  /// desired-speed hashing.
  std::uint32_t crossings = 0;
};

class NetworkTrafficSimulator final : public MobilityModel {
 public:
  /// Spawns `density_vpl` vehicles per lane-km on every segment, evenly
  /// spaced with jitter (same scheme as TrafficSimulator).
  NetworkTrafficSimulator(RoadNetwork network, TrafficConfig config, std::uint64_t seed);

  void step(double dt) override;

  /// Install per-vehicle fidelity tiers. kKinematic vehicles skip the MOBIL
  /// lane-change evaluation; kOnRails vehicles skip IDM entirely and relax
  /// toward their desired speed while ignoring signals. With every vehicle
  /// at kFull (or tiers == nullptr) the step is bit-identical to untiered.
  void set_tiers(const std::vector<FidelityTier>* tiers) override { tiers_ = tiers; }

  [[nodiscard]] std::size_t size() const noexcept override { return vehicles_.size(); }
  [[nodiscard]] geom::Vec2 position_of(VehicleId id) const override;
  [[nodiscard]] double speed_of(VehicleId id) const override {
    return vehicles_.at(id).speed_mps;
  }
  [[nodiscard]] geom::LosEvaluator make_los_evaluator() const override;
  [[nodiscard]] bool cross_median(VehicleId a, VehicleId b) const override;

  [[nodiscard]] const RoadNetwork& network() const noexcept { return net_; }
  [[nodiscard]] const TrafficConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<NetVehicleState>& vehicles() const noexcept {
    return vehicles_;
  }
  [[nodiscard]] const NetVehicleState& vehicle(VehicleId id) const { return vehicles_.at(id); }
  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  [[nodiscard]] std::size_t completed_lane_changes() const noexcept {
    return completed_lane_changes_;
  }

  /// The successor segment vehicle `v` will turn into at its next junction
  /// (deterministic in (seed, v.id, v.crossings); U-turns only at dead ends).
  [[nodiscard]] SegmentId next_segment_of(const NetVehicleState& v) const;

  /// Desired speed after applying any world-x speed zone.
  [[nodiscard]] double effective_desired_speed(const NetVehicleState& v) const;

 private:
  struct Neighbors {
    std::size_t leader = kNone;
    std::size_t follower = kNone;
  };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void spawn_all();
  void spawn_lane(SegmentId seg, int lane, int count);
  void rebuild_lane_index();
  [[nodiscard]] Neighbors find_neighbors(const NetVehicleState& v, int lane) const;
  /// Center-to-center longitudinal distance from back to front; supports a
  /// front vehicle on back's chosen successor segment.
  [[nodiscard]] double center_gap(const NetVehicleState& back, const NetVehicleState& front) const;
  [[nodiscard]] double bumper_gap(const NetVehicleState& back, const NetVehicleState& front) const;
  [[nodiscard]] double accel_with_leader(const NetVehicleState& v, std::size_t leader_idx) const;
  [[nodiscard]] double accel_toward_signal(const NetVehicleState& v, double accel) const;
  void maybe_change_lane(NetVehicleState& v);
  void apply_lane_change_kinematics(NetVehicleState& v, double dt);
  [[nodiscard]] double sample_desired_speed(SegmentId seg, int lane);
  void cross_junctions(NetVehicleState& v, double new_s, bool obey_signals);
  [[nodiscard]] FidelityTier tier_of(std::size_t idx) const noexcept {
    return (tiers_ == nullptr || idx >= tiers_->size()) ? FidelityTier::kFull
                                                        : (*tiers_)[idx];
  }

  RoadNetwork net_;
  TrafficConfig config_;
  Xoshiro256pp rng_;
  std::uint64_t turn_key_ = 0;
  std::uint64_t resample_key_ = 0;
  std::vector<NetVehicleState> vehicles_;
  /// Per-vehicle fidelity tiers, owned by the world; nullptr = all kFull.
  const std::vector<FidelityTier>* tiers_ = nullptr;
  /// Vehicles sorted by s per flat (segment, lane) slot.
  std::vector<std::vector<std::size_t>> lane_index_;
  double time_s_ = 0.0;
  std::size_t completed_lane_changes_ = 0;
};

}  // namespace mmv2v::traffic
