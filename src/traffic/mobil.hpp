// MOBIL lane-changing criterion (Kesting, Treiber, Helbing, 2007):
// "Minimizing Overall Braking Induced by Lane changes". Used as the
// lane-changing model of the VENUS-substitute traffic simulator.
#pragma once

namespace mmv2v::traffic {

struct MobilParams {
  /// Politeness factor: weight of other drivers' (dis)advantage.
  double politeness = 0.3;
  /// Net acceleration gain threshold for changing [m/s^2].
  double changing_threshold = 0.2;
  /// Maximum deceleration imposed on the new follower [m/s^2].
  double b_safe = 3.0;
  /// Bias toward staying in the current lane (hysteresis) [m/s^2].
  double keep_lane_bias = 0.1;
  /// Cooldown between lane changes of one vehicle [s].
  double cooldown_s = 4.0;
  /// Duration of the lateral maneuver [s].
  double duration_s = 3.0;
};

/// Accelerations entering the MOBIL incentive/safety conditions. All values
/// are IDM accelerations [m/s^2] computed by the caller:
///   self_after    — the candidate's acceleration if it changed lane
///   self_before   — its current acceleration
///   new_follower_after / new_follower_before — the would-be follower in the
///       target lane, with and without the candidate in front
///   old_follower_after / old_follower_before — the current follower, after
///       and before the candidate leaves
struct MobilAccelerations {
  double self_after = 0.0;
  double self_before = 0.0;
  double new_follower_after = 0.0;
  double new_follower_before = 0.0;
  double old_follower_after = 0.0;
  double old_follower_before = 0.0;
};

/// Safety criterion: the new follower must not brake harder than b_safe.
[[nodiscard]] inline bool mobil_safe(const MobilParams& p, const MobilAccelerations& a) noexcept {
  return a.new_follower_after >= -p.b_safe;
}

/// Incentive criterion: own gain plus politeness-weighted gain of affected
/// followers must exceed the threshold (plus keep-lane hysteresis).
[[nodiscard]] inline bool mobil_incentive(const MobilParams& p,
                                          const MobilAccelerations& a) noexcept {
  const double own_gain = a.self_after - a.self_before;
  const double others_gain = (a.new_follower_after - a.new_follower_before) +
                             (a.old_follower_after - a.old_follower_before);
  return own_gain + p.politeness * others_gain > p.changing_threshold + p.keep_lane_bias;
}

[[nodiscard]] inline bool mobil_should_change(const MobilParams& p,
                                              const MobilAccelerations& a) noexcept {
  return mobil_safe(p, a) && mobil_incentive(p, a);
}

}  // namespace mmv2v::traffic
