#include "traffic/road_network.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace mmv2v::traffic {

namespace {

/// Length of one polyline piece. Axis-aligned pieces are measured exactly
/// (|dx| or |dy|) so straight segments reproduce their nominal length
/// bit-for-bit — sqrt(L*L) can be off by an ulp for general L, which would
/// break the ring network's bit-equivalence with RoadGeometry.
double piece_length(geom::Vec2 d) noexcept {
  if (d.y == 0.0) return std::abs(d.x);
  if (d.x == 0.0) return std::abs(d.y);
  return d.norm();
}

/// Unit direction of one piece; exact for axis-aligned pieces.
geom::Vec2 piece_direction(geom::Vec2 d, double len) noexcept {
  if (d.y == 0.0) return {d.x > 0.0 ? 1.0 : -1.0, 0.0};
  if (d.x == 0.0) return {0.0, d.y > 0.0 ? 1.0 : -1.0};
  return d / len;
}

}  // namespace

RoadNetwork::RoadNetwork(std::vector<NetNode> nodes, std::vector<RoadSegment> segments,
                         double signal_green_s)
    : nodes_(std::move(nodes)), segments_(std::move(segments)), signal_green_s_(signal_green_s) {
  if (segments_.empty()) throw std::invalid_argument{"RoadNetwork: no segments"};
  if (signal_green_s_ <= 0.0) throw std::invalid_argument{"RoadNetwork: green time <= 0"};

  lane_base_.assign(segments_.size() + 1, 0);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    RoadSegment& seg = segments_[i];
    if (seg.centerline.size() < 2) {
      throw std::invalid_argument{"RoadNetwork: segment centerline needs >= 2 points"};
    }
    if (seg.lanes <= 0 || seg.lane_width_m <= 0.0) {
      throw std::invalid_argument{"RoadNetwork: segment lanes/width must be positive"};
    }
    if (static_cast<int>(seg.speed_bands.size()) < seg.lanes) {
      throw std::invalid_argument{"RoadNetwork: need a speed band per lane"};
    }
    if (seg.from >= nodes_.size() || seg.to >= nodes_.size()) {
      throw std::invalid_argument{"RoadNetwork: segment endpoint out of range"};
    }
    const std::size_t pieces = seg.centerline.size() - 1;
    seg.cum_s.assign(seg.centerline.size(), 0.0);
    seg.piece_dir.resize(pieces);
    seg.piece_left.resize(pieces);
    for (std::size_t k = 0; k < pieces; ++k) {
      const geom::Vec2 d = seg.centerline[k + 1] - seg.centerline[k];
      const double len = piece_length(d);
      if (len <= 0.0) throw std::invalid_argument{"RoadNetwork: zero-length piece"};
      seg.cum_s[k + 1] = seg.cum_s[k] + len;
      seg.piece_dir[k] = piece_direction(d, len);
      seg.piece_left[k] = seg.piece_dir[k].perp();
    }
    lane_base_[i + 1] = lane_base_[i] + static_cast<std::size_t>(seg.lanes);
  }

  // Node adjacency from the segment endpoints (declared lists are ignored —
  // the segments are the source of truth). Loop segments join no junction.
  for (NetNode& n : nodes_) {
    n.incoming.clear();
    n.outgoing.clear();
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].loop) continue;
    nodes_[segments_[i].to].incoming.push_back(static_cast<SegmentId>(i));
    nodes_[segments_[i].from].outgoing.push_back(static_cast<SegmentId>(i));
  }

  // Reverse twins by endpoint pair.
  std::map<std::pair<NetNodeId, NetNodeId>, SegmentId> by_endpoints;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (!segments_[i].loop) {
      by_endpoints.emplace(std::pair{segments_[i].from, segments_[i].to},
                           static_cast<SegmentId>(i));
    }
  }
  reverse_of_.assign(segments_.size(), kInvalidSegment);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].loop) continue;
    const auto it = by_endpoints.find({segments_[i].to, segments_[i].from});
    if (it != by_endpoints.end()) reverse_of_[i] = it->second;
  }
}

std::size_t RoadNetwork::piece_index(const RoadSegment& seg, double s) const noexcept {
  const auto it = std::upper_bound(seg.cum_s.begin(), seg.cum_s.end(), s);
  const std::size_t k = static_cast<std::size_t>(it - seg.cum_s.begin());
  const std::size_t pieces = seg.centerline.size() - 1;
  return k == 0 ? 0 : std::min(k - 1, pieces - 1);
}

double RoadNetwork::wrap(SegmentId seg, double s) const noexcept {
  const double length = segments_[seg].length();
  s = std::fmod(s, length);
  return s < 0.0 ? s + length : s;
}

double RoadNetwork::forward_gap(SegmentId seg, double s_back, double s_front) const noexcept {
  return segments_[seg].loop ? wrap(seg, s_front - s_back) : s_front - s_back;
}

double RoadNetwork::lane_offset(SegmentId seg, int lane) const {
  const RoadSegment& s = segments_.at(seg);
  if (lane < 0 || lane >= s.lanes) throw std::out_of_range{"lane index"};
  const double w = s.lane_width_m;
  return -(w / 2.0 + static_cast<double>(lane) * w);
}

geom::Vec2 RoadNetwork::position(SegmentId seg, double s, double lateral) const {
  const RoadSegment& sg = segments_.at(seg);
  const std::size_t k = piece_index(sg, s);
  const double t = s - sg.cum_s[k];
  const geom::Vec2 p = sg.centerline[k];
  const geom::Vec2 d = sg.piece_dir[k];
  const geom::Vec2 n = sg.piece_left[k];
  return {p.x + d.x * t + n.x * lateral, p.y + d.y * t + n.y * lateral};
}

geom::Vec2 RoadNetwork::heading(SegmentId seg, double s) const {
  const RoadSegment& sg = segments_.at(seg);
  return sg.piece_dir[piece_index(sg, s)];
}

std::span<const SegmentId> RoadNetwork::successors(SegmentId seg) const {
  return nodes_[segments_.at(seg).to].outgoing;
}

int RoadNetwork::approach_axis(SegmentId seg) const {
  const geom::Vec2 d = segments_.at(seg).piece_dir.back();
  return std::abs(d.x) >= std::abs(d.y) ? 0 : 1;
}

bool RoadNetwork::entry_open(SegmentId seg, double time_s) const {
  const RoadSegment& sg = segments_.at(seg);
  if (sg.loop) return true;
  const NetNode& n = nodes_[sg.to];
  if (n.kind != NodeKind::kSignal) return true;
  const auto cycle = static_cast<std::uint64_t>(std::max(0.0, time_s) / signal_green_s_);
  const int green_axis = static_cast<int>((cycle + static_cast<std::uint64_t>(n.signal_phase)) % 2);
  return approach_axis(seg) == green_axis;
}

RoadNetwork RoadNetwork::ring(double length_m, int lanes_per_direction, double lane_width_m,
                              bool bidirectional, std::vector<LaneSpeedBand> speed_bands) {
  if (length_m <= 0.0 || lanes_per_direction <= 0 || lane_width_m <= 0.0) {
    throw std::invalid_argument{"RoadNetwork::ring: all dimensions must be positive"};
  }
  std::vector<NetNode> nodes(1);
  nodes[0].position = {0.0, 0.0};

  std::vector<RoadSegment> segments;
  RoadSegment forward;
  forward.centerline = {{0.0, 0.0}, {length_m, 0.0}};
  forward.from = forward.to = 0;
  forward.loop = true;
  forward.lanes = lanes_per_direction;
  forward.lane_width_m = lane_width_m;
  forward.speed_bands = speed_bands;
  forward.median_group = 0;
  segments.push_back(std::move(forward));

  if (bidirectional) {
    RoadSegment backward;
    backward.centerline = {{length_m, 0.0}, {0.0, 0.0}};
    backward.from = backward.to = 0;
    backward.loop = true;
    backward.lanes = lanes_per_direction;
    backward.lane_width_m = lane_width_m;
    backward.speed_bands = std::move(speed_bands);
    backward.median_group = 1;
    segments.push_back(std::move(backward));
  }
  return RoadNetwork{std::move(nodes), std::move(segments)};
}

RoadNetwork RoadNetwork::city_grid(int rows, int cols, double block_m, int lanes_per_direction,
                                   double lane_width_m, std::vector<LaneSpeedBand> speed_bands,
                                   double signal_green_s) {
  if (rows < 2 || cols < 2) throw std::invalid_argument{"city_grid: need >= 2x2 nodes"};
  if (block_m <= 0.0) throw std::invalid_argument{"city_grid: block size <= 0"};

  std::vector<NetNode> nodes(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  const auto node_id = [cols](int r, int c) {
    return static_cast<NetNodeId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      NetNode& n = nodes[node_id(r, c)];
      n.position = {static_cast<double>(c) * block_m, static_cast<double>(r) * block_m};
      // Interior nodes see crossing flows and get a signal; boundary nodes
      // only merge/turn. Alternating phase offsets give a green wave.
      const bool interior = r > 0 && r + 1 < rows && c > 0 && c + 1 < cols;
      n.kind = interior ? NodeKind::kSignal : NodeKind::kMerge;
      n.signal_phase = (r + c) % 2;
    }
  }

  std::vector<RoadSegment> segments;
  const auto add_edge = [&](NetNodeId a, NetNodeId b) {
    RoadSegment seg;
    seg.centerline = {nodes[a].position, nodes[b].position};
    seg.from = a;
    seg.to = b;
    seg.lanes = lanes_per_direction;
    seg.lane_width_m = lane_width_m;
    seg.speed_bands = speed_bands;
    segments.push_back(std::move(seg));
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        add_edge(node_id(r, c), node_id(r, c + 1));
        add_edge(node_id(r, c + 1), node_id(r, c));
      }
      if (r + 1 < rows) {
        add_edge(node_id(r, c), node_id(r + 1, c));
        add_edge(node_id(r + 1, c), node_id(r, c));
      }
    }
  }
  return RoadNetwork{std::move(nodes), std::move(segments), signal_green_s};
}

}  // namespace mmv2v::traffic
