#include "traffic/network_traffic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/hash.hpp"
#include "common/units.hpp"

namespace mmv2v::traffic {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Map a 64-bit hash to a uniform double in [0, 1).
double hashed_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

NetworkTrafficSimulator::NetworkTrafficSimulator(RoadNetwork network, TrafficConfig config,
                                                 std::uint64_t seed)
    : net_(std::move(network)),
      config_(std::move(config)),
      rng_(seed),
      turn_key_(derive_seed(seed, 0x7475726eULL, 0)),      // 'turn'
      resample_key_(derive_seed(seed, 0x72737064ULL, 1)) {  // 'rspd'
  if (config_.density_vpl < 0.0) {
    throw std::invalid_argument{"TrafficConfig: negative density"};
  }
  spawn_all();
  rebuild_lane_index();
}

double NetworkTrafficSimulator::sample_desired_speed(SegmentId seg, int lane) {
  const LaneSpeedBand& band =
      net_.segment(seg).speed_bands.at(static_cast<std::size_t>(lane));
  return units::kmh_to_mps(rng_.uniform(band.min_kmh, band.max_kmh));
}

void NetworkTrafficSimulator::spawn_all() {
  // Segment id order generalizes the legacy (direction, lane) order: the
  // ring network spawns forward lanes 0..L-1 then backward lanes 0..L-1 with
  // the identical rng_ draw sequence.
  for (SegmentId seg = 0; seg < net_.segment_count(); ++seg) {
    const auto per_lane = static_cast<int>(
        std::lround(config_.density_vpl * net_.segment(seg).length() / 1000.0));
    for (int lane = 0; lane < net_.segment(seg).lanes; ++lane) {
      spawn_lane(seg, lane, per_lane);
    }
  }
}

void NetworkTrafficSimulator::spawn_lane(SegmentId seg, int lane, int count) {
  if (count <= 0) return;
  const double length = net_.segment(seg).length();
  const double spacing = length / static_cast<double>(count);
  // Jitter must keep initial ordering so nobody spawns inside a neighbor.
  const double max_jitter = std::max(0.0, (spacing - config_.dims.length_m - 1.0) / 2.0);
  for (int k = 0; k < count; ++k) {
    NetVehicleState v;
    v.id = vehicles_.size();
    v.segment = seg;
    v.lane = lane;
    v.target_lane = lane;
    v.s = net_.wrap(seg, static_cast<double>(k) * spacing +
                             rng_.uniform(-max_jitter, max_jitter));
    v.lateral = net_.lane_offset(seg, lane);
    v.desired_speed_mps = sample_desired_speed(seg, lane);
    v.speed_mps = v.desired_speed_mps;
    v.dims = config_.dims;
    vehicles_.push_back(v);
  }
}

void NetworkTrafficSimulator::rebuild_lane_index() {
  lane_index_.assign(net_.total_lane_slots(), {});
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const NetVehicleState& v = vehicles_[i];
    lane_index_[net_.lane_slot(v.segment, v.lane)].push_back(i);
  }
  for (auto& lane : lane_index_) {
    std::sort(lane.begin(), lane.end(),
              [this](std::size_t a, std::size_t b) { return vehicles_[a].s < vehicles_[b].s; });
  }
}

SegmentId NetworkTrafficSimulator::next_segment_of(const NetVehicleState& v) const {
  const RoadSegment& seg = net_.segment(v.segment);
  if (seg.loop) return v.segment;
  const std::span<const SegmentId> outs = net_.successors(v.segment);
  if (outs.empty()) return v.segment;
  const SegmentId rev = net_.reverse_of(v.segment);
  std::size_t options = 0;
  for (const SegmentId sid : outs) options += (sid != rev) ? 1 : 0;
  const std::uint64_t h = derive_seed(turn_key_, v.id, v.crossings);
  if (options == 0) return outs[h % outs.size()];  // dead end: U-turn
  std::uint64_t pick = h % options;
  for (const SegmentId sid : outs) {
    if (sid == rev) continue;
    if (pick == 0) return sid;
    --pick;
  }
  return outs.front();
}

NetworkTrafficSimulator::Neighbors NetworkTrafficSimulator::find_neighbors(
    const NetVehicleState& v, int lane) const {
  Neighbors out;
  const RoadSegment& seg = net_.segment(v.segment);
  if (lane < 0 || lane >= seg.lanes) return out;
  const auto& slot = lane_index_[net_.lane_slot(v.segment, lane)];

  double best_ahead = kInf;
  double best_behind = kInf;
  for (std::size_t idx : slot) {
    if (vehicles_[idx].id == v.id) continue;
    const double ahead = net_.forward_gap(v.segment, v.s, vehicles_[idx].s);
    if (ahead > 0.0 && ahead < best_ahead) {
      best_ahead = ahead;
      out.leader = idx;
    }
    const double behind = net_.forward_gap(v.segment, vehicles_[idx].s, v.s);
    if (behind > 0.0 && behind < best_behind) {
      best_behind = behind;
      out.follower = idx;
    }
  }

  // Open segment with a clear road ahead: look one hop into the chosen
  // successor so platoons do not pile into a junction blindly. (Loop
  // segments never take this branch, keeping the ring path bit-identical.)
  if (!seg.loop && out.leader == kNone) {
    const SegmentId next = next_segment_of(v);
    if (next != v.segment) {
      const int next_lane = std::min(lane, net_.segment(next).lanes - 1);
      double best_s = kInf;
      for (std::size_t idx : lane_index_[net_.lane_slot(next, next_lane)]) {
        if (vehicles_[idx].s < best_s) {
          best_s = vehicles_[idx].s;
          out.leader = idx;
        }
      }
    }
  }
  return out;
}

double NetworkTrafficSimulator::center_gap(const NetVehicleState& back,
                                           const NetVehicleState& front) const {
  if (back.segment == front.segment) {
    return net_.forward_gap(back.segment, back.s, front.s);
  }
  // Front vehicle sits on the successor segment: remaining distance on our
  // segment plus its progress into the next one.
  return (net_.segment(back.segment).length() - back.s) + front.s;
}

double NetworkTrafficSimulator::bumper_gap(const NetVehicleState& back,
                                           const NetVehicleState& front) const {
  return center_gap(back, front) - (back.dims.length_m + front.dims.length_m) / 2.0;
}

double NetworkTrafficSimulator::effective_desired_speed(const NetVehicleState& v) const {
  double v0 = v.desired_speed_mps;
  if (!config_.speed_zones.empty()) {
    const double x = net_.position(v.segment, v.s, v.lateral).x;
    for (const SpeedZone& zone : config_.speed_zones) {
      if (zone.contains(x)) v0 = std::min(v0, units::kmh_to_mps(zone.limit_kmh));
    }
  }
  return v0;
}

double NetworkTrafficSimulator::accel_with_leader(const NetVehicleState& v,
                                                  std::size_t leader_idx) const {
  const double v0 = effective_desired_speed(v);
  if (leader_idx == kNone) {
    return idm_acceleration(config_.idm, v.speed_mps, v0, kInf, 0.0);
  }
  const NetVehicleState& leader = vehicles_[leader_idx];
  return idm_acceleration(config_.idm, v.speed_mps, v0, bumper_gap(v, leader),
                          v.speed_mps - leader.speed_mps);
}

double NetworkTrafficSimulator::accel_toward_signal(const NetVehicleState& v,
                                                    double accel) const {
  const RoadSegment& seg = net_.segment(v.segment);
  if (seg.loop || net_.entry_open(v.segment, time_s_)) return accel;
  // Red phase: brake for a virtual stopped leader at the stop line.
  const double gap = std::max(0.01, (seg.length() - v.s) - v.dims.length_m / 2.0);
  const double red = idm_acceleration(config_.idm, v.speed_mps, effective_desired_speed(v),
                                      gap, v.speed_mps);
  return std::min(accel, red);
}

void NetworkTrafficSimulator::maybe_change_lane(NetVehicleState& v) {
  const Neighbors cur = find_neighbors(v, v.lane);
  const double self_before = accel_with_leader(v, cur.leader);
  const int lanes = net_.segment(v.segment).lanes;

  for (const int delta : {-1, +1}) {
    const int target = v.lane + delta;
    if (target < 0 || target >= lanes) continue;

    const Neighbors tgt = find_neighbors(v, target);
    MobilAccelerations a;
    a.self_before = self_before;
    a.self_after = accel_with_leader(v, tgt.leader);

    if (tgt.follower != kNone) {
      const NetVehicleState& nf = vehicles_[tgt.follower];
      a.new_follower_before = accel_with_leader(nf, tgt.leader);
      a.new_follower_after =
          idm_acceleration(config_.idm, nf.speed_mps, effective_desired_speed(nf),
                           bumper_gap(nf, v), nf.speed_mps - v.speed_mps);
      // Hard safety: refuse changes that would start inside the follower.
      if (bumper_gap(nf, v) < config_.idm.min_gap_m) continue;
    }
    if (tgt.leader != kNone && bumper_gap(v, vehicles_[tgt.leader]) < config_.idm.min_gap_m) {
      continue;
    }
    if (cur.follower != kNone) {
      const NetVehicleState& of = vehicles_[cur.follower];
      a.old_follower_before =
          idm_acceleration(config_.idm, of.speed_mps, effective_desired_speed(of),
                           bumper_gap(of, v), of.speed_mps - v.speed_mps);
      a.old_follower_after = accel_with_leader(of, cur.leader);
    }

    if (mobil_should_change(config_.mobil, a)) {
      v.changing_lane = true;
      v.target_lane = target;
      v.lane_change_progress = 0.0;
      v.lane = target;  // occupy the target lane immediately for gap logic
      v.desired_speed_mps = sample_desired_speed(v.segment, target);
      v.lane_change_cooldown_s = config_.mobil.cooldown_s;
      return;
    }
  }
}

void NetworkTrafficSimulator::apply_lane_change_kinematics(NetVehicleState& v, double dt) {
  const double target = net_.lane_offset(v.segment, v.lane);
  if (!v.changing_lane) {
    v.lateral = target;
    return;
  }
  v.lane_change_progress += dt / config_.mobil.duration_s;
  if (v.lane_change_progress >= 1.0) {
    v.changing_lane = false;
    v.lane_change_progress = 0.0;
    v.lateral = target;
    ++completed_lane_changes_;
    return;
  }
  // Smoothstep lateral trajectory between the old and new lane centers.
  const double t = v.lane_change_progress;
  const double smooth = t * t * (3.0 - 2.0 * t);
  const double source = v.lateral;
  // Move a fraction of the remaining distance so the path is C1-ish even if
  // the change was pre-empted mid-way.
  v.lateral =
      source + (target - source) * smooth * dt / (config_.mobil.duration_s * (1.0 - t) + dt);
  // Snap when close.
  if (std::abs(v.lateral - target) < 1e-3) v.lateral = target;
}

void NetworkTrafficSimulator::cross_junctions(NetVehicleState& v, double new_s,
                                              bool obey_signals) {
  while (true) {
    const RoadSegment& seg = net_.segment(v.segment);
    const double length = seg.length();
    if (new_s < length) {
      v.s = new_s;
      return;
    }
    if (obey_signals && !net_.entry_open(v.segment, time_s_)) {
      // IDM braking normally stops short of the line; this clamp guarantees
      // a coarse dt cannot jump a red light.
      v.s = std::max(0.0, std::min(new_s, length - v.dims.length_m / 2.0));
      v.speed_mps = 0.0;
      return;
    }
    const SegmentId next = next_segment_of(v);
    new_s -= length;
    if (next == v.segment) continue;  // isolated segment: wrap around
    v.segment = next;
    ++v.crossings;
    const RoadSegment& ns = net_.segment(next);
    if (v.lane >= ns.lanes) v.lane = ns.lanes - 1;
    v.target_lane = v.lane;
    v.changing_lane = false;
    v.lane_change_progress = 0.0;
    v.lateral = net_.lane_offset(next, v.lane);
    // Counter-based desired-speed resample from the new segment's band: a
    // turn never consumes the sequential rng_ stream.
    const LaneSpeedBand& band = ns.speed_bands[static_cast<std::size_t>(v.lane)];
    const double u = hashed_unit(derive_seed(resample_key_, v.id, v.crossings));
    v.desired_speed_mps =
        units::kmh_to_mps(band.min_kmh + u * (band.max_kmh - band.min_kmh));
  }
}

void NetworkTrafficSimulator::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument{"step dt must be positive"};
  time_s_ += dt;
  rebuild_lane_index();

  // Phase 1: longitudinal accelerations from the current snapshot. OnRails
  // vehicles skip IDM/neighbor search entirely — they relax toward their
  // desired speed in phase 3.
  std::vector<double> accel(vehicles_.size(), 0.0);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (tier_of(i) == FidelityTier::kOnRails) continue;
    const NetVehicleState& v = vehicles_[i];
    accel[i] = accel_toward_signal(v, accel_with_leader(v, find_neighbors(v, v.lane).leader));
  }

  // Phase 2: lane-change decisions (Poisson-thinned so drivers don't all
  // evaluate on the same tick). Only kFull vehicles run MOBIL; skipping
  // before the bernoulli draw means an all-kFull tiering consumes the
  // identical rng_ stream as no tiering at all.
  if (config_.enable_lane_changes) {
    const double check_p = std::min(1.0, config_.lane_change_check_rate_hz * dt);
    for (NetVehicleState& v : vehicles_) {
      if (tier_of(v.id) != FidelityTier::kFull) continue;
      if (net_.segment(v.segment).lanes <= 1) continue;
      if (v.changing_lane || v.lane_change_cooldown_s > 0.0) continue;
      if (!rng_.bernoulli(check_p)) continue;
      maybe_change_lane(v);
    }
  }

  // Phase 3: integrate.
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    NetVehicleState& v = vehicles_[i];
    const bool on_rails = tier_of(i) == FidelityTier::kOnRails;
    if (on_rails) {
      // Cheap rail kinematics: first-order relaxation toward the desired
      // speed (τ = 5 s). Keeps demoted vehicles moving — even one demoted
      // while stopped at a red light — without any neighbor interaction.
      constexpr double kRelaxTau = 5.0;
      v.accel_mps2 = 0.0;
      v.speed_mps += (v.desired_speed_mps - v.speed_mps) * std::min(1.0, dt / kRelaxTau);
    } else {
      v.accel_mps2 = accel[i];
      v.speed_mps = std::max(0.0, v.speed_mps + accel[i] * dt);
    }
    if (net_.segment(v.segment).loop) {
      v.s = net_.wrap(v.segment, v.s + v.speed_mps * dt);
    } else {
      // OnRails vehicles ignore signals: a red-light clamp would freeze them
      // at zero speed with no IDM to pull away again.
      cross_junctions(v, v.s + v.speed_mps * dt, /*obey_signals=*/!on_rails);
    }
    v.lane_change_cooldown_s = std::max(0.0, v.lane_change_cooldown_s - dt);
    apply_lane_change_kinematics(v, dt);
  }
}

geom::Vec2 NetworkTrafficSimulator::position_of(VehicleId id) const {
  const NetVehicleState& v = vehicles_.at(id);
  return net_.position(v.segment, v.s, v.lateral);
}

geom::LosEvaluator NetworkTrafficSimulator::make_los_evaluator() const {
  std::vector<geom::Blocker> blockers;
  blockers.reserve(vehicles_.size());
  for (const NetVehicleState& v : vehicles_) {
    const geom::Vec2 pos = net_.position(v.segment, v.s, v.lateral);
    const geom::Vec2 dir = net_.heading(v.segment, v.s);
    blockers.push_back(
        geom::Blocker{geom::OrientedRect{pos, dir, v.dims.length_m / 2.0, v.dims.width_m / 2.0},
                      v.id});
  }
  return geom::LosEvaluator{std::move(blockers)};
}

bool NetworkTrafficSimulator::cross_median(VehicleId a, VehicleId b) const {
  const int ga = net_.segment(vehicles_.at(a).segment).median_group;
  const int gb = net_.segment(vehicles_.at(b).segment).median_group;
  return ga >= 0 && gb >= 0 && ga != gb;
}

}  // namespace mmv2v::traffic
