// Road geometry: a straight segment of `length_m` with `lanes_per_direction`
// lanes of `lane_width_m` on each direction (paper Section IV-A: 1 km, three
// 5 m lanes per direction). Longitudinal coordinates are periodic (ring
// road), which keeps the density constant over arbitrarily long simulations
// without inflow/outflow boundary artifacts.
//
// Layout (y = north / lateral, x = east / longitudinal):
//   direction kForward  (+x): lanes at y = -w/2, -3w/2, -5w/2  (index 0,1,2)
//   direction kBackward (-x): lanes at y = +w/2, +3w/2, +5w/2  (index 0,1,2)
// Lane index 0 is the innermost (closest to the median); the paper's
// speed bands are assigned per lane index by TrafficConfig.
#pragma once

#include <cmath>
#include <stdexcept>

#include "geom/vec2.hpp"

namespace mmv2v::traffic {

enum class Direction { kForward, kBackward };

/// Per-lane free-flow speed band; drivers sample their desired speed
/// uniformly from the band of their current lane (paper Section IV-A:
/// 40-60 / 50-70 / 60-80 km/h for lanes 0/1/2). Shared by the legacy ring
/// road and the road-network segments.
struct LaneSpeedBand {
  double min_kmh = 40.0;
  double max_kmh = 60.0;
};

[[nodiscard]] constexpr double direction_sign(Direction d) noexcept {
  return d == Direction::kForward ? 1.0 : -1.0;
}

class RoadGeometry {
 public:
  RoadGeometry(double length_m, int lanes_per_direction, double lane_width_m)
      : length_(length_m), lanes_(lanes_per_direction), lane_width_(lane_width_m) {
    if (length_m <= 0.0 || lanes_per_direction <= 0 || lane_width_m <= 0.0) {
      throw std::invalid_argument{"RoadGeometry: all dimensions must be positive"};
    }
  }

  [[nodiscard]] double length() const noexcept { return length_; }
  [[nodiscard]] int lanes_per_direction() const noexcept { return lanes_; }
  [[nodiscard]] double lane_width() const noexcept { return lane_width_; }

  /// Wrap a longitudinal coordinate into [0, length).
  [[nodiscard]] double wrap(double s) const noexcept {
    s = std::fmod(s, length_);
    return s < 0.0 ? s + length_ : s;
  }

  /// Signed forward gap from s_back to s_front along the ring, in [0, length).
  [[nodiscard]] double forward_gap(double s_back, double s_front) const noexcept {
    return wrap(s_front - s_back);
  }

  /// Shortest signed longitudinal separation, in [-length/2, length/2).
  [[nodiscard]] double signed_separation(double s_from, double s_to) const noexcept {
    double d = wrap(s_to - s_from);
    if (d >= length_ / 2.0) d -= length_;
    return d;
  }

  /// Lateral center of a lane.
  [[nodiscard]] double lane_center_y(Direction dir, int lane) const {
    if (lane < 0 || lane >= lanes_) throw std::out_of_range{"lane index"};
    const double inner = lane_width_ / 2.0 + static_cast<double>(lane) * lane_width_;
    return dir == Direction::kForward ? -inner : inner;
  }

  /// World position from (direction, longitudinal s, lateral y).
  [[nodiscard]] geom::Vec2 position(Direction dir, double s, double lateral_y) const noexcept {
    // Backward-direction vehicles drive toward -x; their s still increases in
    // the travel direction, so map s -> length - s for world x.
    const double x = dir == Direction::kForward ? wrap(s) : length_ - wrap(s);
    return {x, lateral_y};
  }

  /// Unit heading of travel for a direction.
  [[nodiscard]] geom::Vec2 heading(Direction dir) const noexcept {
    return {direction_sign(dir), 0.0};
  }

 private:
  double length_;
  int lanes_;
  double lane_width_;
};

}  // namespace mmv2v::traffic
