#include "traffic/traffic_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/units.hpp"
#include "geom/angles.hpp"

namespace mmv2v::traffic {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TrafficSimulator::TrafficSimulator(TrafficConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      road_(config_.road_length_m, config_.lanes_per_direction, config_.lane_width_m),
      rng_(seed) {
  if (static_cast<int>(config_.lane_speed_bands.size()) < config_.lanes_per_direction) {
    throw std::invalid_argument{"TrafficConfig: need a speed band per lane"};
  }
  if (config_.density_vpl < 0.0) {
    throw std::invalid_argument{"TrafficConfig: negative density"};
  }
  spawn_all();
  rebuild_lane_index();
}

double TrafficSimulator::sample_desired_speed(int lane) {
  const LaneSpeedBand& band = config_.lane_speed_bands.at(static_cast<std::size_t>(lane));
  return units::kmh_to_mps(rng_.uniform(band.min_kmh, band.max_kmh));
}

void TrafficSimulator::spawn_all() {
  const auto per_lane = static_cast<int>(
      std::lround(config_.density_vpl * config_.road_length_m / 1000.0));
  const int directions = config_.bidirectional ? 2 : 1;
  for (int d = 0; d < directions; ++d) {
    const Direction dir = d == 0 ? Direction::kForward : Direction::kBackward;
    for (int lane = 0; lane < config_.lanes_per_direction; ++lane) {
      spawn_lane(dir, lane, per_lane);
    }
  }
}

void TrafficSimulator::spawn_lane(Direction dir, int lane, int count) {
  if (count <= 0) return;
  const double spacing = road_.length() / static_cast<double>(count);
  // Jitter must keep initial ordering so nobody spawns inside a neighbor.
  const double max_jitter = std::max(0.0, (spacing - config_.dims.length_m - 1.0) / 2.0);
  for (int k = 0; k < count; ++k) {
    VehicleState v;
    v.id = vehicles_.size();
    v.direction = dir;
    v.lane = lane;
    v.target_lane = lane;
    v.s = road_.wrap(static_cast<double>(k) * spacing +
                     rng_.uniform(-max_jitter, max_jitter));
    v.lateral_y = road_.lane_center_y(dir, lane);
    v.desired_speed_mps = sample_desired_speed(lane);
    v.speed_mps = v.desired_speed_mps;
    v.dims = config_.dims;
    vehicles_.push_back(v);
  }
}

void TrafficSimulator::rebuild_lane_index() {
  const std::size_t slots =
      static_cast<std::size_t>(2 * config_.lanes_per_direction);
  lane_index_.assign(slots, {});
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleState& v = vehicles_[i];
    const std::size_t slot =
        (v.direction == Direction::kForward ? 0u
                                            : static_cast<std::size_t>(config_.lanes_per_direction)) +
        static_cast<std::size_t>(v.lane);
    lane_index_[slot].push_back(i);
  }
  for (auto& lane : lane_index_) {
    std::sort(lane.begin(), lane.end(),
              [this](std::size_t a, std::size_t b) { return vehicles_[a].s < vehicles_[b].s; });
  }
}

TrafficSimulator::Neighbors TrafficSimulator::find_neighbors(const VehicleState& v,
                                                             int lane) const {
  Neighbors out;
  if (lane < 0 || lane >= config_.lanes_per_direction) return out;
  const std::size_t slot =
      (v.direction == Direction::kForward ? 0u
                                          : static_cast<std::size_t>(config_.lanes_per_direction)) +
      static_cast<std::size_t>(lane);
  const auto& ring = lane_index_[slot];

  double best_ahead = kInf;
  double best_behind = kInf;
  for (std::size_t idx : ring) {
    if (vehicles_[idx].id == v.id) continue;
    const double ahead = road_.forward_gap(v.s, vehicles_[idx].s);
    if (ahead > 0.0 && ahead < best_ahead) {
      best_ahead = ahead;
      out.leader = idx;
    }
    const double behind = road_.forward_gap(vehicles_[idx].s, v.s);
    if (behind > 0.0 && behind < best_behind) {
      best_behind = behind;
      out.follower = idx;
    }
  }
  return out;
}

double TrafficSimulator::bumper_gap(const VehicleState& back, const VehicleState& front) const {
  return road_.forward_gap(back.s, front.s) -
         (back.dims.length_m + front.dims.length_m) / 2.0;
}

double TrafficSimulator::effective_desired_speed(const VehicleState& v) const {
  double v0 = v.desired_speed_mps;
  if (!config_.speed_zones.empty()) {
    const double x = v.position(road_).x;
    for (const SpeedZone& zone : config_.speed_zones) {
      if (zone.contains(x)) v0 = std::min(v0, units::kmh_to_mps(zone.limit_kmh));
    }
  }
  return v0;
}

double TrafficSimulator::accel_with_leader(const VehicleState& v, std::size_t leader_idx) const {
  const double v0 = effective_desired_speed(v);
  if (leader_idx == kNone) {
    return idm_acceleration(config_.idm, v.speed_mps, v0, kInf, 0.0);
  }
  const VehicleState& leader = vehicles_[leader_idx];
  return idm_acceleration(config_.idm, v.speed_mps, v0, bumper_gap(v, leader),
                          v.speed_mps - leader.speed_mps);
}

void TrafficSimulator::maybe_change_lane(VehicleState& v) {
  const Neighbors cur = find_neighbors(v, v.lane);
  const double self_before = accel_with_leader(v, cur.leader);

  for (const int delta : {-1, +1}) {
    const int target = v.lane + delta;
    if (target < 0 || target >= config_.lanes_per_direction) continue;

    const Neighbors tgt = find_neighbors(v, target);
    MobilAccelerations a;
    a.self_before = self_before;
    a.self_after = accel_with_leader(v, tgt.leader);

    if (tgt.follower != kNone) {
      const VehicleState& nf = vehicles_[tgt.follower];
      a.new_follower_before = accel_with_leader(nf, tgt.leader);
      a.new_follower_after =
          idm_acceleration(config_.idm, nf.speed_mps, effective_desired_speed(nf),
                           bumper_gap(nf, v), nf.speed_mps - v.speed_mps);
      // Hard safety: refuse changes that would start inside the follower.
      if (bumper_gap(nf, v) < config_.idm.min_gap_m) continue;
    }
    if (tgt.leader != kNone &&
        bumper_gap(v, vehicles_[tgt.leader]) < config_.idm.min_gap_m) {
      continue;
    }
    if (cur.follower != kNone) {
      const VehicleState& of = vehicles_[cur.follower];
      a.old_follower_before =
          idm_acceleration(config_.idm, of.speed_mps, effective_desired_speed(of),
                           bumper_gap(of, v), of.speed_mps - v.speed_mps);
      a.old_follower_after = accel_with_leader(of, cur.leader);
    }

    if (mobil_should_change(config_.mobil, a)) {
      v.changing_lane = true;
      v.target_lane = target;
      v.lane_change_progress = 0.0;
      v.lane = target;  // occupy the target lane immediately for gap logic
      v.desired_speed_mps = sample_desired_speed(target);
      v.lane_change_cooldown_s = config_.mobil.cooldown_s;
      return;
    }
  }
}

void TrafficSimulator::apply_lane_change_kinematics(VehicleState& v, double dt) {
  const double target_y = road_.lane_center_y(v.direction, v.lane);
  if (!v.changing_lane) {
    v.lateral_y = target_y;
    return;
  }
  v.lane_change_progress += dt / config_.mobil.duration_s;
  if (v.lane_change_progress >= 1.0) {
    v.changing_lane = false;
    v.lane_change_progress = 0.0;
    v.lateral_y = target_y;
    ++completed_lane_changes_;
    return;
  }
  // Smoothstep lateral trajectory between the old and new lane centers.
  const double t = v.lane_change_progress;
  const double smooth = t * t * (3.0 - 2.0 * t);
  const double source_y = v.lateral_y;
  // Move a fraction of the remaining distance so the path is C1-ish even if
  // the change was pre-empted mid-way.
  v.lateral_y = source_y + (target_y - source_y) * smooth * dt / (config_.mobil.duration_s * (1.0 - t) + dt);
  // Snap when close.
  if (std::abs(v.lateral_y - target_y) < 1e-3) v.lateral_y = target_y;
}

void TrafficSimulator::step(double dt) {
  if (dt <= 0.0) throw std::invalid_argument{"step dt must be positive"};
  rebuild_lane_index();

  // Phase 1: longitudinal accelerations from the current snapshot.
  std::vector<double> accel(vehicles_.size(), 0.0);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const VehicleState& v = vehicles_[i];
    accel[i] = accel_with_leader(v, find_neighbors(v, v.lane).leader);
  }

  // Phase 2: lane-change decisions (Poisson-thinned so drivers don't all
  // evaluate on the same tick).
  if (config_.enable_lane_changes && config_.lanes_per_direction > 1) {
    const double check_p = std::min(1.0, config_.lane_change_check_rate_hz * dt);
    for (VehicleState& v : vehicles_) {
      if (v.changing_lane || v.lane_change_cooldown_s > 0.0) continue;
      if (!rng_.bernoulli(check_p)) continue;
      maybe_change_lane(v);
    }
  }

  // Phase 3: integrate.
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    VehicleState& v = vehicles_[i];
    v.accel_mps2 = accel[i];
    v.speed_mps = std::max(0.0, v.speed_mps + accel[i] * dt);
    v.s = road_.wrap(v.s + v.speed_mps * dt);
    v.lane_change_cooldown_s = std::max(0.0, v.lane_change_cooldown_s - dt);
    apply_lane_change_kinematics(v, dt);
  }
}

double TrafficSimulator::distance(VehicleId a, VehicleId b) const {
  return geom::distance(position_of(a), position_of(b));
}

geom::LosEvaluator TrafficSimulator::make_los_evaluator() const {
  std::vector<geom::Blocker> blockers;
  blockers.reserve(vehicles_.size());
  for (const VehicleState& v : vehicles_) {
    blockers.push_back(geom::Blocker{v.body(road_), v.id});
  }
  return geom::LosEvaluator{std::move(blockers)};
}

std::vector<VehicleId> TrafficSimulator::los_neighbors(VehicleId id, double range_m,
                                                       const geom::LosEvaluator& los) const {
  std::vector<VehicleId> out;
  const geom::Vec2 p = position_of(id);
  for (const VehicleState& other : vehicles_) {
    if (other.id == id) continue;
    const geom::Vec2 q = other.position(road_);
    if (geom::distance_sq(p, q) > range_m * range_m) continue;
    if (los.has_los(p, q, id, other.id)) out.push_back(other.id);
  }
  return out;
}

double TrafficSimulator::mean_degree(double range_m) const {
  if (vehicles_.empty()) return 0.0;
  const geom::LosEvaluator los = make_los_evaluator();
  std::size_t total = 0;
  for (const VehicleState& v : vehicles_) {
    total += los_neighbors(v.id, range_m, los).size();
  }
  return static_cast<double>(total) / static_cast<double>(vehicles_.size());
}

}  // namespace mmv2v::traffic
