// Intelligent Driver Model (IDM) car-following (Treiber, Hennecke, Helbing,
// 2000). Used as the car-following model of the VENUS-substitute traffic
// simulator (see DESIGN.md, substitutions table).
#pragma once

#include <algorithm>
#include <cmath>

namespace mmv2v::traffic {

struct IdmParams {
  /// Maximum acceleration [m/s^2].
  double a_max = 1.5;
  /// Comfortable deceleration [m/s^2].
  double b_comfort = 2.0;
  /// Desired time headway [s].
  double time_headway_s = 1.2;
  /// Minimum bumper-to-bumper jam distance [m].
  double min_gap_m = 2.0;
  /// Free-acceleration exponent.
  double delta = 4.0;
};

/// Desired dynamic gap s*(v, dv) for speed v and approach rate dv (= v - v_leader).
[[nodiscard]] inline double idm_desired_gap(const IdmParams& p, double v, double dv) noexcept {
  const double dynamic =
      v * p.time_headway_s + v * dv / (2.0 * std::sqrt(p.a_max * p.b_comfort));
  return p.min_gap_m + std::max(0.0, dynamic);
}

/// IDM acceleration for a follower at speed `v` with desired speed `v0`,
/// bumper-to-bumper `gap` to its leader, and approach rate `dv = v - v_leader`.
/// Pass gap = +infinity for a free road.
[[nodiscard]] inline double idm_acceleration(const IdmParams& p, double v, double v0, double gap,
                                             double dv) noexcept {
  const double free_term = std::pow(std::max(0.0, v) / std::max(v0, 0.1), p.delta);
  double interaction = 0.0;
  if (std::isfinite(gap)) {
    const double safe_gap = std::max(gap, 0.1);  // avoid division blow-up on contact
    const double s_star = idm_desired_gap(p, v, dv);
    interaction = (s_star / safe_gap) * (s_star / safe_gap);
  }
  return p.a_max * (1.0 - free_term - interaction);
}

}  // namespace mmv2v::traffic
