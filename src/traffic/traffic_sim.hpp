// Microscopic traffic simulator: IDM car-following + MOBIL lane changing on
// a periodic multi-lane road. This substitutes the paper's VENUS simulator
// (see DESIGN.md). It produces, per mobility tick, the vehicle positions,
// headings and body rectangles that the mmWave channel model consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geom/los.hpp"
#include "traffic/idm.hpp"
#include "traffic/mobil.hpp"
#include "traffic/mobility_model.hpp"
#include "traffic/road.hpp"
#include "traffic/vehicle_state.hpp"

namespace mmv2v::traffic {

/// A road segment with a reduced speed limit (work zone, curve, tunnel):
/// drivers cap their desired speed while inside [start_x, end_x) in world
/// coordinates. Creates realistic congestion waves and density gradients.
struct SpeedZone {
  double start_x_m = 0.0;
  double end_x_m = 0.0;
  double limit_kmh = 30.0;

  [[nodiscard]] bool contains(double x) const noexcept {
    return x >= start_x_m && x < end_x_m;
  }
};

struct TrafficConfig {
  double road_length_m = 1000.0;
  int lanes_per_direction = 3;
  double lane_width_m = 5.0;
  /// Traffic on both directions (paper's evaluation road) or forward only.
  bool bidirectional = true;
  /// Density in vehicles per lane per km ("vpl" in the paper).
  double density_vpl = 15.0;
  std::vector<LaneSpeedBand> lane_speed_bands{{40.0, 60.0}, {50.0, 70.0}, {60.0, 80.0}};
  IdmParams idm;
  MobilParams mobil;
  VehicleDims dims;
  bool enable_lane_changes = true;
  /// Mean rate [1/s] at which an eligible driver evaluates a lane change.
  double lane_change_check_rate_hz = 1.0;
  /// Optional reduced-speed zones (both directions observe them).
  std::vector<SpeedZone> speed_zones;
};

class TrafficSimulator final : public MobilityModel {
 public:
  TrafficSimulator(TrafficConfig config, std::uint64_t seed);

  /// Advance all vehicles by dt seconds (typically the 5 ms mobility tick).
  void step(double dt) override;

  [[nodiscard]] const RoadGeometry& road() const noexcept { return road_; }
  [[nodiscard]] const TrafficConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<VehicleState>& vehicles() const noexcept { return vehicles_; }
  [[nodiscard]] std::size_t size() const noexcept override { return vehicles_.size(); }
  [[nodiscard]] const VehicleState& vehicle(VehicleId id) const { return vehicles_.at(id); }

  [[nodiscard]] geom::Vec2 position_of(VehicleId id) const override {
    return vehicles_.at(id).position(road_);
  }

  [[nodiscard]] double speed_of(VehicleId id) const override {
    return vehicles_.at(id).speed_mps;
  }

  /// Opposite-direction links cross the ring's central median.
  [[nodiscard]] bool cross_median(VehicleId a, VehicleId b) const override {
    return vehicles_.at(a).direction != vehicles_.at(b).direction;
  }

  /// Euclidean distance between two vehicles' antennas.
  [[nodiscard]] double distance(VehicleId a, VehicleId b) const;

  /// Build a blockage evaluator snapshot from the current vehicle bodies.
  [[nodiscard]] geom::LosEvaluator make_los_evaluator() const override;

  /// Ground-truth one-hop neighborhood: vehicles within `range_m` with LOS
  /// (paper Section II-B). `los` must be a snapshot from the same tick.
  [[nodiscard]] std::vector<VehicleId> los_neighbors(VehicleId id, double range_m,
                                                     const geom::LosEvaluator& los) const;

  /// Mean ground-truth degree over all vehicles (used to calibrate Fig. 6's
  /// "average number of neighbors" scenarios).
  [[nodiscard]] double mean_degree(double range_m) const;

  /// Number of lane changes completed since construction (diagnostics).
  [[nodiscard]] std::size_t completed_lane_changes() const noexcept {
    return completed_lane_changes_;
  }

  /// Desired speed after applying any speed zone at the vehicle's position.
  [[nodiscard]] double effective_desired_speed(const VehicleState& v) const;

 private:
  struct Neighbors {
    // Index into vehicles_, or kNone.
    std::size_t leader = kNone;
    std::size_t follower = kNone;
  };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void spawn_all();
  void spawn_lane(Direction dir, int lane, int count);
  void rebuild_lane_index();
  [[nodiscard]] Neighbors find_neighbors(const VehicleState& v, int lane) const;
  [[nodiscard]] double bumper_gap(const VehicleState& back, const VehicleState& front) const;
  [[nodiscard]] double accel_with_leader(const VehicleState& v, std::size_t leader_idx) const;
  void maybe_change_lane(VehicleState& v);
  void apply_lane_change_kinematics(VehicleState& v, double dt);
  [[nodiscard]] double sample_desired_speed(int lane);

  TrafficConfig config_;
  RoadGeometry road_;
  Xoshiro256pp rng_;
  std::vector<VehicleState> vehicles_;
  /// vehicles sorted by s per (direction, lane): index = dir*lanes + lane.
  std::vector<std::vector<std::size_t>> lane_index_;
  std::size_t completed_lane_changes_ = 0;
};

}  // namespace mmv2v::traffic
