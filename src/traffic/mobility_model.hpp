// Abstract mobility interface consumed by core::World: anything that can
// advance vehicles in time and answer the radio-relevant queries (positions,
// body rectangles for blockage, median crossings). Two implementations:
//
//   TrafficSimulator         — the legacy single-ring IDM/MOBIL simulator
//   NetworkTrafficSimulator  — the same car-following model generalized to a
//                              RoadNetwork graph (city grids, signals, turns)
//
// The interface is deliberately narrow: World caches all pairwise geometry
// itself, so the mobility model only has to report per-vehicle state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/los.hpp"
#include "geom/vec2.hpp"
#include "traffic/vehicle_state.hpp"

namespace mmv2v::traffic {

/// Simulation fidelity assigned per vehicle by the world's tiering engine
/// (core::FidelityTiering). The mobility model may use the tier to cheapen
/// far-away vehicles; the world uses it to skip pair geometry for kOnRails.
enum class FidelityTier : std::uint8_t {
  /// Full IDM/MOBIL car following plus full radio geometry.
  kFull = 0,
  /// Car following without lane changes; full radio geometry.
  kKinematic = 1,
  /// Constant-ish speed along the rails, signals ignored; contributes only a
  /// statistical channel-occupancy estimate, never cached pair geometry.
  kOnRails = 2,
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advance all vehicles by dt seconds (typically the 5 ms mobility tick).
  virtual void step(double dt) = 0;

  /// Install the per-vehicle fidelity tiers (indexed by VehicleId; owned by
  /// the caller, which keeps the vector alive and updates it in place).
  /// Passing nullptr — and the default implementation — means every vehicle
  /// runs at full fidelity.
  virtual void set_tiers(const std::vector<FidelityTier>* /*tiers*/) {}

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// World position of vehicle `id`'s antenna (roof center).
  [[nodiscard]] virtual geom::Vec2 position_of(VehicleId id) const = 0;

  /// Current longitudinal speed [m/s].
  [[nodiscard]] virtual double speed_of(VehicleId id) const = 0;

  /// Blockage evaluator snapshot over the current vehicle bodies.
  [[nodiscard]] virtual geom::LosEvaluator make_los_evaluator() const = 0;

  /// True when the straight path between a and b crosses a physical median
  /// (guardrail/divider); the world snapshot charges such links extra
  /// blockers (ScenarioConfig::cross_median_blockers).
  [[nodiscard]] virtual bool cross_median(VehicleId a, VehicleId b) const = 0;
};

}  // namespace mmv2v::traffic
