// Road network: a graph of directed road segments joined at nodes, the
// city-scale generalization of the single RoadGeometry ring. A segment is a
// polyline centerline with a lane count, per-lane speed bands and arc-length
// addressing (segment, lane, s); a node joins segment ends and can carry a
// two-phase traffic signal. Lane k of a segment runs at lateral offset
// -(w/2 + k*w) from the centerline (to the right of travel, matching the
// legacy ring's forward-direction layout), so a two-segment forward/backward
// ring reproduces the legacy RoadGeometry world coordinates bit-for-bit.
//
// All geometry is evaluated lazily from (segment, lane, s); the network is
// immutable after construction. Factories:
//   RoadNetwork::ring(...)      — degenerate network equal to the legacy ring
//   RoadNetwork::city_grid(...) — rows x cols Manhattan grid with signalized
//                                 intersections
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "traffic/road.hpp"

namespace mmv2v::traffic {

using SegmentId = std::uint32_t;
using NetNodeId = std::uint32_t;

inline constexpr SegmentId kInvalidSegment = static_cast<SegmentId>(-1);

enum class NodeKind : std::uint8_t {
  /// Segment ends join without conflict (ring closure, boundary U-turns).
  kMerge,
  /// Crossing flows, no signal (priority is not modeled; entry always open).
  kIntersection,
  /// Two-phase signalized crossing: east-west and north-south alternate.
  kSignal,
};

struct NetNode {
  geom::Vec2 position;
  NodeKind kind = NodeKind::kMerge;
  /// Phase offset of the signal cycle (0 or 1); adjacent grid intersections
  /// alternate so platoons see a green wave on average.
  int signal_phase = 0;
  std::vector<SegmentId> incoming;
  std::vector<SegmentId> outgoing;
};

/// One directed road segment. `centerline` has >= 2 points; travel runs from
/// centerline.front() (node `from`) to centerline.back() (node `to`).
struct RoadSegment {
  std::vector<geom::Vec2> centerline;
  NetNodeId from = 0;
  NetNodeId to = 0;
  /// Closed circuit: s wraps modulo length and the segment has no junction
  /// behavior (the legacy ring).
  bool loop = false;
  int lanes = 1;
  double lane_width_m = 5.0;
  /// Desired-speed band per lane index (size >= lanes).
  std::vector<LaneSpeedBand> speed_bands;
  /// Carriageways sharing a physical median are tagged with the same
  /// median_group >= 0 on opposite sides; links between vehicles in
  /// *different* non-negative groups are charged cross-median blockers.
  /// -1 (default) = no median.
  int median_group = -1;

  // --- derived by RoadNetwork's constructor ------------------------------
  /// Cumulative arc length at each centerline point; back() is the length.
  std::vector<double> cum_s;
  /// Unit travel direction of each polyline piece (centerline.size() - 1).
  std::vector<geom::Vec2> piece_dir;
  /// Unit left normal of each piece (perp of piece_dir).
  std::vector<geom::Vec2> piece_left;

  [[nodiscard]] double length() const noexcept { return cum_s.back(); }
};

class RoadNetwork {
 public:
  /// Takes ownership of nodes and segments, derives per-piece geometry and
  /// node adjacency, and validates the graph (throws std::invalid_argument).
  RoadNetwork(std::vector<NetNode> nodes, std::vector<RoadSegment> segments,
              double signal_green_s = 12.0);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] const NetNode& node(NetNodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const RoadSegment& segment(SegmentId id) const { return segments_.at(id); }
  [[nodiscard]] const std::vector<RoadSegment>& segments() const noexcept { return segments_; }
  [[nodiscard]] double signal_green_s() const noexcept { return signal_green_s_; }

  /// Total lane slots over all segments (sum of per-segment lane counts).
  [[nodiscard]] std::size_t total_lane_slots() const noexcept { return lane_base_.back(); }
  /// Flat index of (segment, lane) into [0, total_lane_slots()).
  [[nodiscard]] std::size_t lane_slot(SegmentId seg, int lane) const {
    return lane_base_.at(seg) + static_cast<std::size_t>(lane);
  }

  /// Wrap s into [0, length) of the segment (fmod, matching RoadGeometry).
  [[nodiscard]] double wrap(SegmentId seg, double s) const noexcept;

  /// Forward gap from s_back to s_front along the segment: wrapped into
  /// [0, length) on loops, the raw (possibly negative) difference otherwise.
  [[nodiscard]] double forward_gap(SegmentId seg, double s_back, double s_front) const noexcept;

  /// Lateral offset of lane k's center from the segment centerline
  /// (negative: lanes sit to the right of travel).
  [[nodiscard]] double lane_offset(SegmentId seg, int lane) const;

  /// World position at arc length s with signed lateral offset.
  [[nodiscard]] geom::Vec2 position(SegmentId seg, double s, double lateral) const;

  /// Unit travel heading at arc length s.
  [[nodiscard]] geom::Vec2 heading(SegmentId seg, double s) const;

  /// Segments leaving the end node of `seg` (candidates for turning into).
  [[nodiscard]] std::span<const SegmentId> successors(SegmentId seg) const;

  /// The opposite-direction twin of `seg` (same endpoints, reversed), or
  /// kInvalidSegment.
  [[nodiscard]] SegmentId reverse_of(SegmentId seg) const { return reverse_of_.at(seg); }

  /// True when a vehicle at the end of `seg` may enter the junction at
  /// simulation time t: always, except on a red phase of a kSignal node.
  /// The two-phase cycle alternates east-west (axis 0) and north-south
  /// (axis 1) every signal_green_s seconds.
  [[nodiscard]] bool entry_open(SegmentId seg, double time_s) const;

  /// Axis class of the travel direction at the end of `seg`: 0 when mostly
  /// east-west, 1 when mostly north-south.
  [[nodiscard]] int approach_axis(SegmentId seg) const;

  // --- factories ---------------------------------------------------------

  /// Degenerate network reproducing the legacy RoadGeometry ring bit-for-bit:
  /// one loop segment per direction (forward at median_group 0, backward at
  /// 1), lanes at the legacy lateral offsets.
  [[nodiscard]] static RoadNetwork ring(double length_m, int lanes_per_direction,
                                        double lane_width_m, bool bidirectional,
                                        std::vector<LaneSpeedBand> speed_bands);

  /// rows x cols Manhattan grid with `block_m` spacing; every interior
  /// intersection is signalized (two-phase, alternating offsets), boundary
  /// nodes merge/U-turn. One segment per direction per block edge.
  [[nodiscard]] static RoadNetwork city_grid(int rows, int cols, double block_m,
                                             int lanes_per_direction, double lane_width_m,
                                             std::vector<LaneSpeedBand> speed_bands,
                                             double signal_green_s);

 private:
  [[nodiscard]] std::size_t piece_index(const RoadSegment& seg, double s) const noexcept;

  std::vector<NetNode> nodes_;
  std::vector<RoadSegment> segments_;
  std::vector<SegmentId> reverse_of_;
  /// lane_base_[seg] = first flat lane slot of the segment; size + 1 sentinel.
  std::vector<std::size_t> lane_base_;
  double signal_green_s_ = 12.0;
};

/// Which world topology a scenario runs on (ScenarioConfig::network).
enum class NetworkTopology : std::uint8_t {
  /// The legacy single-ring TrafficSimulator (default; golden-pinned).
  kLegacyRing,
  /// The same ring expressed as a RoadNetwork and driven by the network
  /// simulator — bit-identical world positions to kLegacyRing.
  kRingNetwork,
  /// Signalized Manhattan grid (city-scale scenarios).
  kCityGrid,
};

/// Scenario-level network knobs (parsed from `network.*` config keys). Lane
/// count, lane width, per-lane speed bands and density come from the shared
/// TrafficConfig.
struct NetworkConfig {
  NetworkTopology topology = NetworkTopology::kLegacyRing;
  int grid_rows = 4;
  int grid_cols = 4;
  double block_m = 250.0;
  double signal_green_s = 12.0;
};

}  // namespace mmv2v::traffic
