// Minimal JSON reader for the repo's own machine-readable artifacts
// (BENCH_results.json baselines, run manifests, profiler reports). This is a
// strict RFC 8259 subset parser — objects, arrays, strings (with escapes),
// numbers, booleans, null — returning an immutable value tree. It is the
// read-side counterpart of the write-side helpers in `common/textio.hpp`;
// everything those emit parses back losslessly.
//
// Not a general-purpose JSON library: no streaming, no comments, no
// duplicate-key policy beyond last-wins, input must be one complete value.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mmv2v::json {

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Parse one complete JSON value (trailing whitespace allowed). Throws
  /// std::runtime_error with a byte offset on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool boolean() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] const std::string& str() const;
  [[nodiscard]] const std::vector<Value>& array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& object() const;

  /// Object member lookup (last duplicate wins); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Convenience: find(key) as a specific type, or the fallback when the key
  /// is absent / mistyped.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;

 private:
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

}  // namespace mmv2v::json
