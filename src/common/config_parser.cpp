#include "common/config_parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mmv2v {

namespace {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

ConfigMap ConfigMap::parse(std::string_view text) {
  ConfigMap map;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error{"config parse error at line " + std::to_string(line_no) +
                               ": expected key = value"};
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error{"config parse error at line " + std::to_string(line_no) +
                               ": empty key"};
    }
    map.set(std::string{key}, std::string{value});
  }
  return map;
}

ConfigMap ConfigMap::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open config file: " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void ConfigMap::apply_overrides(const std::vector<std::string>& overrides) {
  for (const std::string& o : overrides) {
    const std::size_t eq = o.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error{"bad override (expected key=value): " + o};
    }
    set(std::string{trim(std::string_view{o}.substr(0, eq))},
        std::string{trim(std::string_view{o}.substr(eq + 1))});
  }
}

void ConfigMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ConfigMap::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> ConfigMap::get_string(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ConfigMap::get_double(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(*s, &consumed);
    if (consumed != s->size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> ConfigMap::get_int(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s->data(), s->data() + s->size(), v);
  if (ec != std::errc{} || ptr != s->data() + s->size()) return std::nullopt;
  return v;
}

std::optional<bool> ConfigMap::get_bool(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  const std::string l = lower(*s);
  if (l == "true" || l == "1" || l == "yes" || l == "on") return true;
  if (l == "false" || l == "0" || l == "no" || l == "off") return false;
  return std::nullopt;
}

std::string ConfigMap::get_or(std::string_view key, std::string def) const {
  return get_string(key).value_or(std::move(def));
}

double ConfigMap::get_or(std::string_view key, double def) const {
  return get_double(key).value_or(def);
}

std::int64_t ConfigMap::get_or(std::string_view key, std::int64_t def) const {
  return get_int(key).value_or(def);
}

bool ConfigMap::get_or(std::string_view key, bool def) const {
  return get_bool(key).value_or(def);
}

core::EngineParams parse_engine_knobs(const ConfigMap& config) {
  core::EngineParams engine;
  if (config.contains("engine.threads")) {
    const auto threads = config.get_int("engine.threads");
    if (!threads || *threads < 0) {
      throw std::runtime_error{"engine.threads must be an integer >= 0 (0 = hardware threads)"};
    }
    engine.threads = static_cast<int>(*threads);
  }
  if (config.contains("engine.arena_bytes")) {
    const auto bytes = config.get_int("engine.arena_bytes");
    if (!bytes || *bytes < 0) {
      throw std::runtime_error{"engine.arena_bytes must be an integer >= 0"};
    }
    engine.arena_bytes = static_cast<std::size_t>(*bytes);
  }
  return engine;
}

}  // namespace mmv2v
