#include "common/config_parser.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mmv2v {

namespace {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

ConfigMap ConfigMap::parse(std::string_view text) {
  ConfigMap map;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error{"config parse error at line " + std::to_string(line_no) +
                               ": expected key = value"};
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error{"config parse error at line " + std::to_string(line_no) +
                               ": empty key"};
    }
    map.set(std::string{key}, std::string{value});
  }
  return map;
}

ConfigMap ConfigMap::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open config file: " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void ConfigMap::apply_overrides(const std::vector<std::string>& overrides) {
  for (const std::string& o : overrides) {
    const std::size_t eq = o.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error{"bad override (expected key=value): " + o};
    }
    set(std::string{trim(std::string_view{o}.substr(0, eq))},
        std::string{trim(std::string_view{o}.substr(eq + 1))});
  }
}

void ConfigMap::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ConfigMap::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> ConfigMap::get_string(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ConfigMap::get_double(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(*s, &consumed);
    if (consumed != s->size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> ConfigMap::get_int(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s->data(), s->data() + s->size(), v);
  if (ec != std::errc{} || ptr != s->data() + s->size()) return std::nullopt;
  return v;
}

std::optional<bool> ConfigMap::get_bool(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  const std::string l = lower(*s);
  if (l == "true" || l == "1" || l == "yes" || l == "on") return true;
  if (l == "false" || l == "0" || l == "no" || l == "off") return false;
  return std::nullopt;
}

std::string ConfigMap::get_or(std::string_view key, std::string def) const {
  return get_string(key).value_or(std::move(def));
}

double ConfigMap::get_or(std::string_view key, double def) const {
  return get_double(key).value_or(def);
}

std::int64_t ConfigMap::get_or(std::string_view key, std::int64_t def) const {
  return get_int(key).value_or(def);
}

bool ConfigMap::get_or(std::string_view key, bool def) const {
  return get_bool(key).value_or(def);
}

core::EngineParams parse_engine_knobs(const ConfigMap& config) {
  core::EngineParams engine;
  if (config.contains("engine.threads")) {
    const auto threads = config.get_int("engine.threads");
    if (!threads || *threads < 0) {
      throw std::runtime_error{"engine.threads must be an integer >= 0 (0 = hardware threads)"};
    }
    engine.threads = static_cast<int>(*threads);
  }
  if (config.contains("engine.arena_bytes")) {
    const auto bytes = config.get_int("engine.arena_bytes");
    if (!bytes || *bytes < 0) {
      throw std::runtime_error{"engine.arena_bytes must be an integer >= 0"};
    }
    engine.arena_bytes = static_cast<std::size_t>(*bytes);
  }
  if (config.contains("engine.lane_budget")) {
    const auto budget = config.get_int("engine.lane_budget");
    if (!budget || *budget < 0) {
      throw std::runtime_error{
          "engine.lane_budget must be an integer >= 0 (0 = hardware threads)"};
    }
    engine.lane_budget = static_cast<int>(*budget);
  }
  if (config.contains("engine.batched_kernels")) {
    const auto batched = config.get_bool("engine.batched_kernels");
    if (!batched) {
      throw std::runtime_error{"engine.batched_kernels must be a boolean"};
    }
    engine.batched_kernels = *batched;
  }
  if (config.contains("world.shards")) {
    const auto shards = config.get_int("world.shards");
    if (!shards || *shards < 1) {
      throw std::runtime_error{"world.shards must be an integer >= 1"};
    }
    engine.world_shards = static_cast<int>(*shards);
  }
  return engine;
}

namespace {

int parse_positive_int(const ConfigMap& config, std::string_view key, int def) {
  if (!config.contains(key)) return def;
  const auto v = config.get_int(key);
  if (!v || *v < 1) {
    throw std::runtime_error{std::string{key} + " must be an integer >= 1"};
  }
  return static_cast<int>(*v);
}

double parse_positive_double(const ConfigMap& config, std::string_view key, double def) {
  if (!config.contains(key)) return def;
  const auto v = config.get_double(key);
  if (!v || *v <= 0.0) {
    throw std::runtime_error{std::string{key} + " must be a number > 0"};
  }
  return *v;
}

/// Parse "x,y,radius" into one focus region.
core::FocusRegion parse_focus_region(std::string_view spec) {
  std::array<double, 3> fields{};
  std::size_t field = 0;
  std::size_t pos = 0;
  while (field < 3) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token{trim(spec.substr(pos, comma - pos))};
    try {
      std::size_t consumed = 0;
      fields[field] = std::stod(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument{token};
    } catch (const std::exception&) {
      throw std::runtime_error{"tier.focus: expected x,y,radius triples, got '" +
                               std::string{spec} + "'"};
    }
    ++field;
    pos = comma + 1;
    if (field < 3 && comma == spec.size()) {
      throw std::runtime_error{"tier.focus: expected x,y,radius triples, got '" +
                               std::string{spec} + "'"};
    }
  }
  if (pos <= spec.size() && !trim(spec.substr(std::min(pos, spec.size()))).empty()) {
    throw std::runtime_error{"tier.focus: trailing garbage in '" + std::string{spec} + "'"};
  }
  if (fields[2] <= 0.0) {
    throw std::runtime_error{"tier.focus: region radius must be > 0"};
  }
  return core::FocusRegion{{fields[0], fields[1]}, fields[2]};
}

}  // namespace

traffic::NetworkConfig parse_network_knobs(const ConfigMap& config) {
  traffic::NetworkConfig net;
  if (const auto topo = config.get_string("network.topology")) {
    const std::string t = lower(*topo);
    if (t == "ring" || t == "legacy_ring") {
      net.topology = traffic::NetworkTopology::kLegacyRing;
    } else if (t == "ring_network") {
      net.topology = traffic::NetworkTopology::kRingNetwork;
    } else if (t == "city_grid") {
      net.topology = traffic::NetworkTopology::kCityGrid;
    } else {
      throw std::runtime_error{
          "network.topology must be one of: ring, ring_network, city_grid"};
    }
  }
  net.grid_rows = parse_positive_int(config, "network.grid_rows", net.grid_rows);
  net.grid_cols = parse_positive_int(config, "network.grid_cols", net.grid_cols);
  if (net.grid_rows < 2 || net.grid_cols < 2) {
    throw std::runtime_error{"network.grid_rows/grid_cols must be >= 2"};
  }
  net.block_m = parse_positive_double(config, "network.block_m", net.block_m);
  net.signal_green_s =
      parse_positive_double(config, "network.signal_green_s", net.signal_green_s);
  return net;
}

core::TierConfig parse_tier_knobs(const ConfigMap& config) {
  core::TierConfig tier;
  tier.enabled = config.get_or("tier.enabled", tier.enabled);
  tier.kinematic_radius_m =
      parse_positive_double(config, "tier.kinematic_radius_m", tier.kinematic_radius_m);
  tier.hysteresis_m = parse_positive_double(config, "tier.hysteresis_m", tier.hysteresis_m);
  tier.promote_budget = parse_positive_int(config, "tier.promote_budget", tier.promote_budget);
  tier.demote_budget = parse_positive_int(config, "tier.demote_budget", tier.demote_budget);
  if (config.contains("tier.onrails_duty_cycle")) {
    const auto duty = config.get_double("tier.onrails_duty_cycle");
    if (!duty || *duty < 0.0 || *duty > 1.0) {
      throw std::runtime_error{"tier.onrails_duty_cycle must be in [0, 1]"};
    }
    tier.onrails_duty_cycle = *duty;
  }
  if (const auto focus = config.get_string("tier.focus")) {
    std::size_t pos = 0;
    const std::string_view spec{*focus};
    while (pos <= spec.size()) {
      const std::size_t semi = std::min(spec.find(';', pos), spec.size());
      const std::string_view region = trim(spec.substr(pos, semi - pos));
      if (!region.empty()) tier.focus.push_back(parse_focus_region(region));
      if (semi == spec.size()) break;
      pos = semi + 1;
    }
    if (tier.focus.empty()) {
      throw std::runtime_error{"tier.focus: no regions in '" + *focus + "'"};
    }
  }
  if (tier.enabled && tier.focus.empty()) {
    throw std::runtime_error{"tier.enabled requires at least one tier.focus region"};
  }
  return tier;
}

net::NetParams parse_net_knobs(const ConfigMap& config) {
  net::NetParams net;
  net.sub6_enabled = config.get_or("net.sub6_enabled", net.sub6_enabled);
  net.sub6_range_m = parse_positive_double(config, "net.sub6_range_m", net.sub6_range_m);
  if (config.contains("net.sub6_loss")) {
    const auto loss = config.get_double("net.sub6_loss");
    if (!loss || *loss < 0.0 || *loss >= 1.0) {
      throw std::runtime_error{"net.sub6_loss must be in [0, 1)"};
    }
    net.sub6_loss = *loss;
  }
  net.relay_enabled = config.get_or("net.relay_enabled", net.relay_enabled);
  return net;
}

core::TraceParams parse_trace_knobs(const ConfigMap& config) {
  core::TraceParams trace;
  if (const auto format = config.get_string("trace.format")) {
    const std::string f = lower(*format);
    if (f == "jsonl") {
      trace.format = core::TraceFormat::kJsonl;
    } else if (f == "binary" || f == "mmtrace") {
      trace.format = core::TraceFormat::kBinary;
    } else {
      throw std::runtime_error{"trace.format must be one of: jsonl, binary"};
    }
  }
  if (config.contains("trace.flush_events")) {
    const auto v = config.get_int("trace.flush_events");
    if (!v || *v < 0) {
      throw std::runtime_error{"trace.flush_events must be an integer >= 0"};
    }
    trace.flush_events = static_cast<std::size_t>(*v);
  }
  trace.spans = config.get_or("trace.spans", trace.spans);
  return trace;
}

}  // namespace mmv2v
