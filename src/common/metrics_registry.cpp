#include "common/metrics_registry.hpp"

#include "common/textio.hpp"

namespace mmv2v {
namespace {

template <typename Map>
auto* find_in(const Map& map, std::string_view name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                      std::size_t buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string{name}, Histogram{lo, hi, buckets}).first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(histograms_, name);
}

void MetricsRegistry::reset_values() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.clear();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.lo(), h.hi(), h.bin_count()).merge(h);
  }
}

void MetricsRegistry::append_json(std::string& out) const {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    io::append_json_string(out, name);
    out += ':';
    io::append_number(out, c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    io::append_json_string(out, name);
    out += ':';
    io::append_number(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    io::append_json_string(out, name);
    out += ":{\"lo\":";
    io::append_number(out, h.lo());
    out += ",\"hi\":";
    io::append_number(out, h.hi());
    out += ",\"counts\":[";
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      if (b != 0) out += ',';
      io::append_number(out, static_cast<std::uint64_t>(h.count(b)));
    }
    out += "]}";
  }
  out += "}}";
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

}  // namespace mmv2v
