// Monotonic bump allocator for frame-scoped scratch. A MonotonicArena hands
// out raw bytes from a single pre-sized block; reset() rewinds the bump
// pointer in O(1) so the same storage serves every frame. Requests that do
// not fit the main block fall back to individually malloc'd overflow blocks
// (freed on reset), so an undersized arena degrades to the heap instead of
// failing — `overflow_count()` exposes the miss so benches can flag it.
//
// ArenaAllocator<T> adapts the arena to the std allocator interface, so
// `std::vector<T, ArenaAllocator<T>>` (and node containers) can draw
// frame-lifetime storage. deallocate() is a no-op: memory is reclaimed in
// bulk by reset(). Neither class is thread-safe; give each worker lane its
// own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace mmv2v {

class MonotonicArena {
 public:
  /// `capacity` bytes are reserved up front; 0 defers the main block until
  /// the first allocation (which then overflows to the heap).
  explicit MonotonicArena(std::size_t capacity = 1 << 20) : capacity_(capacity) {
    if (capacity_ > 0) block_ = static_cast<std::byte*>(::operator new(capacity_));
  }
  ~MonotonicArena() {
    release_overflow();
    ::operator delete(block_);
  }

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&& other) noexcept
      : block_(other.block_),
        capacity_(other.capacity_),
        used_(other.used_),
        overflow_(std::move(other.overflow_)),
        overflow_count_(other.overflow_count_) {
    other.block_ = nullptr;
    other.capacity_ = 0;
    other.used_ = 0;
    other.overflow_.clear();
    other.overflow_count_ = 0;
  }
  MonotonicArena& operator=(MonotonicArena&&) = delete;

  /// Bump-allocate `size` bytes aligned to `align` (a power of two). Falls
  /// back to the heap when the main block is exhausted.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    // Align the address, not just the offset: operator new only guarantees
    // the block base up to __STDCPP_DEFAULT_NEW_ALIGNMENT__, so over-aligned
    // requests need the base folded into the computation.
    const auto base = reinterpret_cast<std::uintptr_t>(block_);
    const std::uintptr_t bumped =
        (base + used_ + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    const std::size_t aligned = static_cast<std::size_t>(bumped - base);
    if (aligned + size <= capacity_) {
      used_ = aligned + size;
      return block_ + aligned;
    }
    ++overflow_count_;
    void* p = ::operator new(size, std::align_val_t{align});
    overflow_.push_back(OverflowBlock{p, std::align_val_t{align}});
    return p;
  }

  /// Rewind to empty. The main block is kept; overflow blocks are freed.
  /// Everything previously allocated from this arena is invalidated.
  void reset() {
    used_ = 0;
    release_overflow();
  }

  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Allocations since construction that missed the main block. A nonzero
  /// steady-state count means `capacity` is undersized for the workload.
  [[nodiscard]] std::uint64_t overflow_count() const noexcept { return overflow_count_; }

 private:
  struct OverflowBlock {
    void* ptr;
    std::align_val_t align;
  };

  void release_overflow() {
    for (const OverflowBlock& b : overflow_) ::operator delete(b.ptr, b.align);
    overflow_.clear();
  }

  std::byte* block_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::vector<OverflowBlock> overflow_;
  std::uint64_t overflow_count_ = 0;
};

/// std-compatible allocator view over a MonotonicArena. Copies (including
/// rebound copies) share the arena; equality compares arena identity, so
/// containers can move between allocator copies without element-wise churn.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // bulk-reclaimed by reset()

  [[nodiscard]] MonotonicArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  MonotonicArena* arena_;
};

/// Frame-lifetime vector: storage comes from the arena, dies at reset().
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace mmv2v
