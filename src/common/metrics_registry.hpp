// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// the observability layer (DESIGN.md Section 8).
//
// The registry is built for a single-threaded simulation cell (one registry
// per OhmSimulation; the parallel sweep runner gives every cell its own and
// merges serialized output in canonical order). Registration — the only
// operation that touches the name index — is the cold path; it returns a
// handle whose address is stable for the registry's lifetime, so the hot
// path is a plain wait-free integer add / double store on the handle with no
// lookup, no lock and no atomic RMW. When instrumentation is disabled the
// protocols never call in here at all (a null Instrumentation pointer), so
// the disabled cost is one predictable branch per phase.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/stats.hpp"

namespace mmv2v {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. References remain valid for the registry's lifetime
  /// (std::map nodes are stable under insertion).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp into
  /// the edge bins (see Histogram). The bucket layout is fixed by the first
  /// registration; later calls with the same name ignore lo/hi/buckets.
  Histogram& histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zero every metric, keeping registrations (and handles) alive.
  void reset_values();

  /// Accumulate another registry into this one: counters and gauges add,
  /// histograms merge bin-for-bin. Metrics absent here are registered first
  /// (histograms with `other`'s bucket layout). Throws std::invalid_argument
  /// when a histogram exists in both registries with different layouts.
  void merge_from(const MetricsRegistry& other);

  /// Append one canonical JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{"lo":..,"hi":..,
  /// "counts":[..]}}}. Keys are emitted in lexicographic order and numbers
  /// via locale-independent round-trip formatting, so the output is stable
  /// input for golden-trace digests.
  void append_json(std::string& out) const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mmv2v
