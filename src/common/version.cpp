#include "common/version.hpp"

#ifndef MMV2V_GIT_DESCRIBE
#define MMV2V_GIT_DESCRIBE "unknown"
#endif

namespace mmv2v {

std::string_view git_describe() noexcept { return MMV2V_GIT_DESCRIBE; }

}  // namespace mmv2v
