// Physical unit helpers and constants used throughout the mmV2V stack.
//
// Conventions:
//   * power       : dBm for logs/configs, watts (linear) for arithmetic
//   * gain / loss : dB for logs/configs, dimensionless linear for arithmetic
//   * time        : seconds (double); protocol constants also exposed in
//                   microseconds where the 802.11ad standard quotes them
//   * distance    : meters
//   * angles      : radians internally (see geom/angles.hpp); degrees only at
//                   the config boundary
#pragma once

#include <cmath>

namespace mmv2v::units {

// --- dB <-> linear -----------------------------------------------------------

/// Convert a dB gain/loss to a linear ratio.
[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Convert a linear ratio to dB. Ratio must be > 0.
[[nodiscard]] inline double linear_to_db(double linear) noexcept {
  return 10.0 * std::log10(linear);
}

/// Convert a power in dBm to watts.
[[nodiscard]] inline double dbm_to_watts(double dbm) noexcept {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

/// Convert a power in watts to dBm. Power must be > 0.
[[nodiscard]] inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts) + 30.0;
}

// --- speed -------------------------------------------------------------------

[[nodiscard]] constexpr double kmh_to_mps(double kmh) noexcept { return kmh / 3.6; }
[[nodiscard]] constexpr double mps_to_kmh(double mps) noexcept { return mps * 3.6; }

// --- data volume -------------------------------------------------------------

[[nodiscard]] constexpr double mbps_to_bps(double mbps) noexcept { return mbps * 1e6; }
[[nodiscard]] constexpr double gbps_to_bps(double gbps) noexcept { return gbps * 1e9; }
[[nodiscard]] constexpr double bits_to_megabits(double bits) noexcept { return bits / 1e6; }

// --- time --------------------------------------------------------------------

[[nodiscard]] constexpr double us_to_s(double us) noexcept { return us * 1e-6; }
[[nodiscard]] constexpr double ms_to_s(double ms) noexcept { return ms * 1e-3; }
[[nodiscard]] constexpr double s_to_ms(double s) noexcept { return s * 1e3; }
[[nodiscard]] constexpr double s_to_us(double s) noexcept { return s * 1e6; }

// --- physical constants ------------------------------------------------------

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Thermal noise power spectral density at 290 K [dBm/Hz] (paper Eq. 3).
inline constexpr double kNoiseDensityDbmHz = -174.0;

/// 802.11ad channel bandwidth [Hz] (paper Section IV-A).
inline constexpr double kChannelBandwidthHz = 2.16e9;

/// 60 GHz carrier frequency [Hz].
inline constexpr double kCarrierFrequencyHz = 60.0e9;

/// Thermal noise power over the full 802.11ad channel [watts].
[[nodiscard]] inline double thermal_noise_watts(double bandwidth_hz = kChannelBandwidthHz) noexcept {
  return dbm_to_watts(kNoiseDensityDbmHz) * bandwidth_hz;
}

/// Thermal noise power over the full 802.11ad channel [dBm].
[[nodiscard]] inline double thermal_noise_dbm(double bandwidth_hz = kChannelBandwidthHz) noexcept {
  return kNoiseDensityDbmHz + 10.0 * std::log10(bandwidth_hz);
}

}  // namespace mmv2v::units
