#include "common/json_mini.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace mmv2v::json {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error{"json: " + what + " at byte " + std::to_string(offset)};
}

/// Append a Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type_ = Value::Type::String;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type_ = Value::Type::Bool;
    v.bool_ = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type_ = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type_ = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail(pos_ - 1, "raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          // Surrogate pair: \uD800-\uDBFF must be followed by a low
          // surrogate escape; an unpaired surrogate is malformed input.
          if (cp >= 0xd800 && cp <= 0xdbff) {
            if (text_.substr(pos_, 2) != "\\u") fail(pos_, "unpaired high surrogate");
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail(pos_ - 4, "unpaired high surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail(pos_ - 4, "unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t cp = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<std::uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<std::uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<std::uint32_t>(h - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit");
      }
    }
    return cp;
  }

  Value parse_number() {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — in
    // particular no leading zeros, no bare trailing '.', no leading '+'.
    const std::size_t start = pos_;
    const auto digit = [this] {
      return pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) fail(start, "bad number");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit()) fail(start, "bad number");  // leading zero
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) fail(start, "bad number");  // '.' needs at least one digit
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digit()) fail(start, "bad number");
      while (digit()) ++pos_;
    }
    double out = 0.0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) fail(start, "bad number");
    Value v;
    v.type_ = Value::Type::Number;
    v.number_ = out;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser{text}.parse_document(); }

bool Value::boolean() const {
  if (type_ != Type::Bool) throw std::runtime_error{"json: value is not a bool"};
  return bool_;
}

double Value::number() const {
  if (type_ != Type::Number) throw std::runtime_error{"json: value is not a number"};
  return number_;
}

const std::string& Value::str() const {
  if (type_ != Type::String) throw std::runtime_error{"json: value is not a string"};
  return string_;
}

const std::vector<Value>& Value::array() const {
  if (type_ != Type::Array) throw std::runtime_error{"json: value is not an array"};
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::object() const {
  if (type_ != Type::Object) throw std::runtime_error{"json: value is not an object"};
  return object_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  const Value* found = nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) found = &v;  // last duplicate wins
  }
  return found;
}

double Value::number_or(std::string_view key, double fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

}  // namespace mmv2v::json
