// Build provenance for run manifests: the git description of the working
// tree the binary was built from, captured by CMake at configure time.
#pragma once

#include <string_view>

namespace mmv2v {

/// `git describe --always --dirty` output at configure time, or "unknown"
/// when the source tree is not a git checkout.
[[nodiscard]] std::string_view git_describe() noexcept;

}  // namespace mmv2v
