// Counting replacements for the global allocation functions. Sanitizer
// builds disable the hook entirely: ASan/TSan interpose on malloc and expect
// their own operator new definitions, and fighting their interceptors would
// corrupt their bookkeeping.
#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MMV2V_ALLOC_HOOK_DISABLED 1
#endif
#if !defined(MMV2V_ALLOC_HOOK_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MMV2V_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace mmv2v::alloc_hook {
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

bool active() {
#if defined(MMV2V_ALLOC_HOOK_DISABLED)
  return false;
#else
  return true;
#endif
}

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

namespace detail {
inline void count_one() { g_allocations.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

}  // namespace mmv2v::alloc_hook

#if !defined(MMV2V_ALLOC_HOOK_DISABLED)

namespace {

void* counted_alloc(std::size_t size) {
  mmv2v::alloc_hook::detail::count_one();
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  mmv2v::alloc_hook::detail::count_one();
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t size, std::align_val_t al, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !MMV2V_ALLOC_HOOK_DISABLED
