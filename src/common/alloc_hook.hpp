// Global operator-new counting hook. Compile alloc_hook.cpp directly into a
// binary (not via a static library, where the replacement operators may not
// be pulled from the archive) to count every heap allocation the process
// makes. Used by bench_runner's allocs/op column and the steady-state
// zero-allocation pipeline test.
#pragma once

#include <cstdint>

namespace mmv2v::alloc_hook {

/// True when the counting operator-new replacement is compiled into this
/// binary. False under ASan/TSan, whose interceptors own the allocator.
bool active();

/// Number of global operator new / new[] calls since process start.
/// Monotonic; sample before/after a region and subtract.
std::uint64_t allocations();

}  // namespace mmv2v::alloc_hook
