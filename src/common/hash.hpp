// Hash functions used by the Consensual Neighbor Schedule (CNS) and by
// deterministic per-entity stream seeding.
//
// CNS requires a hash H over MAC addresses such that for a vehicle pair
// (v_i, v_j) both ends compute the identical slot (H(MAC_i)+H(MAC_j)) mod C
// (paper Section III-C1). Any well-mixing deterministic hash works; we use
// FNV-1a over the raw address bytes followed by a 64-bit finalizer so that
// consecutive MAC addresses (common for fleet-assigned radios) still spread
// uniformly across slots.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace mmv2v {

/// FNV-1a 64-bit over an arbitrary byte span.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a 64-bit over a string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stafford variant-13 64-bit finalizer (the SplitMix64 mixer). Bijective.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The CNS hash H: mixes a 64-bit key (e.g. a MAC address value) into a
/// uniformly distributed 64-bit value.
[[nodiscard]] constexpr std::uint64_t cns_hash(std::uint64_t key) noexcept {
  return mix64(key * 0x9e3779b97f4a7c15ULL);
}

/// Combine two hashes order-independently, as CNS needs H(a)+H(b) to be
/// symmetric in the pair.
[[nodiscard]] constexpr std::uint64_t cns_pair_hash(std::uint64_t a, std::uint64_t b) noexcept {
  return cns_hash(a) + cns_hash(b);
}

/// Derive an independent stream seed from a base seed plus two stream
/// indices via chained SplitMix64 finalizer rounds. Unlike additive schemes
/// (`seed + a*P + b*Q`), distinct (base, s1, s2) triples cannot collide by
/// simple arithmetic coincidence: each round is bijective in its input, so
/// the full mixing only repeats if two triples already agree at every stage.
/// Used for per-cell experiment seeding (density index x repetition).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t s1,
                                                  std::uint64_t s2) noexcept {
  std::uint64_t h = mix64(base + 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ (s1 + 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ (s2 + 0x9e3779b97f4a7c15ULL));
  return h;
}

}  // namespace mmv2v
