#include "common/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mmv2v {

namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                                    "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// A "nice" tick step covering span/target ticks (1/2/5 * 10^k).
double nice_step(double span, int target_ticks) {
  if (span <= 0.0) return 1.0;
  const double raw = span / std::max(1, target_ticks);
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  for (const double m : {1.0, 2.0, 5.0, 10.0}) {
    if (raw <= m * mag) return m * mag;
  }
  return 10.0 * mag;
}

std::string format_tick(double v) {
  std::ostringstream out;
  if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0)) {
    out.precision(2);
    out << std::scientific << v;
  } else {
    out.precision(4);
    out << v;
  }
  return out.str();
}

}  // namespace

SvgChart::SvgChart(int width_px, int height_px, std::string title)
    : width_(width_px), height_(height_px), title_(std::move(title)) {
  if (width_px <= kMarginLeft + kMarginRight || height_px <= kMarginTop + kMarginBottom) {
    throw std::invalid_argument{"SvgChart: canvas too small for margins"};
  }
}

void SvgChart::add_series(std::string name, std::vector<std::pair<double, double>> points) {
  series_.push_back(Series{std::move(name), std::move(points)});
}

void SvgChart::set_categories(std::vector<std::string> labels) {
  categories_ = std::move(labels);
}

void SvgChart::add_bar_layer(std::string name, std::vector<double> values) {
  if (categories_.empty()) {
    throw std::logic_error{"SvgChart: set_categories before add_bar_layer"};
  }
  if (values.size() != categories_.size()) {
    throw std::invalid_argument{"SvgChart: bar layer needs one value per category"};
  }
  bar_layers_.push_back(BarLayer{std::move(name), std::move(values)});
}

void SvgChart::set_x_range(double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument{"SvgChart: x range needs hi > lo"};
  x_range_ = Range{lo, hi, true};
}

void SvgChart::set_y_range(double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument{"SvgChart: y range needs hi > lo"};
  y_range_ = Range{lo, hi, true};
}

void SvgChart::fit_ranges() const {
  const auto fit = [&](bool x_axis, Range& range) {
    if (range.fixed) return;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const Series& s : series_) {
      for (const auto& [px, py] : s.points) {
        const double v = x_axis ? px : py;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!bar_layers_.empty()) {
      if (x_axis) {
        // Categorical slots occupy [0, n): one unit per category.
        lo = std::min(lo, 0.0);
        hi = std::max(hi, static_cast<double>(categories_.size()));
      } else {
        // Stacks grow from zero to the per-category layer sum.
        lo = std::min(lo, 0.0);
        for (std::size_t c = 0; c < categories_.size(); ++c) {
          double stack = 0.0;
          for (const BarLayer& layer : bar_layers_) stack += layer.values[c];
          hi = std::max(hi, stack);
        }
      }
    }
    if (!std::isfinite(lo)) {
      lo = 0.0;
      hi = 1.0;
    }
    if (hi - lo < 1e-12) hi = lo + 1.0;
    const double pad = (hi - lo) * 0.05;
    range.lo = lo - (x_axis ? 0.0 : pad);
    range.hi = hi + pad;
  };
  fit(true, x_range_);
  fit(false, y_range_);
}

std::pair<double, double> SvgChart::to_pixels(double x, double y) const {
  fit_ranges();
  const double plot_w = static_cast<double>(width_ - kMarginLeft - kMarginRight);
  const double plot_h = static_cast<double>(height_ - kMarginTop - kMarginBottom);
  const double px =
      kMarginLeft + (x - x_range_.lo) / (x_range_.hi - x_range_.lo) * plot_w;
  const double py =
      kMarginTop + (1.0 - (y - y_range_.lo) / (y_range_.hi - y_range_.lo)) * plot_h;
  return {px, py};
}

std::string SvgChart::render() const {
  fit_ranges();
  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_ << "\" height=\""
      << height_ << "\" viewBox=\"0 0 " << width_ << ' ' << height_ << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width_ / 2 << "\" y=\"22\" text-anchor=\"middle\" "
      << "font-family=\"sans-serif\" font-size=\"15\" font-weight=\"bold\">"
      << escape_xml(title_) << "</text>\n";

  const int plot_right = width_ - kMarginRight;
  const int plot_bottom = height_ - kMarginBottom;

  // Axes box.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
      << plot_right - kMarginLeft << "\" height=\"" << plot_bottom - kMarginTop
      << "\" fill=\"none\" stroke=\"#333\"/>\n";

  // Ticks and grid. Categorical charts label the slots instead of drawing
  // numeric x ticks.
  if (bar_layers_.empty()) {
    const double x_step = nice_step(x_range_.hi - x_range_.lo, 6);
    for (double t = std::ceil(x_range_.lo / x_step) * x_step; t <= x_range_.hi + 1e-12;
         t += x_step) {
      const auto [px, py] = to_pixels(t, y_range_.lo);
      svg << "<line x1=\"" << px << "\" y1=\"" << kMarginTop << "\" x2=\"" << px
          << "\" y2=\"" << plot_bottom << "\" stroke=\"#ddd\"/>\n";
      svg << "<text x=\"" << px << "\" y=\"" << plot_bottom + 16
          << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"11\">"
          << format_tick(t) << "</text>\n";
      (void)py;
    }
  } else {
    for (std::size_t c = 0; c < categories_.size(); ++c) {
      const auto [px, py] = to_pixels(static_cast<double>(c) + 0.5, y_range_.lo);
      svg << "<text x=\"" << px << "\" y=\"" << plot_bottom + 16
          << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"11\">"
          << escape_xml(categories_[c]) << "</text>\n";
      (void)py;
    }
  }
  const double y_step = nice_step(y_range_.hi - y_range_.lo, 6);
  for (double t = std::ceil(y_range_.lo / y_step) * y_step; t <= y_range_.hi + 1e-12;
       t += y_step) {
    const auto [px, py] = to_pixels(x_range_.lo, t);
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\"" << plot_right
        << "\" y2=\"" << py << "\" stroke=\"#ddd\"/>\n";
    svg << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << py + 4
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" font-size=\"11\">"
        << format_tick(t) << "</text>\n";
    (void)px;
  }

  // Axis labels.
  if (!x_label_.empty()) {
    svg << "<text x=\"" << (kMarginLeft + plot_right) / 2 << "\" y=\"" << height_ - 10
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\">"
        << escape_xml(x_label_) << "</text>\n";
  }
  if (!y_label_.empty()) {
    svg << "<text x=\"14\" y=\"" << (kMarginTop + plot_bottom) / 2
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\" "
        << "transform=\"rotate(-90 14 " << (kMarginTop + plot_bottom) / 2 << ")\">"
        << escape_xml(y_label_) << "</text>\n";
  }

  // Stacked bars (under any line series), one legend swatch per layer.
  for (std::size_t c = 0; c < categories_.size() && !bar_layers_.empty(); ++c) {
    double base = 0.0;
    for (std::size_t l = 0; l < bar_layers_.size(); ++l) {
      const double v = bar_layers_[l].values[c];
      if (v <= 0.0) continue;
      const double slot = static_cast<double>(c);
      const auto [x0, y_top] = to_pixels(slot + 0.15, base + v);
      const auto [x1, y_bot] = to_pixels(slot + 0.85, base);
      svg << "<rect x=\"" << x0 << "\" y=\"" << y_top << "\" width=\"" << x1 - x0
          << "\" height=\"" << y_bot - y_top << "\" fill=\""
          << kPalette[l % kPaletteSize] << "\" stroke=\"white\" stroke-width=\"0.5\"/>\n";
      base += v;
    }
  }
  for (std::size_t l = 0; l < bar_layers_.size(); ++l) {
    const int ly = kMarginTop + 14 + static_cast<int>(series_.size() + l) * 18;
    svg << "<rect x=\"" << plot_right + 10 << "\" y=\"" << ly - 6
        << "\" width=\"24\" height=\"12\" fill=\"" << kPalette[l % kPaletteSize]
        << "\"/>\n";
    svg << "<text x=\"" << plot_right + 40 << "\" y=\"" << ly + 4
        << "\" font-family=\"sans-serif\" font-size=\"12\">"
        << escape_xml(bar_layers_[l].name) << "</text>\n";
  }

  // Series polylines + legend.
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char* color = kPalette[s % kPaletteSize];
    std::ostringstream pts;
    for (const auto& [x, y] : series_[s].points) {
      const auto [px, py] = to_pixels(x, y);
      pts << px << ',' << py << ' ';
    }
    svg << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"2\" points=\"" << pts.str() << "\"/>\n";
    for (const auto& [x, y] : series_[s].points) {
      const auto [px, py] = to_pixels(x, y);
      svg << "<circle cx=\"" << px << "\" cy=\"" << py << "\" r=\"3\" fill=\"" << color
          << "\"/>\n";
    }
    const int ly = kMarginTop + 14 + static_cast<int>(s) * 18;
    svg << "<line x1=\"" << plot_right + 10 << "\" y1=\"" << ly << "\" x2=\""
        << plot_right + 34 << "\" y2=\"" << ly << "\" stroke=\"" << color
        << "\" stroke-width=\"2\"/>\n";
    svg << "<text x=\"" << plot_right + 40 << "\" y=\"" << ly + 4
        << "\" font-family=\"sans-serif\" font-size=\"12\">" << escape_xml(series_[s].name)
        << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

void SvgChart::save(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"SvgChart: cannot open " + path};
  out << render();
  if (!out) throw std::runtime_error{"SvgChart: write failed for " + path};
}

}  // namespace mmv2v
