// Hierarchical wall-clock profiler (DESIGN.md Section 9).
//
// `PROF_SCOPE("dcm.negotiate")` opens an RAII scoped timer that appends one
// fixed-size record to a thread-local arena: two steady_clock reads and a
// vector push per scope, no lock, no allocation in steady state, no shared
// writes. Scopes nest naturally (each arena keeps an open-scope stack), so
// the registry can later merge every arena into
//   (a) an aggregated hierarchical report — count / total / self / p50 / p99
//       per call-tree node, as an aligned text table or canonical JSON — and
//   (b) Chrome Trace Event Format JSON (chrome://tracing, Perfetto), one
//       track per recorded thread plus one "ph":"C" counter track per
//       record_counter() name (arena high-water marks, overflow counts, ...).
//
// The profiler is runtime-gated: scopes cost one relaxed atomic load and a
// predicted branch while disabled (`prof::set_enabled(false)`, the default),
// and the whole facility compiles to nothing when the build defines
// MMV2V_PROFILER_DISABLED (CMake option MMV2V_PROFILER=OFF). It observes
// wall-clock only — it never touches RNG streams, metrics or event traces,
// so enabling it cannot perturb golden-trace digests (tested).
//
// Threading contract: recording is safe from any number of threads (each
// writes only its own arena; arena registration takes a mutex once per
// thread). `report*()`, `chrome_trace_json()` and `reset()` must run while
// no scope is being recorded — call them between runs, after worker pools
// have joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmv2v::prof {

/// One closed (or still-open) scope instance in a thread's arena.
struct ScopeRecord {
  const char* name;       ///< static string literal passed to PROF_SCOPE
  std::uint32_t parent;   ///< arena index of the enclosing scope, kNoParent at root
  std::int64_t start_ns;  ///< steady_clock ns since the global profiler epoch
  std::int64_t dur_ns;    ///< scope duration; -1 while still open
};

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

namespace detail {

struct ThreadArena;

/// This thread's arena, registering it on first use.
[[nodiscard]] ThreadArena& arena();
[[nodiscard]] std::uint32_t open_scope(ThreadArena& arena, const char* name) noexcept;
void close_scope(ThreadArena& arena, std::uint32_t index) noexcept;

[[nodiscard]] std::atomic<bool>& enabled_flag() noexcept;

}  // namespace detail

/// Is recording on? Relaxed load — this is the whole disabled-path cost.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Discard every recorded scope (arenas stay registered, handles stay
/// valid). Quiescent-only: no scope may be open on any thread.
void reset();

/// Total records across all arenas (cheap bookkeeping for long benchmark
/// loops that want to bound profiler memory via periodic reset()).
[[nodiscard]] std::size_t total_records();

/// One timestamped sample on a named counter track.
struct CounterRecord {
  std::string track;      ///< track name, e.g. "arena.lane0.used_bytes"
  std::int64_t t_ns;      ///< steady_clock ns since the global profiler epoch
  double value;
};

/// Record one sample on a named counter track (chrome_trace_json renders each
/// track as a "ph":"C" counter series, one lane per distinct name). No-op
/// while disabled; safe from any thread — samples land in the calling
/// thread's arena. Unlike PROF_SCOPE this copies the track name, so callers
/// on hot paths should prebuild the names and sample at frame granularity.
void record_counter(std::string_view track, double value);

/// Total counter samples across all arenas.
[[nodiscard]] std::size_t total_counter_records();

/// One aggregated call-tree node, merged across threads.
struct ReportNode {
  std::string path;        ///< "/"-joined scope names from the root, e.g. "sweep.cell/sim.frame"
  std::string name;        ///< leaf scope name
  int depth = 0;           ///< 0 at root
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;  ///< sum of scope durations
  std::int64_t self_ns = 0;   ///< total minus time in direct children
  double p50_ns = 0.0;        ///< median single-invocation duration
  double p99_ns = 0.0;
};

/// Aggregated hierarchy in deterministic pre-order (children sorted by
/// name). Open (unclosed) scopes are skipped.
[[nodiscard]] std::vector<ReportNode> report();

/// Aligned, indented text table of report().
[[nodiscard]] std::string report_text();

/// Canonical JSON: {"scopes":[{"path":..,"name":..,"depth":..,"count":..,
/// "total_ns":..,"self_ns":..,"p50_ns":..,"p99_ns":..},...]} in pre-order.
[[nodiscard]] std::string report_json();

/// Chrome Trace Event Format JSON array: one complete ("ph":"X") event per
/// record with microsecond timestamps, one tid per recorded thread, plus
/// thread_name metadata. Loads in chrome://tracing and Perfetto.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path);

/// RAII scoped timer; prefer the PROF_SCOPE macro.
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name) noexcept {
    if (enabled()) {
      arena_ = &detail::arena();
      index_ = detail::open_scope(*arena_, name);
    }
  }
  ~ScopeTimer() {
    if (arena_ != nullptr) detail::close_scope(*arena_, index_);
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  detail::ThreadArena* arena_ = nullptr;
  std::uint32_t index_ = 0;
};

}  // namespace mmv2v::prof

#if defined(MMV2V_PROFILER_DISABLED)
#define PROF_SCOPE(name) ((void)0)
#else
#define MMV2V_PROF_CONCAT_INNER(a, b) a##b
#define MMV2V_PROF_CONCAT(a, b) MMV2V_PROF_CONCAT_INNER(a, b)
#define PROF_SCOPE(name) \
  ::mmv2v::prof::ScopeTimer MMV2V_PROF_CONCAT(prof_scope_, __LINE__) { name }
#endif
