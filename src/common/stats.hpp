// Streaming and batch statistics used by the metrics layer and the benchmark
// harnesses (means, deviations, percentiles, empirical CDFs, histograms).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmv2v {

/// Welford streaming accumulator: numerically stable mean/variance without
/// storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n), matching the paper's DTP definition.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Sample variance (divides by n-1).
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with percentile / CDF queries. Samples are sorted
/// lazily on first query.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_all(const std::vector<double>& xs);
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated percentile over the sorted samples (rank
  /// q/100*(n-1), the same convention as numpy's default). Empty set returns
  /// 0; a single sample is every percentile; q outside [0, 100] — including
  /// NaN — throws std::invalid_argument.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Empirical CDF value P(X <= x).
  [[nodiscard]] double cdf_at(double x) const;

  /// Evaluate the empirical CDF on `points` equally spaced values in
  /// [lo, hi]; returns (x, F(x)) pairs. Useful for reproducing the paper's
  /// CDF figures (Fig. 7 / Fig. 8).
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(
      double lo, double hi, std::size_t points) const;

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  /// Zero every bin, keeping the bucket layout.
  void clear() noexcept;
  /// Accumulate another histogram's counts bin-for-bin. Throws
  /// std::invalid_argument unless `other` has the identical [lo, hi) range
  /// and bin count.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Percentile estimated by linear interpolation inside the covering bin
  /// (samples are assumed uniform within a bin). q in [0, 100]; q outside —
  /// including NaN — throws std::invalid_argument. Empty histogram returns
  /// 0. p0 is the lower edge of the first occupied bin, p100 the upper edge
  /// of the last occupied bin.
  [[nodiscard]] double percentile(double q) const;

  /// Render a terse ASCII sparkline (for example programs / debugging).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mmv2v
