#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mmv2v {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double q) const {
  // Validate before the empty check so a NaN / out-of-range q never
  // silently succeeds on one call site and throws on another. The negated
  // comparison also rejects NaN (all comparisons with NaN are false), which
  // would otherwise reach an undefined float-to-integer cast below.
  if (!(q >= 0.0 && q <= 100.0)) {
    throw std::invalid_argument{"percentile q out of [0,100]"};
  }
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(double lo, double hi,
                                                            std::size_t points) const {
  std::vector<std::pair<double, double>> curve;
  if (points == 0) return curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? lo : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(x, cdf_at(x));
  }
  return curve;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"histogram needs >= 1 bin"};
  if (!(hi > lo)) throw std::invalid_argument{"histogram needs hi > lo"};
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::clear() noexcept {
  counts_.assign(counts_.size(), 0);
  total_ = 0;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument{"histogram merge: bucket layouts differ"};
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::percentile(double q) const {
  if (!(q >= 0.0 && q <= 100.0)) {
    throw std::invalid_argument{"percentile q out of [0,100]"};
  }
  if (total_ == 0) return 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  // Target rank in (0, total]: the q-th fraction of the mass. q=0 maps to
  // the first occupied bin's lower edge via the loop below.
  const double target = q / 100.0 * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (next >= target) {
      // Interpolate inside this bin, treating its mass as uniform. For q=0
      // (target 0) this is the bin's lower edge; for q=100 on the last
      // occupied bin, frac = 1 gives the upper edge.
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[b]);
      return lo_ + (static_cast<double>(b) + frac) * width;
    }
    cumulative = next;
  }
  // Floating-point slack at q=100: fall back to the upper edge of the last
  // occupied bin.
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (counts_[b] != 0) return lo_ + (static_cast<double>(b) + 1.0) * width;
  }
  return 0.0;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    out += std::string(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace mmv2v
