// Minimal leveled logger. Single-threaded simulator, so no locking; the sink
// is process-global and swappable for tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace mmv2v {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-global logging configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replace the sink (default writes to stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mmv2v

// Usage: MMV2V_LOG(kInfo) << "frame " << f << " done";
#define MMV2V_LOG(level_suffix)                                                  \
  if (!::mmv2v::Logger::instance().enabled(::mmv2v::LogLevel::level_suffix)) {   \
  } else                                                                         \
    ::mmv2v::detail::LogLine(::mmv2v::LogLevel::level_suffix)
