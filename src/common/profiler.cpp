#include "common/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/textio.hpp"

namespace mmv2v::prof {
namespace detail {

struct ThreadArena {
  std::vector<ScopeRecord> records;
  std::vector<CounterRecord> counters;
  std::vector<std::uint32_t> open_stack;
  std::uint32_t tid = 0;
};

namespace {

/// Owns every arena for the process lifetime. Threads register once (under
/// the mutex) and then write their own arena lock-free; arenas of exited
/// threads keep their records until reset().
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadArena>> arenas;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry r;
  return r;
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

}  // namespace

ThreadArena& arena() {
  thread_local ThreadArena* mine = nullptr;
  if (mine == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock{reg.mutex};
    reg.arenas.push_back(std::make_unique<ThreadArena>());
    mine = reg.arenas.back().get();
    mine->tid = static_cast<std::uint32_t>(reg.arenas.size() - 1);
    mine->records.reserve(4096);
  }
  return *mine;
}

std::uint32_t open_scope(ThreadArena& arena, const char* name) noexcept {
  const auto index = static_cast<std::uint32_t>(arena.records.size());
  const std::uint32_t parent = arena.open_stack.empty() ? kNoParent : arena.open_stack.back();
  arena.records.push_back(ScopeRecord{name, parent, now_ns(), -1});
  arena.open_stack.push_back(index);
  return index;
}

void close_scope(ThreadArena& arena, std::uint32_t index) noexcept {
  ScopeRecord& record = arena.records[index];
  record.dur_ns = now_ns() - record.start_ns;
  // Scopes are RAII so destruction order guarantees LIFO; tolerate a foreign
  // top defensively (it only degrades parent attribution, never memory).
  if (!arena.open_stack.empty() && arena.open_stack.back() == index) {
    arena.open_stack.pop_back();
  }
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

void reset() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  for (auto& arena : reg.arenas) {
    arena->records.clear();
    arena->counters.clear();
    arena->open_stack.clear();
  }
}

std::size_t total_records() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  std::size_t total = 0;
  for (const auto& arena : reg.arenas) total += arena->records.size();
  return total;
}

void record_counter(std::string_view track, double value) {
  if (!enabled()) return;
  detail::ThreadArena& mine = detail::arena();
  mine.counters.push_back(CounterRecord{std::string{track}, detail::now_ns(), value});
}

std::size_t total_counter_records() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  std::size_t total = 0;
  for (const auto& arena : reg.arenas) total += arena->counters.size();
  return total;
}

namespace {

/// Call-tree node used while aggregating arenas. Children are keyed by name
/// *string* (not pointer) so identical scopes merge across threads and
/// translation units.
struct AggNode {
  std::string name;
  int parent = -1;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t child_ns = 0;
  std::vector<double> durations_ns;
  std::map<std::string, int, std::less<>> children;
};

struct Aggregation {
  std::vector<AggNode> nodes;
  std::map<std::string, int, std::less<>> roots;

  int child_of(int parent, const char* name) {
    auto& index = parent < 0 ? roots : nodes[static_cast<std::size_t>(parent)].children;
    const auto it = index.find(name);
    if (it != index.end()) return it->second;
    const int id = static_cast<int>(nodes.size());
    index.emplace(name, id);
    AggNode node;
    node.name = name;
    node.parent = parent;
    nodes.push_back(std::move(node));
    return id;
  }
};

Aggregation aggregate() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  Aggregation agg;
  std::vector<int> node_of_record;
  for (const auto& arena : reg.arenas) {
    node_of_record.assign(arena->records.size(), -1);
    for (std::size_t r = 0; r < arena->records.size(); ++r) {
      const ScopeRecord& record = arena->records[r];
      // A record's parent always precedes it (scopes open parents first),
      // so its node id is already resolved.
      const int parent =
          record.parent == kNoParent ? -1 : node_of_record[record.parent];
      const int id = agg.child_of(parent, record.name);
      node_of_record[r] = id;
      if (record.dur_ns < 0) continue;  // still open: skip from aggregates
      AggNode& node = agg.nodes[static_cast<std::size_t>(id)];
      ++node.count;
      node.total_ns += record.dur_ns;
      node.durations_ns.push_back(static_cast<double>(record.dur_ns));
      if (parent >= 0) agg.nodes[static_cast<std::size_t>(parent)].child_ns += record.dur_ns;
    }
  }
  return agg;
}

void emit_preorder(const Aggregation& agg, const std::map<std::string, int, std::less<>>& index,
                   const std::string& prefix, int depth, std::vector<ReportNode>& out) {
  for (const auto& [name, id] : index) {
    const AggNode& node = agg.nodes[static_cast<std::size_t>(id)];
    if (node.count == 0 && node.children.empty()) continue;  // only-open scopes
    ReportNode rep;
    rep.path = prefix.empty() ? name : prefix + "/" + name;
    rep.name = name;
    rep.depth = depth;
    rep.count = node.count;
    rep.total_ns = node.total_ns;
    rep.self_ns = node.total_ns - node.child_ns;
    if (!node.durations_ns.empty()) {
      SampleSet samples;
      samples.add_all(node.durations_ns);
      rep.p50_ns = samples.percentile(50.0);
      rep.p99_ns = samples.percentile(99.0);
    }
    // Recurse with a stable copy: a reference into `out` would dangle as
    // soon as a nested push_back reallocates the vector.
    const std::string child_prefix = rep.path;
    out.push_back(std::move(rep));
    emit_preorder(agg, node.children, child_prefix, depth + 1, out);
  }
}

}  // namespace

std::vector<ReportNode> report() {
  const Aggregation agg = aggregate();
  std::vector<ReportNode> out;
  emit_preorder(agg, agg.roots, "", 0, out);
  return out;
}

std::string report_text() {
  const std::vector<ReportNode> nodes = report();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-44s %10s %12s %12s %11s %11s\n", "scope", "count",
                "total_ms", "self_ms", "p50_us", "p99_us");
  out += line;
  for (const ReportNode& n : nodes) {
    std::string label(static_cast<std::size_t>(n.depth) * 2, ' ');
    label += n.name;
    std::snprintf(line, sizeof line, "%-44s %10llu %12.3f %12.3f %11.1f %11.1f\n",
                  label.c_str(), static_cast<unsigned long long>(n.count),
                  static_cast<double>(n.total_ns) / 1e6,
                  static_cast<double>(n.self_ns) / 1e6, n.p50_ns / 1e3, n.p99_ns / 1e3);
    out += line;
  }
  return out;
}

std::string report_json() {
  const std::vector<ReportNode> nodes = report();
  std::string out = "{\"scopes\":[";
  bool first = true;
  for (const ReportNode& n : nodes) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":";
    io::append_json_string(out, n.path);
    out += ",\"name\":";
    io::append_json_string(out, n.name);
    out += ",\"depth\":";
    io::append_number(out, static_cast<std::int64_t>(n.depth));
    out += ",\"count\":";
    io::append_number(out, n.count);
    out += ",\"total_ns\":";
    io::append_number(out, n.total_ns);
    out += ",\"self_ns\":";
    io::append_number(out, n.self_ns);
    out += ",\"p50_ns\":";
    io::append_number(out, n.p50_ns);
    out += ",\"p99_ns\":";
    io::append_number(out, n.p99_ns);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string chrome_trace_json() {
  detail::Registry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock{reg.mutex};
  std::string out = "[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += event;
  };
  {
    std::string meta = R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"mmv2v"}})";
    emit(meta);
  }
  for (const auto& arena : reg.arenas) {
    if (arena->records.empty() && arena->counters.empty()) continue;
    std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    io::append_number(meta, static_cast<std::uint64_t>(arena->tid));
    meta += ",\"args\":{\"name\":\"worker-";
    io::append_number(meta, static_cast<std::uint64_t>(arena->tid));
    meta += "\"}}";
    emit(meta);
    for (const ScopeRecord& record : arena->records) {
      if (record.dur_ns < 0) continue;  // unclosed scope: no complete event
      std::string event = "{\"name\":";
      io::append_json_string(event, record.name);
      event += ",\"cat\":\"mmv2v\",\"ph\":\"X\",\"ts\":";
      io::append_number(event, static_cast<double>(record.start_ns) / 1e3);
      event += ",\"dur\":";
      io::append_number(event, static_cast<double>(record.dur_ns) / 1e3);
      event += ",\"pid\":0,\"tid\":";
      io::append_number(event, static_cast<std::uint64_t>(arena->tid));
      event += '}';
      emit(event);
    }
    for (const CounterRecord& counter : arena->counters) {
      std::string event = "{\"name\":";
      io::append_json_string(event, counter.track);
      event += ",\"cat\":\"mmv2v\",\"ph\":\"C\",\"ts\":";
      io::append_number(event, static_cast<double>(counter.t_ns) / 1e3);
      event += ",\"pid\":0,\"tid\":";
      io::append_number(event, static_cast<std::uint64_t>(arena->tid));
      event += ",\"args\":{\"value\":";
      io::append_number(event, counter.value);
      event += "}}";
      emit(event);
    }
  }
  out += "\n]\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream file{path, std::ios::binary};
  if (!file) throw std::runtime_error{"profiler: cannot open trace file " + path};
  file << chrome_trace_json();
  if (!file) throw std::runtime_error{"profiler: failed writing trace file " + path};
}

}  // namespace mmv2v::prof
