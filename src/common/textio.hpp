// Locale-independent, deterministic text formatting for the CSV/JSONL
// observability outputs. std::ostream's operator<< for floating point goes
// through the imbued locale (a German global locale turns 0.5 into "0,5"
// and corrupts CSV); std::to_chars is locale-free and emits the shortest
// representation that round-trips, so traces are byte-identical across
// machines and safe to hash for golden-trace regression digests.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

namespace mmv2v::io {

/// Append a double in shortest round-trip decimal form ("0.02", "1e+22").
/// Non-finite values (which no well-formed trace should contain) are spelled
/// "nan" / "inf" / "-inf" so they are at least greppable.
inline void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += std::isnan(v) ? "nan" : (v > 0.0 ? "inf" : "-inf");
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

inline void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

inline void append_number(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Append `s` as a JSON string literal (quotes included), escaping the
/// characters RFC 8259 requires.
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace mmv2v::io
