// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator draws from an explicitly seeded
// generator so that a scenario is fully reproducible from (config, seed).
// We implement SplitMix64 (for seeding / stream splitting) and Xoshiro256++
// (the workhorse generator) rather than relying on std::mt19937 so that the
// bit streams are stable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mmv2v {

/// SplitMix64: tiny, fast generator used to expand a single 64-bit seed into
/// independent streams (one per vehicle, per subsystem, ...).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ by Blackman & Vigna: fast, high-quality 256-bit-state PRNG.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion (the recommended seeding procedure).
  explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's rejection-free
  /// bounded method with the widening-multiply trick (slight bias < 2^-64,
  /// irrelevant for simulation purposes).
  constexpr std::uint64_t uniform_int(std::uint64_t n) noexcept {
    const unsigned __int128 wide =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fork an independent child stream keyed by `key`. Children with distinct
  /// keys are statistically independent of each other and of the parent.
  [[nodiscard]] constexpr Xoshiro256pp fork(std::uint64_t key) const noexcept {
    SplitMix64 sm{state_[0] ^ (key * 0x9e3779b97f4a7c15ULL)};
    Xoshiro256pp child{sm.next()};
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mmv2v
