// Dependency-free SVG chart writer (line series and stacked category bars).
// The figure benches use it to emit visual counterparts of the paper's plots
// (OCR vs density, CDFs, ...) and the obs report renders span-outcome
// attribution bars with it — without any plotting toolchain.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mmv2v {

class SvgChart {
 public:
  SvgChart(int width_px, int height_px, std::string title);

  /// Add a named line series; colors cycle through a built-in palette.
  void add_series(std::string name, std::vector<std::pair<double, double>> points);

  /// Switch the x axis to categorical mode: one bar slot per label. Must be
  /// called before add_bar_layer.
  void set_categories(std::vector<std::string> labels);
  /// Add one stacked-bar layer: values[i] is this layer's contribution to
  /// category i's stack (one value per category, checked). Layers stack in
  /// insertion order; colors share the line-series palette. Throws
  /// std::logic_error without categories, std::invalid_argument on a size
  /// mismatch.
  void add_bar_layer(std::string name, std::vector<double> values);

  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }
  /// Fix an axis range instead of auto-fitting the data.
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);

  /// Render the complete <svg> document.
  [[nodiscard]] std::string render() const;

  /// Write render() to a file. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  [[nodiscard]] std::size_t series_count() const noexcept { return series_.size(); }
  [[nodiscard]] std::size_t bar_layer_count() const noexcept { return bar_layers_.size(); }

  // Exposed for tests: data-space -> pixel-space mapping of the current chart.
  [[nodiscard]] std::pair<double, double> to_pixels(double x, double y) const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };
  struct BarLayer {
    std::string name;
    std::vector<double> values;
  };
  struct Range {
    double lo = 0.0;
    double hi = 1.0;
    bool fixed = false;
  };

  void fit_ranges() const;

  int width_;
  int height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
  std::vector<std::string> categories_;
  std::vector<BarLayer> bar_layers_;
  mutable Range x_range_;
  mutable Range y_range_;

  static constexpr int kMarginLeft = 60;
  static constexpr int kMarginRight = 140;  // legend space
  static constexpr int kMarginTop = 36;
  static constexpr int kMarginBottom = 48;
};

}  // namespace mmv2v
