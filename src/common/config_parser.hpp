// Tiny key=value scenario-file parser used by the examples and bench
// harnesses, so scenarios can be described in text files / CLI overrides
// without an external dependency.
//
// Format: one `key = value` per line; `#` starts a comment; keys are
// dot-scoped strings (e.g. "traffic.density_vpl"). Values are parsed on
// access as string / double / int / bool.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_params.hpp"
#include "core/fidelity.hpp"
#include "core/trace_params.hpp"
#include "net/net_params.hpp"
#include "traffic/road_network.hpp"

namespace mmv2v {

class ConfigMap {
 public:
  /// Parse from file contents. Throws std::runtime_error on malformed lines
  /// (line number included in the message).
  static ConfigMap parse(std::string_view text);

  /// Load and parse a file from disk. Throws on I/O error.
  static ConfigMap load(const std::string& path);

  /// Apply CLI-style overrides of the form "key=value".
  void apply_overrides(const std::vector<std::string>& overrides);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_double(std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;

  /// Convenience accessors with defaults.
  [[nodiscard]] std::string get_or(std::string_view key, std::string def) const;
  [[nodiscard]] double get_or(std::string_view key, double def) const;
  [[nodiscard]] std::int64_t get_or(std::string_view key, std::int64_t def) const;
  [[nodiscard]] bool get_or(std::string_view key, bool def) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

/// Parse the execution-engine knob group (`engine.threads`,
/// `engine.arena_bytes`, `engine.lane_budget`, `world.shards`) into
/// EngineParams. Missing keys keep the defaults; malformed or out-of-range
/// values throw std::runtime_error. These knobs never change simulation
/// results, only how frames are computed.
[[nodiscard]] core::EngineParams parse_engine_knobs(const ConfigMap& config);

/// Parse the road-network topology knob group into NetworkConfig:
///   network.topology     = ring | ring_network | city_grid
///   network.grid_rows    / network.grid_cols   (city_grid node counts)
///   network.block_m      (city block edge length [m])
///   network.signal_green_s (per-axis green phase [s])
/// Missing keys keep the defaults; malformed values throw std::runtime_error.
[[nodiscard]] traffic::NetworkConfig parse_network_knobs(const ConfigMap& config);

/// Parse the fidelity-tiering knob group into TierConfig:
///   tier.enabled            = true | false
///   tier.focus              = x,y,radius [; x,y,radius ...]   (focus regions)
///   tier.kinematic_radius_m / tier.hysteresis_m
///   tier.promote_budget     / tier.demote_budget
///   tier.onrails_duty_cycle
/// Missing keys keep the defaults; malformed values throw std::runtime_error.
[[nodiscard]] core::TierConfig parse_tier_knobs(const ConfigMap& config);

/// Parse the control-plane transport knob group into NetParams:
///   net.sub6_enabled  = true | false (sub-6 GHz omnidirectional failover)
///   net.sub6_range_m  = delivery range of the side channel [m] (> 0)
///   net.sub6_loss     = stationary side-channel loss rate in [0, 1)
///   net.relay_enabled = true | false (one-hop relay negotiation recovery)
/// Missing keys keep the defaults; malformed values throw std::runtime_error.
[[nodiscard]] net::NetParams parse_net_knobs(const ConfigMap& config);

/// Parse the observability knob group into TraceParams:
///   trace.format       = jsonl | binary
///   trace.flush_events = integer >= 0 (0 = keep every event buffered)
///   trace.spans        = true | false (link-lifecycle span events)
/// Missing keys keep the defaults; malformed values throw std::runtime_error.
/// These knobs never change simulation results, only the recorded trace.
[[nodiscard]] core::TraceParams parse_trace_knobs(const ConfigMap& config);

}  // namespace mmv2v
