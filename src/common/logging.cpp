#include "common/logging.hpp"

#include <cstdio>

namespace mmv2v {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view msg) {
        std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
                     to_string(level).data(), static_cast<int>(msg.size()), msg.data());
      }) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    *this = Logger{};  // restore defaults (level intentionally also reset)
  }
}

void Logger::log(LogLevel level, std::string_view message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace mmv2v
