#include "sim/pool_registry.hpp"

#include <algorithm>

namespace mmv2v::sim {

PoolRegistry& PoolRegistry::instance() {
  static PoolRegistry registry;
  return registry;
}

PoolRegistry::Checkout PoolRegistry::checkout(int lanes) {
  lanes = std::max(2, lanes);
  {
    std::lock_guard lock{mutex_};
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if ((*it)->lanes() == lanes) {
        std::unique_ptr<WorkerPool> pool = std::move(*it);
        idle_.erase(it);
        return Checkout{this, std::move(pool)};
      }
    }
  }
  // Construct outside the lock: thread spawn is the slow path.
  return Checkout{this, std::make_unique<WorkerPool>(lanes)};
}

void PoolRegistry::clear() {
  std::vector<std::unique_ptr<WorkerPool>> doomed;
  {
    std::lock_guard lock{mutex_};
    doomed.swap(idle_);
  }
  // Pools join their threads on destruction, outside the lock.
}

std::size_t PoolRegistry::idle_count() const {
  std::lock_guard lock{mutex_};
  return idle_.size();
}

void PoolRegistry::park(std::unique_ptr<WorkerPool> pool) {
  std::lock_guard lock{mutex_};
  idle_.push_back(std::move(pool));
}

void PoolRegistry::Checkout::release() {
  if (owner_ != nullptr && pool_ != nullptr) {
    owner_->park(std::move(pool_));
  }
  owner_ = nullptr;
  pool_.reset();
}

}  // namespace mmv2v::sim
