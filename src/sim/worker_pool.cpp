#include "sim/worker_pool.hpp"

#include <algorithm>

namespace mmv2v::sim {

thread_local const WorkerPool* WorkerPool::lane_pool_ = nullptr;
thread_local int WorkerPool::lane_ = 0;

WorkerPool::WorkerPool(int threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? static_cast<int>(hw) : 1;
  }
  const int worker_count = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i](const std::stop_token& st) {
      lane_pool_ = this;
      lane_ = i + 1;
      worker_main(st);
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::jthread& w : workers_) w.request_stop();
  }
  cv_.notify_all();
  // std::jthread joins on destruction.
}

void WorkerPool::parallel_for(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  if (workers_.empty() || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(ctx, c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    n_ = n;
    grain_ = grain;
    chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++generation_;
  }
  cv_.notify_all();

  drain_chunks(fn, ctx, n, grain, chunks);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
}

void WorkerPool::drain_chunks(ChunkFn fn, void* ctx, std::size_t n, std::size_t grain,
                              std::size_t chunks) {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) return;
    fn(ctx, c, c * grain, std::min(n, (c + 1) * grain));
  }
}

void WorkerPool::worker_main(const std::stop_token& st) {
  std::uint64_t seen = 0;
  for (;;) {
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, st, [&] { return generation_ != seen; });
      if (generation_ == seen) return;  // stop requested with no new job
      seen = generation_;
      fn = fn_;
      ctx = ctx_;
      n = n_;
      grain = grain_;
      chunks = chunks_;
    }
    drain_chunks(fn, ctx, n, grain, chunks);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_workers_;
      if (pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace mmv2v::sim
