#include "sim/frame.hpp"

namespace mmv2v::sim {

FrameSchedule::FrameSchedule(TimingConfig timing, int sectors, int discovery_rounds,
                             int negotiation_slots, int refinement_beams)
    : timing_(timing),
      sectors_(sectors),
      discovery_rounds_(discovery_rounds),
      negotiation_slots_(negotiation_slots),
      refinement_beams_(refinement_beams) {
  if (sectors <= 0 || sectors % 2 != 0) {
    throw std::invalid_argument{"FrameSchedule: sector count must be positive and even"};
  }
  if (discovery_rounds <= 0) throw std::invalid_argument{"FrameSchedule: K must be >= 1"};
  if (negotiation_slots <= 0) throw std::invalid_argument{"FrameSchedule: M must be >= 1"};
  if (refinement_beams <= 0) throw std::invalid_argument{"FrameSchedule: s must be >= 1"};
  if (udt_duration_s() <= 0.0) {
    throw std::invalid_argument{
        "FrameSchedule: control phases exceed the frame; no UDT time left"};
  }
}

}  // namespace mmv2v::sim
