// Frame timing (paper Section IV-A). mmV2V operates in synchronized frames
// of 20 ms; within a frame the time budget is:
//
//   [ SND: K rounds ][ DCM: M slots ][ refinement ][ UDT: remainder ]
//
// One SND round sweeps S sectors twice (role swap), each sector taking one
// SSW frame (15 us) plus a beam-forming delay (1 us): at S = 24 this is
// 2 * 24 * 16 us = 0.768 ms, matching the paper's "one round of SND takes
// 0.8 ms". One DCM negotiation slot is 0.03 ms (two control exchanges of
// aControlPHYPreambleLength = 4.3 us each plus aSIFSTime = 3 us per frame,
// for setup and update, both directions).
#pragma once

#include <stdexcept>

namespace mmv2v::sim {

struct TimingConfig {
  double frame_s = 20e-3;
  double ssw_frame_s = 15e-6;
  double beam_switch_s = 1e-6;
  double control_preamble_s = 4.3e-6;  // aControlPHYPreambleLength
  double sifs_s = 3e-6;                // aSIFSTime
  double negotiation_slot_s = 0.03e-3;
  double mobility_tick_s = 5e-3;
};

class FrameSchedule {
 public:
  /// `sectors` = S, `discovery_rounds` = K, `negotiation_slots` = M,
  /// `refinement_beams` = s (narrow beams per side in the cross search).
  FrameSchedule(TimingConfig timing, int sectors, int discovery_rounds, int negotiation_slots,
                int refinement_beams);

  [[nodiscard]] const TimingConfig& timing() const noexcept { return timing_; }

  /// Duration of one sector dwell (SSW frame + beam switch).
  [[nodiscard]] double sector_dwell_s() const noexcept {
    return timing_.ssw_frame_s + timing_.beam_switch_s;
  }
  /// One SND round: sweep all sectors in both role assignments.
  [[nodiscard]] double snd_round_s() const noexcept {
    return 2.0 * static_cast<double>(sectors_) * sector_dwell_s();
  }
  [[nodiscard]] double snd_total_s() const noexcept {
    return static_cast<double>(discovery_rounds_) * snd_round_s();
  }
  [[nodiscard]] double dcm_total_s() const noexcept {
    return static_cast<double>(negotiation_slots_) * timing_.negotiation_slot_s;
  }
  /// Beam refinement: cross search of `refinement_beams` probes per side plus
  /// a control feedback exchange per side.
  [[nodiscard]] double refinement_s() const noexcept {
    const double probes = 2.0 * static_cast<double>(refinement_beams_) * sector_dwell_s();
    const double feedback = 2.0 * (timing_.control_preamble_s + timing_.sifs_s);
    return probes + feedback;
  }
  /// Start offsets within the frame.
  [[nodiscard]] double snd_start_s() const noexcept { return 0.0; }
  [[nodiscard]] double dcm_start_s() const noexcept { return snd_total_s(); }
  [[nodiscard]] double refinement_start_s() const noexcept {
    return snd_total_s() + dcm_total_s();
  }
  [[nodiscard]] double udt_start_s() const noexcept {
    return refinement_start_s() + refinement_s();
  }
  /// Time available for data transmission in one frame.
  [[nodiscard]] double udt_duration_s() const noexcept {
    return timing_.frame_s - udt_start_s();
  }

  [[nodiscard]] int sectors() const noexcept { return sectors_; }
  [[nodiscard]] int discovery_rounds() const noexcept { return discovery_rounds_; }
  [[nodiscard]] int negotiation_slots() const noexcept { return negotiation_slots_; }
  [[nodiscard]] int refinement_beams() const noexcept { return refinement_beams_; }

 private:
  TimingConfig timing_;
  int sectors_;
  int discovery_rounds_;
  int negotiation_slots_;
  int refinement_beams_;
};

}  // namespace mmv2v::sim
