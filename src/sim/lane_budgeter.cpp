#include "sim/lane_budgeter.hpp"

#include <algorithm>
#include <thread>

namespace mmv2v::sim {

namespace {

int hardware_lanes() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace

LaneBudgeter::LaneBudgeter() : budget_(hardware_lanes()) {}

LaneBudgeter& LaneBudgeter::instance() {
  static LaneBudgeter budgeter;
  return budgeter;
}

void LaneBudgeter::set_budget(int lanes) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (lanes <= 0) {
    budget_ = hardware_lanes();
    explicit_budget_ = false;
  } else {
    budget_ = lanes;
    explicit_budget_ = true;
  }
}

int LaneBudgeter::budget() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return budget_;
}

int LaneBudgeter::extra_in_use() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return extra_in_use_;
}

LaneBudgeter::Lease LaneBudgeter::acquire(int want) {
  const std::lock_guard<std::mutex> lock{mutex_};
  // The caller is itself a lane, so the remainder available for extra
  // workers is budget - 1 minus what other leases already hold.
  const int available = std::max(0, budget_ - 1 - extra_in_use_);
  int granted = 0;
  if (want <= 0) {
    granted = 1 + available;
  } else if (explicit_budget_) {
    granted = 1 + std::min(want - 1, available);
  } else {
    granted = want;  // explicit ask under the hardware default: honored
  }
  extra_in_use_ += granted - 1;
  return Lease{this, granted};
}

void LaneBudgeter::release_extra(int extra) {
  const std::lock_guard<std::mutex> lock{mutex_};
  extra_in_use_ = std::max(0, extra_in_use_ - extra);
}

LaneBudgeter::Lease::Lease(Lease&& other) noexcept
    : owner_(other.owner_), lanes_(other.lanes_) {
  other.owner_ = nullptr;
  other.lanes_ = 0;
}

LaneBudgeter::Lease& LaneBudgeter::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = other.owner_;
    lanes_ = other.lanes_;
    other.owner_ = nullptr;
    other.lanes_ = 0;
  }
  return *this;
}

void LaneBudgeter::Lease::release() {
  if (owner_ != nullptr && lanes_ > 1) owner_->release_extra(lanes_ - 1);
  owner_ = nullptr;
  lanes_ = 0;
}

}  // namespace mmv2v::sim
