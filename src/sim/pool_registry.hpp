// Process-wide registry of persistent WorkerPools (DESIGN.md Section 12).
//
// Subsystems that need intra-refresh parallelism for a bounded scope — the
// world's sharded snapshot refresh, one-off parallel passes in tools — used
// to construct a fresh WorkerPool per call, respawning threads every
// mobility tick and discarding each lane's thread_local scratch. The
// registry keeps idle pools alive between checkouts instead: a checkout
// hands back a persistent pool with exactly the requested lane count
// (creating one the first time), and returning it parks the pool for the
// next caller of the same width.
//
// Lane-count exactness matters only for budget accounting, never for
// results: the WorkerPool chunk grid depends only on (n, grain), so any
// pool produces bit-identical output. Callers still lease their lane count
// from the LaneBudgeter first — the registry recycles threads, it does not
// grant them.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sim/worker_pool.hpp"

namespace mmv2v::sim {

class PoolRegistry {
 public:
  /// The process-wide instance. Pools parked here persist until clear().
  static PoolRegistry& instance();

  /// RAII checkout handle; returns the pool to the registry on destruction.
  /// Movable, empty-constructible (pool() == nullptr until assigned).
  class Checkout {
   public:
    Checkout() = default;
    Checkout(Checkout&& other) noexcept : owner_(other.owner_), pool_(std::move(other.pool_)) {
      other.owner_ = nullptr;
    }
    Checkout& operator=(Checkout&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = other.owner_;
        pool_ = std::move(other.pool_);
        other.owner_ = nullptr;
      }
      return *this;
    }
    Checkout(const Checkout&) = delete;
    Checkout& operator=(const Checkout&) = delete;
    ~Checkout() { release(); }

    [[nodiscard]] WorkerPool* pool() const noexcept { return pool_.get(); }
    /// Park the pool back in the registry now (idempotent).
    void release();

   private:
    friend class PoolRegistry;
    Checkout(PoolRegistry* owner, std::unique_ptr<WorkerPool> pool)
        : owner_(owner), pool_(std::move(pool)) {}
    PoolRegistry* owner_ = nullptr;
    std::unique_ptr<WorkerPool> pool_;
  };

  /// Check out a persistent pool with exactly `lanes` lanes (>= 2; a 1-lane
  /// scope needs no pool — run inline). Reuses an idle pool of that width
  /// when one is parked, constructs one otherwise.
  [[nodiscard]] Checkout checkout(int lanes);

  /// Destroy all idle pools (joins their threads). For tests and shutdown;
  /// checked-out pools are unaffected and re-park afterwards.
  void clear();

  /// Idle pools currently parked (tests).
  [[nodiscard]] std::size_t idle_count() const;

  /// A fresh registry for tests; production code uses instance().
  PoolRegistry() = default;

 private:
  void park(std::unique_ptr<WorkerPool> pool);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerPool>> idle_;
};

}  // namespace mmv2v::sim
