// Process-wide lane budget for every parallel subsystem (DESIGN.md
// Section 12). Before the budgeter, thread counts multiplied: a density
// sweep on `ExperimentConfig::threads` workers ran one simulation per
// worker, and each simulation's FrameResources spawned `engine.threads`
// intra-frame lanes — oversubscribing the machine by the product. Now every
// fan-out point (sweep cells, world shards, frame phases) leases its lanes
// from one LaneBudgeter, which apportions a single process-wide budget.
//
// Grant policy:
//   * A flexible request (`want <= 0`, the "use the hardware" default)
//     receives whatever is left of the budget, never less than 1. Nested
//     flexible requests therefore degrade gracefully: a sweep that leased
//     the whole budget leaves 1 lane (serial) for each cell's frame
//     pipeline instead of multiplying.
//   * An explicit request (`want >= 1`) is honored in full while the budget
//     is the hardware default — an explicit `engine.threads = 8` is the
//     user's deliberate choice, and results are bit-identical at any lane
//     count — but is clamped to the remaining budget once a budget has been
//     set explicitly (`engine.lane_budget` / set_budget), which gives the
//     knob authority over every subsystem at once.
//
// Lanes only control HOW work is executed, never WHAT is computed: the
// WorkerPool chunk grid is lane-count independent, so any grant produces
// bit-identical results (the pipeline and world test suites pin this).
#pragma once

#include <mutex>

namespace mmv2v::sim {

class LaneBudgeter {
 public:
  /// The process-wide instance every subsystem leases from.
  static LaneBudgeter& instance();

  /// Total concurrent lanes the process may use. `lanes <= 0` restores the
  /// hardware default (std::thread::hardware_concurrency, at least 1) and
  /// clears the explicit-budget flag.
  void set_budget(int lanes);
  [[nodiscard]] int budget() const;
  /// Lanes currently leased beyond the callers themselves (a lease of g
  /// lanes accounts for g - 1 extra threads: the caller is the first lane).
  [[nodiscard]] int extra_in_use() const;

  /// RAII lane lease. Movable; releases its extra lanes on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    /// Granted lane count, including the calling thread (>= 1; 0 only for a
    /// default-constructed empty lease).
    [[nodiscard]] int lanes() const noexcept { return lanes_; }
    void release();

   private:
    friend class LaneBudgeter;
    Lease(LaneBudgeter* owner, int lanes) : owner_(owner), lanes_(lanes) {}
    LaneBudgeter* owner_ = nullptr;
    int lanes_ = 0;
  };

  /// Lease lanes per the grant policy above. Thread-safe; the returned lease
  /// releases its share when destroyed.
  [[nodiscard]] Lease acquire(int want);

  /// A fresh budgeter for tests; production code uses instance().
  LaneBudgeter();

 private:
  void release_extra(int extra);

  mutable std::mutex mutex_;
  int budget_ = 1;
  int extra_in_use_ = 0;
  bool explicit_budget_ = false;
};

}  // namespace mmv2v::sim
