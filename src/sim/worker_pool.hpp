// Persistent worker pool for intra-frame parallel phase loops. Mirrors the
// std::jthread pattern of core::run_density_sweep, but keeps the threads
// alive across frames so per-lane (thread_local) scratch buffers retain
// their capacity — a prerequisite for allocation-free steady-state frames.
//
// Determinism contract: parallel_for() splits [0, n) into a chunk grid that
// depends only on (n, grain) — never on the lane count or on claim timing.
// Chunks are claimed dynamically (atomic counter), but each chunk index maps
// to a fixed index range, so per-chunk results (e.g. partial stats) can be
// merged in chunk order for bit-identical output at any thread count. The
// callback must not consume shared RNG state; loops that need randomness
// draw it serially beforehand (or derive per-item seeds via derive_seed).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mmv2v::sim {

class WorkerPool {
 public:
  /// Raw chunk callback: (ctx, chunk index, [begin, end) item range).
  using ChunkFn = void (*)(void* ctx, std::size_t chunk, std::size_t begin, std::size_t end);

  /// `threads` is the total lane count including the caller: 1 (or 0 workers
  /// available) runs everything inline on the calling thread; n spawns n - 1
  /// workers. 0 means one lane per hardware thread.
  explicit WorkerPool(int threads = 1);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Lanes executing chunks (workers + the caller).
  [[nodiscard]] int lanes() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Lane index of the calling thread WITHIN THIS POOL: worker i of this
  /// pool runs as lane i + 1; any other thread — including the dispatching
  /// caller, even when that caller is itself a worker of a different pool
  /// (e.g. a sweep-level lane running a whole cell) — is lane 0. Per-lane
  /// frame scratch (core::FrameResources arenas) indexes by this, so a chunk
  /// callback can reach its lane's arena without threading a lane id through
  /// every call.
  [[nodiscard]] int current_lane() const noexcept { return lane_pool_ == this ? lane_ : 0; }

  /// Chunks parallel_for() will create for `n` items at `grain` — size the
  /// per-chunk partial-result array with this before dispatching.
  [[nodiscard]] static std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
    if (n == 0) return 0;
    if (grain == 0) grain = 1;
    return (n + grain - 1) / grain;
  }

  /// Run fn over every chunk of [0, n); returns after all chunks complete.
  /// The caller participates, so a 1-lane pool degenerates to a plain loop.
  /// fn must not throw and must only write state owned by its chunk (or
  /// per-chunk partial slots).
  void parallel_for(std::size_t n, std::size_t grain, ChunkFn fn, void* ctx);

  /// Lambda convenience over parallel_for: f(chunk, begin, end). The callable
  /// lives on the caller's stack — no type-erasure allocation.
  template <typename F>
  void for_chunks(std::size_t n, std::size_t grain, F&& f) {
    using Fn = std::remove_reference_t<F>;
    parallel_for(
        n, grain,
        [](void* ctx, std::size_t chunk, std::size_t begin, std::size_t end) {
          (*static_cast<Fn*>(ctx))(chunk, begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

 private:
  // Which pool this thread is a worker of (null for non-worker threads) and
  // its lane index there; see current_lane().
  static thread_local const WorkerPool* lane_pool_;
  static thread_local int lane_;

  void worker_main(const std::stop_token& st);
  void drain_chunks(ChunkFn fn, void* ctx, std::size_t n, std::size_t grain,
                    std::size_t chunks);

  std::vector<std::jthread> workers_;

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::condition_variable done_cv_;
  // Job slot, published under mutex_ and stamped with a generation counter so
  // workers never miss or re-run a dispatch.
  std::uint64_t generation_ = 0;
  ChunkFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 0;
  std::size_t chunks_ = 0;
  std::size_t pending_workers_ = 0;
  std::atomic<std::size_t> next_chunk_{0};
};

}  // namespace mmv2v::sim
