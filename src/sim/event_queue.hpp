// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events, and an engine that drives it.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace mmv2v::sim {

using SimTime = double;  // seconds
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `action` at absolute time `at`. Events at equal times fire in
  /// scheduling order. Returns an id usable with cancel().
  EventId schedule(SimTime at, std::function<void()> action);

  /// Cancel a pending event. Membership is O(1) via the pending-id set;
  /// non-front entries are dropped lazily when they surface at the heap top.
  /// Cancelling an already-fired or unknown id returns false.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t live_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the earliest live event; returns its time.
  SimTime run_next();

 private:
  struct Entry {
    SimTime at = 0.0;
    std::uint64_t seq = 0;
    EventId id = 0;
    std::function<void()> action;
  };
  /// Min-heap ordering (std heap algorithms build a max-heap, so invert).
  static bool heap_later(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  void drop_cancelled_front();

  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::vector<Entry> heap_;
  /// Ids scheduled but neither fired nor cancelled. Invariant maintained by
  /// every mutator: the heap is empty or its front entry is pending, so the
  /// const accessors never need to mutate.
  std::unordered_set<EventId> pending_;
  /// Cancelled ids still physically in the heap, awaiting lazy removal.
  std::unordered_set<EventId> cancelled_;
};

/// Simulation engine: clock + queue + convenience run loops.
class Engine {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }

  /// Schedule relative to the current time.
  EventId schedule_in(SimTime delay, std::function<void()> action) {
    if (delay < 0.0) throw std::invalid_argument{"negative delay"};
    return queue_.schedule(now_ + delay, std::move(action));
  }

  EventId schedule_at(SimTime at, std::function<void()> action) {
    if (at < now_) throw std::invalid_argument{"schedule in the past"};
    return queue_.schedule(at, std::move(action));
  }

  /// Run events with time <= until; clock ends at exactly `until`.
  void run_until(SimTime until);

  /// Run until the queue is empty.
  void run();

  /// Drop all pending events and reset the clock to zero.
  void reset() { *this = Engine{}; }

 private:
  SimTime now_ = 0.0;
  EventQueue queue_;
};

}  // namespace mmv2v::sim
