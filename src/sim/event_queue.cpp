#include "sim/event_queue.hpp"

#include <algorithm>

namespace mmv2v::sim {

EventId EventQueue::schedule(SimTime at, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), heap_later);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Only mark ids that are actually still pending.
  const bool pending = std::any_of(heap_.begin(), heap_.end(),
                                   [id](const Entry& e) { return e.id == id; });
  if (!pending) return false;
  return cancelled_.insert(id).second;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), heap_later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  // const_cast-free variant: scan past cancelled entries without mutating.
  // The heap front is the earliest entry; cancelled fronts are rare, so a
  // copy of the lazy-drop logic on a const path would complicate things —
  // instead we require callers to go through run_next()/empty() which keep
  // the front live. Enforce that invariant here.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_front();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.front().at;
}

SimTime EventQueue::run_next() {
  drop_cancelled_front();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next on empty queue"};
  std::pop_heap(heap_.begin(), heap_.end(), heap_later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  entry.action();
  return entry.at;
}

void Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    // Advance the clock BEFORE executing the event so actions scheduling
    // relative work (schedule_in) see the correct current time.
    now_ = queue_.next_time();
    queue_.run_next();
  }
  now_ = std::max(now_, until);
}

void Engine::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
  }
}

}  // namespace mmv2v::sim
