#include "sim/event_queue.hpp"

#include <algorithm>

namespace mmv2v::sim {

EventId EventQueue::schedule(SimTime at, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), heap_later);
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  // Keep the front live so next_time()/run_next() stay O(1) const reads.
  drop_cancelled_front();
  return true;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), heap_later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  if (pending_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  // Mutators keep the front live, so this is a pure read.
  return heap_.front().at;
}

SimTime EventQueue::run_next() {
  if (pending_.empty()) throw std::logic_error{"EventQueue::run_next on empty queue"};
  std::pop_heap(heap_.begin(), heap_.end(), heap_later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(entry.id);
  // Restore the live-front invariant before running the action (which may
  // itself inspect the queue).
  drop_cancelled_front();
  entry.action();
  return entry.at;
}

void Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    // Advance the clock BEFORE executing the event so actions scheduling
    // relative work (schedule_in) see the correct current time.
    now_ = queue_.next_time();
    queue_.run_next();
  }
  now_ = std::max(now_, until);
}

void Engine::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
  }
}

}  // namespace mmv2v::sim
