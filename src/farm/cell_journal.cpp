#include "farm/cell_journal.hpp"

#include <bit>
#include <stdexcept>

#include "obs/crc32.hpp"
#include "obs/mmtrace.hpp"
#include "obs/varint.hpp"

namespace mmv2v::farm {
namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 4;  // magic + length + crc

void put_string(std::string& out, std::string_view s) {
  obs::put_varint(out, s.size());
  out.append(s);
}

void put_samples(std::string& out, const std::vector<double>& samples) {
  obs::put_varint(out, samples.size());
  for (const double v : samples) obs::detail::put_f64(out, v);
}

[[nodiscard]] bool get_f64(std::string_view in, std::size_t& pos, double& out) {
  if (pos + 8 > in.size()) return false;
  out = std::bit_cast<double>(obs::detail::get_u64(in, pos));
  pos += 8;
  return true;
}

[[nodiscard]] bool get_string(std::string_view in, std::size_t& pos, std::string* out) {
  std::uint64_t len = 0;
  if (!obs::get_varint(in, pos, len)) return false;
  if (len > in.size() - pos) return false;
  if (out != nullptr) out->assign(in.substr(pos, static_cast<std::size_t>(len)));
  pos += static_cast<std::size_t>(len);
  return true;
}

[[nodiscard]] bool get_samples(std::string_view in, std::size_t& pos,
                               std::vector<double>* out) {
  std::uint64_t count = 0;
  if (!obs::get_varint(in, pos, count)) return false;
  if (count > (in.size() - pos) / 8) return false;
  if (out != nullptr) {
    out->resize(static_cast<std::size_t>(count));
    for (double& v : *out) {
      if (!get_f64(in, pos, v)) return false;
    }
  } else {
    pos += static_cast<std::size_t>(count) * 8;
  }
  return true;
}

/// Decode one payload. Strict: every field must parse and the payload must
/// be fully consumed, else the frame is treated as corrupt.
[[nodiscard]] bool decode_payload(std::string_view payload, core::CellResult& cell,
                                  bool with_payloads) {
  std::size_t pos = 0;
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  if (!obs::get_varint(payload, pos, index)) return false;
  if (!obs::get_varint(payload, pos, seed)) return false;
  cell.index = static_cast<std::size_t>(index);
  cell.seed = seed;
  if (!get_f64(payload, pos, cell.degree)) return false;
  if (!get_f64(payload, pos, cell.ocr)) return false;
  if (!get_f64(payload, pos, cell.atp)) return false;
  if (!get_f64(payload, pos, cell.dtp)) return false;
  if (!get_f64(payload, pos, cell.fairness)) return false;
  if (!get_string(payload, pos, &cell.protocol_name)) return false;
  if (!get_samples(payload, pos, with_payloads ? &cell.ocr_samples : nullptr)) return false;
  if (!get_samples(payload, pos, with_payloads ? &cell.atp_samples : nullptr)) return false;
  if (!get_string(payload, pos, with_payloads ? &cell.trace_jsonl : nullptr)) return false;
  if (!get_string(payload, pos, with_payloads ? &cell.trace_binary : nullptr)) return false;
  std::uint64_t chunks = 0;
  if (!obs::get_varint(payload, pos, chunks)) return false;
  if (chunks > payload.size() - pos) return false;  // >= 3 varint bytes per chunk
  if (with_payloads) cell.trace_chunks.reserve(static_cast<std::size_t>(chunks));
  for (std::uint64_t i = 0; i < chunks; ++i) {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t records = 0;
    if (!obs::get_varint(payload, pos, offset)) return false;
    if (!obs::get_varint(payload, pos, bytes)) return false;
    if (!obs::get_varint(payload, pos, records)) return false;
    if (with_payloads) {
      obs::ChunkInfo info;
      info.offset = offset;
      info.bytes = static_cast<std::uint32_t>(bytes);
      info.records = static_cast<std::uint32_t>(records);
      cell.trace_chunks.push_back(info);
    }
  }
  return pos == payload.size();
}

}  // namespace

std::string encode_cell_record(const core::CellResult& cell) {
  std::string payload;
  obs::put_varint(payload, cell.index);
  obs::put_varint(payload, cell.seed);
  obs::detail::put_f64(payload, cell.degree);
  obs::detail::put_f64(payload, cell.ocr);
  obs::detail::put_f64(payload, cell.atp);
  obs::detail::put_f64(payload, cell.dtp);
  obs::detail::put_f64(payload, cell.fairness);
  put_string(payload, cell.protocol_name);
  put_samples(payload, cell.ocr_samples);
  put_samples(payload, cell.atp_samples);
  put_string(payload, cell.trace_jsonl);
  put_string(payload, cell.trace_binary);
  obs::put_varint(payload, cell.trace_chunks.size());
  for (const obs::ChunkInfo& info : cell.trace_chunks) {
    obs::put_varint(payload, info.offset);
    obs::put_varint(payload, info.bytes);
    obs::put_varint(payload, info.records);
  }

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kCellJournalMagic);
  obs::detail::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  obs::detail::put_u32(frame, obs::crc32(payload));
  frame.append(payload);
  return frame;
}

void replay_cell_journal(std::string_view bytes, JournalReplay& out, bool with_payloads) {
  std::size_t pos = 0;
  bool in_resync = false;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    // On any malformed frame: count one skip per damaged region and hunt for
    // the next magic — later records survive a corrupted middle.
    const auto resync = [&] {
      if (!in_resync) {
        ++out.skipped;
        in_resync = true;
      }
      const std::size_t next = bytes.find(kCellJournalMagic, pos + 1);
      pos = next == std::string_view::npos ? bytes.size() : next;
    };

    if (bytes.substr(pos, 4) != kCellJournalMagic) {
      resync();
      continue;
    }
    const std::uint32_t payload_bytes = obs::detail::get_u32(bytes, pos + 4);
    const std::uint32_t crc = obs::detail::get_u32(bytes, pos + 8);
    if (payload_bytes > bytes.size() - pos - kFrameHeaderBytes) {
      // Truncated tail (killed mid-write) or corrupt length.
      resync();
      continue;
    }
    const std::string_view payload = bytes.substr(pos + kFrameHeaderBytes, payload_bytes);
    core::CellResult cell;
    if (obs::crc32(payload) != crc || !decode_payload(payload, cell, with_payloads)) {
      resync();
      continue;
    }
    in_resync = false;
    ++out.records;
    if (!out.cells.emplace(cell.index, std::move(cell)).second) ++out.duplicates;
    pos += kFrameHeaderBytes + payload_bytes;
  }
  // A partial header at the very end is a torn write too.
  if (pos < bytes.size() && !in_resync) ++out.skipped;
}

CellJournalWriter::CellJournalWriter(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::binary | std::ios::app) {
  if (!out_) throw std::runtime_error{"cell journal: cannot open " + path_};
}

void CellJournalWriter::append(const core::CellResult& cell) {
  const std::string frame = encode_cell_record(cell);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) throw std::runtime_error{"cell journal: write to " + path_ + " failed"};
}

}  // namespace mmv2v::farm
