// Declarative sweep-job specification shared by the one-shot sweep_runner
// and the sweep farm (DESIGN.md Section 15). A job spec is a key=value
// document in the ConfigMap dialect whose keys are exactly the sweep knobs
// sweep_runner exposes as flags; parse_sweep_spec turns it into the
// (ExperimentConfig, ScenarioConfig, protocol) triple a sweep needs, and
// canonical_spec_text renders the normalized form that lands on the job
// queue — so `sweep_runner queue=...` and `farm_runner mode=submit` enqueue
// byte-identical specs for the same request.
#pragma once

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>

#include "common/config_parser.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace mmv2v::farm {

/// One sweep knob: name, default (empty = no default / pass-through), help
/// line. The table is the single source of truth for the sweep_runner flag
/// list, the farm_runner submit flags, and spec validation.
struct SweepKnob {
  const char* name;
  const char* def;
  const char* help;
};

/// Every knob a sweep job understands, in display order.
[[nodiscard]] std::span<const SweepKnob> sweep_knobs();

/// True when `key` names a sweep knob.
[[nodiscard]] bool is_sweep_knob(std::string_view key);

/// The knob named `key`, or nullptr.
[[nodiscard]] const SweepKnob* find_sweep_knob(std::string_view key);

/// Copy of `config` keeping only sweep knobs whose value differs from the
/// knob default — the minimal form both submit front-ends (sweep_runner
/// queue= and farm_runner mode=submit) reduce a request to, so the same
/// request always enqueues the same spec bytes. Throws std::runtime_error on
/// keys that are not sweep knobs.
[[nodiscard]] ConfigMap minimal_sweep_config(const ConfigMap& config);

/// Fully parsed sweep request.
struct SweepSpec {
  core::ExperimentConfig experiment;
  core::ScenarioConfig base;
  std::string protocol{"mmv2v"};
  /// Aggregate results JSON path (core::sweep_points_json document).
  std::string out_json;
  /// Streaming per-density rollup snapshot path.
  std::string progress_out;
  /// Worker claim priority: higher-priority jobs activate first; ties fall
  /// back to submission (FIFO) order.
  int priority = 0;

  [[nodiscard]] std::size_t cell_count() const noexcept { return experiment.cell_count(); }
};

/// Parse a spec, applying every knob default first. Throws
/// std::runtime_error on unknown sweep keys, unknown protocols, or
/// malformed knob values.
[[nodiscard]] SweepSpec parse_sweep_spec(const ConfigMap& config);

/// Protocol factory for the spec's protocol= / k= / m= / c= / persistent=
/// knobs. Throws std::runtime_error on an unknown protocol name.
[[nodiscard]] core::ProtocolFactory make_sweep_protocol_factory(const ConfigMap& config);

/// Render the normalized spec document: only recognized sweep knobs, one
/// `key = value` per line in sorted key order, defaults omitted unless set.
/// Throws std::runtime_error if `config` holds a key that is not a sweep
/// knob (a typo'd knob must fail at submit time, not after queueing).
[[nodiscard]] std::string canonical_spec_text(const ConfigMap& config);

/// Resolve the spec's relative output paths (trace_out, out, progress_out)
/// against `base_dir` — the farm resolves them against the job directory so
/// two jobs with the same spec text cannot clobber each other's outputs.
void resolve_spec_paths(SweepSpec& spec, const std::filesystem::path& base_dir);

}  // namespace mmv2v::farm
