#include "farm/sweep_spec.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "protocols/ad/ieee80211ad.hpp"
#include "protocols/mmv2v/mmv2v.hpp"
#include "protocols/rop/rop.hpp"

namespace mmv2v::farm {
namespace {

// The single source of truth for what a sweep job understands. sweep_runner
// and farm_runner derive their flag lists from this table, so a knob added
// here is automatically submittable, parseable and documented everywhere.
constexpr std::array<SweepKnob, 50> kSweepKnobs{{
    {"protocol", "mmv2v", "protocol under test: mmv2v | rop | ad"},
    {"densities", "", "explicit density list, e.g. 10,20,30 (overrides vpl_*)"},
    {"vpl_min", "10", "sweep start density [vehicles/lane]"},
    {"vpl_max", "30", "sweep end density [vehicles/lane]"},
    {"vpl_step", "5", "sweep density step [vehicles/lane]"},
    {"reps", "3", "repetitions (independent seeds) per density"},
    {"horizon_s", "1.5", "simulated horizon per cell [s]"},
    {"seed", "1", "root seed; cell seeds derive from (seed, density, rep)"},
    {"threads", "0", "sweep-cell worker threads (0 = one per hardware thread)"},
    {"engine.threads", "1",
     "intra-frame worker lanes per cell (0 = one per hardware thread)"},
    {"engine.arena_bytes", "1048576", "per-lane frame-arena capacity [bytes]"},
    {"engine.lane_budget", "0", "process-wide worker-lane budget (0 = hardware threads)"},
    {"engine.batched_kernels", "true",
     "route hot frame loops through the batched SoA kernels (bit-identical either way)"},
    {"world.shards", "1", "rectangular world shards for pair enumeration"},
    {"network.topology", "legacy_ring",
     "road topology: ring | legacy_ring | ring_network | city_grid"},
    {"network.grid_rows", "4", "city_grid: horizontal road count (>= 2)"},
    {"network.grid_cols", "4", "city_grid: vertical road count (>= 2)"},
    {"network.block_m", "250", "city_grid: block edge length [m]"},
    {"network.signal_green_s", "12", "city_grid: per-approach signal green phase [s]"},
    {"tier.enabled", "false", "enable Full/Kinematic/OnRails fidelity tiering"},
    {"tier.focus", "", "focus regions as x,y,radius triples separated by ';'"},
    {"tier.kinematic_radius_m", "400", "Kinematic band width beyond the focus edge [m]"},
    {"tier.hysteresis_m", "25", "extra demotion distance beyond each exit radius [m]"},
    {"tier.promote_budget", "32", "max tier promotions per snapshot refresh"},
    {"tier.demote_budget", "32", "max tier demotions per snapshot refresh"},
    {"tier.onrails_duty_cycle", "0.02", "per-OnRails-vehicle channel duty cycle in [0,1]"},
    {"rate_mbps", "200", "per-pair task demand [Mbit/s]"},
    {"comm_range_m", "80", "communication/admission range [m]"},
    {"shadowing_db", "0", "log-normal shadowing sigma (0 = off) [dB]"},
    {"nakagami_m", "0", "Nakagami-m small-scale fading shape (0 = off)"},
    {"k", "3", "mmV2V SND rounds per frame"},
    {"m", "40", "mmV2V DCM negotiation slots per frame"},
    {"c", "7", "mmV2V CNS modulus"},
    {"persistent", "false", "mmV2V: carry viable matches across frames"},
    {"fault.clock_drift_us", "0", "fault: per-vehicle clock drift sigma [us] (0 = off)"},
    {"fault.ctrl_loss", "0", "fault: stationary control-message loss rate (0 = off)"},
    {"fault.burst_len", "1",
     "fault: mean loss-burst length (Gilbert-Elliott; <=1 = Bernoulli)"},
    {"fault.gps_sigma_m", "0", "fault: GPS position noise sigma per axis [m] (0 = off)"},
    {"fault.churn_rate", "0",
     "fault: per-vehicle per-frame radio dropout probability (0 = off)"},
    {"net.sub6_enabled", "false",
     "control plane: sub-6 GHz omnidirectional failover transport"},
    {"net.sub6_range_m", "250", "control plane: sub-6 side-channel range [m]"},
    {"net.sub6_loss", "0", "control plane: sub-6 stationary loss rate in [0,1)"},
    {"net.relay_enabled", "false",
     "control plane: one-hop relay recovery for NLOS-blocked negotiation"},
    {"priority", "0", "farm worker claim priority (higher activates first)"},
    {"trace_out", "", "write the merged event trace (enables instrumentation)"},
    {"trace.format", "jsonl", "trace encoding: jsonl | binary (.mmtrace)"},
    {"trace.flush_events", "0", "recorder flush batch size (0 = buffer the whole cell)"},
    {"trace.spans", "false", "emit link-lifecycle span events and span.* metrics"},
    {"out", "", "write the aggregate sweep-results JSON here"},
    {"progress_out", "", "rewrite a per-density rollup snapshot JSON here after every cell"},
}};

std::vector<double> parse_densities(const ConfigMap& config) {
  if (const auto list = config.get_string("densities"); list && !list->empty()) {
    std::vector<double> out;
    std::stringstream ss{*list};
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
    if (out.empty()) throw std::runtime_error{"sweep spec: empty densities list"};
    return out;
  }
  const double lo = config.get_or("vpl_min", 10.0);
  const double hi = config.get_or("vpl_max", 30.0);
  const double step = config.get_or("vpl_step", 5.0);
  if (step <= 0.0) throw std::runtime_error{"sweep spec: vpl_step must be > 0"};
  std::vector<double> out;
  for (double d = lo; d <= hi + 1e-9; d += step) out.push_back(d);
  if (out.empty()) throw std::runtime_error{"sweep spec: empty vpl_min..vpl_max range"};
  return out;
}

// Defaults from the knob table, overlaid with the caller's settings, so the
// downstream parse helpers see a complete document.
ConfigMap with_defaults(const ConfigMap& config) {
  ConfigMap full;
  for (const SweepKnob& knob : kSweepKnobs) {
    if (knob.def != nullptr && knob.def[0] != '\0') full.set(knob.name, knob.def);
  }
  for (const auto& [key, value] : config.entries()) full.set(key, value);
  return full;
}

void resolve_one(std::string& path, const std::filesystem::path& base_dir) {
  if (path.empty()) return;
  const std::filesystem::path p{path};
  if (p.is_absolute()) return;
  path = (base_dir / p).string();
}

}  // namespace

std::span<const SweepKnob> sweep_knobs() {
  return {kSweepKnobs.data(), kSweepKnobs.size()};
}

bool is_sweep_knob(std::string_view key) { return find_sweep_knob(key) != nullptr; }

const SweepKnob* find_sweep_knob(std::string_view key) {
  const auto it = std::find_if(kSweepKnobs.begin(), kSweepKnobs.end(),
                               [&](const SweepKnob& knob) { return key == knob.name; });
  return it == kSweepKnobs.end() ? nullptr : &*it;
}

ConfigMap minimal_sweep_config(const ConfigMap& config) {
  ConfigMap out;
  for (const auto& [key, value] : config.entries()) {
    const SweepKnob* knob = find_sweep_knob(key);
    if (knob == nullptr) throw std::runtime_error{"sweep spec: unknown knob '" + key + "'"};
    if (value == knob->def) continue;
    if (value.empty()) continue;  // empty = unset for every sweep knob
    out.set(key, value);
  }
  return out;
}

core::ProtocolFactory make_sweep_protocol_factory(const ConfigMap& config) {
  const std::string protocol = config.get_or("protocol", std::string{"mmv2v"});
  if (protocol == "mmv2v") {
    protocols::MmV2VParams params;
    params.snd.rounds = static_cast<int>(config.get_or("k", std::int64_t{3}));
    params.dcm.slots = static_cast<int>(config.get_or("m", std::int64_t{40}));
    params.dcm.modulus_c = static_cast<int>(config.get_or("c", std::int64_t{7}));
    params.persistent_matching = config.get_or("persistent", false);
    return [params](std::uint64_t seed) -> std::unique_ptr<core::OhmProtocol> {
      protocols::MmV2VParams p = params;
      p.seed = seed;
      return std::make_unique<protocols::MmV2VProtocol>(p);
    };
  }
  if (protocol == "rop") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::OhmProtocol> {
      protocols::RopParams p;
      p.seed = seed;
      return std::make_unique<protocols::RopProtocol>(p);
    };
  }
  if (protocol == "ad") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::OhmProtocol> {
      protocols::AdParams p;
      p.seed = seed;
      return std::make_unique<protocols::Ieee80211adProtocol>(p);
    };
  }
  throw std::runtime_error{"sweep spec: unknown protocol '" + protocol +
                           "' (use mmv2v | rop | ad)"};
}

SweepSpec parse_sweep_spec(const ConfigMap& config) {
  for (const auto& [key, value] : config.entries()) {
    if (!is_sweep_knob(key)) {
      throw std::runtime_error{"sweep spec: unknown knob '" + key + "'"};
    }
  }
  const ConfigMap full = with_defaults(config);

  SweepSpec spec;
  spec.protocol = full.get_or("protocol", std::string{"mmv2v"});
  spec.experiment.densities_vpl = parse_densities(full);
  spec.experiment.repetitions = static_cast<int>(full.get_or("reps", std::int64_t{3}));
  spec.experiment.horizon_s = full.get_or("horizon_s", 1.5);
  spec.experiment.seed = static_cast<std::uint64_t>(full.get_or("seed", std::int64_t{1}));
  spec.experiment.threads = static_cast<int>(full.get_or("threads", std::int64_t{0}));
  spec.experiment.trace_out = full.get_or("trace_out", std::string{});
  spec.out_json = full.get_or("out", std::string{});
  spec.progress_out = full.get_or("progress_out", std::string{});

  spec.base.engine = parse_engine_knobs(full);
  spec.base.network = parse_network_knobs(full);
  spec.base.tier = parse_tier_knobs(full);
  spec.base.trace = parse_trace_knobs(full);
  spec.base.task.rate_mbps = full.get_or("rate_mbps", 200.0);
  spec.base.comm_range_m = full.get_or("comm_range_m", spec.base.comm_range_m);
  spec.base.fading.shadowing_sigma_db = full.get_or("shadowing_db", 0.0);
  spec.base.fading.nakagami_m = full.get_or("nakagami_m", 0.0);
  spec.base.fault.clock_drift_us = full.get_or("fault.clock_drift_us", 0.0);
  spec.base.fault.ctrl_loss = full.get_or("fault.ctrl_loss", 0.0);
  spec.base.fault.burst_len = full.get_or("fault.burst_len", 1.0);
  spec.base.fault.gps_sigma_m = full.get_or("fault.gps_sigma_m", 0.0);
  spec.base.fault.churn_rate = full.get_or("fault.churn_rate", 0.0);
  spec.base.net = parse_net_knobs(full);
  spec.priority = static_cast<int>(full.get_or("priority", std::int64_t{0}));

  // Fail at parse time, not first-cell time, if the protocol is unknown.
  (void)make_sweep_protocol_factory(full);
  return spec;
}

std::string canonical_spec_text(const ConfigMap& config) {
  std::string out = "# mmv2v sweep job spec\n";
  // ConfigMap::entries() is a sorted map, so the rendering is canonical.
  for (const auto& [key, value] : config.entries()) {
    if (!is_sweep_knob(key)) {
      throw std::runtime_error{"sweep spec: unknown knob '" + key + "'"};
    }
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

void resolve_spec_paths(SweepSpec& spec, const std::filesystem::path& base_dir) {
  resolve_one(spec.experiment.trace_out, base_dir);
  resolve_one(spec.out_json, base_dir);
  resolve_one(spec.progress_out, base_dir);
}

}  // namespace mmv2v::farm
