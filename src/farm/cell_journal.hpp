// Cell-result checkpoint journal for the sweep farm (DESIGN.md Section 15).
// Each worker process appends one framed record per finished sweep cell to
// its own `journal-<pid>.mmcj` file inside the job directory; resume =
// replay every journal, skip the indices already present, run the rest.
//
// Frame layout (all little-endian):
//   "MMCJ"  u32 payload_bytes  u32 crc32(payload)  payload
//
// The payload serializes core::CellResult bit-exactly (doubles as raw IEEE
// bits, integers as LEB128 varints), so a merge over replayed records
// produces the same bytes as a merge over freshly computed ones. The reader
// resyncs on the magic after a bad frame: a torn tail write or a flipped
// byte loses at most the damaged record(s) — never the journal, never the
// sweep.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

#include "core/experiment.hpp"

namespace mmv2v::farm {

inline constexpr std::string_view kCellJournalMagic = "MMCJ";

/// One framed record ("MMCJ" + length + crc + payload) for `cell`.
[[nodiscard]] std::string encode_cell_record(const core::CellResult& cell);

/// Outcome of replaying one or more journals.
struct JournalReplay {
  /// Recovered cells keyed by canonical cell index. On duplicate indices
  /// (a re-run after a stale claim takeover) the first record wins — both
  /// are bit-identical by determinism, so the choice is cosmetic.
  std::map<std::size_t, core::CellResult> cells;
  std::size_t records = 0;     ///< well-formed records decoded
  std::size_t duplicates = 0;  ///< well-formed records for an already-seen index
  std::size_t skipped = 0;     ///< corrupt or truncated frames dropped by resync
};

/// Replay journal `bytes` into `out` (accumulating across calls, so multiple
/// workers' journals can be folded into one view). `with_payloads` = false
/// skips copying the bulky fields (sample vectors, trace bytes) — enough for
/// claim scans and progress rollups; the merge pass needs true.
void replay_cell_journal(std::string_view bytes, JournalReplay& out, bool with_payloads);

/// Append-only journal writer. One instance per (worker process, job);
/// workers never share a journal file, so appends cannot interleave.
class CellJournalWriter {
 public:
  /// Opens `path` for binary append (creating it if absent). Throws
  /// std::runtime_error when the file cannot be opened.
  explicit CellJournalWriter(std::string path);

  /// Append one cell record and flush it to the OS. Throws
  /// std::runtime_error on write failure — a cell whose checkpoint was
  /// dropped must be treated as failed, not silently re-runnable.
  void append(const core::CellResult& cell);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace mmv2v::farm
