// Sweep-farm worker (DESIGN.md Section 15): the long-lived service loop
// behind `farm_runner mode=work`. Each worker process repeatedly
//   1. scans active jobs, claims unfinished cells (O_EXCL claim files,
//      stealing claims whose owners died), runs them with run_sweep_cell and
//      journals each CellResult before releasing it to the world;
//   2. activates a pending job when no active job has claimable work;
//   3. when every cell of a job is journaled, takes the merge claim and
//      finalizes: replay journals -> merge_sweep_cells -> trace + results —
//      bit-identical to an uninterrupted single-process sweep.
// Killing a worker at any instant costs at most the cells it was currently
// running; a resumed farm re-runs only those.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include "farm/cell_journal.hpp"
#include "farm/job_queue.hpp"

namespace mmv2v::farm {

struct FarmOptions {
  std::string queue_root;
  /// Idle poll interval between queue scans.
  int poll_ms = 200;
  /// Exit once the queue holds no pending or active jobs (batch mode);
  /// false = keep serving until killed (service mode).
  bool drain = false;
  /// > 0: exit after this much continuous idle time even with active jobs
  /// (watchdog for service deployments that respawn workers).
  double idle_exit_s = 0.0;
  /// Test hook: stop after journaling this many cells (0 = unlimited). Used
  /// to simulate a worker dying mid-sweep without actually killing it.
  std::size_t max_cells = 0;
};

struct FarmWorkerStats {
  std::size_t cells_run = 0;
  std::size_t jobs_activated = 0;
  std::size_t jobs_finalized = 0;
  std::size_t jobs_failed = 0;
};

/// Run the worker loop until its exit condition (drain / idle_exit_s /
/// max_cells) fires. Throws std::runtime_error only for queue-level failures
/// (unusable queue root); job-level failures move the job to failed/ and the
/// loop keeps serving.
FarmWorkerStats run_farm_worker(const FarmOptions& options);

/// Fold every journal-<pid>.mmcj in `job_dir` into one replay view.
[[nodiscard]] JournalReplay replay_job_journals(const std::filesystem::path& job_dir,
                                                bool with_payloads);

}  // namespace mmv2v::farm
